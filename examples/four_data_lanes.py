#!/usr/bin/env python3
"""One FM carrier, four data lanes.

The paper uses only the mono audio channel and leaves the rest of the
baseband (Figure 2) as future work.  This example lights up all of it at
once on a single simulated carrier:

* mono 30 Hz-15 kHz ........ SONIC OFDM burst (~10 kbps class)
* stereo L-R @ 38 kHz ...... second SONIC OFDM burst
* RDS @ 57 kHz ............. programme schedule text (1187.5 bps)
* DARC @ 76 kHz ............ a compressed page fragment (16 kbps)

Run:  python examples/four_data_lanes.py
"""

from __future__ import annotations

import numpy as np

from repro.modem import Modem
from repro.radio import DarcChannel, RdsDecoder, RdsEncoder
from repro.radio.fm import FmDemodulator, FmModulator
from repro.radio.multiplex import FmMultiplexer
from repro.util.rng import derive_rng


def main() -> None:
    rng = derive_rng(2024, "four-lanes")
    modem = Modem("sonic-ofdm")

    # Lane 1 + 2: two independent OFDM bursts.
    mono_payloads = [bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(3)]
    diff_payloads = [bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(3)]
    mono = modem.transmit_burst(mono_payloads)
    diff = modem.transmit_burst(diff_payloads)
    n = max(mono.size, diff.size)
    mono = np.pad(mono, (0, n - mono.size)) / max(np.max(np.abs(mono)), 1e-9)
    diff = np.pad(diff, (0, n - diff.size)) / max(np.max(np.abs(diff)), 1e-9)

    # Lane 3: RDS RadioText.
    rds_wave = RdsEncoder().encode_text(0x50A1, "SONIC 93.7 NEWS AT 0800")

    # Lane 4: DARC carrying a page fragment.
    darc = DarcChannel()
    fragment = bytes(rng.integers(0, 256, 800, dtype=np.uint8))
    darc_wave = darc.encode(fragment)

    mux = FmMultiplexer()
    mpx = mux.compose(mono * 0.9, stereo_diff=diff * 0.9, rds=rds_wave, darc=darc_wave)
    iq = FmModulator().modulate(mpx)
    # A healthy RSSI: -70 dB with the -97 dB noise floor -> 27 dB CNR.
    cnr_db = 27.0
    noise = np.sqrt(10 ** (-cnr_db / 10) / 2) * (
        rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
    )
    mpx_rx = FmDemodulator().demodulate(iq + noise)

    mono_rx = mux.extract_mono(mpx_rx)[:n]
    diff_rx = mux.extract_stereo_diff(mpx_rx)[:n]
    mono_ok = sum(f.ok for f in modem.receive(mono_rx, frames_per_burst=3))
    diff_ok = sum(f.ok for f in modem.receive(diff_rx, frames_per_burst=3))
    text = RdsDecoder().decode_text(mux.extract_rds_band(mpx_rx))
    darc_out = darc.decode(mux.extract_darc_band(mpx_rx))

    seconds = n / 48_000
    total_bits = (mono_ok + diff_ok) * 800 + len(text) * 8 + (
        len(darc_out[0]) * 8 if darc_out else 0
    )
    print(f"carrier airtime: {seconds:.2f}s at 27 dB CNR")
    print(f"  mono lane:   {mono_ok}/3 SONIC frames")
    print(f"  stereo lane: {diff_ok}/3 SONIC frames")
    print(f"  RDS lane:    {text!r}")
    print(f"  DARC lane:   {'%d bytes' % len(darc_out[0]) if darc_out else 'lost'}")
    print(f"aggregate delivered: {total_bits / seconds / 1000:.1f} kbps "
          f"on one FM station")


if __name__ == "__main__":
    main()
