#!/usr/bin/env python3
"""Datacasting on the RDS subcarrier — the RevCast/MSN-Direct lane.

Section 2 of the paper surveys systems that push data through FM's
57 kHz Radio Data System subcarrier (1187.5 bps) while the audio program
plays undisturbed.  This example broadcasts a text bulletin over the
full simulated FM chain — RDS groups + a SONIC modem burst sharing the
same multiplex — and decodes both at the receiver.

Run:  python examples/rds_datacast.py
"""

from __future__ import annotations

import numpy as np

from repro.modem import Modem
from repro.radio import FmRadioLink, RdsDecoder, RdsEncoder


def main() -> None:
    bulletin = "SONIC SCHEDULE: NEWS 0800 CRICKET 0930 WEATHER 1100"
    print(f"bulletin ({len(bulletin)} chars): {bulletin!r}")

    # The mono program: a SONIC modem burst (webpage data over sound).
    modem = Modem("sonic-ofdm")
    rng = np.random.default_rng(3)
    payloads = [bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(3)]
    program = modem.transmit_burst(payloads)

    # The RDS sidecar rides at 57 kHz, above the audio.
    encoder = RdsEncoder()
    rds_wave = encoder.encode_text(pi_code=0x50A1, text=bulletin[:64])
    airtime = rds_wave.size / 192_000
    print(f"RDS airtime: {airtime:.2f}s at 1187.5 bps")

    # Through the FM transmitter/receiver chain at a healthy RSSI.
    link = FmRadioLink(seed=1)
    rssi = -70.0
    mono_rx = link.transmit(program, rssi, rds=rds_wave)
    frames = modem.receive(mono_rx, frames_per_burst=len(payloads))
    print(f"mono channel: {sum(f.ok for f in frames)}/{len(payloads)} "
          f"SONIC frames decoded at {rssi:.0f} dB RSSI")

    band = link.received_rds_band(program, rssi, rds_wave)
    decoded = RdsDecoder().decode_text(band)
    print(f"RDS channel:  {decoded!r}")
    match = "OK" if decoded.startswith(bulletin[:40]) else "MISMATCH"
    print(f"roundtrip: {match}")


if __name__ == "__main__":
    main()
