#!/usr/bin/env python3
"""The Figure 3 workflow: user-C requests a page over SMS.

Builds a full SONIC deployment — server, FM transmitter in Lahore, SMS
gateway, and the paper's three user classes — then follows one request:

* user-C texts ``GET <url> LOC <lat>,<lon>`` to the SONIC number;
* the server renders the page, queues it ahead of the catalog pushes on
  the transmitter covering Lahore, and replies with an ACK + ETA;
* the broadcast delivers the page to user-C *and* to the passive users
  A (radio over the air) and B (internal FM tuner);
* user-C opens the page and follows a hyperlink through the click map.

Run:  python examples/request_page_via_sms.py
"""

from __future__ import annotations

from repro import SonicSystem, SystemConfig
from repro.client.browser import ClickOutcome


def main() -> None:
    system = SonicSystem(
        SystemConfig(n_sites=3, render_width=540, max_pixel_height=1_600)
    )
    user_c = system.client("user-c")
    target = system.generator.all_urls()[5]

    print(f"user-c requests {target!r} via SMS...")
    user_c.request_page(target, system.clock.now)

    # Run the simulation until the page lands (or an hour passes).
    request_time = system.clock.now
    while target not in user_c.cache and system.clock.now - request_time < 3_600:
        system.step(5.0)
        if user_c.acks and user_c.acks[0].url == target and len(user_c.acks) == 1:
            ack = user_c.acks[0]
            print(f"  ACK after {system.clock.now - request_time:.0f}s: "
                  f"ETA {ack.eta_seconds:.0f}s")
            user_c.acks.append(ack)  # mark as printed

    elapsed = system.clock.now - request_time
    print(f"  page delivered after {elapsed:.0f}s of simulated time")

    for name in ("user-a", "user-b", "user-c"):
        client = system.client(name)
        print(f"  {name}: {len(client.cache.urls())} cached pages, "
              f"frame loss {client.frame_loss_rate * 100:.1f}%")

    # Browse: open the delivered page and tap its first hyperlink.
    bundle = user_c.browser.open(target, system.clock.now)
    print(f"opened {bundle.url}: image {bundle.image.shape}, "
          f"{len(bundle.clickmap)} clickable regions")
    if bundle.clickmap.regions:
        region = bundle.clickmap.regions[0]
        factor = user_c.profile.scale_factor
        result = user_c.click(
            int((region.x + 2) * factor), int((region.y + 2) * factor),
            system.clock.now,
        )
        if result.outcome == ClickOutcome.CACHE_HIT:
            print(f"tapped {result.href!r}: loaded instantly from cache")
        elif result.outcome == ClickOutcome.NEEDS_UPLINK:
            print(f"tapped {result.href!r}: not cached, SMS request sent")


if __name__ == "__main__":
    main()
