#!/usr/bin/env python3
"""Quickstart: send a webpage over sound, lose some frames, recover it.

Walks the core SONIC pipeline in five steps:

1. render a synthetic Pakistani webpage to a screenshot + click map;
2. compress it with the SWebp codec at the paper's quality 10;
3. modulate 100-byte frames into audio with the 92-subcarrier OFDM
   profile and decode them back (a clean "cable" downlink);
4. simulate 10 % frame loss on the column transport (Figure 1);
5. repair the missing pixels with nearest-neighbour interpolation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Modem, PageRenderer, SiteGenerator, SWebpCodec, simulate_column_loss

def main() -> None:
    # 1. Render a page (the generator mirrors the paper's .pk corpus).
    generator = SiteGenerator(seed=42)
    url = generator.websites()[0].landing_url
    page = generator.page(url, hour=9)
    result = PageRenderer(width=1080, max_height=2_000).render(page)
    print(f"rendered {url}: {result.image.shape[0]}x{result.image.shape[1]} px, "
          f"{len(result.clickmap)} clickable regions")

    # 2. Compress at quality 10 — the paper's choice for the FM downlink.
    codec = SWebpCodec(quality=10)
    compressed = codec.encode(result.image)
    ratio = result.image.nbytes / len(compressed)
    print(f"SWebp Q10: {len(compressed) / 1024:.0f} KB ({ratio:.0f}x compression)")

    # 3. A few 100-byte frames over the acoustic OFDM modem.
    modem = Modem("sonic-ofdm")
    payloads = [compressed[i : i + 100].ljust(100, b"\0") for i in range(0, 800, 100)]
    audio = modem.transmit_burst(payloads)
    received = modem.receive(audio, frames_per_burst=len(payloads))
    ok = sum(frame.ok for frame in received)
    seconds = audio.size / modem.profile.ofdm.sample_rate
    print(f"modem: {ok}/{len(payloads)} frames over {seconds:.2f}s of audio "
          f"({modem.profile.raw_bit_rate():.0f} bps raw PHY)")

    # 4 + 5. Ten percent frame loss, then the paper's recovery.
    decoded = codec.decode(compressed)
    sim = simulate_column_loss(decoded, loss_rate=0.10, seed=1)
    print(f"10% frame loss: PSNR {sim.psnr_damaged():.1f} dB dark -> "
          f"{sim.psnr_interpolated():.1f} dB after interpolation "
          f"(SSIM {sim.ssim_interpolated():.3f})")

    from repro.imaging import write_ppm
    write_ppm("/tmp/sonic_quickstart_recovered.ppm", sim.interpolated)
    print("recovered screenshot written to /tmp/sonic_quickstart_recovered.ppm")


if __name__ == "__main__":
    main()
