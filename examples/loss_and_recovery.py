#!/usr/bin/env python3
"""Regenerate Figure 1's three panels for any corpus page.

Renders a page, delivers it as SWebp Q10, knocks out a chosen fraction
of column frames, and writes three PPM images: intact, damaged (missing
pixels dark), and repaired by nearest-neighbour interpolation.

Run:  python examples/loss_and_recovery.py [loss_percent] [out_dir]
      python examples/loss_and_recovery.py 20 /tmp
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import PageRenderer, SiteGenerator, SWebpCodec, simulate_column_loss
from repro.imaging import write_ppm


def main() -> None:
    loss_pct = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("/tmp")
    if not 0 <= loss_pct < 100:
        raise SystemExit("loss percent must be in [0, 100)")

    generator = SiteGenerator(seed=42)
    url = generator.websites()[0].landing_url
    rendered = PageRenderer(width=1080, max_height=2_400).render(
        generator.page(url, hour=0)
    )
    codec = SWebpCodec(quality=10)
    delivered = codec.decode(codec.encode(rendered.image))

    sim = simulate_column_loss(delivered, loss_pct / 100.0, seed=7)
    paths = {
        "intact": out_dir / "sonic_fig1_left.ppm",
        "damaged": out_dir / "sonic_fig1_center.ppm",
        "repaired": out_dir / "sonic_fig1_right.ppm",
    }
    write_ppm(paths["intact"], sim.original)
    write_ppm(paths["damaged"], sim.damaged)
    write_ppm(paths["repaired"], sim.interpolated)

    print(f"page: {url} ({delivered.shape[0]}x{delivered.shape[1]})")
    print(f"frame loss: {sim.frame_loss_rate * 100:.1f}% "
          f"-> {sim.pixel_loss_rate * 100:.1f}% of pixels missing")
    print(f"damaged:  PSNR {sim.psnr_damaged():6.1f} dB  SSIM {sim.ssim_damaged():.3f}")
    print(f"repaired: PSNR {sim.psnr_interpolated():6.1f} dB  SSIM {sim.ssim_interpolated():.3f}")
    for label, path in paths.items():
        print(f"  {label:9} -> {path}")


if __name__ == "__main__":
    main()
