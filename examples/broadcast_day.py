#!/usr/bin/env python3
"""Two days of SONIC broadcasting: the Figure 4(c) dynamics.

Replays the paper's workload — the 100-page Pakistani corpus re-rendered
hourly with diurnal churn — against broadcast carousels at 10, 20 and
40 kbps, and prints an hour-by-hour backlog strip chart.

Run:  python examples/broadcast_day.py
"""

from __future__ import annotations

import numpy as np

from repro.sim.workload import BroadcastWorkload, WorkloadConfig


def sparkline(values: np.ndarray, width: int = 72) -> str:
    blocks = " ._-=+*#%@"
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    top = max(float(sampled.max()), 1e-9)
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in sampled)


def main() -> None:
    print("simulating 48h of hourly re-renders over the 100-page corpus...\n")
    for rate, n_pages in ((10_000, 100), (20_000, 100), (40_000, 100), (20_000, 200)):
        workload = BroadcastWorkload(
            WorkloadConfig(rate_bps=rate, n_pages=n_pages, n_hours=48)
        )
        res = workload.run()
        label = f"{rate // 1000:>2}kbps N:{n_pages}"
        print(f"{label}  peak {res.peak_backlog_mb():5.1f} MB   "
              f"drained {res.fraction_time_empty() * 100:3.0f}% of the time")
        print(f"         |{sparkline(res.backlog_mb)}|")
    print("\nreading: at 10 kbps the queue never empties (broadcast-only mode);")
    print("20/40 kbps drain overnight — and 20 kbps with N=200 saturates again.")


if __name__ == "__main__":
    main()
