"""EXTENSION — unequal error protection for important page regions.

The paper flags this as the obvious optimisation: "higher error
protection for important parts of an image/webpage".  At the same frame
loss rate, repeating the frames that cover the fold and the text rows
slashes the damage where readers look, at a quantified airtime premium.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.transport.partition import ColumnTransport
from repro.transport.uep import (
    UepPolicy,
    importance_weighted_damage,
    schedule_with_uep,
)
from repro.util.rng import derive_rng
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

LOSS = 0.15


def run():
    generator = SiteGenerator(seed=42)
    image = PageRenderer(width=1080, max_height=3_000).render(
        generator.page(generator.all_urls()[0], 0)
    ).image
    transport = ColumnTransport("rle")
    frames = transport.partition(image, page_id=1)
    policy = UepPolicy(fold_rows=1_000, repeats=2)

    rng = derive_rng(11, "uep")
    outcomes = {}
    for label, schedule in (
        ("equal protection", list(frames)),
        ("UEP (2x important)", schedule_with_uep(frames, image, policy)),
    ):
        # Drop a uniform fraction of *transmitted* frames; duplicates
        # give important frames two independent survival chances.
        kept = [f for f in schedule if rng.random() >= LOSS]
        received, missing = transport.reassemble(kept, image.shape[:2])
        outcomes[label] = {
            "airtime": len(schedule),
            "overall": float(missing.mean()),
            "important": importance_weighted_damage(image, missing, policy),
        }
    return outcomes


@pytest.mark.benchmark(group="extension")
def test_extension_uep(benchmark):
    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            label,
            f"{v['airtime']}",
            f"{v['overall'] * 100:.1f}%",
            f"{v['important'] * 100:.1f}%",
        ]
        for label, v in outcomes.items()
    ]
    print_table(
        f"UEP extension at {LOSS * 100:.0f}% frame loss",
        ["scheme", "frames on air", "pixels lost", "important pixels lost"],
        rows,
    )
    equal = outcomes["equal protection"]
    uep = outcomes["UEP (2x important)"]
    # UEP protects what matters...
    assert uep["important"] < equal["important"] * 0.4
    # ...at a bounded airtime premium (only important frames repeat).
    assert uep["airtime"] < equal["airtime"] * 2.1
