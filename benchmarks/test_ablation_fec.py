"""ABLATION — what each FEC stage buys (Section 3.3 design choices).

The paper picks CRC-32 + inner convolutional (v29) + outer Reed-Solomon
(rs8).  This ablation disables each stage and measures frame survival
across an SNR sweep: the full stack should hold the lowest waterfall,
and each removal should cost dB.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.modem.modem import Modem
from repro.util.rng import derive_rng

PROFILES = ["sonic-ofdm", "sonic-ofdm-no-rs", "sonic-ofdm-no-conv", "sonic-ofdm-no-fec"]
SNRS = [14.0, 10.0, 7.0, 5.0, 3.5]


def run_ablation(n_frames: int) -> dict[str, dict[float, float]]:
    rng = derive_rng(5, "ablation-fec")
    results: dict[str, dict[float, float]] = {}
    for profile in PROFILES:
        modem = Modem(profile)
        payloads = [
            bytes(rng.integers(0, 256, 100, dtype=np.uint8))
            for _ in range(n_frames)
        ]
        wave = modem.transmit_burst(payloads)
        sig_p = float(np.mean(wave**2))
        per_snr = {}
        for snr_db in SNRS:
            noise = rng.normal(
                0, np.sqrt(sig_p / 10 ** (snr_db / 10)), wave.size
            )
            received = modem.receive(wave + noise, frames_per_burst=n_frames)
            ok = sum(f.ok for f in received)
            per_snr[snr_db] = 100.0 * (1 - ok / n_frames)
        results[profile] = per_snr
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_fec_stages(benchmark):
    results = benchmark.pedantic(run_ablation, args=(8,), rounds=1, iterations=1)
    rows = [
        [profile] + [f"{results[profile][snr]:.0f}" for snr in SNRS]
        for profile in PROFILES
    ]
    print_table(
        "FEC ablation: frame loss (%) vs audio SNR (dB)",
        ["profile"] + [f"{snr:g} dB" for snr in SNRS],
        rows,
    )
    full = results["sonic-ofdm"]
    no_conv = results["sonic-ofdm-no-conv"]
    no_fec = results["sonic-ofdm-no-fec"]
    # The full stack survives moderate SNR where raw/no-conv collapse.
    assert full[7.0] == 0.0
    assert no_fec[7.0] > 50.0
    # Each stage contributes: totals across the sweep must be ordered.
    total = {p: sum(results[p].values()) for p in PROFILES}
    assert total["sonic-ofdm"] <= total["sonic-ofdm-no-rs"]
    assert total["sonic-ofdm-no-rs"] <= total["sonic-ofdm-no-conv"] + 1e-9
    assert total["sonic-ofdm-no-conv"] <= total["sonic-ofdm-no-fec"] + 1e-9
