"""FIG2 — the FM baseband spectrum occupancy.

Paper (Figure 2): the FM multiplex stacks the mono program (30 Hz -
15 kHz, where SONIC puts its 9.2 kHz-centred data), the 19 kHz stereo
pilot, the L-R stereo band around 38 kHz, and the RDS subcarrier at
57 kHz.  This benchmark composes a full multiplex carrying SONIC data in
*every* band and verifies each service sits where the figure draws it.
A PGM spectrogram of the composed baseband is written for inspection.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.dsp.spectrum import band_power_db
from repro.imaging.pnm import write_pgm
from repro.modem.modem import Modem
from repro.radio.multiplex import FmMultiplexer
from repro.radio.rds import RdsEncoder
from repro.util.rng import derive_rng

BANDS = [
    ("mono audio (SONIC OFDM)", 7_000, 11_500),
    ("mono band edge", 15_500, 18_000),
    ("19 kHz pilot", 18_800, 19_200),
    ("stereo L-R (2nd burst)", 30_000, 46_000),
    ("RDS 57 kHz", 55_000, 59_000),
    ("guard above RDS", 62_000, 70_000),
]


def compose_full_multiplex():
    modem = Modem("sonic-ofdm")
    rng = derive_rng(12, "fig2")
    mono = modem.transmit_burst(
        [bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(3)]
    )
    diff = modem.transmit_burst(
        [bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(3)]
    )
    n = max(mono.size, diff.size)
    mono = np.pad(mono, (0, n - mono.size))
    diff = np.pad(diff, (0, n - diff.size))
    rds = RdsEncoder().encode_text(0x50A1, "SONIC ON EVERY SUBCARRIER")
    mux = FmMultiplexer()
    mpx = mux.compose(mono / np.max(np.abs(mono)), stereo_diff=diff / np.max(np.abs(diff)), rds=rds)
    return mpx


def spectrogram_pgm(mpx: np.ndarray, path, n_fft: int = 2_048) -> None:
    hop = n_fft // 2
    frames = []
    window = np.hanning(n_fft)
    for start in range(0, mpx.size - n_fft, hop):
        spectrum = np.abs(np.fft.rfft(mpx[start : start + n_fft] * window))
        frames.append(20 * np.log10(spectrum + 1e-9))
    img = np.array(frames).T[::-1]  # frequency on y (low at bottom)
    lo, hi = np.percentile(img, [5, 99.5])
    scaled = np.clip((img - lo) / max(hi - lo, 1e-9), 0, 1)
    write_pgm(path, (scaled * 255).astype(np.uint8))


@pytest.mark.benchmark(group="fig2")
def test_fig2_spectrum(benchmark, output_dir):
    mpx = benchmark.pedantic(compose_full_multiplex, rounds=1, iterations=1)
    spectrogram_pgm(mpx, output_dir / "fig2_fm_baseband_spectrogram.pgm")

    fs = 192_000.0
    noise_floor = band_power_db(mpx, fs, 80_000, 90_000)
    rows = []
    powers = {}
    for label, lo, hi in BANDS:
        p = band_power_db(mpx, fs, lo, hi)
        powers[label] = p
        rows.append([label, f"{lo / 1000:.1f}-{hi / 1000:.1f} kHz", f"{p - noise_floor:+.0f} dB"])
    print_table(
        "FIG2 baseband occupancy (power above the empty-spectrum floor)",
        ["service", "band", "rel. power"],
        rows,
    )

    # Every occupied service band stands well above the empty bands.
    for label in ("mono audio (SONIC OFDM)", "19 kHz pilot", "stereo L-R (2nd burst)", "RDS 57 kHz"):
        assert powers[label] - noise_floor > 40, label
    # The guard bands hold only filter skirts (>= 25 dB below services).
    for guard in ("mono band edge", "guard above RDS"):
        assert powers[guard] - noise_floor < 30, guard
        assert powers["mono audio (SONIC OFDM)"] - powers[guard] > 25, guard
