"""ABLATION — byte interleaving under burst noise.

Viterbi decoding emits *bursts* of byte errors; without the interleaver
a single burst concentrates in one Reed-Solomon block and kills the
frame.  This ablation injects audio-domain noise bursts (clicks — the
FM threshold artefact) and compares frame survival.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.modem.frame import FecConfig, FrameCodec, FrameDecodeError
from repro.util.rng import derive_rng


def run(n_trials: int) -> dict[str, float]:
    rng = derive_rng(6, "ablation-il")
    outcomes = {}
    for label, interleave in (("with interleaver", True), ("without", False)):
        codec = FrameCodec(
            FecConfig(
                payload_size=300,
                rs_nsym=8,
                rs_max_block=80,
                conv="none",  # isolate the RS + interleaver interaction
                interleave=interleave,
            )
        )
        survived = 0
        for trial in range(n_trials):
            payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
            soft = 1.0 - 2.0 * codec.encode(payload).astype(np.float64)
            # One contiguous 64-bit burst per frame (an FM click).
            start = int(rng.integers(0, soft.size - 64))
            soft[start : start + 64] *= -1
            try:
                if codec.decode(soft) == payload:
                    survived += 1
            except FrameDecodeError:
                pass
        outcomes[label] = 100.0 * survived / n_trials
    return outcomes


@pytest.mark.benchmark(group="ablation")
def test_ablation_interleaver_bursts(benchmark):
    outcomes = benchmark.pedantic(run, args=(40,), rounds=1, iterations=1)
    print_table(
        "Interleaver ablation: frames surviving a 64-bit click burst",
        ["configuration", "survival %"],
        [[k, f"{v:.0f}"] for k, v in outcomes.items()],
    )
    assert outcomes["with interleaver"] >= 95.0
    assert outcomes["without"] <= outcomes["with interleaver"] - 30.0
