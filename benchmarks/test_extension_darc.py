"""EXTENSION — SONIC pages over the DARC band (Figure 2's top lane).

The paper names DARC among the bands that could raise SONIC's rate.  At
16 kbps the 76 kHz subcarrier outruns the mono-channel OFDM profile and
never touches the audio program — but it demands a stronger signal,
because FM discriminator noise grows quadratically with subcarrier
frequency.  Both effects are measured here through the full FM chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.radio.darc import DarcChannel
from repro.radio.fm import FmDemodulator, FmModulator
from repro.radio.multiplex import FmMultiplexer
from repro.util.rng import derive_rng


def run(payload_len: int):
    channel = DarcChannel()
    rng = derive_rng(13, "darc-ext")
    payload = bytes(rng.integers(0, 256, payload_len, dtype=np.uint8))
    wave = channel.encode(payload)
    mux = FmMultiplexer()
    mono = 0.3 * np.sin(
        2 * np.pi * 1_000 * np.arange(int(wave.size / 4)) / 48_000
    )
    mpx = mux.compose(mono, darc=wave)
    mod, dem = FmModulator(), FmDemodulator()
    iq = mod.modulate(mpx)

    results = {}
    for rssi in (-65.0, -72.0, -78.0, -84.0):
        cnr_db = rssi + 97.0  # the FmLinkConfig noise floor
        noise = np.sqrt(10 ** (-cnr_db / 10) / 2) * (
            rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
        )
        band = mux.extract_darc_band(dem.demodulate(iq + noise))
        decoded = channel.decode(band)
        results[rssi] = decoded == [payload]
    rate = payload_len * 8 / (wave.size / 192_000)
    return results, rate


@pytest.mark.benchmark(group="extension")
def test_extension_darc_band(benchmark):
    results, rate = benchmark.pedantic(run, args=(600,), rounds=1, iterations=1)
    rows = [
        [f"{rssi:.0f}", "delivered" if ok else "lost"]
        for rssi, ok in results.items()
    ]
    print_table(
        f"DARC 76 kHz data channel ({rate:.0f} bps goodput) vs RSSI",
        ["RSSI dB", "payload"],
        rows,
    )
    # Above the OFDM mono profile's rate...
    assert rate > 10_000
    # ...but needs a healthier signal than the mono channel, which works
    # down to -85 dB (see the RSSI benchmark): DARC dies earlier.
    assert results[-65.0]
    assert not results[-84.0]
