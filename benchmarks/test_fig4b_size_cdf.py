"""FIG4B — CDF of rendered webpage image sizes.

Paper (Figure 4(b)): the 100-page corpus encoded as WebP at quality
Q=10/50/90, with pixel height PH cropped at 10k or uncropped.  At Q10
most pages compress below ~200 KB where Q90 needs ~700 KB; cropping at
10k pixels saves around 100 KB for the taller pages, and the CDF tails
run to roughly twice the 90th percentile.

Our SWebp encoder and bitmap-font renderer put more ink on the page than
Chrome-rendered sites, so absolute sizes sit above the paper's; all the
*relative* structure (Q scaling, crop savings, tail shape) is asserted.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.imaging.codec import SWebpCodec
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

CONFIGS = [
    ("Q10 PH10k", 10, 10_000),
    ("Q10 PHNone", 10, None),
    ("Q50 PH10k", 50, 10_000),
    ("Q90 PH10k", 90, 10_000),
]
PAPER_NOTES = {
    "Q10 PH10k": "mostly < 200 KB",
    "Q10 PHNone": "+~100 KB on tall pages",
    "Q50 PH10k": "between Q10 and Q90",
    "Q90 PH10k": "~700 KB typical",
}


def measure_sizes(n_pages: int) -> dict[str, np.ndarray]:
    generator = SiteGenerator(seed=42)
    renderer = PageRenderer(width=1080, max_height=None)
    urls = generator.all_urls()[:n_pages]
    codecs = {q: SWebpCodec(q) for q in (10, 50, 90)}
    sizes: dict[str, list[int]] = {label: [] for label, _, _ in CONFIGS}
    for url in urls:
        result = renderer.render(generator.page(url, hour=0))
        full = result.image
        cropped = full[:10_000]
        for label, quality, ph in CONFIGS:
            image = full if ph is None else cropped
            sizes[label].append(codecs[quality].encoded_size(image))
    return {label: np.array(v) for label, v in sizes.items()}


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_size_cdf(benchmark, output_dir):
    n_pages = 100 if full_scale() else 24
    sizes = benchmark.pedantic(measure_sizes, args=(n_pages,), rounds=1, iterations=1)

    rows = []
    for label, _, _ in CONFIGS:
        kb = sizes[label] / 1024
        rows.append(
            [
                label,
                f"{np.percentile(kb, 25):.0f}",
                f"{np.median(kb):.0f}",
                f"{np.percentile(kb, 90):.0f}",
                f"{kb.max():.0f}",
                PAPER_NOTES[label],
            ]
        )
    print_table(
        f"FIG4B rendered-image sizes, KB ({n_pages} pages)",
        ["config", "q25", "median", "p90", "max", "paper"],
        rows,
    )

    from repro.report.plots import cdf_chart

    cdf_chart(
        {label: sizes[label] / 1024 for label, _, _ in CONFIGS},
        output_dir / "fig4b_size_cdf.svg",
        title="Rendered webpage sizes (SWebp)",
        x_label="size (KB)",
    )
    q10 = sizes["Q10 PH10k"]
    q50 = sizes["Q50 PH10k"]
    q90 = sizes["Q90 PH10k"]
    uncropped = sizes["Q10 PHNone"]
    # Quality ordering, page by page.
    assert (q10 < q50).all()
    assert (q50 < q90).all()
    # The paper's ~3.5x Q90/Q10 spread, allow slack for our renderer.
    ratio = np.median(q90) / np.median(q10)
    assert 2.0 < ratio < 6.0, ratio
    # Cropping saves data on tall pages and never costs.
    assert (uncropped >= q10).all()
    savings_kb = (uncropped - q10) / 1024
    assert np.percentile(savings_kb, 75) > 20
    # A tail beyond the 90th percentile (the paper sees ~2x on real
    # pages; the synthetic corpus is more homogeneous, so the tail is
    # lighter — see EXPERIMENTS.md).
    assert q10.max() > 1.05 * np.percentile(q10, 90)
