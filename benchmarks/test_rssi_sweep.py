"""RSSI — frame loss across received signal strength (Section 4).

Paper ("Variable RSSI"): with the client in cable mode behind a TR508
transmitter, walking the RSSI from -65 to -90 dB in ~5 dB steps gives
*no* frame loss down to -85 dB, a fluctuating 2-15 % loss in the
-85..-90 dB band, and no frames at all below -90 dB.  The whole sweep
runs through the real OFDM modem + FM multiplex + discriminator chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.modem.modem import Modem
from repro.radio.channels import FmRadioLink
from repro.radio.propagation import PropagationModel
from repro.util.rng import derive_rng

RSSI_STEPS = [-65.0, -70.0, -75.0, -80.0, -85.0, -87.5, -90.0, -92.5]


def paper_expectation(rssi: float) -> str:
    if rssi >= -85.0:
        return "0%"
    if rssi >= -90.0:
        return "2-15% fluctuating"
    return "no frames"


def run_rssi_sweep(reps: int, burst_size: int) -> dict[float, list[float]]:
    modem = Modem("sonic-ofdm")
    rng = derive_rng(77, "rssi-payloads")
    payloads = [
        bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(burst_size)
    ]
    wave = modem.transmit_burst(payloads)
    losses: dict[float, list[float]] = {}
    jitter = derive_rng(77, "rssi-jitter")
    for rssi in RSSI_STEPS:
        link = FmRadioLink(seed=int(-rssi * 10))
        per_rep = []
        for _ in range(reps):
            # Small per-repetition shadowing: the paper's experimenters
            # walked the receiver, so each point fluctuates.
            observed = rssi + float(jitter.normal(0.0, 0.75))
            received = modem.receive(
                link.transmit(wave, observed), frames_per_burst=burst_size
            )
            ok = sum(f.ok for f in received)
            per_rep.append(100.0 * (1 - ok / burst_size))
        losses[rssi] = per_rep
    return losses


@pytest.mark.benchmark(group="rssi")
def test_rssi_sweep(benchmark):
    reps = 6 if full_scale() else 3
    burst = 8 if full_scale() else 6
    losses = benchmark.pedantic(
        run_rssi_sweep, args=(reps, burst), rounds=1, iterations=1
    )
    model = PropagationModel()
    rows = []
    for rssi in RSSI_STEPS:
        values = np.array(losses[rssi])
        rows.append(
            [
                f"{rssi:.1f}",
                f"{model.distance_for_rssi(rssi):.0f} m",
                f"{values.min():.0f}",
                f"{np.median(values):.0f}",
                f"{values.max():.0f}",
                paper_expectation(rssi),
            ]
        )
    print_table(
        "RSSI sweep: frame loss (%) through the FM chain",
        ["RSSI dB", "TR508 dist", "min", "median", "max", "paper"],
        rows,
    )
    # The paper's three bands.
    for rssi in (-65.0, -70.0, -75.0, -80.0, -85.0):
        assert np.median(losses[rssi]) == 0.0, rssi
    transition = losses[-87.5] + losses[-90.0]
    # Fluctuating partial loss somewhere in the -85..-90 band.
    assert any(v > 0.0 for v in transition)
    assert any(v < 100.0 for v in transition)
    assert np.median(losses[-92.5]) > 90.0  # dead below -90
