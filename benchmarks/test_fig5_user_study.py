"""FIG5 — user-study ratings vs loss rate, with/without interpolation.

Paper (Figure 5): 151 students rated 400 screenshots (50 pages x loss in
{5,10,20,50} % x {dark pixels, interpolated}) on two 0-10 questions —
(a) content understanding and (b) text readability.  Interpolation lifts
the median rating by at least a point at every loss rate; text is more
loss-sensitive than content; at 20 % loss interpolated content still
scores around 7.

The synthetic panel rates the *measured pixel damage* of real rendered
pages run through the real loss + interpolation code (see
repro.sim.userstudy for the psychometric model).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.core.pipeline import simulate_column_loss
from repro.sim.userstudy import StudyConfig, UserStudy
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

LOSS_RATES = (0.05, 0.10, 0.20, 0.50)


def run_study(n_pages: int, height: int):
    generator = SiteGenerator(seed=42)
    renderer = PageRenderer(width=1080, max_height=height)
    study = UserStudy(StudyConfig(n_raters=151, screenshots_per_rater=20, seed=5))

    screenshots = []
    urls = generator.all_urls()[:n_pages]
    for index, url in enumerate(urls):
        image = renderer.render(generator.page(url, hour=0)).image
        for loss in LOSS_RATES:
            sim = simulate_column_loss(image, loss, seed=100 + index)
            screenshots.extend(
                study.screenshot_stats(index, image, sim.missing, loss)
            )
    records = study.simulate_ratings(screenshots)
    return study, screenshots, records


@pytest.mark.benchmark(group="fig5")
def test_fig5_user_study(benchmark, output_dir):
    n_pages = 50 if full_scale() else 12
    height = 2_400 if not full_scale() else 4_000
    study, screenshots, records = benchmark.pedantic(
        run_study, args=(n_pages, height), rounds=1, iterations=1
    )
    assert len(screenshots) == n_pages * len(LOSS_RATES) * 2
    print(
        f"\nFIG5 study: {n_pages} pages x {len(LOSS_RATES)} loss rates x 2 "
        f"variants = {len(screenshots)} screenshots, "
        f"{len(records) // 2} judgements per question"
    )

    rows = []
    medians: dict[tuple, float] = {}
    for question in ("content", "text"):
        for loss in LOSS_RATES:
            cells = {}
            for interp in (False, True):
                per_page = UserStudy.median_per_page(records, loss, interp, question)
                cells[interp] = float(np.median(per_page))
                medians[(question, loss, interp)] = cells[interp]
            rows.append(
                [
                    question,
                    f"{loss * 100:.0f}%",
                    f"{cells[False]:.1f}",
                    f"{cells[True]:.1f}",
                    f"+{cells[True] - cells[False]:.1f}",
                ]
            )
    print_table(
        "FIG5 median rating per page (0-10 Likert)",
        ["question", "loss", "without interp", "with interp", "gain"],
        rows,
    )

    from repro.report.plots import box_plot

    for question in ("content", "text"):
        groups = {}
        for loss in LOSS_RATES:
            for interp in (False, True):
                key = f"{loss * 100:.0f}%{'+i' if interp else ''}"
                groups[key] = np.array(
                    UserStudy.median_per_page(records, loss, interp, question)
                )
        box_plot(
            groups,
            output_dir / f"fig5_{question}_ratings.svg",
            title=f"Median {question} rating per page (+i = interpolated)",
            y_label="rating (0-10)",
            colors=["#90a4ae", "#e65100"] * len(LOSS_RATES),
        )

    # Paper claim 1: interpolation gains >= ~1 point at every loss rate.
    for question in ("content", "text"):
        for loss in LOSS_RATES:
            gain = medians[(question, loss, True)] - medians[(question, loss, False)]
            assert gain >= 0.9, (question, loss, gain)
    # Paper claim 2: ratings fall monotonically with loss.
    for question in ("content", "text"):
        for interp in (False, True):
            series = [medians[(question, l, interp)] for l in LOSS_RATES]
            assert all(a >= b for a, b in zip(series, series[1:])), series
    # Paper claim 3: at 20% loss, interpolated content is still ~7.
    assert medians[("content", 0.20, True)] >= 5.5
    # Paper claim 4: text is more loss-susceptible than content.
    assert medians[("text", 0.20, True)] <= medians[("content", 0.20, True)]
