"""E2E — the Figure 3 workflow, end to end.

User-C texts "GET <url> LOC <lat>,<lon>" to the SONIC number; the server
renders the page, queues it on the covering transmitter ahead of the
popularity pushes, and replies with an ACK + ETA; the broadcast reaches
user-C *and* the passive users A and B.  This benchmark runs the whole
system simulation and reports the workflow latencies.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.core.config import SystemConfig
from repro.core.system import SonicSystem


def run_workflow():
    system = SonicSystem(
        SystemConfig(n_sites=3, render_width=540, max_pixel_height=1_600)
    )
    user_c = system.client("user-c")
    target = system.generator.all_urls()[5]
    request_time = system.clock.now
    user_c.request_page(target, request_time)

    ack_time = delivery_time = None
    for _ in range(1_200):
        system.step(5.0)
        if ack_time is None and user_c.acks:
            ack_time = system.clock.now
        if delivery_time is None and target in user_c.cache:
            delivery_time = system.clock.now
        if delivery_time is not None and ack_time is not None:
            break
    return system, target, request_time, ack_time, delivery_time


@pytest.mark.benchmark(group="e2e")
def test_e2e_request_workflow(benchmark):
    system, target, t0, ack_time, delivery_time = benchmark.pedantic(
        run_workflow, rounds=1, iterations=1
    )
    user_c = system.client("user-c")
    assert ack_time is not None, "no SMS ACK received"
    assert delivery_time is not None, "page never delivered"
    ack = user_c.acks[0]

    rows = [
        ["SMS ACK round trip", f"{ack_time - t0:.0f} s", "seconds (uplink)"],
        ["quoted ETA", f"{ack.eta_seconds:.0f} s", "server estimate"],
        ["page delivered after", f"{delivery_time - t0:.0f} s", "minutes-class downlink"],
    ]
    print_table(f"E2E workflow for {target}", ["stage", "value", "paper"], rows)

    # The requested page outranked the catalog pushes: it arrived before
    # everything else finished, and the ETA was honoured within slack.
    assert delivery_time - t0 < 3_600
    assert ack.url == target

    # Broadcast nature: the passive cable user B got the page too.
    user_b = system.client("user-b")
    assert target in user_b.cache

    # The air user (A) observed real frame losses.
    user_a = system.client("user-a")
    assert user_a.frames_seen > 0
    assert user_a.frame_loss_rate > 0.0


@pytest.mark.benchmark(group="e2e")
def test_e2e_click_navigation(benchmark):
    """Click-map browsing: cache hits load instantly, misses go to SMS."""

    def run():
        system = SonicSystem(
            SystemConfig(n_sites=2, render_width=540, max_pixel_height=1_200)
        )
        system.run(seconds=3_600, step_s=5)
        return system

    system = benchmark.pedantic(run, rounds=1, iterations=1)
    user_c = system.client("user-c")
    now = system.clock.now
    landing = next(u for u in user_c.cache.urls() if u.endswith("/"))
    bundle = user_c.browser.open(landing, now)
    factor = user_c.profile.scale_factor

    from repro.client.browser import ClickOutcome

    outcomes = []
    for region in bundle.clickmap.regions[:5]:
        result = user_c.browser.click(
            int((region.x + 2) * factor), int((region.y + 2) * factor), now
        )
        outcomes.append(result.outcome)
        if result.outcome == ClickOutcome.CACHE_HIT:
            user_c.browser.back(now)
    hits = sum(o == ClickOutcome.CACHE_HIT for o in outcomes)
    print(f"\nE2E clicks: {len(outcomes)} taps -> {hits} instant cache hits")
    assert hits >= 1
