"""FIG1 — a delivered webpage at 0 % loss, 10 % loss, and 10 % + recovery.

Paper (Figure 1): the same pre-rendered page shown with no frames lost,
with 10 % frame loss (missing pixels dark), and with the missing pixels
repaired by nearest-neighbour interpolation — "still readable despite
about 10% loss rate".  This benchmark regenerates the three panels as
PPM files under benchmarks/output/ and quantifies them.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.pipeline import simulate_column_loss
from repro.imaging.codec import SWebpCodec
from repro.imaging.pnm import write_ppm
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator


def build_panels():
    generator = SiteGenerator(seed=42)
    renderer = PageRenderer(width=1080, max_height=2_400)
    url = generator.websites()[0].landing_url
    rendered = renderer.render(generator.page(url, hour=0)).image
    # The page travels as SWebp Q10 (what the FM downlink delivers).
    codec = SWebpCodec(10)
    delivered = codec.decode(codec.encode(rendered))
    sim = simulate_column_loss(delivered, 0.10, seed=9)
    return url, delivered, sim


@pytest.mark.benchmark(group="fig1")
def test_fig1_loss_visual(benchmark, output_dir):
    url, delivered, sim = benchmark.pedantic(build_panels, rounds=1, iterations=1)

    write_ppm(output_dir / "fig1_left_no_loss.ppm", delivered)
    write_ppm(output_dir / "fig1_center_10pct_loss.ppm", sim.damaged)
    write_ppm(output_dir / "fig1_right_interpolated.ppm", sim.interpolated)

    rows = [
        ["no loss", "100.0", "1.000", "reference"],
        [
            "10% loss",
            f"{sim.psnr_damaged():.1f}",
            f"{sim.ssim_damaged():.3f}",
            "significant but tolerable",
        ],
        [
            "10% + interp",
            f"{sim.psnr_interpolated():.1f}",
            f"{sim.ssim_interpolated():.3f}",
            "readable",
        ],
    ]
    print_table(
        f"FIG1 panels for {url} (PPMs in benchmarks/output/)",
        ["panel", "PSNR dB", "SSIM", "paper"],
        rows,
    )
    assert sim.frame_loss_rate == pytest.approx(0.10, abs=0.02)
    assert sim.psnr_interpolated() > sim.psnr_damaged() + 5
    assert sim.ssim_interpolated() > 0.8
