"""RATES — measured data-over-sound rates vs the literature (Section 2).

The paper positions SONIC's OFDM profile (~10 kbps class) against
GGwave-style FSK (~128 bps) and RDS (1187.5 bps).  This benchmark
*measures* each modem's goodput through a clean channel instead of
quoting it, plus the FM-chain-limited rate of the SONIC profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.modem.audioqr import AudioQrModem
from repro.modem.fsk import FskModem
from repro.modem.gmsk import GmskModem
from repro.modem.modem import Modem
from repro.radio.rds import BIT_RATE as RDS_BIT_RATE, RdsDecoder, RdsEncoder, RdsGroup
from repro.util.rng import derive_rng


def measure_ofdm(profile: str, n_frames: int = 12) -> float:
    modem = Modem(profile)
    rng = derive_rng(1, "rates", profile)
    payloads = [
        bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(n_frames)
    ]
    wave = modem.transmit_burst(payloads)
    received = modem.receive(wave, frames_per_burst=n_frames)
    ok = sum(f.ok for f in received)
    assert ok == n_frames, f"{profile} lost frames on a clean channel"
    return ok * 100 * 8 / (wave.size / modem.profile.ofdm.sample_rate)


def measure_fsk(n_bytes: int = 120) -> float:
    modem = FskModem()
    rng = derive_rng(1, "rates-fsk")
    payload = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8))
    wave = modem.transmit(payload)
    [received] = modem.receive(wave)
    assert received == payload
    return n_bytes * 8 / (wave.size / modem.config.sample_rate)


def measure_gmsk(n_bytes: int = 400) -> float:
    modem = GmskModem()
    rng = derive_rng(1, "rates-gmsk")
    payload = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8))
    wave = modem.transmit(payload)
    [received] = modem.receive(wave)
    assert received == payload
    return n_bytes * 8 / (wave.size / modem.config.sample_rate)


def measure_audioqr(n_bytes: int = 40) -> float:
    modem = AudioQrModem()
    rng = derive_rng(1, "rates-aqr")
    payload = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8))
    wave = modem.transmit(payload)
    [received] = modem.receive(wave)
    assert received == payload
    return n_bytes * 8 / (wave.size / modem.config.sample_rate)


def measure_rds(n_groups: int = 20) -> float:
    enc, dec = RdsEncoder(), RdsDecoder()
    groups = [RdsGroup.radiotext(0xAA, i % 16, "DATA") for i in range(n_groups)]
    band = enc.encode(groups)
    decoded = dec.decode(band)
    assert len(decoded) == n_groups
    # 64 info bits per group over the band's duration.
    return len(decoded) * 64 / (band.size / 192_000)


@pytest.mark.benchmark(group="rates")
def test_rates_comparison(benchmark):
    def run():
        return {
            "sonic-ofdm": measure_ofdm("sonic-ofdm"),
            "sonic-ofdm-fast": measure_ofdm("sonic-ofdm-fast"),
            "audible-7k": measure_ofdm("audible-7k"),
            "fsk (ggwave-class)": measure_fsk(),
            "gmsk": measure_gmsk(),
            "audioqr-class": measure_audioqr(),
            "rds": measure_rds(),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    modem = Modem("sonic-ofdm")
    rows = [
        [
            "sonic-ofdm",
            f"{rates['sonic-ofdm']:.0f}",
            f"{modem.profile.raw_bit_rate():.0f} raw PHY",
            "10 kbps profile (Sec. 3.3)",
        ],
        [
            "sonic-ofdm-fast",
            f"{rates['sonic-ofdm-fast']:.0f}",
            "64-QAM",
            "cable path (Sec. 2: up to 64 kbps on jack)",
        ],
        [
            "audible-7k",
            f"{rates['audible-7k']:.0f}",
            "QPSK",
            "Quiet audible-7k (~7 kbps claim)",
        ],
        [
            "fsk (ggwave-class)",
            f"{rates['fsk (ggwave-class)']:.0f}",
            "16-FSK",
            "GGwave: ~128 bps",
        ],
        [
            "gmsk",
            f"{rates['gmsk']:.0f}",
            "constant envelope",
            "Quiet gmsk profile class",
        ],
        [
            "audioqr-class",
            f"{rates['audioqr-class']:.0f}",
            "17.5-19.5 kHz chirps",
            "AudioQR: ~100 bps, 150 m",
        ],
        ["rds", f"{rates['rds']:.0f}", "57 kHz BPSK", "1187.5 bps standard"],
    ]
    print_table(
        "Measured goodput (bps) per modem, clean channel",
        ["modem", "goodput bps", "notes", "literature"],
        rows,
    )
    # Orderings the related-work section relies on.
    assert rates["sonic-ofdm"] > 10 * rates["fsk (ggwave-class)"]
    assert rates["sonic-ofdm"] > rates["rds"]
    assert rates["sonic-ofdm-fast"] > rates["sonic-ofdm"]
    assert 50 < rates["fsk (ggwave-class)"] < 600
    assert rates["rds"] == pytest.approx(RDS_BIT_RATE * 16 / 26, rel=0.2)
    # The literature's rate ladder: AudioQR < FSK < RDS < GMSK < OFDM.
    assert rates["audioqr-class"] < rates["fsk (ggwave-class)"] * 2
    assert rates["gmsk"] > rates["rds"]
    assert rates["gmsk"] < rates["sonic-ofdm"] * 1.5
