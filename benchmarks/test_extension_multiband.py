"""EXTENSION — multi-band rate scaling over one FM carrier (Section 4).

"We envision that other bands can be used to increase the data rate,
e.g., using the left and right band of the Stereo channel ... We left
this exploration as future work."  This benchmark carries *two*
independent modem bursts on a single carrier — one in the mono channel,
one on the 38 kHz stereo-difference subcarrier — and measures the
aggregate goodput and the stereo channel's earlier failure point.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.modem.modem import Modem
from repro.radio.channels import FmRadioLink
from repro.util.rng import derive_rng


def run(n_frames: int):
    modem = Modem("sonic-ofdm")
    rng = derive_rng(9, "multiband")
    mono_payloads = [
        bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(n_frames)
    ]
    diff_payloads = [
        bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(n_frames)
    ]
    mono_wave = modem.transmit_burst(mono_payloads)
    diff_wave = modem.transmit_burst(diff_payloads)

    results = {}
    for rssi in (-65.0, -75.0, -82.0):
        link = FmRadioLink(seed=int(-rssi))
        mono_rx, diff_rx = link.transmit_stereo(mono_wave, diff_wave, rssi)
        mono_ok = sum(
            f.ok for f in modem.receive(mono_rx, frames_per_burst=n_frames)
        )
        diff_ok = sum(
            f.ok for f in modem.receive(diff_rx, frames_per_burst=n_frames)
        )
        results[rssi] = (mono_ok, diff_ok)
    duration = mono_wave.size / modem.profile.ofdm.sample_rate
    return results, n_frames, duration


@pytest.mark.benchmark(group="extension")
def test_extension_stereo_multiband(benchmark):
    results, n_frames, duration = benchmark.pedantic(
        run, args=(6,), rounds=1, iterations=1
    )
    single_rate = n_frames * 800 / duration
    rows = []
    for rssi, (mono_ok, diff_ok) in results.items():
        agg = (mono_ok + diff_ok) * 800 / duration
        rows.append(
            [
                f"{rssi:.0f}",
                f"{mono_ok}/{n_frames}",
                f"{diff_ok}/{n_frames}",
                f"{agg:.0f}",
                f"{agg / single_rate:.2f}x",
            ]
        )
    print_table(
        "Stereo multi-band extension: two bursts on one FM carrier",
        ["RSSI dB", "mono frames", "stereo frames", "goodput bps", "vs mono-only"],
        rows,
    )
    # At a strong signal the second band roughly doubles the rate.
    mono_ok, diff_ok = results[-65.0]
    assert mono_ok == n_frames
    assert diff_ok == n_frames
    # The stereo subchannel degrades before the mono channel does.
    weak_mono, weak_diff = results[-82.0]
    assert weak_mono >= weak_diff
