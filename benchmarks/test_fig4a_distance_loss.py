"""FIG4A — frame-loss rate vs radio-to-receiver air distance.

Paper (Figure 4(a)): no loss over "cable" (internal tuner or jack),
10-20 % median loss around one metre of speaker-to-microphone air gap,
and 100 % loss above ~1.1 m, with wide per-repetition spread because
speaker/mic alignment was not controlled.  Each experiment is repeated
10 times.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.modem.modem import Modem
from repro.radio.channels import AcousticChannel
from repro.util.rng import derive_rng

DISTANCES = [("cable", 0.0), ("10cm", 0.1), ("20cm", 0.2), ("50cm", 0.5),
             ("1m", 1.0), ("1.1m", 1.1)]
PAPER_MEDIANS = {"cable": 0, "10cm": 2, "20cm": 4, "50cm": 8, "1m": 15, "1.1m": 22}


def run_distance_sweep(reps: int, frames_per_rep: int) -> dict[str, list[float]]:
    modem = Modem("sonic-ofdm")
    rng = derive_rng(2024, "fig4a-payloads")
    burst_size = 8
    n_bursts = frames_per_rep // burst_size
    payloads = [
        bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(burst_size)
    ]
    waves = [modem.transmit_burst(payloads) for _ in range(n_bursts)]
    channel = AcousticChannel(seed=41)

    losses: dict[str, list[float]] = {}
    for label, distance in DISTANCES:
        per_rep = []
        for _rep in range(reps):
            ok = total = 0
            for wave in waves:
                received = modem.receive(
                    channel.transmit(wave, distance), frames_per_burst=burst_size
                )
                ok += sum(f.ok for f in received)
                total += burst_size
            per_rep.append(100.0 * (1 - ok / total))
        losses[label] = per_rep
    return losses


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_distance_loss(benchmark, output_dir):
    reps = 10 if full_scale() else 5
    frames = 32 if full_scale() else 16
    losses = benchmark.pedantic(
        run_distance_sweep, args=(reps, frames), rounds=1, iterations=1
    )
    rows = []
    for label, _ in DISTANCES:
        values = np.array(losses[label])
        rows.append(
            [
                label,
                f"{np.percentile(values, 25):.0f}",
                f"{np.median(values):.0f}",
                f"{np.percentile(values, 75):.0f}",
                PAPER_MEDIANS[label],
            ]
        )
    print_table(
        "FIG4A frame loss (%) vs air distance",
        ["distance", "q25", "median", "q75", "paper-median"],
        rows,
    )
    from repro.report.plots import box_plot

    box_plot(
        {label: np.array(losses[label]) for label, _ in DISTANCES},
        output_dir / "fig4a_distance_loss.svg",
        title="Frame loss vs radio-to-receiver distance",
        y_label="frame loss (%)",
    )
    # Shape assertions: the paper's three regimes.
    assert np.median(losses["cable"]) == 0.0
    assert np.median(losses["1m"]) > np.median(losses["20cm"])
    assert np.median(losses["1m"]) >= 5.0


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_collapse_beyond_1m(benchmark):
    """Above ~1.1 m the paper observes 100 % loss."""

    def run() -> float:
        modem = Modem("sonic-ofdm")
        rng = derive_rng(2024, "fig4a-far")
        payloads = [
            bytes(rng.integers(0, 256, 100, dtype=np.uint8)) for _ in range(8)
        ]
        wave = modem.transmit_burst(payloads)
        channel = AcousticChannel(seed=43)
        ok = total = 0
        for _ in range(4):
            received = modem.receive(channel.transmit(wave, 1.4), frames_per_burst=8)
            ok += sum(f.ok for f in received)
            total += 8
        return 100.0 * (1 - ok / total)

    loss = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFIG4A  loss at 1.4 m: {loss:.0f}%  (paper: 100% above 1.1 m)")
    assert loss > 80.0
