"""FIG4C — broadcast backlog over time vs rate and corpus size.

Paper (Figure 4(c)): with 100 pages re-rendered hourly over three days,
a 10 kbps channel can never drain its queue (broadcast-only regime),
20/40 kbps occasionally reach zero, backlog stays bounded (~25-30 MB
peaks), the daily churn pattern repeats, and N=200 at 20 kbps behaves
like N=100 at 10 kbps.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.sim.workload import BroadcastWorkload, WorkloadConfig

CURVES = [
    ("10kbps N:100", 10_000, 100),
    ("20kbps N:100", 20_000, 100),
    ("40kbps N:100", 40_000, 100),
    ("20kbps N:200", 20_000, 200),
]
PAPER_NOTES = {
    "10kbps N:100": "never drains",
    "20kbps N:100": "occasionally drains",
    "40kbps N:100": "frequently drains",
    "20kbps N:200": "like 10kbps N:100",
}


def run_curves(n_hours: int):
    results = {}
    for label, rate, n_pages in CURVES:
        workload = BroadcastWorkload(
            WorkloadConfig(rate_bps=rate, n_pages=n_pages, n_hours=n_hours)
        )
        results[label] = workload.run()
    return results


@pytest.mark.benchmark(group="fig4c")
def test_fig4c_backlog(benchmark, output_dir):
    n_hours = 72 if full_scale() else 48  # the paper plots 48 h of 72
    results = benchmark.pedantic(run_curves, args=(n_hours,), rounds=1, iterations=1)

    rows = []
    for label, _, _ in CURVES:
        res = results[label]
        rows.append(
            [
                label,
                f"{res.peak_backlog_mb():.1f}",
                f"{res.backlog_mb.mean():.1f}",
                f"{res.fraction_time_empty() * 100:.0f}%",
                f"{np.median(res.enqueued_mb_per_hour):.1f}",
                PAPER_NOTES[label],
            ]
        )
    print_table(
        f"FIG4C broadcast backlog over {n_hours} h",
        ["curve", "peak MB", "mean MB", "empty", "MB/h in", "paper"],
        rows,
    )

    from repro.report.plots import line_chart

    line_chart(
        {
            label: (results[label].times_hours, results[label].backlog_mb)
            for label, _, _ in CURVES
        },
        output_dir / "fig4c_backlog.svg",
        title="Data to broadcast over time",
        x_label="time (hours)",
        y_label="backlog (MB)",
    )
    r10 = results["10kbps N:100"]
    r20 = results["20kbps N:100"]
    r40 = results["40kbps N:100"]
    r20n200 = results["20kbps N:200"]
    # 10 kbps is broadcast-only: the queue (almost) never reaches zero.
    assert r10.fraction_time_empty() < 0.10
    # Higher rates drain.
    assert r40.fraction_time_empty() > r20.fraction_time_empty() > r10.fraction_time_empty()
    # Backlog bounded (scalability claim): no runaway growth.
    half = r10.backlog_mb.size // 2
    assert r10.backlog_mb[half:].max() < 2.0 * r10.backlog_mb[:half].max()
    # Peaks in the paper's ~25-30 MB class.
    assert 10 < r10.peak_backlog_mb() < 60
    # Doubling both content and rate lands back in the saturated regime.
    assert r20n200.fraction_time_empty() < 0.10
    # Daily periodicity: correlate day-1 and day-2 backlog shapes.
    day = r10.backlog_mb.size // (n_hours // 24)
    day1, day2 = r10.backlog_mb[:day], r10.backlog_mb[day : 2 * day]
    corr = np.corrcoef(day1, day2)[0, 1]
    print(f"\nFIG4C day-over-day backlog correlation: {corr:.2f} (pattern repeats)")
    assert corr > 0.3
