"""ABLATION — column transport vs compressed-bundle transport under loss.

The paper's two transmission stories pull in opposite directions:
compressed bundles minimise airtime but need *every* frame (loss means
waiting for the next carousel cycle), while 1-px column partitioning
tolerates any loss pattern gracefully (missing pixels, interpolable) at
a large airtime premium.  This ablation quantifies that trade.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.imaging.codec import SWebpCodec
from repro.imaging.metrics import psnr_db
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.partition import ColumnTransport
from repro.util.rng import derive_rng
from repro.web.clickmap import ClickMap
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

LOSS_RATES = (0.0, 0.02, 0.10)


def run():
    generator = SiteGenerator(seed=42)
    image = PageRenderer(width=1080, max_height=1_600).render(
        generator.page(generator.all_urls()[0], 0)
    ).image
    rng = derive_rng(8, "ablation-transport")

    bundle_bytes = PageBundle("x.pk/", image, ClickMap()).to_bytes()
    bundle_frames = BundleTransport().chunk(bundle_bytes, page_id=1)
    column = ColumnTransport("rle")
    column_frames = column.partition(image, page_id=1)
    codec = SWebpCodec(10)
    q10_reference = psnr_db(image, codec.decode(codec.encode(image)))

    rows = []
    for loss in LOSS_RATES:
        keep_b = [f for f in bundle_frames if rng.random() >= loss]
        blob = BundleTransport().reassemble(keep_b)
        if blob is not None:
            bundle_result = f"PSNR {psnr_db(image, PageBundle.from_bytes(blob).image):.1f} dB"
        else:
            bundle_result = "undecodable (await rebroadcast)"

        keep_c = [f for f in column_frames if rng.random() >= loss]
        received, missing = column.reassemble(keep_c, image.shape[:2])
        from repro.imaging.interpolate import interpolate_missing

        repaired = interpolate_missing(received, missing)
        column_result = f"PSNR {psnr_db(image, repaired):.1f} dB"
        rows.append([f"{loss * 100:.0f}%", bundle_result, column_result])
    return rows, len(bundle_frames), len(column_frames), q10_reference


@pytest.mark.benchmark(group="ablation")
def test_ablation_transport_tradeoff(benchmark):
    rows, n_bundle, n_column, q10_ref = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        f"Transport ablation (bundle {n_bundle} frames vs column {n_column} frames; "
        f"Q10 codec ceiling {q10_ref:.1f} dB)",
        ["frame loss", "bundle transport", "column transport"],
        rows,
    )
    # Airtime: bundles are dramatically cheaper.
    assert n_bundle * 8 < n_column
    # At zero loss both deliver; at 10% loss the bundle is undecodable
    # within the cycle while columns degrade gracefully.
    assert "undecodable" in rows[-1][1]
    assert "PSNR" in rows[-1][2]
