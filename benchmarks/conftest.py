"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's evaluation artifacts and
prints the corresponding rows/series next to the paper's reported values
(see EXPERIMENTS.md).  Scale knobs:

* ``REPRO_FULL=1`` — run at the paper's full corpus sizes (slower).
* visual artifacts (Figure 1 panels, sample pages) are written to
  ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform experiment-output formatting."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
