"""Throughput benchmarks for the batch SWebp decoder and catalog pipeline.

Times the imaging layer this PR vectorised — the table-driven batch
entropy decoder against the retained scalar ``decode_ref`` — and the
store-backed catalog render/encode pipeline (cold vs warm), and merges
the numbers into the same ``BENCH_pipeline.json`` the pipeline
benchmarks write.

Run explicitly:

    python -m repro bench -k "imaging or catalog"
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.imaging.codec import SWebpCodec
from repro.server.catalog import CatalogConfig, CatalogPipeline
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"


def _merge_section(name: str, section: dict) -> None:
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[name] = section
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestSWebpDecodeThroughput:
    def test_batch_vs_ref_decode(self):
        """Batch decode vs the scalar walk on a rendered catalog page.

        The spec (seed 42, 4 sites, 1080px wide, Q10) matches the
        ``repro bench --smoke`` imaging gate — keep the two in sync.
        """
        max_height = 4000 if full_scale() else 1600
        generator = SiteGenerator(seed=42, n_sites=4)
        renderer = PageRenderer(width=1080, max_height=max_height)
        image = renderer.render(generator.page(generator.all_urls()[0], 0)).image
        codec = SWebpCodec(10)
        encoded = codec.encode(image)

        decoded = codec.decode(encoded)  # warm-up
        reference = codec.decode_ref(encoded)
        assert np.array_equal(decoded, reference)  # bit-for-bit pinned

        t_fast = _best_of(lambda: codec.decode(encoded))
        t_ref = _best_of(lambda: codec.decode_ref(encoded), repeats=1)
        t_encode = _best_of(lambda: codec.encode(image), repeats=1)

        megapixels = image.shape[0] * image.shape[1] / 1e6
        section = {
            "page_shape": list(image.shape),
            "encoded_bytes": len(encoded),
            "quality": 10,
            "encode_pages_per_s": 1.0 / t_encode,
            "decode_pages_per_s": 1.0 / t_fast,
            "decode_ref_pages_per_s": 1.0 / t_ref,
            "decode_speedup": t_ref / t_fast,
            "decode_megapixels_per_s": megapixels / t_fast,
        }
        _merge_section("imaging", section)
        print_table(
            f"SWebp decode ({image.shape[0]}x{image.shape[1]} page, Q10)",
            ["path", "pages/s", "Mpx/s", "speedup"],
            [
                ["batch decode", f"{1.0 / t_fast:.1f}",
                 f"{megapixels / t_fast:.1f}", f"{t_ref / t_fast:.1f}x"],
                ["decode_ref", f"{1.0 / t_ref:.2f}",
                 f"{megapixels / t_ref:.2f}", "1.0x"],
            ],
        )
        # Vectorisation bar.  The original acceptance run measured ~12x;
        # the margin absorbs host-dependent swings of the *scalar*
        # reference (absolute decode throughput is tracked in the JSON
        # and gated by `repro bench --smoke`).
        assert section["decode_speedup"] >= 5.0


class TestCatalogThroughput:
    def test_cold_vs_warm_and_pool_determinism(self):
        """Store-backed catalog pipeline: cold encode, warm reuse, pool parity.

        The spec (seed 42, 2 sites, 360px wide, Q10) matches the
        ``repro bench --smoke`` catalog gate — keep the two in sync.
        """
        config = CatalogConfig(
            seed=42, n_sites=2, width=360, max_height=1200, quality=10
        )
        pipeline = CatalogPipeline(config)
        cold = pipeline.encode_catalog(hour=0, processes=1)
        warm = pipeline.encode_catalog(hour=0, processes=1)
        assert warm.store_hits == warm.n_pages  # warm run never re-encodes
        assert [p.data for p in warm.pages] == [p.data for p in cold.pages]

        pooled = CatalogPipeline(config).encode_catalog(hour=0, processes=2)
        assert [p.data for p in pooled.pages] == [p.data for p in cold.pages]

        section = {
            "n_pages": cold.n_pages,
            "width": config.width,
            "quality": config.quality,
            "total_bytes": cold.total_bytes,
            "cold_pages_per_s": cold.pages_per_s,
            "warm_pages_per_s": warm.pages_per_s,
            "warm_speedup": cold.elapsed_s / warm.elapsed_s,
            "pool_pages_per_s": pooled.pages_per_s,
            "pool_processes": pooled.processes,
            "store_hits_warm": warm.store_hits,
        }
        _merge_section("catalog", section)
        print_table(
            f"Catalog pipeline ({cold.n_pages} pages, {config.width}px, Q10)",
            ["path", "pages/s", "speedup"],
            [
                ["cold encode", f"{cold.pages_per_s:.1f}", "1.0x"],
                [f"pool ({pooled.processes})", f"{pooled.pages_per_s:.1f}",
                 f"{cold.elapsed_s / pooled.elapsed_s:.2f}x"],
                ["warm store", f"{warm.pages_per_s:.0f}",
                 f"{cold.elapsed_s / warm.elapsed_s:.0f}x"],
            ],
        )
        assert section["warm_speedup"] > 10.0  # store hits skip render+encode
