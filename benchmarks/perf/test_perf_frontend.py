"""Throughput benchmark for the async SMS request front end.

Measures sustained ingest (requests/s) and request→broadcast latency of
:class:`repro.server.frontend.RequestFrontend` over a simulated request
day, checks the serial reference run reproduces the async-batched ledger
bit for bit, and merges the numbers into ``BENCH_pipeline.json``.

The persistent ledger of the full run is written to
``benchmarks/output/request_ledger.sqlite`` (uploaded as a CI artifact)
so a failing latency number can be dissected offline.

Run explicitly:

    python -m repro bench -k frontend          # smoke scale (1e5 requests)
    REPRO_FULL=1 python -m repro bench -k frontend   # 1e6 requests / 24 h
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import full_scale, print_table
from repro.server.frontend import (
    FrontendConfig,
    RequestFrontend,
    SizeModelResolver,
)
from repro.server.ledger import RequestLedger
from repro.sim.workload import RequestTraceConfig, generate_requests
from repro.web.sites import SiteGenerator

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"


def _resolver() -> SizeModelResolver:
    return SizeModelResolver(
        SiteGenerator(seed=7, n_sites=25), max_page_bytes=12 * 1024
    )


class TestRequestFrontend:
    def test_request_throughput(self, output_dir):
        hours = 24.0 if full_scale() else 4.0
        n_requests = 1_000_000 if full_scale() else 100_000
        trace = generate_requests(
            RequestTraceConfig(
                hours=hours, n_pages=100, n_requests=n_requests, seed=42
            )
        )

        ledger_path = output_dir / "request_ledger.sqlite"
        ledger_path.unlink(missing_ok=True)
        frontend = RequestFrontend(
            _resolver(), FrontendConfig(), ledger=RequestLedger(ledger_path)
        )
        result = frontend.run(trace)
        frontend.ledger.reconcile()
        frontend.ledger.close()

        # Acceptance floor: 1e5 sustained requests/s, everything served.
        assert result.requests_per_s >= 1e5
        assert result.served_fraction == 1.0
        assert result.stats.shed == 0

        # Serial reference == async-batched, on a smaller trace (the
        # serial mode pays one dispatch per request by construction).
        small = generate_requests(
            RequestTraceConfig(hours=2.0, n_pages=100, n_requests=20_000, seed=3)
        )
        digests = []
        for serial in (False, True):
            fe = RequestFrontend(_resolver(), FrontendConfig())
            fe.run(small, serial=serial)
            digests.append(fe.ledger.digest())
        assert digests[0] == digests[1]

        stats = result.stats
        section = {
            "n_requests": result.n_requests,
            "hours": hours,
            "requests_per_s": result.requests_per_s,
            "elapsed_s": result.elapsed_s,
            "p50_latency_s": result.p50_latency_s,
            "p90_latency_s": result.p90_latency_s,
            "p99_latency_s": result.p99_latency_s,
            "served_fraction": result.served_fraction,
            "coalesce_ratio": stats.coalesce_ratio,
            "enqueued_pages": stats.enqueued_pages,
            "mean_batch_size": stats.mean_batch_size,
            "peak_backlog_bytes": stats.peak_backlog_bytes,
            "store_hit_rate": result.store_hit_rate,
            "ledger_digest": digests[0],
        }
        data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        data["request_frontend"] = section
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

        print_table(
            f"Request front end ({result.n_requests:,} requests / {hours:.0f} h)",
            ["metric", "value"],
            [
                ["ingest", f"{result.requests_per_s:,.0f} req/s"],
                ["p50 latency", f"{result.p50_latency_s:.1f} s"],
                ["p99 latency", f"{result.p99_latency_s:.1f} s"],
                ["coalesce", f"{100 * stats.coalesce_ratio:.1f}%"],
                ["transmissions", f"{stats.enqueued_pages:,}"],
                ["ledger", str(ledger_path.name)],
            ],
        )

    def test_backpressure_sheds_instead_of_blowing_up(self):
        """Saturate a slow carousel: defer then shed, never unbounded."""
        trace = generate_requests(
            RequestTraceConfig(hours=1.0, n_pages=100, n_requests=20_000, seed=5)
        )
        config = FrontendConfig(
            rate_bps=2_000.0, max_backlog_bytes=50_000, defer_capacity=300
        )
        frontend = RequestFrontend(_resolver(), config)
        result = frontend.run(trace)
        stats = result.stats
        assert stats.shed > 0
        assert stats.peak_deferred <= config.defer_capacity
        assert stats.peak_backlog_bytes <= config.max_backlog_bytes + 12 * 1024
        counts = result.ledger_stats.counts
        assert counts.get("shed", 0) == stats.shed
