"""Benchmarks for the vectorised modem-family decode stage.

Times the post-sync decode stage of each baseline modem (FSK, GMSK,
AudioQR): the preamble scan is shared by both paths and dominated by one
``np.correlate``, so the speedup that matters is scalar per-symbol
decode (``_decode_peak_ref``, the seed implementation kept as golden
reference) versus the vectorised ``decode_attempt``.  Results land in
the ``modem_family`` section of ``BENCH_pipeline.json``; ``repro bench
--smoke`` gates on the per-modem speedups.

Honest floors (1-core box, documented in DESIGN.md):

* ``fsk``    >= 2.5x — the scalar path already spends its time in one
  BLAS dgemv per symbol; batching to dgemm caps out near 3.4x.
* ``gmsk``   >= 20x — the scalar path recomputes the instantaneous-
  frequency discriminator over the whole remaining capture per peak
  (O(peaks x capture)); the batch path's canonical window makes it
  O(message), so the ratio grows with message count.
* ``audioqr`` >= 3x — the sync marker is an up+down chirp pair, which
  any "1,0" data bit pair reproduces exactly, so BOTH paths must
  CRC-reject thousands of false sync peaks; per-peak the batch matmul
  is ~4x the scalar loop.

Run explicitly (tier-1 skips timing-sensitive tests):

    python -m repro bench            # or
    python -m pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.modem import AudioQrModem, FskModem, GmskModem

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"

#: (modem class, payload sizes, gap, noise, speedup floor)
SPECS = {
    "fsk": (FskModem, [220] * 8, 1500, 0.01, 2.5),
    "gmsk": (GmskModem, [256] * 40, 2000, 0.01, 20.0),
    "audioqr": (AudioQrModem, [150] * 6, 1500, 0.01, 3.0),
}


@pytest.fixture(scope="module")
def results():
    """Accumulates section results, merged into the shared JSON on teardown."""
    data: dict = {}
    yield data
    merged: dict = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(data)
    BENCH_JSON.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON}")


def build_capture(modem, payloads, gap, noise, seed):
    rng = np.random.default_rng(seed)
    parts = [np.zeros(1200)]
    for p in payloads:
        parts.append(modem.transmit(p))
        parts.append(np.zeros(gap))
    cap = np.concatenate(parts)
    return cap + noise * rng.standard_normal(cap.size)


def decode_stage_times(modem, cap, repeats=3):
    """(ref_s, batch_s, ref_msgs, batch_msgs) over the pre-scanned peaks."""
    peaks = modem.sync.scan(cap)  # shared by both paths; not timed
    offset = modem.sync.template.size

    def run_ref():
        return [
            m for start, _ in peaks
            if (m := modem._decode_peak_ref(cap, start)) is not None
        ]

    def run_batch():
        out = []
        for start, _ in peaks:
            status, payload = modem.decode_attempt(cap[start + offset:], eos=True)
            if status == "done" and payload is not None:
                out.append(payload)
        return out

    ref_msgs = run_ref()  # warm-up doubles as the correctness probe
    batch_msgs = run_batch()
    ref_best = batch_best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_ref()
        ref_best = min(ref_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_batch()
        batch_best = min(batch_best, time.perf_counter() - t0)
    return ref_best, batch_best, ref_msgs, batch_msgs


class TestModemFamilyDecode:
    def test_decode_stage_speedups(self, results):
        rows = []
        section: dict = {}
        rng = np.random.default_rng(67)
        for i, (name, (cls, sizes, gap, noise, floor)) in enumerate(SPECS.items()):
            modem = cls()
            payloads = [
                bytes(rng.integers(0, 256, n, dtype=np.uint8)) for n in sizes
            ]
            cap = build_capture(modem, payloads, gap, noise, seed=70 + i)
            ref_s, batch_s, ref_msgs, batch_msgs = decode_stage_times(modem, cap)
            # Bit-identical decode is the precondition for a fair race.
            assert batch_msgs == ref_msgs, name
            assert batch_msgs == payloads, name
            assert modem.receive(cap) == modem.receive_ref(cap), name
            speedup = ref_s / batch_s
            section[name] = {
                "n_messages": len(sizes),
                "ref_ms": ref_s * 1e3,
                "batch_ms": batch_s * 1e3,
                "speedup": speedup,
                "floor": floor,
            }
            rows.append([
                name, str(len(sizes)), f"{ref_s * 1e3:.1f}",
                f"{batch_s * 1e3:.1f}", f"{speedup:.1f}x", f">={floor:g}x",
            ])
            assert speedup >= floor, (
                f"{name} decode stage {speedup:.1f}x < {floor}x floor"
            )
        results["modem_family"] = section
        print_table(
            "Modem-family decode stage: scalar reference vs vectorised batch",
            ["modem", "msgs", "ref ms", "batch ms", "speedup", "floor"],
            rows,
        )
