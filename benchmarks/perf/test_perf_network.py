"""Throughput benchmark for the sharded multi-station broadcast network.

Simulates a multi-region broadcast day through
:func:`repro.server.network.run_network`, measures simulated
station-hours per wall-clock second, checks the sharded run reproduces
the serial reference bit for bit (per-station ledger digests and
schedule digests), and merges the numbers — including the honest
per-station goodput floor the smoke gate enforces — into
``BENCH_pipeline.json``.

Per-station backlog/goodput/latency reports are written to
``benchmarks/output/network_stations.json`` (uploaded as a CI artifact).

Run explicitly:

    python -m repro bench -k network           # smoke scale (3 x 6 h)
    REPRO_FULL=1 python -m repro bench -k network    # 6 stations / 24 h
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import full_scale, print_table
from repro.server.network import NetworkConfig, run_network

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"

#: The smoke day keeps every carousel saturated, so each station must
#: sustain at least half the slowest profile rung's payload rate.
GOODPUT_FLOOR_BPS = 1_500.0


class TestBroadcastNetwork:
    def test_network_throughput(self, output_dir):
        if full_scale():
            config = NetworkConfig(n_stations=6, hours=24, tick_s=60.0, seed=42)
        else:
            config = NetworkConfig(n_stations=3, hours=6, tick_s=120.0, seed=42)

        t0 = time.perf_counter()
        serial = run_network(config)
        elapsed = time.perf_counter() - t0
        sharded = run_network(config, sharded=True)

        # Determinism contract: sharding is a pure execution detail.
        assert serial.network_digest() == sharded.network_digest()
        for a, b in zip(serial.stations, sharded.stations):
            assert a.ledger_digest == b.ledger_digest

        min_goodput = min(s.goodput_bps for s in serial.stations)
        assert min_goodput >= GOODPUT_FLOOR_BPS
        assert all(s.n_broadcast > 0 for s in serial.stations)

        station_hours = config.n_stations * config.hours
        section = {
            "n_stations": config.n_stations,
            "hours": config.hours,
            "elapsed_s": elapsed,
            "station_hours_per_s": station_hours / elapsed,
            "min_goodput_bps": min_goodput,
            "goodput_floor_bps": GOODPUT_FLOOR_BPS,
            "store_hits": serial.store_hits,
            "store_misses": serial.store_misses,
            "network_digest": serial.network_digest(),
        }
        data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        data["network"] = section
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

        report_path = output_dir / "network_stations.json"
        report_path.write_text(
            json.dumps(serial.to_json_dict(), indent=2) + "\n"
        )

        print_table(
            f"Broadcast network ({config.n_stations} stations x "
            f"{config.hours} h)",
            ["metric", "value"],
            [
                ["simulation rate", f"{station_hours / elapsed:,.0f} station-hours/s"],
                ["min goodput", f"{min_goodput / 1e3:.1f} kbps"],
                ["store hit rate",
                 f"{100 * serial.store_hits / max(1, serial.store_hits + serial.store_misses):.0f}%"],
                ["digest", serial.network_digest()[:16]],
                ["reports", report_path.name],
            ],
        )
