"""Benchmarks for the cached, parallel profile tournament.

Times a cold channel-matrix sweep (every cell through the real DSP
chain) against the same sweep answered entirely by a warm
:class:`~repro.sim.tournament.SweepStore` — the memoisation that makes
re-running ``repro tournament`` after a config tweak cheap.  The
frontier artifacts (JSON + SVG) land in ``benchmarks/output/`` so CI
uploads them alongside the bench baseline.

Results land in the ``tournament`` section of ``BENCH_pipeline.json``;
``repro bench --smoke`` gates on the warm/cold ratio (>= 100x).

Run explicitly (tier-1 skips timing-sensitive tests):

    python -m repro bench            # or
    python -m pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.sim.tournament import (
    TournamentConfig,
    run_tournament,
    write_frontier_report,
)

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"
OUTPUT_DIR = REPO_ROOT / "benchmarks" / "output"

#: Same spec as the `tournament` smoke gate in repro/cli.py.
BENCH_SWEEP = dict(
    snr_grid_db=(-2.0, 2.0, 6.0, 12.0),
    distance_grid_m=(0.2, 0.8),
    rssi_grid_dbm=(-70.0, -88.0),
    payload_bytes=24,
    n_messages=4,
    master_seed=11,
)


@pytest.fixture(scope="module")
def results():
    """Accumulates section results, merged into the shared JSON on teardown."""
    data: dict = {}
    yield data
    merged: dict = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(data)
    BENCH_JSON.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON}")


class TestTournamentSweep:
    def test_cold_vs_warm_store(self, results, tmp_path):
        config = TournamentConfig(**BENCH_SWEEP, store_dir=str(tmp_path))

        t0 = time.perf_counter()
        cold = run_tournament(config, processes=1)
        t_cold = time.perf_counter() - t0
        assert cold.n_cached == 0

        t0 = time.perf_counter()
        warm = run_tournament(config, processes=1)
        t_warm = time.perf_counter() - t0
        assert warm.n_cached == len(warm.cells)
        key = lambda c: (c.profile, c.axis, c.value, c.n_frames, c.n_lost)
        assert [key(c) for c in warm.cells] == [key(c) for c in cold.cells]

        frontier = cold.frontier()
        assert {row["profile"] for row in frontier} == set(config.profiles)
        OUTPUT_DIR.mkdir(exist_ok=True)
        write_frontier_report(
            cold, OUTPUT_DIR / "frontier.json", OUTPUT_DIR / "frontier.svg"
        )

        ratio = t_cold / t_warm
        section = {
            "n_cells": len(cold.cells),
            "cold_s": t_cold,
            "warm_s": t_warm,
            "warm_speedup": ratio,
            "cells_per_s_cold": len(cold.cells) / t_cold,
        }
        results["tournament"] = section
        print_table(
            "Profile tournament: cold DSP sweep vs warm SweepStore",
            ["metric", "value"],
            [
                ["cells", str(section["n_cells"])],
                ["cold", f"{t_cold:.2f} s"],
                ["warm", f"{t_warm * 1e3:.1f} ms"],
                ["warm speedup", f"{ratio:.0f}x"],
                ["frontier", str(OUTPUT_DIR / "frontier.json")],
            ],
        )
        assert ratio >= 100.0, f"warm store only {ratio:.0f}x faster"
