"""Throughput benchmarks for the vectorised FEC + batch frame pipeline.

Times the three layers the PR optimised — Reed-Solomon block coding, the
batched frame codec, and the end-to-end page -> waveform -> page chain —
against their scalar/per-frame reference paths, and writes the numbers to
``BENCH_pipeline.json`` at the repository root so later PRs can track the
perf trajectory.

Run explicitly (tier-1 skips timing-sensitive tests):

    python -m repro bench            # or
    python -m pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.core.pipeline import frames_to_waveform, waveform_to_frames
from repro.fec.convolutional import CONV_V29
from repro.fec.reed_solomon import ReedSolomon
from repro.modem.frame import FrameCodec
from repro.modem.modem import Modem
from repro.transport.framing import Frame, FrameHeader, FrameType

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs — robust to scheduler noise."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def results():
    """Accumulates section results and writes the JSON on teardown.

    Writing in the finalizer (not the last test) means a filtered run
    (``repro bench -k reed``) still persists whatever sections it timed.
    """
    data: dict = {}
    yield data
    data["meta"] = {
        "bench": "pipeline",
        "full_scale": full_scale(),
        "written_by": "benchmarks/perf/test_perf_pipeline.py",
    }
    # Merge over whatever is already on disk so sections written by other
    # benchmark modules (e.g. the fleet harness) survive this run.
    merged: dict = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(data)
    BENCH_JSON.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON}")


class TestReedSolomonThroughput:
    def test_encode_decode_speedup(self, results):
        nsym = 16
        rs = ReedSolomon(nsym)
        n_blocks = 512 if full_scale() else 128
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, (n_blocks, 255 - nsym), dtype=np.uint8)

        t_enc_vec = _best_of(lambda: rs.encode_blocks(data))
        t_enc_ref = _best_of(
            lambda: [rs.encode_ref(row.tobytes()) for row in data], repeats=1
        )
        coded = rs.encode_blocks(data)

        # Clean-decode path (the broadcast common case).
        t_dec_vec = _best_of(lambda: rs.decode_blocks(coded))
        t_dec_ref = _best_of(
            lambda: [rs.decode_ref(row.tobytes()) for row in coded], repeats=1
        )

        # Decode with t = nsym/2 errors per block (worst accepted load).
        corrupted = coded.copy()
        for i in range(n_blocks):
            pos = rng.choice(255, size=nsym // 2, replace=False)
            corrupted[i, pos] ^= rng.integers(1, 256, nsym // 2).astype(np.uint8)
        t_err_vec = _best_of(lambda: rs.decode_blocks(corrupted), repeats=1)
        t_err_ref = _best_of(
            lambda: [rs.decode_ref(row.tobytes()) for row in corrupted], repeats=1
        )
        assert rs.decode_blocks(corrupted).all_ok

        section = {
            "nsym": nsym,
            "n_blocks": n_blocks,
            "block_bytes": 255,
            "encode_blocks_per_s": n_blocks / t_enc_vec,
            "encode_ref_blocks_per_s": n_blocks / t_enc_ref,
            "encode_speedup": t_enc_ref / t_enc_vec,
            "decode_clean_blocks_per_s": n_blocks / t_dec_vec,
            "decode_clean_ref_blocks_per_s": n_blocks / t_dec_ref,
            "decode_clean_speedup": t_dec_ref / t_dec_vec,
            "decode_errors_blocks_per_s": n_blocks / t_err_vec,
            "decode_errors_ref_blocks_per_s": n_blocks / t_err_ref,
            "decode_errors_speedup": t_err_ref / t_err_vec,
        }
        results["reed_solomon"] = section
        print_table(
            "RS(255) throughput (vectorised vs scalar reference)",
            ["path", "blocks/s", "speedup"],
            [
                ["encode", f"{section['encode_blocks_per_s']:.0f}",
                 f"{section['encode_speedup']:.1f}x"],
                ["decode clean", f"{section['decode_clean_blocks_per_s']:.0f}",
                 f"{section['decode_clean_speedup']:.1f}x"],
                ["decode t errs", f"{section['decode_errors_blocks_per_s']:.0f}",
                 f"{section['decode_errors_speedup']:.1f}x"],
            ],
        )
        # The PR's acceptance bar: >= 10x on 255-byte blocks.
        assert section["encode_speedup"] >= 10.0
        assert section["decode_clean_speedup"] >= 10.0


class TestViterbiThroughput:
    def test_batched_vs_scalar_decode(self, results):
        """Batched soft Viterbi vs the scalar golden reference.

        Times the two batch regimes separately: *clean* soft bits take the
        re-encode-verified algebraic fast path (the broadcast common
        case); *noisy* bits run the full batched add-compare-select
        trellis.  The scalar reference decodes the same noisy frames one
        at a time.
        """
        code = CONV_V29
        n_frames = 48 if full_scale() else 24
        n_info = 960  # one sonic-ofdm frame of info bits
        rng = np.random.default_rng(17)
        bits = rng.integers(0, 2, (n_frames, n_info), dtype=np.uint8)
        coded = code.encode_batch(bits)
        clean = 1.0 - 2.0 * coded.astype(np.float64)
        noisy = clean + rng.normal(0.0, 0.6, clean.shape)

        t_clean = _best_of(lambda: code.decode_soft_batch(clean, n_info))
        t_noisy = _best_of(lambda: code.decode_soft_batch(noisy, n_info))
        t_ref = _best_of(
            lambda: [code.decode_soft_ref(row, n_info) for row in noisy],
            repeats=1,
        )
        assert (code.decode_soft_batch(clean, n_info) == bits).all()
        assert (
            code.decode_soft_batch(noisy, n_info)
            == np.stack([code.decode_soft_ref(r, n_info) for r in noisy])
        ).all()

        section = {
            "constraint": 9,
            "n_frames": n_frames,
            "n_info_bits": n_info,
            "decode_clean_frames_per_s": n_frames / t_clean,
            "decode_noisy_frames_per_s": n_frames / t_noisy,
            "decode_ref_frames_per_s": n_frames / t_ref,
            "clean_speedup": t_ref / t_clean,
            "noisy_speedup": t_ref / t_noisy,
        }
        results["viterbi"] = section
        print_table(
            "Soft Viterbi K=9 throughput (batched vs scalar reference)",
            ["path", "frames/s", "speedup"],
            [
                ["batched clean", f"{section['decode_clean_frames_per_s']:.0f}",
                 f"{section['clean_speedup']:.1f}x"],
                ["batched noisy", f"{section['decode_noisy_frames_per_s']:.0f}",
                 f"{section['noisy_speedup']:.1f}x"],
                ["scalar ref", f"{section['decode_ref_frames_per_s']:.1f}", "1.0x"],
            ],
        )
        assert section["noisy_speedup"] > 1.0


class TestFramePipelineThroughput:
    def test_batch_vs_per_frame_codec(self, results):
        codec = FrameCodec()
        n_frames = 64 if full_scale() else 32
        rng = np.random.default_rng(11)
        payloads = [
            rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
            for _ in range(n_frames)
        ]

        t_enc_batch = _best_of(lambda: codec.encode_batch(payloads))
        t_enc_loop = _best_of(lambda: [codec.encode(p) for p in payloads])
        bits = codec.encode_batch(payloads)
        soft = 1.0 - 2.0 * bits.astype(np.float64)
        t_dec_batch = _best_of(lambda: codec.decode_batch(soft))
        t_dec_loop = _best_of(
            lambda: [codec.decode(row) for row in soft], repeats=1
        )

        section = {
            "n_frames": n_frames,
            "payload_bytes": 100,
            "encode_frames_per_s": n_frames / t_enc_batch,
            "encode_loop_frames_per_s": n_frames / t_enc_loop,
            "encode_speedup": t_enc_loop / t_enc_batch,
            "decode_frames_per_s": n_frames / t_dec_batch,
            "decode_loop_frames_per_s": n_frames / t_dec_loop,
            "decode_speedup": t_dec_loop / t_dec_batch,
        }
        results["frame_codec"] = section
        print_table(
            "Frame codec throughput (batch vs per-frame)",
            ["path", "frames/s", "speedup"],
            [
                ["encode", f"{section['encode_frames_per_s']:.0f}",
                 f"{section['encode_speedup']:.1f}x"],
                ["decode", f"{section['decode_frames_per_s']:.0f}",
                 f"{section['decode_speedup']:.1f}x"],
            ],
        )
        assert section["encode_speedup"] > 1.0
        assert section["decode_speedup"] > 1.0


class TestEndToEnd:
    def test_page_roundtrip_and_write_json(self, results):
        modem = Modem("sonic-ofdm")
        n_frames = 48 if full_scale() else 24
        rng = np.random.default_rng(13)
        frames = [
            Frame(
                FrameHeader(FrameType.BUNDLE_BYTES, page_id=1, seq=i, total=n_frames),
                rng.integers(0, 256, 83, dtype=np.uint8).tobytes(),
            )
            for i in range(n_frames)
        ]

        t_tx = _best_of(
            lambda: frames_to_waveform(frames, modem, frames_per_burst=16),
            repeats=2,
        )
        wave = frames_to_waveform(frames, modem, frames_per_burst=16)
        t_rx = _best_of(
            lambda: waveform_to_frames(wave, modem, frames_per_burst=16),
            repeats=2,
        )
        received = waveform_to_frames(wave, modem, frames_per_burst=16)
        delivered = sum(1 for f in received if f is not None)
        assert delivered == n_frames  # clean channel: everything decodes

        payload_bits = n_frames * 100 * 8
        section = {
            "n_frames": n_frames,
            "profile": "sonic-ofdm",
            "tx_frames_per_s": n_frames / t_tx,
            "rx_frames_per_s": n_frames / t_rx,
            "tx_kbps": payload_bits / t_tx / 1000,
            "rx_kbps": payload_bits / t_rx / 1000,
            "audio_seconds": wave.size / modem.profile.ofdm.sample_rate,
            "realtime_factor_tx": (wave.size / modem.profile.ofdm.sample_rate) / t_tx,
            "realtime_factor_rx": (wave.size / modem.profile.ofdm.sample_rate) / t_rx,
        }
        results["end_to_end"] = section
        print_table(
            "End-to-end page <-> waveform throughput",
            ["direction", "frames/s", "kbps", "x realtime"],
            [
                ["page -> waveform", f"{section['tx_frames_per_s']:.0f}",
                 f"{section['tx_kbps']:.0f}", f"{section['realtime_factor_tx']:.1f}"],
                ["waveform -> page", f"{section['rx_frames_per_s']:.0f}",
                 f"{section['rx_kbps']:.0f}", f"{section['realtime_factor_rx']:.1f}"],
            ],
        )

