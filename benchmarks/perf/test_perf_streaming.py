"""Benchmarks for the chunked streaming broadcast engine.

Times the pull-based dataflow the streaming PR introduced — the
:class:`~repro.core.stream.WaveformSource` transmit side and the
:class:`~repro.modem.streaming.StreamingReceiver` — and measures its
peak working set against the whole-capture batch path.  Results land in
the ``streaming`` section of ``BENCH_pipeline.json``; ``repro bench
--smoke`` gates on ``chunks_per_s``.

Run explicitly (tier-1 skips timing-sensitive tests):

    python -m repro bench            # or
    python -m pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.core.stream import DEFAULT_CHUNK_SAMPLES, WaveformSource
from repro.modem.modem import Modem
from repro.modem.streaming import StreamingReceiver

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"


@pytest.fixture(scope="module")
def results():
    """Accumulates section results, merged into the shared JSON on teardown."""
    data: dict = {}
    yield data
    merged: dict = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(data)
    BENCH_JSON.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON}")


def _payload_bursts(modem: Modem, n_bursts: int, frames_per_burst: int):
    rng = np.random.default_rng(23)
    size = modem.frame_payload_size
    return [
        [rng.integers(0, 256, size, dtype=np.uint8).tobytes()
         for _ in range(frames_per_burst)]
        for _ in range(n_bursts)
    ]


class TestStreamingThroughput:
    def test_chunked_decode_rate_and_memory(self, results):
        modem = Modem("sonic-ofdm")
        frames_per_burst = 16
        n_bursts = 4 if full_scale() else 2
        n_frames = n_bursts * frames_per_burst
        bursts = _payload_bursts(modem, n_bursts, frames_per_burst)

        def make_source(chunk_samples=DEFAULT_CHUNK_SAMPLES):
            supply = iter(list(bursts))
            return WaveformSource(
                lambda: next(supply, None), modem, chunk_samples=chunk_samples
            )

        wave = make_source().read_all()
        batch_rx = modem.receive(wave, frames_per_burst=frames_per_burst)
        assert sum(1 for f in batch_rx if f.ok) == n_frames

        # -- receive rate at the default 100 ms chunk -------------------
        def stream_decode():
            receiver = StreamingReceiver(modem, frames_per_burst=frames_per_burst)
            out = []
            for i in range(0, wave.size, DEFAULT_CHUNK_SAMPLES):
                out += receiver.push(wave[i : i + DEFAULT_CHUNK_SAMPLES])
            return out + receiver.finish()

        stream_decode()  # warm-up
        best = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            stream_rx = stream_decode()
            best = min(best, time.perf_counter() - t0)
        n_chunks = -(-wave.size // DEFAULT_CHUNK_SAMPLES)
        assert [f.payload for f in stream_rx] == [f.payload for f in batch_rx]
        assert [f.start_index for f in stream_rx] == [f.start_index for f in batch_rx]

        # -- peak working set: batch capture vs chunked dataflow --------
        tracemalloc.start()
        src = make_source()
        full = src.read_all()
        modem.receive(full, frames_per_burst=frames_per_burst)
        _, batch_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del full

        tracemalloc.start()
        src = make_source()
        receiver = StreamingReceiver(modem, frames_per_burst=frames_per_burst)
        n_ok = 0
        for chunk in src:
            n_ok += sum(1 for f in receiver.push(chunk) if f.ok)
        n_ok += sum(1 for f in receiver.finish() if f.ok)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert n_ok == n_frames

        audio_s = wave.size / modem.profile.ofdm.sample_rate
        section = {
            "n_frames": n_frames,
            "chunk_samples": DEFAULT_CHUNK_SAMPLES,
            "n_chunks": n_chunks,
            "chunks_per_s": n_chunks / best,
            "rx_frames_per_s": n_frames / best,
            "realtime_factor_rx": audio_s / best,
            "batch_peak_mb": batch_peak / 1e6,
            "stream_peak_mb": stream_peak / 1e6,
            "memory_ratio": batch_peak / stream_peak,
        }
        results["streaming"] = section
        print_table(
            "Streaming decode (100 ms chunks) vs whole-capture batch",
            ["metric", "value"],
            [
                ["chunks/s", f"{section['chunks_per_s']:.0f}"],
                ["frames/s", f"{section['rx_frames_per_s']:.0f}"],
                ["x realtime", f"{section['realtime_factor_rx']:.1f}"],
                ["batch peak RSS", f"{section['batch_peak_mb']:.1f} MB"],
                ["stream peak RSS", f"{section['stream_peak_mb']:.1f} MB"],
                ["memory ratio", f"{section['memory_ratio']:.1f}x"],
            ],
        )
        # The dataflow's point: bounded memory, no decode-rate collapse.
        assert section["memory_ratio"] > 1.0
