"""Full-fidelity catalog serving: persistent pool vs per-batch respawn.

Replays a simulated request day through :class:`RequestFrontend` with
the *real* render+encode resolver (:class:`CatalogResolver` over a
:class:`CatalogPipeline`) in two configurations:

* **baseline** — the seed path: reference renderer, a fresh
  ``multiprocessing.Pool`` spawned for every miss batch, resolves
  blocking the event loop;
* **persistent** — one warm worker pool for the whole day (in-process
  on single-CPU hosts), pipelined resolves off the event loop, and
  speculative next-hour prefetch.

Both runs must produce bit-identical request ledgers, and every bundle
the baseline stored must be byte-identical in the persistent store.
The acceptance floor is a 10x requests/s speedup; numbers land in the
``serve_catalog`` section of ``BENCH_pipeline.json``.

Run explicitly:

    python -m repro bench -k serve_catalog
    REPRO_FULL=1 python -m repro bench -k serve_catalog   # 30k requests
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import full_scale, print_table
from repro.server.cache import BundleStore
from repro.server.catalog import CatalogConfig, CatalogPipeline
from repro.server.frontend import CatalogResolver, FrontendConfig, RequestFrontend
from repro.sim.workload import RequestTraceConfig, generate_requests

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"

HOURS = 24.0
N_PAGES = 24


def _pipeline(reference: bool) -> CatalogPipeline:
    return CatalogPipeline(
        CatalogConfig(
            seed=42,
            n_sites=6,
            width=360,
            max_height=600,
            quality=10,
            reference=reference,
        ),
        store=BundleStore(),
    )


class TestServeCatalog:
    def test_persistent_pool_speedup(self):
        n_requests = 30_000 if full_scale() else 6_000
        trace = generate_requests(
            RequestTraceConfig(
                hours=HOURS, n_pages=N_PAGES, n_requests=n_requests, seed=42
            )
        )

        # Baseline: the seed serving path — reference renderer, a pool
        # respawned per miss batch, resolves blocking the loop.
        base_pipe = _pipeline(reference=True)
        base_fe = RequestFrontend(
            CatalogResolver(base_pipe, processes=2),
            FrontendConfig(pipelined=False, prefetch=False),
        )
        base_res = base_fe.run(trace)
        base_digest = base_fe.ledger.digest()
        base_fe.ledger.close()

        # Persistent: warm pool for the whole day, pipelined + prefetch.
        pers_pipe = _pipeline(reference=False).start()
        pers_fe = RequestFrontend(CatalogResolver(pers_pipe), FrontendConfig())
        pers_res = pers_fe.run(trace)
        pers_digest = pers_fe.ledger.digest()
        pers_pipe.close()
        pers_fe.ledger.close()

        # Full fidelity: identical ledgers, and every bundle the
        # baseline produced is byte-identical in the persistent store
        # (prefetch may add bundles, never change one).
        assert pers_digest == base_digest
        assert pers_pipe.store.superset_of(base_pipe.store)

        speedup = pers_res.requests_per_s / base_res.requests_per_s
        assert speedup >= 10.0
        assert pers_res.served_fraction == 1.0

        section = {
            "hours": HOURS,
            "n_requests": n_requests,
            "requests_per_s": pers_res.requests_per_s,
            "elapsed_s": pers_res.elapsed_s,
            "pages_rendered": pers_res.store_misses,
            "pages_rendered_per_s": pers_res.store_misses / pers_res.elapsed_s,
            "respawn_requests_per_s": base_res.requests_per_s,
            "respawn_elapsed_s": base_res.elapsed_s,
            "speedup": speedup,
            "store_hit_rate": pers_res.store_hit_rate,
            "prefetch_submitted": pers_pipe.prefetch_submitted,
            "prefetch_used": pers_pipe.prefetch_used,
            "ledger_digest": pers_digest,
        }
        data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        data["serve_catalog"] = section
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

        print_table(
            f"Catalog serving ({n_requests:,} requests / {HOURS:.0f} h)",
            ["metric", "value"],
            [
                ["persistent", f"{pers_res.requests_per_s:,.0f} req/s"],
                ["respawn baseline", f"{base_res.requests_per_s:,.0f} req/s"],
                ["speedup", f"{speedup:.1f}x"],
                ["store hit rate", f"{100 * pers_res.store_hit_rate:.1f}%"],
                [
                    "prefetch",
                    f"{pers_pipe.prefetch_used}/{pers_pipe.prefetch_submitted} used",
                ],
            ],
        )
