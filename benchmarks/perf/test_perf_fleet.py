"""Throughput benchmark for the parallel receiver-fleet harness.

Measures how fast :func:`repro.sim.receivers.run_fleet` pushes one
broadcast waveform through N impaired receivers, serially and on the
``multiprocessing`` pool, and merges the numbers into the same
``BENCH_pipeline.json`` the pipeline benchmarks write.

Run explicitly:

    python -m repro bench -k fleet
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from repro.modem.modem import Modem
from repro.sim.receivers import FleetConfig, run_fleet

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"


class TestFleetThroughput:
    def test_fleet_scaling(self):
        modem = Modem("sonic-ofdm")
        n_frames = 32 if full_scale() else 16
        n_receivers = 8 if full_scale() else 4
        rng = np.random.default_rng(19)
        wave = modem.transmit_burst(
            [
                rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
                for _ in range(n_frames)
            ]
        )
        audio_s = wave.size / modem.profile.ofdm.sample_rate
        config = FleetConfig(
            n_receivers=n_receivers,
            master_seed=23,
            impairment="awgn",
            snr_db=14.0,
            frames_per_burst=n_frames,
        )

        pool_size = min(4, os.cpu_count() or 1)
        serial = run_fleet(wave, config, processes=1)
        pooled = run_fleet(wave, config, processes=pool_size)
        # Same seeds => the pool must reproduce the serial loss maps.
        assert serial.loss_maps() == pooled.loss_maps()

        # Scaling efficiency: throughput gain per extra process.
        speedup = pooled.receivers_per_s / serial.receivers_per_s
        efficiency = speedup / pool_size

        section = {
            "n_receivers": n_receivers,
            "n_frames": n_frames,
            "audio_seconds": audio_s,
            "impairment": "awgn",
            "pool_size": pool_size,
            "serial_receivers_per_s": serial.receivers_per_s,
            "pool_receivers_per_s": pooled.receivers_per_s,
            "pool_speedup": speedup,
            "pool_efficiency": efficiency,
            "mean_loss_rate": serial.mean_loss_rate,
            "realtime_factor_per_receiver": audio_s * serial.receivers_per_s,
        }
        data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        data["fleet"] = section
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

        print_table(
            f"Receiver fleet ({n_receivers} receivers x {audio_s:.1f}s broadcast)",
            ["path", "receivers/s", "speedup"],
            [
                ["serial", f"{serial.receivers_per_s:.1f}", "1.0x"],
                [f"pool ({pool_size})", f"{pooled.receivers_per_s:.1f}",
                 f"{speedup:.2f}x"],
            ],
        )
        # Near-linear scaling up to the pool size: on a single-core host
        # the pool adds only IPC overhead, so the bar is relative.
        assert efficiency >= 0.5


class TestPopulationThroughput:
    def test_population_scaling(self):
        """Tier-2 statistical population: receiver-frames/s vs size.

        The paper-scale target is 1e6 receivers x 48 h of carousel; the
        floor here is 1e6 receiver-frames/s sustained, with near-linear
        cost in population size (vectorised chunks amortise fully).
        """
        import dataclasses

        from repro.radio.lossmodel import FrameLossModel
        from repro.sim.population import PopulationConfig, run_population

        model = FrameLossModel()
        hours = 48.0 if full_scale() else 8.0
        sizes = (100_000, 400_000) if full_scale() else (20_000, 80_000)
        base = PopulationConfig(n_receivers=sizes[0], hours=hours, master_seed=7)

        runs = [
            run_population(
                model, dataclasses.replace(base, n_receivers=n)
            )
            for n in sizes
        ]
        small, large = runs
        # Throughput floor and near-linear scaling in population size:
        # 4x the receivers should cost ~4x, not 16x.
        scale = (large.elapsed_s / small.elapsed_s) / (sizes[1] / sizes[0])
        assert large.receiver_frames_per_s >= 1e6
        assert scale < 2.0

        # Chunk partitioning is invisible in the results.
        rechunked = run_population(
            model,
            dataclasses.replace(base, chunk_receivers=37_013),
        )
        assert np.array_equal(small.loss_rates, rechunked.loss_rates)
        assert np.array_equal(small.pages_decoded, rechunked.pages_decoded)

        section = {
            "n_receivers": sizes[1],
            "hours": hours,
            "frames_per_receiver": large.frames_per_receiver,
            "receiver_frames": large.receiver_frames,
            "receiver_frames_per_s": large.receiver_frames_per_s,
            "elapsed_s": large.elapsed_s,
            "scaling_ratio": scale,
            "mean_loss_rate": large.mean_loss_rate,
        }
        data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        data["fleet_population"] = section
        BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

        print_table(
            f"Statistical population ({hours:.0f} h carousel)",
            ["receivers", "rx-frames/s", "elapsed"],
            [
                [f"{r.n_receivers:,}", f"{r.receiver_frames_per_s:.2e}",
                 f"{r.elapsed_s:.2f}s"]
                for r in runs
            ],
        )
