"""Benchmark package: one experiment regenerator per paper artifact.

See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
the paper-vs-measured record.  Run with ``pytest benchmarks/
--benchmark-only``; set ``REPRO_FULL=1`` for paper-scale parameters.
"""
