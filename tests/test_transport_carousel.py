"""Broadcast carousel: ordering, draining, ETAs, frame emission."""

import pytest

from repro.transport.bundle import BundleTransport
from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.transport.framing import FRAME_SIZE


class TestQueue:
    def test_priority_ordering(self):
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("low.pk/", 1_000, priority=1))
        car.enqueue(CarouselItem("high.pk/", 1_000, priority=9))
        assert car.head().url == "high.pk/"

    def test_fifo_within_priority(self):
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=1))
        car.drain(0.0)  # advance bookkeeping only
        car.enqueue(CarouselItem("b.pk/", 1_000, priority=1))
        assert car.head().url == "a.pk/"

    def test_newer_version_replaces(self):
        """A fresh render of the same URL supersedes the stale one."""
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=1))
        car.enqueue(CarouselItem("a.pk/", 2_000, priority=1))
        assert car.queue_length() == 1
        assert car.backlog_bytes() == 2_000

    def test_repeat_request_keeps_progress(self):
        """A second request for the identical version must not restart
        the in-flight transmission — only raise its priority."""
        bt = BundleTransport()
        frames = bt.chunk(bytes(1_000), page_id=1, version=7)
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=1, frames=frames))
        list(car.emit_frames(4))
        sent_before = car.head().frames_sent
        assert sent_before == 4
        same = bt.chunk(bytes(1_000), page_id=1, version=7)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=9, frames=same))
        assert car.queue_length() == 1
        assert car.head().frames_sent == sent_before  # progress preserved
        assert car.head().priority == 9

    def test_new_version_does_restart(self):
        bt = BundleTransport()
        v1 = bt.chunk(bytes(1_000), page_id=1, version=1)
        v2 = bt.chunk(bytes(1_000), page_id=1, version=2)
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=1, frames=v1))
        list(car.emit_frames(4))
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=1, frames=v2))
        assert car.head().frames_sent == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BroadcastCarousel(0)


class TestDrain:
    def test_rate_accounting(self):
        car = BroadcastCarousel(8_000)  # 1000 bytes/s
        car.enqueue(CarouselItem("a.pk/", 5_000))
        car.drain(2.0)
        assert car.backlog_bytes() == 3_000

    def test_completion_order_and_times(self):
        car = BroadcastCarousel(8_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, priority=2))
        car.enqueue(CarouselItem("b.pk/", 1_000, priority=1))
        done = car.drain(10.0)
        assert done == ["a.pk/", "b.pk/"]
        assert car.backlog_bytes() == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            BroadcastCarousel(1_000).drain(-1)


class TestEta:
    def test_eta_accounts_for_queue_ahead(self):
        car = BroadcastCarousel(8_000)  # 1 kB/s
        car.enqueue(CarouselItem("first.pk/", 2_000, priority=5))
        car.enqueue(CarouselItem("second.pk/", 3_000, priority=1))
        assert car.eta_seconds("first.pk/") == pytest.approx(2.0)
        assert car.eta_seconds("second.pk/") == pytest.approx(5.0)

    def test_eta_unknown_url(self):
        assert BroadcastCarousel(1_000).eta_seconds("x.pk/") is None

    def test_eta_shrinks_after_drain(self):
        car = BroadcastCarousel(8_000)
        car.enqueue(CarouselItem("a.pk/", 4_000))
        before = car.eta_seconds("a.pk/")
        car.drain(1.0)
        assert car.eta_seconds("a.pk/") < before


class TestFrameEmission:
    def test_emits_all_frames_exactly_once(self):
        bt = BundleTransport()
        data = bytes(range(256)) * 3
        frames = bt.chunk(data, page_id=1)
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", len(data), frames=frames))
        emitted = list(car.emit_frames(1_000))
        assert len(emitted) == len(frames)
        assert bt.reassemble([f for _, f in emitted]) == data
        assert car.queue_length() == 0

    def test_emission_respects_budget(self):
        bt = BundleTransport()
        frames = bt.chunk(bytes(2_000), page_id=1)
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 2_000, frames=frames))
        first = list(car.emit_frames(5))
        assert len(first) == 5
        rest = list(car.emit_frames(1_000))
        assert len(first) + len(rest) == len(frames)

    def test_frameless_item_raises(self):
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000))
        with pytest.raises(ValueError):
            list(car.emit_frames(1))

    def test_backlog_consistent_during_emission(self):
        bt = BundleTransport()
        frames = bt.chunk(bytes(1_000), page_id=1)
        car = BroadcastCarousel(10_000)
        car.enqueue(CarouselItem("a.pk/", 1_000, frames=frames))
        list(car.emit_frames(len(frames) // 2))
        assert 0 < car.backlog_bytes() < 1_000
