"""FM baseband multiplex composition and service extraction."""

import numpy as np
import pytest

from repro.radio.multiplex import FmMultiplexer, MultiplexConfig


@pytest.fixture(scope="module")
def mux() -> FmMultiplexer:
    return FmMultiplexer()


def _tone(freq, n=9_600, fs=48_000.0, amp=0.5):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t)


class TestCompose:
    def test_mono_only_has_no_pilot(self, mux):
        mpx = mux.compose(_tone(1_000))
        assert not mux.has_pilot(mpx)

    def test_stereo_adds_pilot(self, mux):
        mpx = mux.compose(_tone(1_000), stereo_diff=_tone(400))
        assert mux.has_pilot(mpx)

    def test_mpx_rate_upsampling(self, mux):
        mono = _tone(1_000, n=4_800)
        mpx = mux.compose(mono)
        assert mpx.size == mono.size * 4

    def test_invalid_rate_ratio(self):
        with pytest.raises(ValueError):
            MultiplexConfig(audio_rate=44_100, mpx_rate=192_000)


class TestExtract:
    def test_mono_roundtrip(self, mux):
        mono = _tone(9_200)  # SONIC's data carrier frequency
        out = mux.extract_mono(mux.compose(mono))
        core = slice(1_000, -1_000)
        assert np.max(np.abs(out[core] - mono[core])) < 0.05

    def test_mono_unpolluted_by_stereo_and_pilot(self, mux):
        mono = _tone(5_000)
        mpx = mux.compose(mono, stereo_diff=_tone(2_000, amp=0.8))
        out = mux.extract_mono(mpx)
        core = slice(1_000, -1_000)
        assert np.max(np.abs(out[core] - mono[core])) < 0.06

    def test_stereo_diff_recovered(self, mux):
        diff = _tone(1_500, amp=0.6)
        mpx = mux.compose(_tone(4_000), stereo_diff=diff)
        out = mux.extract_stereo_diff(mpx)
        core = slice(2_000, -2_000)
        # DSB-SC + pilot-squaring recovery is approximate; check correlation.
        corr = np.corrcoef(out[core], diff[core])[0, 1]
        assert corr > 0.95

    def test_rds_band_isolation(self, mux):
        t = np.arange(38_400) / 192_000.0
        rds = np.cos(2 * np.pi * 57_000 * t)
        mpx = mux.compose(_tone(3_000), rds=rds)
        band = mux.extract_rds_band(mpx)
        core = slice(2_000, -2_000)
        corr = np.corrcoef(band[core], rds[core])[0, 1]
        assert corr > 0.95

    def test_rds_longer_than_audio_not_truncated(self, mux):
        t = np.arange(96_000) / 192_000.0
        rds = np.cos(2 * np.pi * 57_000 * t)
        mpx = mux.compose(_tone(1_000, n=4_800), rds=rds)
        assert mpx.size >= rds.size
