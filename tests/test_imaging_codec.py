"""SWebp codec: rate-quality behaviour and robustness."""

import numpy as np
import pytest

from repro.imaging.codec import CodecError, SWebpCodec
from repro.imaging.metrics import psnr_db


class TestGoldenBytes:
    """Pinned encode digests from the original (dense, pre-LUT) encoder.

    The flat-block dedup, pair-LUT colour conversion, and strided
    downsample are pure restructurings: if any of them stops being
    bit-exact, these digests move.
    """

    _GOLDEN = {
        ("noise", 10): "d95f96ee5f3c78bc",
        ("noise", 50): "1fb1b1d78a11a1cb",
        ("noise", 90): "70f478ede5a2d006",
        ("banded", 10): "5e5292484baabdf2",
        ("banded", 50): "128c8b156db00a3c",
        ("banded", 90): "8d83a1e08152e460",
    }

    @staticmethod
    def _images():
        rng = np.random.default_rng(1234)
        noise = rng.integers(0, 256, (48, 40, 3), dtype=np.uint8)
        banded = np.zeros((64, 48, 3), dtype=np.uint8)
        banded[:20] = (200, 30, 30)
        banded[20:44] = (245, 245, 245)
        banded[44:] = (10, 60, 120)
        banded[::7, :, :] = (0, 0, 0)
        return {"noise": noise, "banded": banded}

    @pytest.mark.parametrize("quality", [10, 50, 90])
    def test_encode_bytes_pinned(self, quality):
        import hashlib

        for name, img in self._images().items():
            data = SWebpCodec(quality=quality).encode(img)
            digest = hashlib.sha256(data).hexdigest()[:16]
            assert digest == self._GOLDEN[(name, quality)]


class TestRoundTrip:
    def test_color_decode_shape_dtype(self, page_image):
        codec = SWebpCodec(50)
        out = codec.decode(codec.encode(page_image))
        assert out.shape == page_image.shape
        assert out.dtype == np.uint8

    def test_grayscale(self, page_image):
        grey = page_image[:, :, 0]
        codec = SWebpCodec(50)
        out = codec.decode(codec.encode(grey))
        assert out.shape == grey.shape
        assert psnr_db(grey, out) > 25

    def test_high_quality_near_lossless(self, photo_image):
        # 4:2:0 chroma subsampling bounds colour PSNR on chroma-rich
        # noise; luma should be near-transparent at Q95.
        codec = SWebpCodec(95)
        out = codec.decode(codec.encode(photo_image))
        assert psnr_db(photo_image, out) > 30
        grey = photo_image[:, :, 1]
        assert psnr_db(grey, codec.decode(codec.encode(grey))) > 40

    def test_flat_image_tiny(self):
        flat = np.full((64, 64, 3), 200, dtype=np.uint8)
        data = SWebpCodec(10).encode(flat)
        assert len(data) < 600
        out = SWebpCodec(10).decode(data)
        assert np.all(np.abs(out.astype(int) - 200) <= 4)

    def test_odd_dimensions(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, (37, 53, 3), dtype=np.uint8)
        out = SWebpCodec(90).decode(SWebpCodec(90).encode(img))
        assert out.shape == img.shape

    def test_single_pixel(self):
        px = np.array([[[255, 0, 0]]], dtype=np.uint8)
        out = SWebpCodec(90).decode(SWebpCodec(90).encode(px))
        assert out.shape == (1, 1, 3)


class TestRateQuality:
    def test_size_grows_with_quality(self, page_image):
        sizes = {q: len(SWebpCodec(q).encode(page_image)) for q in (10, 50, 90)}
        assert sizes[10] < sizes[50] < sizes[90]

    def test_paper_q10_vs_q90_ratio(self, page_image):
        """The paper: ~200 KB at Q10 vs ~700 KB at Q90 — roughly 3-4x."""
        q10 = len(SWebpCodec(10).encode(page_image))
        q90 = len(SWebpCodec(90).encode(page_image))
        assert 2.0 < q90 / q10 < 6.0

    def test_fidelity_grows_with_quality(self, photo_image):
        psnrs = {}
        for q in (10, 50, 90):
            codec = SWebpCodec(q)
            psnrs[q] = psnr_db(photo_image, codec.decode(codec.encode(photo_image)))
        assert psnrs[10] < psnrs[50] < psnrs[90]

    def test_compression_vs_raw(self, page_image):
        data = SWebpCodec(10).encode(page_image)
        # The paper's motivation: ~10x compression; pages achieve far more.
        assert len(data) < page_image.nbytes / 10

    def test_encoded_size_matches_encode(self, photo_image):
        codec = SWebpCodec(30)
        assert codec.encoded_size(photo_image) == len(codec.encode(photo_image))


class TestValidation:
    def test_quality_range(self):
        with pytest.raises(ValueError):
            SWebpCodec(96)
        with pytest.raises(ValueError):
            SWebpCodec(-1)

    def test_dtype_checked(self):
        with pytest.raises(ValueError):
            SWebpCodec(10).encode(np.zeros((8, 8, 3), dtype=np.float64))

    def test_channel_count_checked(self):
        with pytest.raises(ValueError):
            SWebpCodec(10).encode(np.zeros((8, 8, 4), dtype=np.uint8))

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            SWebpCodec(10).decode(b"JUNKDATA" * 4)

    def test_truncated_stream(self, photo_image):
        data = SWebpCodec(10).encode(photo_image)
        with pytest.raises(CodecError):
            SWebpCodec(10).decode(data[: len(data) // 2])

    def test_quality_read_from_stream(self, photo_image):
        """Decoding uses the quality stored in the header, not the
        decoder instance's — a Q90 stream decodes fine via a Q10 codec."""
        data = SWebpCodec(90).encode(photo_image)
        out = SWebpCodec(10).decode(data)
        assert psnr_db(photo_image, out) > 29
        # And it must match what the Q90 instance itself decodes.
        assert np.array_equal(out, SWebpCodec(90).decode(data))
