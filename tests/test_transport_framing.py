"""100-byte frame format."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.framing import (
    FRAME_SIZE,
    Frame,
    FrameHeader,
    FrameType,
    HEADER_SIZE,
    PAYLOAD_SIZE,
)


class TestFormat:
    def test_paper_frame_size(self):
        assert FRAME_SIZE == 100  # fixed by Section 3.3

    def test_serialised_size_exact(self):
        frame = Frame(
            FrameHeader(FrameType.COLUMN_PIXELS, 1, 0, 10, 5, 0, 27), bytes(81)
        )
        assert len(frame.to_bytes()) == FRAME_SIZE

    def test_short_payload_padded(self):
        frame = Frame(FrameHeader(FrameType.BUNDLE_BYTES, 1, 0, 1), b"ab")
        raw = frame.to_bytes()
        assert len(raw) == FRAME_SIZE
        assert raw[HEADER_SIZE : HEADER_SIZE + 2] == b"ab"

    def test_oversized_payload_rejected(self):
        frame = Frame(
            FrameHeader(FrameType.BUNDLE_BYTES, 1, 0, 1), bytes(PAYLOAD_SIZE + 1)
        )
        with pytest.raises(ValueError):
            frame.to_bytes()

    @given(
        page_id=st.integers(0, 65_535),
        total=st.integers(1, 100_000),
        col=st.integers(0, 2_000),
        payload=st.binary(min_size=0, max_size=PAYLOAD_SIZE),
    )
    def test_roundtrip(self, page_id, total, col, payload):
        header = FrameHeader(
            FrameType.COLUMN_PIXELS, page_id, total - 1, total, col, 7, 27
        )
        frame = Frame(header, payload)
        restored = Frame.from_bytes(frame.to_bytes())
        assert restored.header == header
        assert restored.payload[: len(payload)] == payload

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Frame.from_bytes(bytes(99))

    def test_header_validation(self):
        with pytest.raises(ValueError):
            FrameHeader(FrameType.BUNDLE_BYTES, 70_000, 0, 1)
        with pytest.raises(ValueError):
            FrameHeader(FrameType.BUNDLE_BYTES, 0, 5, 5)  # seq >= total
