"""End-to-end pipelines: audio delivery and the Figure-1 degradation path."""

import numpy as np
import pytest

from repro.core.pipeline import (
    page_to_waveform,
    simulate_column_loss,
    waveform_to_frames,
)
from repro.transport.partition import ColumnTransport


class TestAudioPipeline:
    def test_frames_survive_audio_roundtrip(self, quick_modem, page_image):
        # A small slice keeps the modem work bounded.
        small = page_image[:60, :8]
        frames = ColumnTransport("rle").partition(small, page_id=2)
        assert frames
        wave = page_to_waveform(frames, quick_modem, frames_per_burst=8)
        received = waveform_to_frames(wave, quick_modem, frames_per_burst=8)
        assert len(received) == len(frames)
        assert all(r is not None for r in received)
        got = {r.header.seq: r for r in received}
        for f in frames:
            # Received payloads carry the wire padding; the prefix and
            # header must match exactly.
            assert got[f.header.seq].header == f.header
            assert got[f.header.seq].payload[: len(f.payload)] == f.payload

    def test_lost_frames_reported_as_none(self, quick_modem, page_image):
        small = page_image[:40, :4]
        frames = ColumnTransport("rle").partition(small, page_id=2)
        wave = page_to_waveform(frames, quick_modem, frames_per_burst=8)
        rng = np.random.default_rng(0)
        noisy = wave + rng.normal(0, 0.35, wave.size)
        received = waveform_to_frames(noisy, quick_modem, frames_per_burst=8)
        assert any(r is None for r in received) or len(received) < len(frames)

    def test_empty_input(self, quick_modem):
        assert page_to_waveform([], quick_modem).size == 0


class TestColumnLossSimulation:
    def test_loss_rate_approximated(self, page_image):
        sim = simulate_column_loss(page_image, 0.10, seed=1)
        assert sim.frame_loss_rate == pytest.approx(0.10, abs=0.03)
        assert sim.pixel_loss_rate == pytest.approx(0.10, abs=0.03)

    def test_zero_loss_identity(self, page_image):
        sim = simulate_column_loss(page_image, 0.0, seed=1)
        assert not sim.missing.any()
        assert np.array_equal(sim.damaged, page_image)

    def test_interpolation_beats_dark_pixels(self, page_image):
        """The core Figure 1 claim, as metrics."""
        sim = simulate_column_loss(page_image, 0.10, seed=2)
        assert sim.psnr_interpolated() > sim.psnr_damaged() + 5
        assert sim.ssim_interpolated() > sim.ssim_damaged()

    def test_monotone_damage(self, page_image):
        psnrs = [
            simulate_column_loss(page_image, l, seed=3).psnr_damaged()
            for l in (0.05, 0.20, 0.50)
        ]
        assert psnrs[0] > psnrs[1] > psnrs[2]

    def test_rle_mode(self, page_image):
        sim = simulate_column_loss(page_image, 0.10, seed=4, mode="rle")
        assert 0.02 < sim.pixel_loss_rate < 0.30

    def test_invalid_loss_rate(self, page_image):
        with pytest.raises(ValueError):
            simulate_column_loss(page_image, 1.0)
