"""Adaptive profile selection: RPT feedback in, USE advice out."""

import pytest

from repro.radio.lossmodel import FrameLossModel
from repro.server.scheduler import AdaptiveProfileSelector
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import Location
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.sms.message import SmsMessage
from repro.sms.protocol import (
    LinkReport,
    ProfileAdvice,
    RequestError,
    parse_downlink,
    parse_uplink,
)
from repro.web.sites import SiteGenerator

_LAHORE = Location(31.5204, 74.3587)


def _model(midpoint_db: float) -> FrameLossModel:
    return FrameLossModel(fer_midpoint_db=midpoint_db, fer_scale_db=0.45)


#: A rate ladder shaped like the tournament's frontier: the faster the
#: profile, the more SNR it needs (midpoints 4 dB apart).
LADDER = {
    "sonic-ofdm": (3448.0, _model(3.3)),
    "gmsk": (1477.0, _model(0.5)),
    "fsk": (100.0, _model(-4.0)),
    "audioqr": (79.0, _model(-8.0)),
}


class TestProtocolMessages:
    def test_link_report_roundtrip(self):
        report = LinkReport("gmsk", snr_db=4.2, n_lost=3, n_frames=16)
        parsed = parse_uplink(report.to_text())
        assert parsed == report

    def test_profile_advice_roundtrip(self):
        advice = ProfileAdvice("fsk")
        assert parse_downlink(advice.to_text()) == advice

    def test_malformed_reports_rejected(self):
        for text in ("RPT gmsk SNR x LOSS 1/4", "RPT gmsk SNR 3 LOSS 14",
                     "RPT gmsk LOSS 1/4", "RPT"):
            with pytest.raises(ValueError):
                parse_uplink(text)
        with pytest.raises(ValueError):
            LinkReport("fsk", 0.0, n_lost=5, n_frames=4)


class TestSelector:
    def test_walks_down_the_rate_ladder(self):
        sel = AdaptiveProfileSelector(LADDER, loss_threshold=0.1)
        assert sel.select(10.0) == "sonic-ofdm"
        assert sel.select(2.5) == "gmsk"
        assert sel.select(-2.0) == "fsk"
        assert sel.select(-6.0) == "audioqr"

    def test_hopeless_channel_falls_back_to_most_robust(self):
        sel = AdaptiveProfileSelector(LADDER, loss_threshold=0.1)
        assert sel.select(-30.0) == "audioqr"

    def test_observe_refits_from_feedback(self):
        """Feedback showing gmsk failing at mid SNRs must push its curve
        right — and flip the advice at an SNR it previously won."""
        sel = AdaptiveProfileSelector(LADDER, loss_threshold=0.1)
        assert sel.select(2.5) == "gmsk"
        refit = False
        for snr, lost in ((2.5, 15), (3.0, 14), (4.0, 12), (8.0, 0), (9.0, 0)):
            refit |= sel.observe(LinkReport("gmsk", snr, lost, 16))
        assert refit
        assert sel.predicted_loss("gmsk", 2.5) > 0.1
        assert sel.select(2.5) == "fsk"

    def test_unknown_profile_reports_ignored(self):
        sel = AdaptiveProfileSelector(LADDER)
        assert not sel.observe(LinkReport("morse", 5.0, 0, 4))

    def test_single_snr_feedback_never_fits(self):
        """Identical-SNR samples cannot constrain a curve; keep the prior."""
        sel = AdaptiveProfileSelector(LADDER)
        before = sel.predicted_loss("fsk", 0.0)
        for _ in range(5):
            assert not sel.observe(LinkReport("fsk", 1.0, 0, 8))
        assert sel.predicted_loss("fsk", 0.0) == before

    def test_from_tournament(self):
        from repro.sim.tournament import TournamentConfig, run_tournament

        result = run_tournament(
            TournamentConfig(
                snr_grid_db=(-4.0, 2.0, 14.0),
                distance_grid_m=(0.2,),
                rssi_grid_dbm=(-70.0,),
                payload_bytes=12,
                n_messages=2,
                master_seed=7,
            ),
            processes=1,
        )
        sel = AdaptiveProfileSelector.from_tournament(result)
        assert set(sel.profiles) == set(result.config.profiles)
        assert sel.profiles[0] == "sonic-ofdm"  # fastest first
        # A clean channel always gets the throughput winner.
        assert sel.select(30.0) == "sonic-ofdm"


@pytest.fixture()
def adaptive_env():
    gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
    generator = SiteGenerator(seed=2, n_sites=2)
    registry = TransmitterRegistry(
        [Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)]
    )
    server = SonicServer(
        generator,
        registry,
        gateway,
        ServerConfig(render_width=360, max_pixel_height=1_000),
        profile_selector=AdaptiveProfileSelector(LADDER, loss_threshold=0.1),
    )
    return gateway, server


class TestEndToEndAdaptation:
    def _report(self, gateway, server, profile, snr, lost, frames, now):
        text = LinkReport(profile, snr, lost, frames).to_text()
        gateway.submit(
            SmsMessage("+92300123", server.config.sms_number, text, submitted_at=now),
            now,
        )
        gateway.deliver_due(now + 60.0)
        replies = gateway.deliver_due(now + 600.0)
        assert len(replies) == 1
        return parse_downlink(replies[0].text)

    def test_advice_switches_as_channel_degrades(self, adaptive_env):
        """The whole loop over the SMS uplink: as a receiver's reported
        SNR walks down, successive USE replies descend the rate ladder."""
        gateway, server = adaptive_env
        # (snr, frames lost of 16 under sonic-ofdm, expected advice):
        # the losses are what ofdm's own curve predicts, so the refit
        # the feedback triggers does not move the advice off the ladder.
        degrading = [(12.0, 0, "sonic-ofdm"), (2.5, 14, "gmsk"),
                     (-2.0, 16, "fsk"), (-6.0, 16, "audioqr")]
        now = 0.0
        for snr, lost, expected in degrading:
            advice = self._report(
                gateway, server, "sonic-ofdm", snr, lost, 16, now
            )
            assert advice == ProfileAdvice(expected), snr
            now += 3600.0
        assert server.stats.link_reports == len(degrading)
        assert server.stats.profile_switches == len(degrading)

    def test_no_selector_yields_error_reply(self):
        gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        server = SonicServer(
            SiteGenerator(seed=2, n_sites=2),
            TransmitterRegistry(
                [Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)]
            ),
            gateway,
            ServerConfig(render_width=360, max_pixel_height=1_000),
        )
        text = LinkReport("gmsk", 3.0, 1, 8).to_text()
        gateway.submit(
            SmsMessage("+92300123", server.config.sms_number, text), 0.0
        )
        gateway.deliver_due(60.0)
        replies = gateway.deliver_due(600.0)
        assert len(replies) == 1
        err = parse_downlink(replies[0].text)
        assert isinstance(err, RequestError)
        assert err.reason == "no-adaptation"
