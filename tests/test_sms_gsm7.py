"""GSM 7-bit alphabet and septet packing."""

import pytest
from hypothesis import given, strategies as st

from repro.sms.gsm7 import gsm7_decode, gsm7_encode, is_gsm7_compatible, septet_length

# Characters from the basic GSM alphabet that survive a roundtrip
# unambiguously (excluding '@' which doubles as padding).
_GSM_SAFE = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    " !\"#%&'()*+,-./:;<=>?"
)


class TestAlphabet:
    def test_ascii_compatible(self):
        assert is_gsm7_compatible("GET cnn.com/index.html LOC 31.52,74.35")

    def test_extension_chars(self):
        assert is_gsm7_compatible("{[~]}|")
        assert septet_length("{") == 2  # escape + code

    def test_incompatible(self):
        assert not is_gsm7_compatible("emoji \U0001F600")

    def test_encode_rejects_incompatible(self):
        with pytest.raises(ValueError):
            gsm7_encode("中文")


class TestPacking:
    def test_known_vector(self):
        # "hello" is the classic GSM 7-bit packing example.
        assert gsm7_encode("hello").hex() == "e8329bfd06"

    def test_packing_density(self):
        # Eight 7-bit chars pack into 7 octets.
        assert len(gsm7_encode("AAAAAAAA")) == 7

    @given(st.text(alphabet=_GSM_SAFE, min_size=1, max_size=160))
    def test_roundtrip(self, text):
        assert gsm7_decode(gsm7_encode(text), n_septets=septet_length(text)) == text

    def test_roundtrip_with_extension(self):
        text = "price {100} [PKR]"
        assert gsm7_decode(gsm7_encode(text), n_septets=septet_length(text)) == text

    def test_decode_without_count_strips_padding(self):
        assert gsm7_decode(gsm7_encode("hello")) == "hello"

    def test_empty(self):
        assert gsm7_encode("") == b""
        assert gsm7_decode(b"") == ""
