"""DSP primitives: filters, chirps, spectra."""

import numpy as np
import pytest

from repro.dsp.chirp import linear_chirp, matched_filter_peak
from repro.dsp.filters import filter_signal, fir_bandpass, fir_lowpass, resample
from repro.dsp.spectrum import band_power_db, power_db, rms


class TestFilters:
    def test_lowpass_attenuates_high_band(self):
        fs = 48_000.0
        taps = fir_lowpass(5_000.0, fs, 255)
        t = np.arange(4800) / fs
        low = np.sin(2 * np.pi * 1_000 * t)
        high = np.sin(2 * np.pi * 15_000 * t)
        out = filter_signal(taps, low + high)
        # The filtered signal should closely track the low tone only.
        core = slice(500, -500)
        assert np.max(np.abs(out[core] - low[core])) < 0.05

    def test_bandpass_selects_band(self):
        fs = 192_000.0
        taps = fir_bandpass(55_000, 59_000, fs, 511)
        t = np.arange(19_200) / fs
        inside = np.sin(2 * np.pi * 57_000 * t)
        outside = np.sin(2 * np.pi * 19_000 * t)
        out = filter_signal(taps, inside + outside)
        assert band_power_db(out, fs, 56_000, 58_000) > band_power_db(
            out, fs, 18_000, 20_000
        ) + 30

    def test_delay_compensation_aligns(self):
        fs = 48_000.0
        taps = fir_lowpass(8_000.0, fs, 127)
        t = np.arange(2400) / fs
        x = np.sin(2 * np.pi * 2_000 * t)
        y = filter_signal(taps, x, compensate_delay=True)
        lag = np.argmax(np.correlate(y[200:-200], x[200:-200], "full")) - (
            x[200:-200].size - 1
        )
        assert abs(lag) <= 1

    def test_invalid_cutoffs(self):
        with pytest.raises(ValueError):
            fir_lowpass(30_000, 48_000)
        with pytest.raises(ValueError):
            fir_bandpass(5_000, 4_000, 48_000)
        with pytest.raises(ValueError):
            fir_lowpass(1_000, 48_000, num_taps=128)  # even taps

    def test_resample_ratio(self):
        x = np.sin(np.linspace(0, 20 * np.pi, 1000))
        up = resample(x, 4, 1)
        assert up.size == 4000
        down = resample(up, 1, 4)
        assert down.size == 1000
        assert np.max(np.abs(down[50:-50] - x[50:-50])) < 0.02

    def test_resample_identity(self):
        x = np.arange(10.0)
        assert np.array_equal(resample(x, 3, 3), x)


class TestChirp:
    def test_duration_and_amplitude(self):
        c = linear_chirp(1_000, 5_000, 0.05, 48_000, amplitude=0.5)
        assert c.size == 2400
        assert np.max(np.abs(c)) <= 0.5 + 1e-9

    def test_matched_filter_finds_position(self):
        c = linear_chirp(2_000, 12_000, 0.03, 48_000)
        x = np.zeros(20_000)
        x[7_000 : 7_000 + c.size] = c
        rng = np.random.default_rng(0)
        x += rng.normal(0, 0.2, x.size)
        peaks = matched_filter_peak(x, c, threshold=0.4)
        assert len(peaks) == 1
        assert abs(peaks[0][0] - 7_000) <= 2

    def test_multiple_occurrences(self):
        c = linear_chirp(2_000, 12_000, 0.02, 48_000)
        x = np.zeros(30_000)
        for start in (2_000, 12_000, 25_000):
            x[start : start + c.size] = c
        peaks = matched_filter_peak(x, c, threshold=0.5)
        assert [p for p, _ in peaks] == pytest.approx([2_000, 12_000, 25_000], abs=2)

    def test_absent_template(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 10_000)
        c = linear_chirp(2_000, 12_000, 0.02, 48_000)
        assert matched_filter_peak(x, c, threshold=0.6) == []

    def test_short_buffer(self):
        c = linear_chirp(2_000, 12_000, 0.02, 48_000)
        assert matched_filter_peak(c[:100], c) == []


class TestSpectrum:
    def test_rms_of_sine(self):
        t = np.arange(48_000) / 48_000
        x = np.sin(2 * np.pi * 440 * t)
        assert rms(x) == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_power_db_unit(self):
        assert power_db(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_band_power_concentration(self):
        fs = 48_000.0
        t = np.arange(9_600) / fs
        x = np.sin(2 * np.pi * 9_200 * t)
        inside = band_power_db(x, fs, 9_000, 9_400)
        outside = band_power_db(x, fs, 1_000, 2_000)
        assert inside - outside > 40

    def test_empty_signal(self):
        assert rms(np.zeros(0)) == 0.0
        assert power_db(np.zeros(0)) == -200.0
