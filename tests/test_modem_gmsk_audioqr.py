"""GMSK and AudioQR-class baseline modems."""

import numpy as np
import pytest
from scipy.signal import hilbert

from repro.modem.audioqr import AudioQrConfig, AudioQrModem
from repro.modem.gmsk import GmskConfig, GmskModem


class TestGmsk:
    @pytest.fixture(scope="class")
    def modem(self) -> GmskModem:
        return GmskModem()

    def test_roundtrip(self, modem):
        payload = b"constant envelope waveform"
        assert modem.receive(modem.transmit(payload)) == [payload]

    def test_binary_payload(self, modem):
        payload = bytes(range(256))
        assert modem.receive(modem.transmit(payload)) == [payload]

    def test_constant_envelope(self, modem):
        """GMSK's defining property — and why it survives clipping."""
        wave = modem.transmit(b"x" * 64)
        body = wave[modem._preamble.size :]
        envelope = np.abs(hilbert(body))
        core = envelope[200:-200]
        assert core.std() / core.mean() < 0.01

    def test_survives_hard_clipping(self, modem):
        """An overdriven speaker clips the waveform; GMSK still decodes."""
        payload = b"clipped but alive"
        wave = modem.transmit(payload)
        clipped = np.clip(wave, -0.15, 0.15)
        assert modem.receive(clipped) == [payload]

    def test_noise_tolerance(self, modem):
        rng = np.random.default_rng(0)
        payload = b"hello gmsk"
        wave = modem.transmit(payload)
        sig_p = np.mean(wave**2)
        noisy = wave + rng.normal(0, np.sqrt(sig_p / 10**1.2), wave.size)
        assert modem.receive(noisy) == [payload]

    def test_heavy_noise_rejected_by_crc(self, modem):
        rng = np.random.default_rng(1)
        wave = modem.transmit(b"hello")
        assert modem.receive(wave + rng.normal(0, 2.0, wave.size)) == []

    def test_rate_class(self, modem):
        # Mid-rate: above FSK, below the OFDM profile.
        assert 2_000 <= modem.config.raw_bit_rate <= 10_000

    def test_airtime_estimate(self, modem):
        wave = modem.transmit(bytes(100))
        est = modem.transmission_seconds(100)
        assert wave.size / modem.config.sample_rate == pytest.approx(est, rel=0.05)

    def test_payload_bounds(self, modem):
        with pytest.raises(ValueError):
            modem.transmit(b"")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GmskConfig(symbol_rate=7_000)  # non-integer samples per symbol
        with pytest.raises(ValueError):
            GmskConfig(bt=0.01)
        with pytest.raises(ValueError):
            GmskConfig(carrier_hz=23_000, symbol_rate=4_800)


class TestAudioQr:
    @pytest.fixture(scope="class")
    def modem(self) -> AudioQrModem:
        return AudioQrModem()

    def test_roundtrip(self, modem):
        assert modem.receive(modem.transmit(b"beacon")) == [b"beacon"]

    def test_rate_is_audioqr_class(self, modem):
        assert 50 <= modem.config.raw_bit_rate <= 200  # "about 100 bps"

    def test_band_is_near_ultrasonic(self, modem):
        from repro.dsp.spectrum import band_power_db

        wave = modem.transmit(b"ultrasonic")
        inband = band_power_db(wave, 48_000, 17_500, 19_500)
        audible = band_power_db(wave, 48_000, 300, 4_000)
        assert inband - audible > 30

    def test_negative_snr_decodes(self, modem):
        """The long-range trick: chirp processing gain below 0 dB SNR."""
        rng = np.random.default_rng(2)
        payload = b"far away"
        wave = modem.transmit(payload)
        sig_p = np.mean(wave**2)
        noisy = wave + rng.normal(0, np.sqrt(sig_p * 10**0.4), wave.size)  # -4 dB
        assert modem.receive(noisy) == [payload]

    def test_crushing_noise_fails_cleanly(self, modem):
        rng = np.random.default_rng(3)
        wave = modem.transmit(b"far away")
        assert modem.receive(wave + rng.normal(0, 8.0, wave.size)) == []

    def test_airtime(self, modem):
        wave = modem.transmit(bytes(20))
        assert wave.size / 48_000 == pytest.approx(
            modem.transmission_seconds(20), rel=0.02
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AudioQrConfig(band_low_hz=20_000, band_high_hz=19_000)
        with pytest.raises(ValueError):
            AudioQrConfig(symbol_duration_s=0)

    def test_payload_bounds(self, modem):
        with pytest.raises(ValueError):
            modem.transmit(bytes(256))
