"""Catalog announcements (the broadcast programme guide)."""

import pytest

from repro.transport.framing import FrameType
from repro.transport.metadata import (
    CATALOG_PAGE_ID,
    CatalogAnnouncement,
    CatalogEntryInfo,
)


def _announcement(n: int = 3) -> CatalogAnnouncement:
    entries = [
        CatalogEntryInfo(f"site{i}.pk/", i, i % 4, 100_000 + i, 30.0 * i)
        for i in range(n)
    ]
    return CatalogAnnouncement("lahore-93.7", entries)


class TestSerialization:
    def test_roundtrip(self):
        a = _announcement()
        restored = CatalogAnnouncement.from_bytes(a.to_bytes())
        assert restored.station_id == "lahore-93.7"
        assert restored.entries == a.entries

    def test_empty_catalog(self):
        a = CatalogAnnouncement("x", [])
        assert CatalogAnnouncement.from_bytes(a.to_bytes()).entries == []

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CatalogAnnouncement.from_bytes(b"XXXX" + bytes(10))

    def test_truncation_rejected(self):
        data = _announcement().to_bytes()
        with pytest.raises(ValueError):
            CatalogAnnouncement.from_bytes(data[: len(data) - 4])

    def test_url_length_validated(self):
        with pytest.raises(ValueError):
            CatalogEntryInfo("x" * 300, 0, 0, 1, 0.0)


class TestFraming:
    def test_frames_typed_and_addressed(self):
        frames = _announcement(40).to_frames()
        assert len(frames) >= 2  # large catalog spans frames
        for f in frames:
            assert f.header.frame_type == FrameType.METADATA
            assert f.header.page_id == CATALOG_PAGE_ID

    def test_reassembly(self):
        a = _announcement(40)
        frames = a.to_frames()
        restored = CatalogAnnouncement.from_frames(frames[::-1])
        assert restored is not None
        assert restored.entries == a.entries

    def test_incomplete_returns_none(self):
        frames = _announcement(40).to_frames()
        assert CatalogAnnouncement.from_frames(frames[:-1]) is None
        assert CatalogAnnouncement.from_frames([]) is None


class TestClientIngestion:
    def test_upcoming_view(self, page_image):
        from repro.client.client import ClientProfile, SonicClient
        from repro.sim.geometry import Location

        client = SonicClient(
            ClientProfile("u", Location(31.5, 74.3), connection="cable")
        )
        frames = _announcement(5).to_frames()
        client.on_frames(list(frames), now=1.0)
        assert len(client.upcoming) == 5
        assert "site2.pk/" in client.upcoming
        assert client.upcoming["site2.pk/"].size_bytes == 100_002

    def test_delivery_clears_upcoming(self, page_image):
        from repro.client.client import ClientProfile, SonicClient
        from repro.sim.geometry import Location
        from repro.transport.bundle import BundleTransport, PageBundle
        from repro.web.clickmap import ClickMap

        client = SonicClient(
            ClientProfile("u", Location(31.5, 74.3), connection="cable")
        )
        announcement = CatalogAnnouncement(
            "s", [CatalogEntryInfo("a.pk/", 4, 0, 10, 5.0)]
        )
        client.on_frames(list(announcement.to_frames()), now=1.0)
        assert "a.pk/" in client.upcoming
        bundle = PageBundle("a.pk/", page_image, ClickMap())
        client.on_frames(
            BundleTransport().chunk(bundle.to_bytes(), page_id=4), now=2.0
        )
        assert "a.pk/" not in client.upcoming
        assert "a.pk/" in client.cache


class TestServerBroadcast:
    def test_server_announces_queue(self):
        from repro.core.config import SystemConfig
        from repro.core.system import SonicSystem

        system = SonicSystem(
            SystemConfig(n_sites=2, render_width=360, max_pixel_height=800)
        )
        tx = system.registry.all()[0]
        count = system.server.broadcast_catalog(tx, system.clock.now)
        assert count > 0
        system.run(seconds=120, step_s=5)
        client = system.client("user-b")
        # The announcement outranks page traffic, so the upcoming view
        # fills before the catalog itself is fully delivered.
        assert client.upcoming or len(client.cache.urls()) > 0
