"""Bit/byte conversion invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits, pad_bits


class TestBytesBits:
    def test_single_byte_msb_first(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01").tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    @given(st.binary(min_size=0, max_size=200))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones((2, 8), dtype=np.uint8))


class TestIntBits:
    @given(st.integers(min_value=0, max_value=2**24 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 24)) == value

    def test_msb_first(self):
        assert int_to_bits(5, 4).tolist() == [0, 1, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)


class TestPadBits:
    def test_already_aligned(self):
        bits = np.ones(8, dtype=np.uint8)
        assert pad_bits(bits, 8).size == 8

    def test_pads_up(self):
        out = pad_bits(np.ones(5, dtype=np.uint8), 8)
        assert out.size == 8
        assert out[5:].tolist() == [0, 0, 0]

    def test_pad_value(self):
        out = pad_bits(np.zeros(3, dtype=np.uint8), 4, value=1)
        assert out.tolist() == [0, 0, 0, 1]
