"""Page bundles and chunked byte transport."""

import numpy as np
import pytest

from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.framing import PAYLOAD_SIZE
from repro.web.clickmap import ClickMap, ClickRegion


@pytest.fixture(scope="module")
def bundle(page_image) -> PageBundle:
    cm = ClickMap([ClickRegion(10, 20, 100, 30, "test.pk/a")])
    return PageBundle("test.pk/", page_image, cm, expiry_hours=12.0, quality=30)


class TestPageBundle:
    def test_roundtrip(self, bundle, page_image):
        restored = PageBundle.from_bytes(bundle.to_bytes())
        assert restored.url == "test.pk/"
        assert restored.expiry_hours == 12.0
        assert restored.quality == 30
        assert restored.image.shape == page_image.shape
        assert restored.clickmap.regions == bundle.clickmap.regions

    def test_image_lossy_but_close(self, bundle, page_image):
        from repro.imaging.metrics import psnr_db

        restored = PageBundle.from_bytes(bundle.to_bytes())
        assert psnr_db(page_image, restored.image) > 20

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            PageBundle.from_bytes(b"XXXX" + bytes(40))


class TestBundleTransport:
    def test_chunk_count(self):
        bt = BundleTransport()
        assert bt.frames_needed(1) == 1
        assert bt.frames_needed(PAYLOAD_SIZE) == 1
        assert bt.frames_needed(PAYLOAD_SIZE + 1) == 2

    def test_reassemble_complete(self, bundle):
        bt = BundleTransport()
        data = bundle.to_bytes()
        frames = bt.chunk(data, page_id=9)
        assert bt.reassemble(frames) == data

    def test_reassemble_out_of_order_and_duplicates(self, bundle):
        bt = BundleTransport()
        data = bundle.to_bytes()
        frames = bt.chunk(data)
        shuffled = frames[::-1] + frames[:3]
        assert bt.reassemble(shuffled) == data

    def test_incomplete_returns_none(self, bundle):
        bt = BundleTransport()
        frames = bt.chunk(bundle.to_bytes())
        assert bt.reassemble(frames[:-1]) is None
        assert bt.reassemble([]) is None

    def test_version_tagging(self):
        bt = BundleTransport()
        frames_v1 = bt.chunk(bytes(200), page_id=1, version=1)
        frames_v2 = bt.chunk(bytes(200), page_id=1, version=2)
        assert all(f.header.col == 1 for f in frames_v1)
        assert all(f.header.col == 2 for f in frames_v2)
