"""Click maps: hit testing, scaling, wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.web.clickmap import ClickMap, ClickRegion


def region_strategy():
    return st.builds(
        ClickRegion,
        x=st.integers(0, 2000),
        y=st.integers(0, 20_000),
        width=st.integers(1, 1000),
        height=st.integers(1, 500),
        href=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=60,
        ),
    )


class TestHitTest:
    def test_inside_outside(self):
        cm = ClickMap([ClickRegion(10, 10, 100, 20, "a.pk/x")])
        assert cm.hit_test(10, 10) == "a.pk/x"
        assert cm.hit_test(109, 29) == "a.pk/x"
        assert cm.hit_test(110, 10) is None
        assert cm.hit_test(9, 10) is None

    def test_topmost_region_wins(self):
        cm = ClickMap(
            [ClickRegion(0, 0, 50, 50, "below"), ClickRegion(10, 10, 10, 10, "above")]
        )
        assert cm.hit_test(12, 12) == "above"
        assert cm.hit_test(2, 2) == "below"

    def test_empty_map(self):
        assert ClickMap().hit_test(5, 5) is None


class TestScaling:
    def test_scale_factor_applied(self):
        """The paper scales click maps by screen_width / 1080."""
        cm = ClickMap([ClickRegion(108, 216, 540, 108, "x")])
        scaled = cm.scaled(360 / 1080)
        r = scaled.regions[0]
        assert (r.x, r.y, r.width, r.height) == (36, 72, 180, 36)

    def test_scaled_hit_test_consistent(self):
        cm = ClickMap([ClickRegion(100, 100, 300, 60, "target")])
        factor = 0.5
        scaled = cm.scaled(factor)
        assert scaled.hit_test(int(200 * factor), int(120 * factor)) == "target"

    def test_minimum_size_one(self):
        cm = ClickMap([ClickRegion(0, 0, 2, 2, "x")]).scaled(0.1)
        assert cm.regions[0].width >= 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ClickMap().scaled(0)


class TestWireFormat:
    @given(st.lists(region_strategy(), max_size=20))
    def test_roundtrip(self, regions):
        cm = ClickMap(regions)
        restored = ClickMap.from_bytes(cm.to_bytes())
        assert restored.regions == cm.regions

    def test_unicode_href(self):
        cm = ClickMap([ClickRegion(0, 0, 1, 1, "пример.pk/страница")])
        assert ClickMap.from_bytes(cm.to_bytes()).regions == cm.regions

    def test_href_too_long(self):
        cm = ClickMap([ClickRegion(0, 0, 1, 1, "x" * 300)])
        with pytest.raises(ValueError):
            cm.to_bytes()
