"""Batched Reed-Solomon errata chain vs the scalar golden reference.

``decode_blocks`` now runs Berlekamp-Massey, the Chien search, and the
Forney correction over the whole batch of syndrome-failing blocks at
once.  These tests pin the batched chain to ``decode_ref`` block by
block: corrected bytes, errata counts, success flags, and the *exact*
failure strings for beyond-capacity inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fec.reed_solomon import ReedSolomon, RSDecodeError


@pytest.fixture(scope="module")
def rs16() -> ReedSolomon:
    return ReedSolomon(nsym=16)


def _assert_matches_reference(rs, blocks, erase):
    report = rs.decode_blocks(blocks, erase)
    for i in range(blocks.shape[0]):
        ep = erase[i] if erase is not None else None
        try:
            ref = rs.decode_ref(blocks[i].tobytes(), ep)
        except RSDecodeError as exc:
            assert not report.ok[i]
            assert report.errors[i] == str(exc)
        else:
            assert report.ok[i] and report.errors[i] is None
            assert report.data[i].tobytes() == ref.data
            assert int(report.corrected[i]) == ref.corrected
    return report


class TestErrorsUpToCapacity:
    @settings(max_examples=30, deadline=None)
    @given(
        n_blocks=st.integers(min_value=1, max_value=12),
        k=st.integers(min_value=1, max_value=239),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_error_loads(self, rs16, n_blocks, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (n_blocks, k), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        length = k + rs16.nsym
        for i in range(n_blocks):
            n_err = int(rng.integers(0, rs16.nsym // 2 + 1))
            pos = rng.choice(length, size=n_err, replace=False)
            blocks[i, pos] ^= rng.integers(1, 256, n_err).astype(np.uint8)
        report = _assert_matches_reference(rs16, blocks, None)
        assert report.all_ok
        assert (report.data == data).all()

    def test_mixed_clean_and_errored_batch(self, rs16):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, (8, 100), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        blocks[1, 3] ^= 0xFF
        blocks[4, [0, 50, 99, 110]] ^= 0x5A
        blocks[6, 10:18] ^= 7  # exactly t = 8 errors
        report = _assert_matches_reference(rs16, blocks, None)
        assert report.all_ok
        assert list(report.corrected) == [0, 1, 0, 0, 4, 0, 8, 0]


class TestErasureHeavyInputs:
    @settings(max_examples=30, deadline=None)
    @given(
        n_blocks=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=4, max_value=239),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_erasures_and_errors_within_budget(self, rs16, n_blocks, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (n_blocks, k), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        length = k + rs16.nsym
        erase: list[list[int] | None] = []
        for i in range(n_blocks):
            n_era = int(rng.integers(0, rs16.nsym + 1))
            budget = (rs16.nsym - n_era) // 2
            n_err = int(rng.integers(0, budget + 1))
            pos = rng.choice(length, size=n_era + n_err, replace=False)
            era = sorted(int(p) for p in pos[:n_era])
            for p in era:
                blocks[i, p] = int(rng.integers(0, 256))
            if n_err:
                blocks[i, pos[n_era:]] ^= rng.integers(
                    1, 256, n_err
                ).astype(np.uint8)
            erase.append(era or None)
        report = _assert_matches_reference(rs16, blocks, erase)
        assert report.all_ok
        assert (report.data == data).all()

    def test_full_erasure_budget(self, rs16):
        """nsym erasures and zero errors is still decodable."""
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, (3, 60), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        erase = []
        for i in range(3):
            pos = sorted(int(p) for p in rng.choice(76, 16, replace=False))
            blocks[i, pos] = 0xEE
            erase.append(pos)
        report = _assert_matches_reference(rs16, blocks, erase)
        assert report.all_ok
        assert list(report.corrected) == [16, 16, 16]


class TestBeyondCapacity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        extra=st.integers(min_value=1, max_value=6),
    )
    def test_too_many_errors_fail_like_reference(self, rs16, seed, extra):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (4, 120), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        length = 120 + rs16.nsym
        for i in range(4):
            n_err = rs16.nsym // 2 + extra
            pos = rng.choice(length, size=n_err, replace=False)
            blocks[i, pos] ^= rng.integers(1, 256, n_err).astype(np.uint8)
        _assert_matches_reference(rs16, blocks, None)

    def test_failures_leave_other_blocks_intact(self, rs16):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 256, (5, 80), dtype=np.uint8)
        blocks = rs16.encode_blocks(data).copy()
        # Block 2 is unrecoverable; 0/4 clean; 1/3 correctable.
        blocks[1, 7] ^= 1
        blocks[2, rng.choice(96, 14, replace=False)] ^= 0x3C
        blocks[3, [10, 20]] ^= 0x77
        report = _assert_matches_reference(rs16, blocks, None)
        assert list(report.ok) == [True, True, False, True, True]
        assert (report.data[[0, 1, 3, 4]] == data[[0, 1, 3, 4]]).all()

    @pytest.mark.parametrize("nsym", [4, 8, 32])
    def test_other_strengths(self, nsym):
        rs = ReedSolomon(nsym)
        rng = np.random.default_rng(nsym)
        k = rs.max_data_len
        data = rng.integers(0, 256, (6, k), dtype=np.uint8)
        blocks = rs.encode_blocks(data).copy()
        for i in range(6):
            n_err = int(rng.integers(0, nsym + 2))
            pos = rng.choice(k + nsym, size=n_err, replace=False)
            blocks[i, pos] ^= rng.integers(1, 256, n_err).astype(np.uint8)
        _assert_matches_reference(rs, blocks, None)
