"""SONIC client: cache, catalog, browser, frame ingestion, uplink."""

import numpy as np
import pytest

from repro.client.browser import Browser, ClickOutcome
from repro.client.cache import ClientCache
from repro.client.catalog import Catalog
from repro.client.client import ClientProfile, SonicClient
from repro.sim.geometry import Location
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.sms.protocol import parse_uplink, PageRequest
from repro.transport.bundle import BundleTransport, PageBundle
from repro.web.clickmap import ClickMap, ClickRegion

_LAHORE = Location(31.5204, 74.3587)


def _bundle(url, page_image, hrefs=(), expiry_hours=2.0):
    cm = ClickMap(
        [ClickRegion(10, 10 + 40 * i, 80, 30, href) for i, href in enumerate(hrefs)]
    )
    return PageBundle(url, page_image, cm, expiry_hours=expiry_hours)


class TestClientCache:
    def test_expiry_honours_server_ttl(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, expiry_hours=1.0), now=0.0)
        assert cache.get("a.pk/", 1_800.0) is not None
        assert cache.get("a.pk/", 4_000.0) is None

    def test_capacity_eviction(self, page_image):
        cache = ClientCache(capacity=2)
        for i, t in enumerate((0.0, 1.0, 2.0)):
            cache.put(_bundle(f"s{i}.pk/", page_image), now=t)
        assert "s0.pk/" not in cache
        assert "s2.pk/" in cache


class TestCatalog:
    def test_groups_by_domain(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.put(_bundle("a.pk/story", page_image), 1.0)
        cache.put(_bundle("b.pk/", page_image), 2.0)
        catalog = Catalog(cache)
        grouped = catalog.by_domain(10.0)
        assert len(grouped["a.pk"]) == 2
        assert len(grouped["b.pk"]) == 1

    def test_popularity_ordering(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.put(_bundle("b.pk/", page_image), 0.0)
        catalog = Catalog(cache)
        for _ in range(3):
            catalog.record_view("b.pk/")
        assert catalog.by_popularity(1.0)[0].url == "b.pk/"

    def test_expired_pages_vanish(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, expiry_hours=0.5), 0.0)
        catalog = Catalog(cache)
        assert catalog.entries(10.0)
        assert catalog.entries(3_600.0) == []


class TestBrowser:
    def test_open_and_history(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image), 0.0)
        browser = Browser(cache)
        assert browser.open("a.pk/", 1.0).url == "a.pk/"
        assert browser.history == ["a.pk/"]
        assert browser.open("missing.pk/", 1.0) is None

    def test_click_cache_hit(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, hrefs=("a.pk/next",)), 0.0)
        cache.put(_bundle("a.pk/next", page_image), 0.0)
        browser = Browser(cache)
        browser.open("a.pk/", 1.0)
        result = browser.click(15, 15, 1.0)
        assert result.outcome == ClickOutcome.CACHE_HIT
        assert browser.current.url == "a.pk/next"

    def test_click_needs_uplink(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, hrefs=("a.pk/missing",)), 0.0)
        browser = Browser(cache)
        browser.open("a.pk/", 1.0)
        result = browser.click(15, 15, 1.0)
        assert result.outcome == ClickOutcome.NEEDS_UPLINK
        assert result.href == "a.pk/missing"

    def test_click_outside_regions(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, hrefs=("a.pk/x",)), 0.0)
        browser = Browser(cache)
        browser.open("a.pk/", 1.0)
        assert browser.click(400, 400, 1.0).outcome == ClickOutcome.NO_TARGET

    def test_scale_factor_translates_taps(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image, hrefs=("a.pk/t",)), 0.0)
        cache.put(_bundle("a.pk/t", page_image), 0.0)
        browser = Browser(cache, scale_factor=1 / 3)
        browser.open("a.pk/", 1.0)
        # Region is at (10..90, 10..40) in source coords -> (3..30, 3..13) on device.
        assert browser.click(5, 5, 1.0).outcome == ClickOutcome.CACHE_HIT

    def test_back_navigation(self, page_image):
        cache = ClientCache()
        cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.put(_bundle("b.pk/", page_image), 0.0)
        browser = Browser(cache)
        browser.open("a.pk/", 1.0)
        browser.open("b.pk/", 2.0)
        assert browser.back(3.0).url == "a.pk/"


class TestSonicClient:
    def _profiles(self):
        return {
            "a": ClientProfile("user-a", _LAHORE, connection="air", distance_m=1.0),
            "c": ClientProfile(
                "user-c", _LAHORE, has_sms=True, phone_number="+92300999"
            ),
        }

    def test_frame_ingestion_completes_bundle(self, page_image):
        client = SonicClient(self._profiles()["a"])
        bundle = _bundle("a.pk/", page_image)
        frames = BundleTransport().chunk(bundle.to_bytes(), page_id=4)
        done = client.on_frames(frames, now=10.0)
        assert [b.url for b in done] == ["a.pk/"]
        assert "a.pk/" in client.cache

    def test_gaps_fill_across_cycles(self, page_image):
        client = SonicClient(self._profiles()["a"])
        bundle = _bundle("a.pk/", page_image)
        frames = BundleTransport().chunk(bundle.to_bytes(), page_id=4)
        lossy = [f if i % 7 else None for i, f in enumerate(frames)]
        assert client.on_frames(lossy, 1.0) == []
        assert 0 < client.reception_progress(4) < 1
        done = client.on_frames(frames, 2.0)  # second carousel cycle
        assert len(done) == 1
        assert client.frames_lost > 0

    def test_version_mixing_prevented(self, page_image):
        client = SonicClient(self._profiles()["a"])
        v1 = BundleTransport().chunk(
            _bundle("a.pk/", page_image).to_bytes(), page_id=4, version=1
        )
        dark = (page_image // 2).astype(np.uint8)
        v2 = BundleTransport().chunk(
            _bundle("a.pk/", dark).to_bytes(), page_id=4, version=2
        )
        # Half of v1 then all of v2: v2 must complete cleanly.
        client.on_frames(v1[: len(v1) // 2], 1.0)
        done = client.on_frames(v2, 2.0)
        assert len(done) == 1

    def test_request_requires_sms(self, page_image):
        profiles = self._profiles()
        no_sms = SonicClient(profiles["a"])
        assert not no_sms.request_page("a.pk/", 0.0)

    def test_request_sends_get_with_location(self):
        gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=0)
        client = SonicClient(
            self._profiles()["c"], gateway=gateway, server_number="+92300000"
        )
        assert client.request_page("dawn.pk/", 0.0)
        [msg] = gateway.deliver_due(600.0)
        req = parse_uplink(msg.text)
        assert isinstance(req, PageRequest)
        assert req.url == "dawn.pk/"
        assert req.lat == pytest.approx(_LAHORE.lat, abs=1e-3)
        assert "dawn.pk/" in client.pending_requests

    def test_search_sends_find(self):
        from repro.sms.protocol import SearchRequest

        gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        client = SonicClient(
            self._profiles()["c"], gateway=gateway, server_number="+92300000"
        )
        assert client.search("cricket score", 0.0)
        [msg] = gateway.deliver_due(600.0)
        req = parse_uplink(msg.text)
        assert isinstance(req, SearchRequest)
        assert req.query == "cricket score"

    def test_search_requires_sms(self):
        client = SonicClient(self._profiles()["a"])
        assert not client.search("anything", 0.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ClientProfile("x", _LAHORE, connection="wifi")
        with pytest.raises(ValueError):
            ClientProfile("x", _LAHORE, has_sms=True)  # no number

    def test_scale_factor(self):
        profile = ClientProfile("x", _LAHORE, screen_width=360)
        assert profile.scale_factor == pytest.approx(1 / 3)
