"""OFDM PHY: symbol geometry, modulation round trips, equalisation."""

import numpy as np
import pytest

from repro.modem.constellation import Constellation
from repro.modem.ofdm import OfdmConfig, OfdmPhy


@pytest.fixture(scope="module")
def cfg() -> OfdmConfig:
    return OfdmConfig()


@pytest.fixture(scope="module")
def phy(cfg) -> OfdmPhy:
    return OfdmPhy(cfg)


class TestConfig:
    def test_default_matches_paper(self, cfg):
        # 92 subcarriers centred near SONIC's 9.2 kHz audio carrier.
        assert cfg.num_subcarriers == 92
        assert 8_500 < cfg.center_frequency_hz < 10_000
        assert cfg.bandwidth_hz < 15_000  # inside the FM mono band

    def test_pilot_and_data_partition(self, cfg):
        pilots = set(cfg.pilot_positions.tolist())
        data = set(cfg.data_positions.tolist())
        assert pilots.isdisjoint(data)
        assert pilots | data == set(range(cfg.num_subcarriers))

    def test_raw_rate_near_10kbps_class(self, cfg):
        # The paper's profile "reaches 10 kbps".
        assert 8_000 < cfg.raw_bit_rate() < 20_000

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            OfdmConfig(fft_size=1000)
        with pytest.raises(ValueError):
            OfdmConfig(cp_len=0)
        with pytest.raises(ValueError):
            OfdmConfig(first_bin=500, num_subcarriers=92)  # beyond Nyquist bin
        with pytest.raises(ValueError):
            OfdmConfig(pilot_spacing=1)


class TestModulation:
    def test_waveform_length(self, phy, cfg):
        bits = np.zeros(cfg.bits_per_symbol * 3, dtype=np.uint8)
        wave = phy.modulate_bits(bits)
        assert wave.size == 3 * cfg.symbol_len

    def test_waveform_is_real_and_bounded(self, phy, cfg):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, cfg.bits_per_symbol * 4).astype(np.uint8)
        wave = phy.modulate_bits(bits)
        assert wave.dtype == np.float64
        assert np.max(np.abs(wave)) < 1.0

    def test_energy_in_band(self, phy, cfg):
        from repro.dsp.spectrum import band_power_db

        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, cfg.bits_per_symbol * 8).astype(np.uint8)
        wave = phy.modulate_bits(bits)
        lo = cfg.first_bin * cfg.sample_rate / cfg.fft_size
        hi = (cfg.first_bin + cfg.num_subcarriers) * cfg.sample_rate / cfg.fft_size
        inband = band_power_db(wave, cfg.sample_rate, lo, hi)
        outband = band_power_db(wave, cfg.sample_rate, 500, 3_000)
        assert inband - outband > 25

    def test_cyclic_prefix_present(self, phy, cfg):
        wave = phy.training_waveform()
        assert np.allclose(wave[: cfg.cp_len], wave[-cfg.cp_len :])


class TestDemodulation:
    def _frame(self, phy, cfg, seed=0, n_sym=4):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, cfg.bits_per_symbol * n_sym).astype(np.uint8)
        wave = np.concatenate([phy.training_waveform(), phy.modulate_bits(bits)])
        return bits, wave

    def test_clean_roundtrip(self, phy, cfg):
        bits, wave = self._frame(phy, cfg)
        result = phy.demodulate(wave, 0, 4)
        out = phy.constellation.demap_hard(result.data_symbols.reshape(-1))
        assert np.array_equal(out, bits)

    def test_channel_gain_and_phase_equalised(self, phy, cfg):
        bits, wave = self._frame(phy, cfg, seed=2)
        # A static linear channel: gain + delay-free phase shaping via
        # a mild low-pass FIR.
        from scipy import signal

        taps = signal.firwin(31, 0.45)
        shaped = signal.lfilter(taps, 1.0, np.concatenate([wave * 0.6, np.zeros(64)]))
        # lfilter delays by (ntaps-1)/2; demodulate from that offset.
        result = phy.demodulate(shaped, 15, 4)
        out = phy.constellation.demap_hard(result.data_symbols.reshape(-1))
        assert np.array_equal(out, bits)

    def test_snr_estimate_tracks_noise(self, phy, cfg):
        bits, wave = self._frame(phy, cfg, seed=3, n_sym=6)
        rng = np.random.default_rng(3)
        sig_p = np.mean(wave**2)
        est = {}
        for snr_db in (10, 25):
            noise = rng.normal(0, np.sqrt(sig_p / 10 ** (snr_db / 10)), wave.size)
            est[snr_db] = phy.demodulate(wave + noise, 0, 6).snr_db
        assert est[25] > est[10] + 8

    def test_short_buffer_rejected(self, phy, cfg):
        _, wave = self._frame(phy, cfg)
        with pytest.raises(ValueError):
            phy.demodulate(wave, 0, 10)

    def test_timing_offset_within_cp_tolerated(self, phy, cfg):
        bits, wave = self._frame(phy, cfg, seed=4)
        padded = np.concatenate([np.zeros(10), wave, np.zeros(200)])
        # Start 6 samples early: still inside the cyclic prefix.
        result = phy.demodulate(padded, 4, 4)
        out = phy.constellation.demap_hard(result.data_symbols.reshape(-1))
        assert np.array_equal(out, bits)


class TestSymbolCounting:
    def test_n_symbols_for_bits(self, phy, cfg):
        per = cfg.bits_per_symbol
        assert phy.n_symbols_for_bits(1) == 1
        assert phy.n_symbols_for_bits(per) == 1
        assert phy.n_symbols_for_bits(per + 1) == 2
