"""Shared fixtures: small deterministic inputs that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.modem.frame import FecConfig
from repro.modem.modem import Modem
from repro.modem.ofdm import OfdmConfig
from repro.modem.profiles import ModemProfile
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def page_image() -> np.ndarray:
    """A small rendered webpage screenshot (deterministic)."""
    gen = SiteGenerator(seed=1, n_sites=1)
    renderer = PageRenderer(width=480, max_height=900)
    return renderer.render(gen.page(gen.all_urls()[0], 0)).image


@pytest.fixture(scope="session")
def photo_image() -> np.ndarray:
    """A dense photo-like image exercising the codec's AC paths."""
    r = np.random.default_rng(7)
    base = r.integers(0, 256, (96, 128, 3)).astype(np.float64)
    # Smooth it a little so it is compressible but non-trivial.
    kernel = np.ones(5) / 5
    for axis in (0, 1):
        base = np.apply_along_axis(
            lambda v: np.convolve(v, kernel, mode="same"), axis, base
        )
    return np.clip(base, 0, 255).astype(np.uint8)


@pytest.fixture(scope="session")
def quick_profile() -> ModemProfile:
    """A reduced-size OFDM profile for fast modem tests."""
    return ModemProfile(
        name="test-quick",
        ofdm=OfdmConfig(fft_size=512, cp_len=64, first_bin=80, num_subcarriers=48),
        fec=FecConfig(payload_size=100, rs_nsym=8, rs_max_block=64, conv="v27"),
        preamble_duration_s=0.02,
    )


@pytest.fixture(scope="session")
def quick_modem(quick_profile) -> Modem:
    return Modem(quick_profile)


@pytest.fixture(scope="session")
def site_generator() -> SiteGenerator:
    return SiteGenerator(seed=42)
