"""Synthetic user study (Figure 5 engine)."""

import numpy as np
import pytest

from repro.core.pipeline import simulate_column_loss
from repro.sim.userstudy import RatingRecord, StudyConfig, UserStudy


@pytest.fixture(scope="module")
def study() -> UserStudy:
    return UserStudy(StudyConfig(n_raters=40, screenshots_per_rater=10, seed=3))


@pytest.fixture(scope="module")
def screenshots(study, page_image):
    shots = []
    for loss in (0.05, 0.20):
        sim = simulate_column_loss(page_image, loss, seed=1)
        shots.extend(study.screenshot_stats(0, page_image, sim.missing, loss))
    return shots


class TestDamageMeasurement:
    def test_identical_images_zero_damage(self, study, page_image):
        content, text = study.measure_damage(page_image, page_image)
        assert content == 0.0
        assert text == 0.0

    def test_damage_grows_with_loss(self, study, page_image):
        damages = []
        for loss in (0.05, 0.20, 0.50):
            sim = simulate_column_loss(page_image, loss, seed=2)
            content, _ = study.measure_damage(page_image, sim.damaged)
            damages.append(content)
        assert damages[0] < damages[1] < damages[2]

    def test_interpolation_reduces_damage(self, screenshots):
        by_key = {(s.loss_rate, s.interpolated): s for s in screenshots}
        for loss in (0.05, 0.20):
            assert (
                by_key[(loss, True)].content_damage
                < by_key[(loss, False)].content_damage
            )

    def test_shape_mismatch_rejected(self, study, page_image):
        with pytest.raises(ValueError):
            study.measure_damage(page_image, page_image[:-1])


class TestRatingModel:
    def test_mean_rating_monotone(self, study):
        r = [study.mean_rating(d, d, "content") for d in (0.0, 0.1, 0.3, 0.6)]
        assert all(a > b for a, b in zip(r, r[1:]))
        assert r[0] == pytest.approx(10.0)

    def test_text_question_harsher_at_same_damage(self, study):
        # At equal damage the text question uses the steeper curve.
        assert study.mean_rating(0.3, 0.3, "text") <= study.mean_rating(
            0.3, 0.3, "content"
        )
        assert 0 <= study.mean_rating(0.3, 0.3, "text") <= 10

    def test_content_rating_sensitive_to_text_damage(self, study):
        clean_text = study.mean_rating(0.1, 0.0, "content")
        smeared_text = study.mean_rating(0.1, 0.4, "content")
        assert smeared_text < clean_text

    def test_ratings_clipped_to_likert(self, study, screenshots):
        records = study.simulate_ratings(screenshots)
        assert records
        assert all(0 <= r.rating <= 10 for r in records)

    def test_rater_workload(self, study, screenshots):
        records = study.simulate_ratings(screenshots)
        by_rater = {}
        for r in records:
            by_rater.setdefault(r.rater, set()).add(
                (r.page_index, r.loss_rate, r.interpolated)
            )
        per_rater = {len(v) for v in by_rater.values()}
        # Each rater saw at most screenshots_per_rater screenshots.
        assert max(per_rater) <= study.config.screenshots_per_rater

    def test_deterministic(self, study, screenshots):
        a = study.simulate_ratings(screenshots)
        b = study.simulate_ratings(screenshots)
        assert a == b

    def test_empty_input(self, study):
        assert study.simulate_ratings([]) == []


class TestAggregation:
    def test_median_per_page_filters_cell(self, study, screenshots):
        records = study.simulate_ratings(screenshots)
        medians = UserStudy.median_per_page(records, 0.05, True, "content")
        assert medians
        assert all(0 <= m <= 10 for m in medians)

    def test_figure5_shape(self, study, screenshots):
        """Interpolation lifts median content ratings (the paper's claim)."""
        records = study.simulate_ratings(screenshots)
        for loss in (0.05, 0.20):
            with_i = np.median(
                UserStudy.median_per_page(records, loss, True, "content")
            )
            without = np.median(
                UserStudy.median_per_page(records, loss, False, "content")
            )
            assert with_i >= without + 1.0
