"""Synthetic site generator: corpus structure, determinism, churn."""

import pytest

from repro.web.dom import Header, Heading
from repro.web.sites import CATEGORY_REFRESH_HOURS, SiteGenerator


class TestCorpus:
    def test_paper_dimensions(self, site_generator):
        """25 sites, 100 pages: 25 landing + 75 internal (Section 4)."""
        sites = site_generator.websites()
        assert len(sites) == 25
        urls = site_generator.all_urls()
        assert len(urls) == 100
        assert sum(1 for u in urls if u.endswith("/")) == 25

    def test_all_pk_domains(self, site_generator):
        for site in site_generator.websites():
            assert site.domain.endswith(".pk") or ".pk" in site.domain

    def test_category_mix(self, site_generator):
        categories = {s.category for s in site_generator.websites()}
        assert {"news", "ecommerce", "government"} <= categories

    def test_ranks_sequential(self, site_generator):
        assert [s.rank for s in site_generator.websites()] == list(range(1, 26))

    def test_large_corpus_n200(self):
        """Figure 4(c)'s N=200 projection needs 50 .pk sites."""
        gen = SiteGenerator(seed=1, n_sites=50)
        assert len(gen.all_urls()) == 200

    def test_unknown_domain_raises(self, site_generator):
        with pytest.raises(KeyError):
            site_generator.website("not-a-site.pk")


class TestPages:
    def test_deterministic(self, site_generator):
        url = site_generator.all_urls()[0]
        a = site_generator.page(url, 5)
        b = site_generator.page(url, 5)
        assert a.elements == b.elements

    def test_landing_has_header_and_stories(self, site_generator):
        page = site_generator.page(site_generator.websites()[0].landing_url, 0)
        assert isinstance(page.elements[0], Header)
        assert any(isinstance(e, Heading) for e in page.elements)

    def test_internal_links_stay_on_site(self, site_generator):
        site = site_generator.websites()[0]
        page = site_generator.page(site.landing_url, 0)
        for href in page.internal_links():
            if href.startswith("action:"):
                continue
            assert href.startswith(site.domain)

    def test_article_pages_render(self, site_generator):
        site = site_generator.websites()[0]
        url = f"{site.domain}{site.internal_paths[0]}"
        page = site_generator.page(url, 0)
        assert len(page.elements) > 5


class TestChurn:
    def test_epoch_monotone(self, site_generator):
        url = site_generator.all_urls()[0]
        epochs = [site_generator.effective_epoch(url, h) for h in range(0, 48, 4)]
        assert all(a <= b for a, b in zip(epochs, epochs[1:]))

    def test_changed_at_consistent_with_epoch(self, site_generator):
        url = site_generator.all_urls()[0]
        for hour in range(1, 30):
            changed = site_generator.changed_at(url, hour)
            delta = site_generator.effective_epoch(
                url, hour
            ) != site_generator.effective_epoch(url, hour - 1)
            assert changed == delta

    def test_epoch_memo_independent_of_query_order(self):
        """The incremental memo must agree with the direct tick-by-tick
        definition whatever order hours are asked in."""
        import random

        from repro.util.rng import derive_rng

        def direct(g, url, hour):
            cadence = CATEGORY_REFRESH_HOURS[
                g.website(url.partition("/")[0]).category
            ]
            epoch = 0
            for h in range(cadence, hour + 1, cadence):
                gate = derive_rng(g.seed, "churn", url, h)
                if gate.random() < g.diurnal_activity(h):
                    epoch += 1
            return epoch

        gen = SiteGenerator(seed=13, n_sites=4)
        queries = [(u, h) for u in gen.all_urls() for h in range(-1, 36)]
        random.Random(0).shuffle(queries)
        for url, hour in queries:
            assert gen.effective_epoch(url, hour) == direct(gen, url, hour)

    def test_news_churns_more_than_government(self, site_generator):
        by_cat = {}
        for site in site_generator.websites():
            by_cat.setdefault(site.category, site)
        if "news" in by_cat and "government" in by_cat:
            news_changes = sum(
                site_generator.changed_at(by_cat["news"].landing_url, h)
                for h in range(1, 72)
            )
            gov_changes = sum(
                site_generator.changed_at(by_cat["government"].landing_url, h)
                for h in range(1, 72)
            )
            assert news_changes > gov_changes

    def test_diurnal_activity_shape(self):
        assert SiteGenerator.diurnal_activity(3) < SiteGenerator.diurnal_activity(12)
        assert SiteGenerator.diurnal_activity(12) == 1.0

    def test_content_actually_changes_across_epochs(self, site_generator):
        url = site_generator.all_urls()[0]
        base = site_generator.page(url, 0)
        # Find an hour where a change was gated in.
        for hour in range(1, 48):
            if site_generator.changed_at(url, hour):
                assert site_generator.page(url, hour).elements != base.elements
                return
        pytest.fail("no content change in 48 hours")

    def test_refresh_cadences_defined(self):
        assert CATEGORY_REFRESH_HOURS["news"] == 1
        assert CATEGORY_REFRESH_HOURS["government"] == 24
