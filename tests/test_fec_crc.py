"""CRC implementations against reference values and zlib."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.fec.crc import crc8, crc16_ccitt, crc32_ieee


class TestCrc32:
    @given(st.binary(max_size=300))
    def test_matches_zlib(self, data):
        assert crc32_ieee(data) == zlib.crc32(data)

    def test_known_vector(self):
        # The classic check value for "123456789".
        assert crc32_ieee(b"123456789") == 0xCBF43926

    @given(st.binary(min_size=1, max_size=100), st.binary(min_size=0, max_size=100))
    def test_incremental(self, a, b):
        assert crc32_ieee(b, crc32_ieee(a)) == crc32_ieee(a + b)

    def test_detects_single_bit_flip(self):
        data = bytearray(b"sonic frame payload")
        reference = crc32_ieee(bytes(data))
        data[5] ^= 0x10
        assert crc32_ieee(bytes(data)) != reference


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE check value.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    @given(st.binary(min_size=1, max_size=64))
    def test_flip_detected(self, data):
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc16_ccitt(data) != crc16_ccitt(flipped)


class TestCrc8:
    def test_known_vector(self):
        assert crc8(b"123456789") == 0xF4

    def test_range(self):
        for data in (b"", b"\x00", b"\xff" * 10):
            assert 0 <= crc8(data) <= 0xFF
