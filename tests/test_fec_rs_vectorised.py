"""Vectorised Reed-Solomon equivalence against the scalar golden reference.

The seed's byte-at-a-time implementation survives as ``encode_ref`` /
``decode_ref``; these property tests pin the numpy block path to it
bit-for-bit, including erasures, error loads up to capacity, and
beyond-capacity failures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fec.galois import GF
from repro.fec.reed_solomon import ReedSolomon, RSDecodeError


@pytest.fixture(scope="module")
def rs16() -> ReedSolomon:
    return ReedSolomon(nsym=16)


class TestGaloisTables:
    def test_mul_table_matches_scalar_mul(self):
        table = GF.mul_table
        rng = np.random.default_rng(0)
        for a, b in rng.integers(0, 256, (200, 2)):
            assert int(table[a, b]) == GF.mul(int(a), int(b))

    def test_mul_table_is_read_only(self):
        with pytest.raises(ValueError):
            GF.mul_table[0, 0] = 1

    def test_poly_eval_many_matches_poly_eval(self):
        rng = np.random.default_rng(1)
        poly = rng.integers(0, 256, 9)
        xs = np.arange(256)
        many = GF.poly_eval_many(poly, xs)
        for x in range(256):
            assert many[x] == GF.poly_eval(poly, x)

    def test_exp_vec_matches_exp(self):
        powers = np.arange(-10, 600)
        vec = GF.exp_vec(powers)
        for p, v in zip(powers, vec):
            assert v == GF.exp(int(p))


class TestEncodeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        n_blocks=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=1, max_value=239),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_encode_blocks_matches_reference(self, rs16, n_blocks, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (n_blocks, k), dtype=np.uint8)
        batch = rs16.encode_blocks(data)
        for i in range(n_blocks):
            assert batch[i].tobytes() == rs16.encode_ref(data[i].tobytes())

    @pytest.mark.parametrize("nsym", [2, 4, 8, 32, 64])
    def test_other_strengths(self, nsym):
        rs = ReedSolomon(nsym)
        rng = np.random.default_rng(nsym)
        data = rng.integers(0, 256, (4, rs.max_data_len), dtype=np.uint8)
        batch = rs.encode_blocks(data)
        for i in range(4):
            assert batch[i].tobytes() == rs.encode_ref(data[i].tobytes())

    def test_scalar_wrapper_matches_reference(self, rs16):
        data = bytes(range(100))
        assert rs16.encode(data) == rs16.encode_ref(data)

    def test_validation_matches_reference(self, rs16):
        with pytest.raises(ValueError):
            rs16.encode_blocks(np.zeros((2, 0), dtype=np.uint8))
        with pytest.raises(ValueError):
            rs16.encode_blocks(np.zeros((2, 240), dtype=np.uint8))


class TestDecodeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=20, max_value=239),
        n_errors=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_errors_up_to_capacity(self, rs16, k, n_errors, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (3, k), dtype=np.uint8)
        coded = rs16.encode_blocks(data)
        for i in range(3):
            pos = rng.choice(k + 16, size=n_errors, replace=False)
            coded[i, pos] ^= rng.integers(1, 256, n_errors).astype(np.uint8)
        report = rs16.decode_blocks(coded)
        assert report.all_ok
        for i in range(3):
            ref = rs16.decode_ref(coded[i].tobytes())
            assert report.data[i].tobytes() == ref.data
            assert report.corrected[i] == ref.corrected

    @settings(max_examples=25, deadline=None)
    @given(
        n_erasures=st.integers(min_value=0, max_value=16),
        n_errors=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_erasures_and_errors(self, rs16, n_erasures, n_errors, seed):
        if 2 * n_errors + n_erasures > 16:
            n_errors = (16 - n_erasures) // 2
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (1, 100), dtype=np.uint8)
        coded = rs16.encode_blocks(data)
        corrupt = rng.choice(116, size=n_erasures + n_errors, replace=False)
        for pos in corrupt:
            coded[0, pos] ^= int(rng.integers(1, 256))
        erased = [int(p) for p in corrupt[:n_erasures]]
        report = rs16.decode_blocks(coded, [erased])
        ref = rs16.decode_ref(coded[0].tobytes(), erase_pos=erased)
        assert report.all_ok
        assert report.data[0].tobytes() == ref.data
        assert report.corrected[0] == ref.corrected

    def test_beyond_capacity_flags_block(self, rs16):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, (2, 100), dtype=np.uint8)
        coded = rs16.encode_blocks(data)
        coded[1, :40] ^= rng.integers(1, 256, 40).astype(np.uint8)
        report = rs16.decode_blocks(coded)
        assert bool(report.ok[0]) and not bool(report.ok[1])
        assert report.errors[1] is not None
        with pytest.raises(RSDecodeError):
            rs16.decode_ref(coded[1].tobytes())

    def test_wrapper_raises_like_reference(self, rs16):
        block = bytearray(rs16.encode(bytes(50)))
        for i in range(30):
            block[i] ^= 0xA5
        with pytest.raises(RSDecodeError):
            rs16.decode(bytes(block))
        with pytest.raises(RSDecodeError):
            rs16.decode_ref(bytes(block))

    def test_too_many_erasures(self, rs16):
        coded = rs16.encode_blocks(np.zeros((1, 40), dtype=np.uint8))
        report = rs16.decode_blocks(coded, [list(range(17))])
        assert not report.ok[0]
        with pytest.raises(RSDecodeError):
            rs16.decode(coded[0].tobytes(), erase_pos=list(range(17)))

    def test_erasure_position_validated(self, rs16):
        coded = rs16.encode_blocks(np.zeros((1, 40), dtype=np.uint8))
        with pytest.raises(ValueError):
            rs16.decode_blocks(coded, [[56]])

    def test_mismatched_erasure_list_count(self, rs16):
        coded = rs16.encode_blocks(np.zeros((2, 40), dtype=np.uint8))
        with pytest.raises(ValueError):
            rs16.decode_blocks(coded, [[0]])
