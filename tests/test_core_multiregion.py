"""Multi-transmitter deployments: geographic routing end to end.

"the FM radio infrastructure consists of multiple transmitters (and
frequencies) at different locations ... [the location] is needed by
SONIC server to inform the proper transmitter" (Section 3.1).
"""

import pytest

from repro.client.client import ClientProfile
from repro.core.config import SystemConfig
from repro.core.system import SonicSystem
from repro.server.transmitters import Transmitter
from repro.sim.geometry import Location

_LAHORE = Location(31.5204, 74.3587)
_KARACHI = Location(24.8607, 67.0011)


@pytest.fixture(scope="module")
def system() -> SonicSystem:
    transmitters = [
        Transmitter("lahore-93.7", _LAHORE, 93.7, coverage_km=30.0),
        Transmitter("karachi-101.2", _KARACHI, 101.2, coverage_km=30.0),
    ]
    profiles = [
        ClientProfile(
            "lahore-user", _LAHORE, connection="cable",
            has_sms=True, phone_number="+92300111",
        ),
        ClientProfile(
            "karachi-user", _KARACHI, connection="cable",
            has_sms=True, phone_number="+92300222",
        ),
    ]
    sys = SonicSystem(
        SystemConfig(
            n_sites=2, render_width=360, max_pixel_height=800,
            auto_hourly_push=False,
        ),
        transmitters=transmitters,
        profiles=profiles,
    )
    return sys


class TestGeographicRouting:
    def test_request_routed_to_covering_transmitter(self, system):
        url = system.generator.all_urls()[0]
        system.client("lahore-user").request_page(url, system.clock.now)
        system.step(60.0)  # let the SMS arrive
        lahore = system.registry.get("lahore-93.7").carousel
        karachi = system.registry.get("karachi-101.2").carousel
        assert lahore.queue_length() + lahore.total_sent_bytes > 0
        assert karachi.queue_length() == 0 and karachi.total_sent_bytes == 0

    def test_broadcast_stays_regional(self, system):
        url = system.generator.all_urls()[1]
        system.client("lahore-user").request_page(url, system.clock.now)
        system.run(seconds=600, step_s=5)
        assert url in system.client("lahore-user").cache
        # The Karachi user never hears the Lahore transmitter.
        assert url not in system.client("karachi-user").cache

    def test_each_region_serves_its_own(self, system):
        url = system.generator.all_urls()[2]
        system.client("karachi-user").request_page(url, system.clock.now)
        system.run(seconds=600, step_s=5)
        assert url in system.client("karachi-user").cache

    def test_hourly_push_feeds_all_transmitters(self, system):
        pushed = system.server.hourly_push(system.clock.now)
        assert pushed > 0
        for tx in system.registry.all():
            assert tx.carousel.queue_length() > 0
