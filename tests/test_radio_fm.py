"""FM modulation/demodulation at complex baseband."""

import numpy as np
import pytest

from repro.radio.fm import FmDemodulator, FmModulator


@pytest.fixture(scope="module")
def pair():
    return FmModulator(), FmDemodulator()


class TestFm:
    def test_constant_envelope(self, pair):
        mod, _ = pair
        t = np.arange(4_800) / 192_000
        mpx = 0.5 * np.sin(2 * np.pi * 1_000 * t)
        iq = mod.modulate(mpx)
        assert np.allclose(np.abs(iq), 1.0)

    def test_roundtrip_tone(self, pair):
        mod, demod = pair
        t = np.arange(19_200) / 192_000
        mpx = 0.7 * np.sin(2 * np.pi * 2_500 * t)
        out = demod.demodulate(mod.modulate(mpx))
        core = slice(400, -400)
        assert out.size == mpx.size
        assert np.max(np.abs(out[core] - mpx[core])) < 0.03

    def test_roundtrip_wideband(self, pair):
        mod, demod = pair
        rng = np.random.default_rng(0)
        from scipy import signal

        noise = rng.normal(0, 0.3, 19_200)
        taps = signal.firwin(101, 15_000, fs=192_000)
        mpx = signal.fftconvolve(noise, taps, "same")
        out = demod.demodulate(mod.modulate(mpx))
        core = slice(500, -500)
        err = np.sqrt(np.mean((out[core] - mpx[core]) ** 2))
        assert err < 0.02

    def test_full_scale_maps_to_max_deviation(self):
        mod = FmModulator()
        # DC input of 1.0 advances phase by 2*pi*75kHz/fs per sample.
        iq = mod.modulate(np.ones(1_000))
        inst = np.angle(iq[1:] * np.conj(iq[:-1]))
        freq = inst * mod.rf_rate / (2 * np.pi)
        assert np.median(freq) == pytest.approx(75_000, rel=1e-3)

    def test_rate_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FmModulator(mpx_rate=192_000, rf_rate=300_000)
        with pytest.raises(ValueError):
            FmDemodulator(mpx_rate=192_000, rf_rate=100_000)

    def test_noise_threshold_effect(self, pair):
        """Output error grows gently above threshold, abruptly below."""
        mod, demod = pair
        rng = np.random.default_rng(1)
        t = np.arange(38_400) / 192_000
        mpx = 0.6 * np.sin(2 * np.pi * 3_000 * t)
        iq = mod.modulate(mpx)

        def rms_err(cnr_db):
            p = 10 ** (-cnr_db / 10)
            noise = np.sqrt(p / 2) * (
                rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
            )
            out = demod.demodulate(iq + noise)
            core = slice(500, -500)
            return float(np.sqrt(np.mean((out[core] - mpx[core]) ** 2)))

        high, mid, low = rms_err(30), rms_err(12), rms_err(0)
        assert high < mid < low
        # Below threshold degradation accelerates (clicks dominate).
        assert (low - mid) > 3 * (mid - high)

    def test_empty_input(self, pair):
        _, demod = pair
        assert demod.demodulate(np.zeros(0, dtype=complex)).size == 0
