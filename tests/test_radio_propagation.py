"""RF propagation and RSSI models."""

import numpy as np
import pytest

from repro.radio.propagation import (
    PropagationModel,
    friis_path_loss_db,
    rssi_at_distance,
)


class TestFriis:
    def test_reference_value(self):
        # ~71.9 dB at 1 km for the 93.7 MHz FM band.
        assert friis_path_loss_db(1_000, 93.7e6) == pytest.approx(71.9, abs=0.1)

    def test_inverse_square(self):
        # +6 dB per doubling of distance.
        a = friis_path_loss_db(100, 93.7e6)
        b = friis_path_loss_db(200, 93.7e6)
        assert b - a == pytest.approx(6.02, abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            friis_path_loss_db(0, 93.7e6)
        with pytest.raises(ValueError):
            friis_path_loss_db(10, -1)


class TestLogDistance:
    def test_monotone_decreasing(self):
        rssis = [rssi_at_distance(20, d) for d in (10, 100, 500, 1_000)]
        assert all(a > b for a, b in zip(rssis, rssis[1:]))

    def test_exponent_controls_slope(self):
        free = rssi_at_distance(20, 1_000, path_loss_exponent=2.0)
        urban = rssi_at_distance(20, 1_000, path_loss_exponent=3.5)
        assert urban < free

    def test_below_reference_clamped(self):
        assert rssi_at_distance(20, 0.1) == rssi_at_distance(20, 1.0)


class TestPropagationModel:
    def test_paper_rssi_band_within_range(self):
        """The TR508 experiment explores RSSI -65..-90 dB within 1 km."""
        model = PropagationModel()
        d65 = model.distance_for_rssi(-65.0)
        d90 = model.distance_for_rssi(-90.0)
        assert 1.0 < d65 < d90 < 2_000.0

    def test_distance_rssi_inverse(self):
        model = PropagationModel()
        for rssi in (-65, -75, -85):
            d = model.distance_for_rssi(rssi)
            assert model.rssi_dbm(d) == pytest.approx(rssi, abs=1e-6)

    def test_cnr_from_rssi(self):
        model = PropagationModel(noise_floor_dbm=-95.0)
        assert model.cnr_db(-65.0) == pytest.approx(30.0)
        assert model.cnr_db(-90.0) == pytest.approx(5.0)

    def test_shadowing_random_but_reproducible(self):
        model = PropagationModel(shadowing_sigma_db=4.0)
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert model.rssi_dbm(100, rng1) == model.rssi_dbm(100, rng2)
        rng3 = np.random.default_rng(1)
        assert model.rssi_dbm(100, rng3) != model.rssi_dbm(100, rng1)
