"""The streaming broadcast engine (`repro.core.stream`).

Covers the transmit half (:class:`WaveformSource` and its batch wrapper
:func:`frames_to_waveform`), the carousel adapter, the chunked
:class:`StreamSession` glue, and the progressive page assembler —
including the two paper behaviours the dataflow exists for: bounded
memory over long broadcasts and mid-carousel tune-in.
"""

import numpy as np
import pytest

from repro.client.streaming import StreamingPageAssembler
from repro.core.pipeline import frames_to_waveform
from repro.core.stream import (
    CarouselFrameSource,
    StreamSession,
    WaveformSource,
)
from repro.modem.modem import Modem
from repro.modem.streaming import StreamingReceiver
from repro.server.transmitters import BroadcastEncodeCache
from repro.transport.bundle import BundleTransport
from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.transport.framing import Frame, FrameHeader, FrameType


@pytest.fixture(scope="module")
def modem():
    return Modem("sonic-ofdm")


def _frames(n, page_id=1, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Frame(
            FrameHeader(FrameType.BUNDLE_BYTES, page_id=page_id, seq=i, total=n),
            rng.integers(0, 256, 83, dtype=np.uint8).tobytes(),
        )
        for i in range(n)
    ]


class TestFramesToWaveform:
    def test_no_trailing_guard(self, modem):
        """The broadcast ends on the last payload symbol, not silence."""
        frames = _frames(16)
        wave = frames_to_waveform(frames, modem, frames_per_burst=16)
        assert wave.size == modem.burst_samples(16)
        # The last guard_samples are modulated signal, not a silence block.
        assert np.any(wave[-modem.profile.guard_samples :] != 0.0)

    def test_length_matches_broadcast_samples(self, modem):
        for n in (1, 15, 16, 17, 24, 33):
            wave = frames_to_waveform(_frames(n), modem, frames_per_burst=16)
            assert wave.size == modem.broadcast_samples(n, 16), n

    def test_equals_manual_burst_concatenation(self, modem):
        frames = _frames(24)
        wave = frames_to_waveform(frames, modem, frames_per_burst=16)
        first = modem.transmit_burst([f.to_bytes() for f in frames[:16]])
        second = modem.transmit_burst([f.to_bytes() for f in frames[16:]])
        guard = np.zeros(modem.profile.guard_samples)
        assert np.array_equal(wave, np.concatenate([first, guard, second]))

    def test_decodes_end_to_end(self, modem):
        frames = _frames(24)
        wave = frames_to_waveform(frames, modem, frames_per_burst=16)
        rx = modem.receive(wave, frames_per_burst=16)
        assert [f.payload for f in rx] == [f.to_bytes() for f in frames]


class TestBroadcastSamples:
    def test_zero_and_negative(self, modem):
        assert modem.broadcast_samples(0) == 0
        assert modem.broadcast_samples(-3) == 0

    def test_burst_arithmetic(self, modem):
        g = modem.profile.guard_samples
        assert modem.broadcast_samples(16, 16) == modem.burst_samples(16)
        assert (
            modem.broadcast_samples(32, 16)
            == 2 * modem.burst_samples(16) + g
        )
        assert (
            modem.broadcast_samples(20, 16)
            == modem.burst_samples(16) + g + modem.burst_samples(4)
        )


class TestWaveformSource:
    def test_fixed_chunks_then_short_tail(self, modem):
        frames = _frames(4)
        supply = iter([[f.to_bytes() for f in frames]])
        src = WaveformSource(lambda: next(supply, None), modem, chunk_samples=4800)
        chunks = list(src)
        assert all(c.size == 4800 for c in chunks[:-1])
        assert 0 < chunks[-1].size <= 4800
        total = sum(c.size for c in chunks)
        assert total == modem.broadcast_samples(4, 4)

    def test_bounded_buffer(self, modem):
        """The fifo never holds much more than one burst."""
        bursts = [[f.to_bytes() for f in _frames(16, seed=s)] for s in range(4)]
        supply = iter(bursts)
        src = WaveformSource(lambda: next(supply, None), modem, chunk_samples=4800)
        limit = modem.burst_samples(16) + modem.profile.guard_samples + 4800
        for _ in src:
            assert src.buffered_samples <= limit

    def test_burst_cache_dedupes_repeat_bursts(self, modem):
        payloads = [f.to_bytes() for f in _frames(16)]
        cache = BroadcastEncodeCache(capacity=8)
        supply = iter([payloads, payloads, payloads])
        src = WaveformSource(
            lambda: next(supply, None), modem, cache=cache
        )
        src.read_all()
        assert cache.stats.burst_misses == 1
        assert cache.stats.burst_hits == 2

    def test_idle_fill_pads_with_silence(self, modem):
        """An idle supply yields silence; the stream never ends."""
        sent = {"n": 0}

        def supply():
            if sent["n"] == 0:
                sent["n"] += 1
                return [f.to_bytes() for f in _frames(2)]
            return None

        src = WaveformSource(supply, modem, chunk_samples=4800, idle_fill=True)
        burst_len = modem.burst_samples(2)
        n_chunks = burst_len // 4800 + 10
        chunks = [src.read() for _ in range(n_chunks)]
        assert all(c.size == 4800 for c in chunks)
        assert np.all(chunks[-1] == 0.0)  # idling

    def test_rejects_bad_chunk_size(self, modem):
        with pytest.raises(ValueError):
            WaveformSource(lambda: None, modem, chunk_samples=0)


class TestCarouselFrameSource:
    def test_lazy_materialisation(self):
        """Only the head page is ever materialised."""
        carousel = BroadcastCarousel(20_000)
        made = []

        def make_frames(item):
            made.append(item.url)
            return _frames(4, page_id=int(item.url[-1]))

        for i in range(3):
            carousel.enqueue(
                CarouselItem(f"page/{i}", 400, priority=1.0 / (i + 1))
            )
        source = CarouselFrameSource(carousel, 4, make_frames=make_frames)
        assert source() is not None  # first burst: only page 0 touched
        assert made == ["page/0"]
        while source() is not None:
            pass
        assert made == ["page/0", "page/1", "page/2"]
        assert source.pages_materialised == 3

    def test_requires_materialiser_for_frameless_items(self):
        carousel = BroadcastCarousel(20_000)
        carousel.enqueue(CarouselItem("page/x", 400))
        with pytest.raises(ValueError):
            CarouselFrameSource(carousel, 4)()


class TestStreamSession:
    def _bundle_frames(self, page_id, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, 700, dtype=np.uint8).tobytes()
        return data, BundleTransport().chunk(data, page_id=page_id, version=0)

    def test_end_to_end_carousel_to_assembler(self, modem):
        carousel = BroadcastCarousel(20_000)
        originals = {}
        for i in range(3):
            data, frames = self._bundle_frames(i, seed=i)
            originals[i] = data
            carousel.enqueue(
                CarouselItem(
                    f"page/{i}",
                    len(data),
                    priority=1.0 / (i + 1),
                    frames=frames,
                )
            )
        source = WaveformSource(
            CarouselFrameSource(carousel, 8), modem, chunk_samples=4800
        )
        assembler = StreamingPageAssembler()
        session = StreamSession(
            source,
            StreamingReceiver(modem, frames_per_burst=8),
            carousel=carousel,
            on_frames=lambda frames, now: assembler.push(frames, now),
        )
        stats = session.run()
        assert stats.frames_ok == stats.frames_decoded > 0
        assert assembler.pages_completed == 3
        # The audio clock drove the carousel clock.
        assert carousel._now == pytest.approx(stats.audio_seconds)
        # Synthetic payloads are raw bytes, not PageBundle serialisations:
        # full reassembly is counted, parsing is not attempted.
        assert assembler.pages_raw == 3
        assert assembler.frames_lost == 0

    def test_mid_carousel_tune_in(self, modem):
        """A late receiver misses columns, then fills them on the next
        identical rebroadcast cycle."""
        data, frames = self._bundle_frames(5, seed=42)
        payloads = [f.to_bytes() for f in frames]
        # Three frames per burst: a late tune-in misses whole bursts (a
        # burst's preamble gone means its frames are gone) but can sync
        # onto every later burst of the same page.
        fpb = 3

        def one_cycle():
            supply = iter(
                [payloads[i : i + fpb] for i in range(0, len(payloads), fpb)]
            )
            return WaveformSource(
                lambda: next(supply, None), modem, chunk_samples=4800
            ).read_all()

        cycle = one_cycle()
        rx = StreamingReceiver(modem, frames_per_burst=fpb)
        assembler = StreamingPageAssembler()
        # Tune in after 60% of the first cycle.
        late = cycle[int(cycle.size * 0.6) :]
        for i in range(0, late.size, 4800):
            assembler.push(rx.push(late[i : i + 4800]))
        assert assembler.pages_completed == 0
        # Second, identical cycle (guard first, as on air).  Partially
        # received versions persist as gap state until the rebroadcast
        # fills them in.
        second = np.concatenate([np.zeros(modem.profile.guard_samples), cycle])
        half = second.size // 2
        head = second[:half]
        for i in range(0, head.size, 4800):
            assembler.push(rx.push(head[i : i + 4800]))
        assert assembler.pages_completed == 0
        assert assembler.partial_pages >= 1  # gaps from the missed columns
        rest = second[half:]
        for i in range(0, rest.size, 4800):
            assembler.push(rx.push(rest[i : i + 4800]))
        assembler.push(rx.finish())
        assert assembler.pages_completed == 1

    def test_session_duration_limit(self, modem):
        src = WaveformSource(
            lambda: [f.to_bytes() for f in _frames(2)],
            modem,
            chunk_samples=4800,
            idle_fill=True,
        )
        session = StreamSession(src, StreamingReceiver(modem, frames_per_burst=2))
        stats = session.run(duration_s=2.0)
        assert stats.audio_seconds == pytest.approx(2.0, abs=0.1)


class TestSonicSystemStream:
    def test_open_stream_delivers_to_clients(self):
        from repro.core.config import SystemConfig
        from repro.core.system import SonicSystem

        system = SonicSystem(SystemConfig(n_sites=2))
        session = system.open_stream(chunk_samples=9600)
        stats = session.run(max_chunks=300)
        assert stats.frames_decoded > 0
        assert stats.frames_ok == stats.frames_decoded
