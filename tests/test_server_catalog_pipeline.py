"""Persistent render pool, pipelined resolve, and speculative prefetch.

Every serving mode — serial, per-call pool, persistent subprocess pool,
persistent in-process worker, with and without pipelining/prefetch —
must produce bit-identical bundles and ledgers.  These tests pin that
contract end to end.
"""

import pytest

from repro.server.cache import BundleStore
from repro.server.catalog import (
    CatalogConfig,
    CatalogPipeline,
    _InlinePool,
)
from repro.server.frontend import (
    CatalogResolver,
    FrontendConfig,
    RequestFrontend,
    _HourWindowMemo,
)
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import Location
from repro.sim.workload import RequestTraceConfig, generate_requests
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.web.sites import SiteGenerator

_SMALL = CatalogConfig(seed=42, n_sites=2, width=240, max_height=600, quality=10)


def _pipeline() -> CatalogPipeline:
    return CatalogPipeline(_SMALL, store=BundleStore())


class TestPersistentPool:
    def test_all_pool_modes_byte_identical(self):
        serial = _pipeline()
        serial.encode_catalog(hour=1, processes=1)

        respawn = _pipeline()
        respawn.encode_catalog(hour=1, processes=2)

        with _pipeline().start(2) as subproc:
            subproc.encode_catalog(hour=1)

        with _pipeline().start(1) as inline:
            inline.encode_catalog(hour=1)

        expect = serial.store.content_digest()
        assert respawn.store.content_digest() == expect
        assert subproc.store.content_digest() == expect
        assert inline.store.content_digest() == expect

    def test_start_resolves_single_worker_inline(self):
        pipeline = _pipeline().start(1)
        assert isinstance(pipeline._pool, _InlinePool)
        assert pipeline.persistent
        pipeline.close()
        assert not pipeline.persistent

    def test_start_idempotent(self):
        pipeline = _pipeline().start(1)
        pool = pipeline._pool
        assert pipeline.start(4)._pool is pool  # already started: no-op
        pipeline.close()

    def test_persistent_pool_reused_across_hours(self):
        with _pipeline().start(1) as pipeline:
            cold = pipeline.encode_catalog(hour=0)
            assert cold.encoded == cold.n_pages
            warm = pipeline.encode_catalog(hour=0)
            assert warm.encoded == 0
            assert [p.data for p in warm.pages] == [p.data for p in cold.pages]


class TestCatalogJob:
    def test_submit_commit_matches_serial(self):
        serial = _pipeline()
        expect = [p.data for p in serial.encode_catalog(hour=2, processes=1).pages]

        with _pipeline().start(1) as pipeline:
            urls = pipeline.generator.all_urls()
            job = pipeline.submit_catalog(urls, hour=2)
            assert len(pipeline.store) == 0  # store writes wait for commit
            job.wait()
            assert job.ready()
            result = job.result()
            assert [p.data for p in result.pages] == expect
            assert len(pipeline.store) == result.n_pages
            assert pipeline.store.content_digest() == serial.store.content_digest()

    def test_result_idempotent(self):
        with _pipeline().start(1) as pipeline:
            job = pipeline.submit_catalog(pipeline.generator.all_urls()[:2], hour=0)
            assert job.result() is job.result()

    def test_overlapping_jobs_share_pending_renders(self):
        with _pipeline().start(1) as pipeline:
            urls = pipeline.generator.all_urls()[:3]
            a = pipeline.submit_catalog(urls, hour=0)
            b = pipeline.submit_catalog(urls, hour=0)
            ra, rb = a.result(), b.result()
            assert [p.data for p in ra.pages] == [p.data for p in rb.pages]
            # The second job harvested the first job's renders.
            assert rb.store_hits + rb.encoded == len(urls)


class TestPrefetch:
    def test_prefetch_warms_store_without_changing_bytes(self):
        serial = _pipeline()
        serial.encode_catalog(hour=3, processes=1)

        with _pipeline().start(1) as pipeline:
            urls = pipeline.generator.all_urls()
            assert pipeline.prefetch(urls, hour=3) == len(urls)
            assert pipeline.prefetch_submitted == len(urls)
            result = pipeline.encode_catalog(hour=3)
            assert pipeline.prefetch_used == result.encoded
            assert pipeline.store.content_digest() == serial.store.content_digest()

    def test_unharvested_prefetch_never_pollutes_store(self):
        serial = _pipeline()
        serial.encode_catalog(hour=0, processes=1)

        with _pipeline().start(1) as pipeline:
            pipeline.encode_catalog(hour=0)
            # Speculate on hour 9; nothing ever asks for it.  The inline
            # worker defers the render, so the store stays equal to the
            # serial run rather than a superset of it.
            pipeline.prefetch(pipeline.generator.all_urls(), hour=9)
            pipeline.drain_prefetch(block=False)
            assert pipeline.store.content_digest() == serial.store.content_digest()

    def test_prefetch_requires_pool(self):
        pipeline = _pipeline()
        assert pipeline.prefetch(pipeline.generator.all_urls(), hour=1) == 0


class TestContentDigest:
    def test_insertion_order_irrelevant(self):
        a, b = BundleStore(), BundleStore()
        a.put("k1", b"x")
        a.put("k2", b"y")
        b.put("k2", b"y")
        b.put("k1", b"x")
        assert a.content_digest() == b.content_digest()

    def test_sensitive_to_key_and_bytes(self):
        a, b, c = BundleStore(), BundleStore(), BundleStore()
        a.put("k1", b"x")
        b.put("k1", b"z")
        c.put("k9", b"x")
        assert len({s.content_digest() for s in (a, b, c)}) == 3

    def test_includes_disk_entries(self, tmp_path):
        first = BundleStore(capacity=1, directory=tmp_path)
        first.put("k1", b"x")
        first.put("k2", b"y")  # evicts k1 from memory, not from disk
        reopened = BundleStore(directory=tmp_path)
        assert reopened.content_digest() == first.content_digest()

    def test_superset_of(self):
        small, big = BundleStore(), BundleStore()
        small.put("k1", b"x")
        big.put("k1", b"x")
        big.put("k2", b"y")
        assert big.superset_of(small)
        assert not small.superset_of(big)
        small.put("k3", b"corrupt")
        assert not big.superset_of(small)


class TestFrontendModeParity:
    """Serial, pipelined, and persistent serving agree bit for bit."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_requests(
            RequestTraceConfig(hours=2.0, n_pages=8, n_requests=1_500, seed=5)
        )

    def _run(self, trace, serial=False, persistent=False, processes=None,
             pipelined=True, prefetch=True):
        pipeline = _pipeline()
        if persistent:
            pipeline.start(processes)
        frontend = RequestFrontend(
            CatalogResolver(pipeline, processes=1),
            FrontendConfig(pipelined=pipelined, prefetch=prefetch),
        )
        frontend.run(trace, serial=serial)
        digest = frontend.ledger.digest()
        pipeline.close()
        frontend.ledger.close()
        return digest, pipeline.store

    def test_all_modes_reproduce_serial_ledger(self, trace):
        d_serial, s_serial = self._run(
            trace, serial=True, pipelined=False, prefetch=False
        )
        d_async, s_async = self._run(trace, pipelined=False, prefetch=False)
        d_pipe, s_pipe = self._run(trace, prefetch=False)
        d_inline, s_inline = self._run(trace, persistent=True, processes=1)

        assert d_async == d_serial
        assert d_pipe == d_serial
        assert d_inline == d_serial
        expect = s_serial.content_digest()
        assert s_async.content_digest() == expect
        assert s_pipe.content_digest() == expect
        # Prefetch may add bundles beyond what demand produced, but can
        # never change one the serial run wrote.
        assert s_inline.superset_of(s_serial)


class TestHourWindowMemo:
    def test_window_bounds_entries(self):
        memo = _HourWindowMemo(window_hours=2)
        for hour in range(10):
            memo.put(("k", hour), hour, hour)
            assert len(memo) <= 3  # current hour plus the 2-hour window
        assert memo.get(("k", 9)) == 9
        assert memo.get(("k", 0)) is None  # evicted, recomputable

    def test_eviction_only_costs_recompute(self):
        memo = _HourWindowMemo(window_hours=1)
        memo.put("a", 1, hour=0)
        memo.put("b", 2, hour=5)  # sweeps "a"
        assert memo.get("a") is None
        memo.put("a", 1, hour=5)  # same pure value, re-inserted
        assert memo.get("a") == 1


class TestServerPipelineReuse:
    @pytest.fixture()
    def server(self):
        gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        generator = SiteGenerator(seed=42, n_sites=2)
        registry = TransmitterRegistry(
            [Transmitter("lhr", Location(31.5204, 74.3587), 93.7, coverage_km=30.0)]
        )
        return registry, SonicServer(
            generator,
            registry,
            gateway,
            ServerConfig(render_width=240, max_pixel_height=600),
        )

    def test_pipeline_cached_across_pushes(self, server):
        registry, srv = server
        pipeline = srv.catalog_pipeline()
        assert srv.catalog_pipeline() is pipeline
        srv.push_catalog(registry.get("lhr"), now=0.0, processes=1)
        assert srv.catalog_pipeline() is pipeline
        assert len(pipeline.store) > 0

    def test_persistent_request_starts_pool_and_close_stops_it(self, server):
        _, srv = server
        pipeline = srv.catalog_pipeline(persistent=True, processes=1)
        assert pipeline.persistent
        assert srv.catalog_pipeline() is pipeline  # still the same object
        srv.close()
        assert not pipeline.persistent
