"""Canonical Huffman coding and bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imaging.huffman import (
    BitReader,
    CanonicalHuffman,
    MAX_CODE_LEN,
    build_code_lengths,
    pack_fields,
)


class TestCodeLengths:
    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(0, 1000, 256)
        lengths = build_code_lengths(freqs)
        kraft = sum(0.5 ** l for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    def test_frequent_symbols_get_short_codes(self):
        freqs = np.zeros(256, dtype=int)
        freqs[0] = 1000
        freqs[1] = 10
        freqs[2] = 10
        lengths = build_code_lengths(freqs)
        assert lengths[0] <= lengths[1]

    def test_single_symbol(self):
        freqs = np.zeros(256, dtype=int)
        freqs[42] = 5
        lengths = build_code_lengths(freqs)
        assert lengths[42] == 1
        assert lengths.sum() == 1

    def test_empty(self):
        assert build_code_lengths(np.zeros(256, dtype=int)).sum() == 0

    def test_length_cap(self):
        # An exponential (Fibonacci-like) distribution forces deep trees.
        freqs = np.zeros(64, dtype=int)
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = build_code_lengths(freqs)
        assert lengths.max() <= MAX_CODE_LEN
        kraft = sum(0.5 ** l for l in lengths if l > 0)
        assert kraft <= 1.0 + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=2, max_size=256))
    def test_prefix_free(self, freq_list):
        freqs = np.array(freq_list + [0] * (256 - len(freq_list)))
        table = CanonicalHuffman(build_code_lengths(freqs))
        codes = [
            (int(table.codes[s]), int(l))
            for s, l in enumerate(table.lengths)
            if l > 0
        ]
        for i, (code_a, len_a) in enumerate(codes):
            for code_b, len_b in codes[i + 1 :]:
                shorter = min(len_a, len_b)
                assert (code_a >> (len_a - shorter)) != (code_b >> (len_b - shorter))


class TestPackFields:
    def test_simple(self):
        out = pack_fields(np.array([0b101, 0b1]), np.array([3, 1]))
        assert out == bytes([0b10110000])

    def test_zero_length_skipped(self):
        out = pack_fields(np.array([7, 3]), np.array([0, 2]))
        assert out == bytes([0b11000000])

    def test_empty(self):
        assert pack_fields(np.array([]), np.array([])) == b""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)),
            min_size=1,
            max_size=60,
        )
    )
    def test_roundtrip_via_bitreader(self, fields):
        values = np.array([v & ((1 << l) - 1) for v, l in fields])
        lengths = np.array([l for _, l in fields])
        data = pack_fields(values, lengths)
        reader = BitReader(data)
        for v, l in zip(values, lengths):
            assert reader.read(int(l)) == int(v)


class TestBitReader:
    def test_peek_does_not_advance(self):
        reader = BitReader(bytes([0xAB, 0xCD, 0xEF, 0x01]))
        assert reader.peek16() == 0xABCD
        assert reader.peek16() == 0xABCD
        assert reader.read(8) == 0xAB

    def test_eof(self):
        reader = BitReader(bytes([0xFF]))
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_peek_decode_consistency(self):
        freqs = np.zeros(256, dtype=int)
        for s, f in ((5, 100), (9, 50), (200, 25), (3, 5)):
            freqs[s] = f
        table = CanonicalHuffman(build_code_lengths(freqs))
        symbols = [5, 9, 200, 3, 5, 5, 9]
        values = table.codes[symbols]
        lengths = table.lengths[symbols]
        data = pack_fields(values, lengths.astype(np.int64))
        sym_tab, len_tab = table.peek_tables
        reader = BitReader(data)
        decoded = []
        for _ in symbols:
            peek = reader.peek16()
            decoded.append(int(sym_tab[peek]))
            reader.skip(int(len_tab[peek]))
        assert decoded == symbols


class TestSerialization:
    def test_table_roundtrip(self):
        freqs = np.zeros(256, dtype=int)
        freqs[[0, 15, 240, 255]] = [10, 20, 30, 40]
        table = CanonicalHuffman(build_code_lengths(freqs))
        blob = table.serialize()
        restored, offset = CanonicalHuffman.deserialize(blob, 0)
        assert offset == len(blob)
        assert np.array_equal(restored.lengths, table.lengths)
        assert np.array_equal(restored.codes, table.codes)
