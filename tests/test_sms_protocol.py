"""SONIC's SMS request/response protocol."""

import pytest

from repro.sms.message import SEGMENT_LIMIT, segment_text
from repro.sms.protocol import (
    PageRequest,
    RequestAck,
    RequestError,
    SearchRequest,
    parse_downlink,
    parse_uplink,
)


class TestUplink:
    def test_page_request_roundtrip(self):
        req = PageRequest("cnn.com/index.html", 31.5204, 74.3587)
        parsed = parse_uplink(req.to_text())
        assert isinstance(parsed, PageRequest)
        assert parsed.url == "cnn.com/index.html"
        assert parsed.lat == pytest.approx(31.5204, abs=1e-4)
        assert parsed.lon == pytest.approx(74.3587, abs=1e-4)

    def test_search_request_roundtrip(self):
        req = SearchRequest("cricket score lahore", 31.5, 74.3)
        parsed = parse_uplink(req.to_text())
        assert isinstance(parsed, SearchRequest)
        assert parsed.query == "cricket score lahore"

    def test_request_fits_one_sms_segment(self):
        """Requests must not cost the user more than one SMS."""
        req = PageRequest("a" * 100 + ".pk/page", 31.5204, 74.3587)
        assert len(segment_text(req.to_text())) == 1

    def test_malformed_rejected(self):
        for text in ("GET", "FETCH x LOC 1,2", "GET  LOC 1,2", "", "GET url"):
            with pytest.raises(ValueError):
                parse_uplink(text)

    def test_url_with_space_rejected(self):
        with pytest.raises(ValueError):
            parse_uplink("GET two words LOC 1.0,2.0")


class TestDownlink:
    def test_ack_roundtrip(self):
        ack = RequestAck("dawn.com/", 372.0)
        parsed = parse_downlink(ack.to_text())
        assert isinstance(parsed, RequestAck)
        assert parsed.url == "dawn.com/"
        assert parsed.eta_seconds == 372.0

    def test_error_roundtrip(self):
        err = RequestError("bank.pk/login", "unsupported-auth page")
        parsed = parse_downlink(err.to_text())
        assert isinstance(parsed, RequestError)
        assert parsed.reason == "unsupported-auth page"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_downlink("HELLO there")
