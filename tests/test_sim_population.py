"""Tier-2 statistical population: determinism, physics, two-tier wiring."""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.radio.lossmodel import FrameLossModel
from repro.sim.geometry import Location, PopulationGeometry
from repro.sim.population import PopulationConfig, run_population
from repro.sim.receivers import FleetConfig, run_fleet


@pytest.fixture(scope="module")
def model() -> FrameLossModel:
    return FrameLossModel()


@pytest.fixture(scope="module")
def base_config() -> PopulationConfig:
    return PopulationConfig(n_receivers=20_000, hours=2.0, master_seed=13)


@pytest.fixture(scope="module")
def reference(model, base_config):
    return run_population(model, base_config)


_FIELDS = ("distances_m", "rssi_dbm", "loss_probs", "loss_rates",
           "pages_decoded", "readability")


def _identical(a, b) -> bool:
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in _FIELDS)


class TestPartitionInvariance:
    def test_chunk_size_is_invisible(self, model, base_config, reference):
        for chunk in (997, 4_096, 20_000, 1_000_000):
            import dataclasses

            other = run_population(
                model, dataclasses.replace(base_config, chunk_receivers=chunk)
            )
            assert _identical(reference, other)

    def test_pool_equals_serial(self, model, base_config, reference):
        import dataclasses

        pooled = run_population(
            model,
            dataclasses.replace(base_config, chunk_receivers=3_000),
            processes=2,
        )
        assert _identical(reference, pooled)

    def test_rerun_is_identical(self, model, base_config, reference):
        again = run_population(model, base_config)
        assert _identical(reference, again)

    def test_master_seed_changes_population(self, model, base_config, reference):
        import dataclasses

        other = run_population(
            model, dataclasses.replace(base_config, master_seed=14)
        )
        assert not np.array_equal(reference.loss_rates, other.loss_rates)
        assert not np.array_equal(reference.distances_m, other.distances_m)

    def test_exact_bernoulli_path_partition_invariant(self, model):
        """Short horizons draw true per-frame Bernoulli; still invariant."""
        import dataclasses

        cfg = PopulationConfig(
            n_receivers=2_000,
            hours=0.05,
            master_seed=3,
            exact_frame_threshold=10**9,
        )
        a = run_population(model, cfg)
        assert a.frames_per_receiver <= cfg.exact_frame_threshold
        b = run_population(model, dataclasses.replace(cfg, chunk_receivers=311))
        assert _identical(a, b)


class TestPhysics:
    def test_loss_grows_with_distance(self, reference):
        bands = reference.loss_by_distance(5)
        means = [m for _, _, m, n in bands if n > 100]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
        assert means[-1] > means[0]

    def test_rssi_decreases_with_distance(self, reference):
        near = reference.rssi_dbm[reference.distances_m < 200].mean()
        far = reference.rssi_dbm[reference.distances_m > 800].mean()
        assert near > far + 10

    def test_empirical_loss_tracks_model_probability(self, reference):
        # Long horizon: per-receiver empirical rates concentrate on p_i.
        err = np.abs(reference.loss_rates - reference.loss_probs)
        assert float(np.median(err)) < 0.01

    def test_pages_and_readability_follow_loss(self, reference):
        # A page needs all frames_per_page frames, so only essentially
        # loss-free receivers are guaranteed the whole catalog: even at
        # p = 0.01 a 64-frame page decodes with only (1-p)^64 ~ 0.52.
        perfect = reference.loss_probs < 1e-6
        bad = reference.loss_rates > 0.99
        assert perfect.sum() > 100 and bad.sum() > 100
        assert reference.pages_decoded[perfect].min() == reference.config.pages
        assert reference.pages_decoded[bad].max() == 0
        assert reference.readability[perfect].min() > 9.0
        assert reference.readability[bad].max() < 0.1
        # And the middle band exists: partially-served listeners.
        partial = (reference.pages_decoded > 0) & (
            reference.pages_decoded < reference.config.pages
        )
        assert partial.sum() > 100

    def test_positions_fill_the_disc(self, reference):
        geo = reference.config.geometry
        assert reference.distances_m.max() <= geo.radius_km * 1000.0 * 1.01
        assert reference.distances_m.min() >= geo.min_distance_m
        # Uniform over the disc: median distance ~ radius / sqrt(2).
        med = np.median(reference.distances_m)
        assert 0.6 * geo.radius_km * 1000 < med < 0.8 * geo.radius_km * 1000


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_receivers=0)
        with pytest.raises(ValueError):
            PopulationConfig(hours=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(pages=0)
        with pytest.raises(ValueError):
            PopulationConfig(chunk_receivers=0)
        with pytest.raises(ValueError):
            PopulationGeometry(radius_km=0.0)

    def test_frames_total_follows_profile_timing(self):
        cfg = PopulationConfig(n_receivers=1, hours=1.0)
        modem = Modem(cfg.profile)
        expected = int(3600.0 / modem.frame_duration_s)
        assert cfg.frames_total() == expected

    def test_explicit_frame_duration_override(self):
        cfg = PopulationConfig(n_receivers=1, hours=1.0, frame_duration_s=1.0)
        assert cfg.frames_total() == 3600

    def test_geometry_is_configurable(self, model):
        cfg = PopulationConfig(
            n_receivers=500,
            hours=0.5,
            geometry=PopulationGeometry(
                center=Location(33.6844, 73.0479), radius_km=0.2
            ),
        )
        res = run_population(model, cfg)
        assert res.distances_m.max() <= 200.0 * 1.01
        # Everyone inside 200 m of a 1 km-rated transmitter decodes.
        assert res.mean_loss_rate < 0.05


class TestTwoTierFleet:
    @pytest.fixture(scope="class")
    def broadcast(self):
        modem = Modem("sonic-ofdm")
        rng = np.random.default_rng(41)
        return modem.transmit_burst(
            [
                rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
                for _ in range(8)
            ]
        )

    @pytest.fixture(scope="class")
    def config(self, tmp_path_factory):
        return FleetConfig(
            n_receivers=6,
            master_seed=17,
            impairment="awgn",
            snr_db=4.0,
            snr_spread_db=10.0,
            frames_per_burst=8,
            population=PopulationConfig(n_receivers=5_000, hours=1.0),
            calibration_dir=str(tmp_path_factory.mktemp("calibration")),
        )

    def test_two_tier_run(self, broadcast, config):
        result = run_fleet(broadcast, config, processes=1)
        assert len(result.reports) == 6
        assert result.population is not None
        assert result.population.n_receivers == 5_000
        assert result.calibration is not None
        assert result.calibration.fer_scale_db > 0
        assert not result.calibration_cached

    def test_repeat_run_hits_calibration_store(self, broadcast, config):
        first = run_fleet(broadcast, config, processes=1)
        second = run_fleet(broadcast, config, processes=1)
        assert second.calibration_cached
        assert second.calibration.fer_midpoint_db == first.calibration.fer_midpoint_db
        assert np.array_equal(
            first.population.loss_rates, second.population.loss_rates
        )

    def test_population_inherits_seed_and_profile(self, broadcast, config):
        result = run_fleet(broadcast, config, processes=1)
        assert result.population.config.master_seed == config.master_seed
        assert result.population.config.profile == config.profile

    def test_population_requires_awgn_calibration(self):
        with pytest.raises(ValueError):
            FleetConfig(
                impairment="acoustic",
                population=PopulationConfig(n_receivers=10),
            )
