"""Block interleaver: permutation and burst-spreading properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fec.interleaver import BlockInterleaver


class TestInterleaver:
    @given(
        rows=st.integers(1, 12),
        cols=st.integers(1, 12),
    )
    def test_roundtrip(self, rows, cols):
        il = BlockInterleaver(rows, cols)
        values = np.arange(il.size)
        assert np.array_equal(il.deinterleave(il.interleave(values)), values)

    def test_is_permutation(self):
        il = BlockInterleaver(4, 8)
        out = il.interleave(np.arange(32))
        assert sorted(out.tolist()) == list(range(32))

    def test_burst_spreading(self):
        # A burst of `rows` consecutive errors lands in distinct rows,
        # i.e. distinct RS codewords after deinterleaving.
        rows, cols = 4, 16
        il = BlockInterleaver(rows, cols)
        stream = np.zeros(il.size, dtype=int)
        stream[10 : 10 + rows] = 1  # burst on the wire
        restored = il.deinterleave(stream)
        per_row = restored.reshape(rows, cols).sum(axis=1)
        assert per_row.max() == 1

    def test_size_mismatch_rejected(self):
        il = BlockInterleaver(3, 5)
        with pytest.raises(ValueError):
            il.interleave(np.arange(14))
        with pytest.raises(ValueError):
            il.deinterleave(np.arange(16))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0, 5)
