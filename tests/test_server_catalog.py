"""BundleStore and the pooled catalog pipeline."""

import pytest

from repro.server.cache import BundleStore, bundle_key
from repro.server.catalog import CatalogConfig, CatalogPipeline
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import Location
from repro.sim.workload import BroadcastWorkload, WorkloadConfig
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.web.sites import SiteGenerator

_SMALL = CatalogConfig(seed=42, n_sites=2, width=240, max_height=600, quality=10)


class TestBundleKey:
    def test_deterministic(self):
        a = bundle_key("x.pk/", 3, 360, 1000, 10, 42)
        assert a == bundle_key("x.pk/", 3, 360, 1000, 10, 42)

    def test_sensitive_to_every_input(self):
        base = ("x.pk/", 3, 360, 1000, 10, 42)
        keys = {bundle_key(*base)}
        for i, changed in enumerate(("y.pk/", 4, 480, 2000, 50, 7)):
            args = list(base)
            args[i] = changed
            keys.add(bundle_key(*args))
        assert len(keys) == 7


class TestBundleStore:
    def test_put_get(self):
        store = BundleStore()
        store.put("k1", b"abc")
        assert store.get("k1") == b"abc"
        assert store.get("k2") is None
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1
        assert "k1" in store and "k2" not in store

    def test_lru_eviction(self):
        store = BundleStore(capacity=2)
        store.put("a", b"1")
        store.put("b", b"2")
        store.get("a")  # touch: "b" becomes the eviction victim
        store.put("c", b"3")
        assert store.get("b") is None
        assert store.get("a") == b"1"
        assert store.get("c") == b"3"
        assert len(store) == 2

    def test_disk_persistence_across_instances(self, tmp_path):
        store = BundleStore(directory=tmp_path / "bundles")
        store.put("k1", b"payload")
        assert (tmp_path / "bundles" / "k1.swbp").exists()

        revived = BundleStore(directory=tmp_path / "bundles")
        assert len(revived) == 0  # memory is cold...
        assert revived.get("k1") == b"payload"  # ...but disk is warm
        assert revived.stats.disk_hits == 1
        assert revived.stats.hits == 1
        assert revived.get("k1") == b"payload"  # promoted to memory
        assert revived.stats.disk_hits == 1


class TestCatalogPipeline:
    def test_encode_page_store_roundtrip(self):
        pipeline = CatalogPipeline(_SMALL)
        url = pipeline.generator.all_urls()[0]
        cold = pipeline.encode_page(url)
        warm = pipeline.encode_page(url)
        assert not cold.from_store and warm.from_store
        assert warm.data == cold.data
        assert warm.key == cold.key

    def test_epoch_changes_key(self):
        pipeline = CatalogPipeline(_SMALL)
        url = pipeline.generator.all_urls()[0]
        gen = pipeline.generator
        hours = range(1, 200)
        changed = next(h for h in hours if gen.changed_at(url, h))
        k0, e0 = pipeline.page_key(url, 0)
        k1, e1 = pipeline.page_key(url, changed)
        assert e1 != e0 and k1 != k0

    def test_serial_equals_pooled(self):
        serial = CatalogPipeline(_SMALL).encode_catalog(hour=0, processes=1)
        pooled = CatalogPipeline(_SMALL).encode_catalog(hour=0, processes=2)
        assert serial.n_pages == pooled.n_pages == 8
        assert [p.data for p in serial.pages] == [p.data for p in pooled.pages]
        assert serial.store_hits == 0 and pooled.store_hits == 0

    def test_warm_store_skips_encoding(self):
        pipeline = CatalogPipeline(_SMALL)
        cold = pipeline.encode_catalog(hour=0, processes=1)
        warm = pipeline.encode_catalog(hour=0, processes=1)
        assert cold.encoded == cold.n_pages
        assert warm.store_hits == warm.n_pages  # nothing re-encoded
        assert warm.encoded == 0
        assert [p.data for p in warm.pages] == [p.data for p in cold.pages]
        assert pipeline.store.stats.hits >= warm.n_pages

    def test_unchanged_pages_reuse_across_hours(self):
        pipeline = CatalogPipeline(_SMALL)
        pipeline.encode_catalog(hour=0, processes=1)
        later = pipeline.encode_catalog(hour=1, processes=1)
        unchanged = sum(
            1
            for url in pipeline.generator.all_urls()
            if not pipeline.generator.changed_at(url, 1)
        )
        assert later.store_hits == unchanged


@pytest.fixture()
def catalog_server():
    gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
    generator = SiteGenerator(seed=42, n_sites=2)
    registry = TransmitterRegistry(
        [Transmitter("lhr", Location(31.5204, 74.3587), 93.7, coverage_km=30.0)]
    )
    server = SonicServer(
        generator,
        registry,
        gateway,
        ServerConfig(render_width=240, max_pixel_height=600),
    )
    return registry, server


class TestServerIntegration:
    def test_render_bundle_hits_store(self, catalog_server):
        _, server = catalog_server
        url = server.generator.all_urls()[0]
        _, d1 = server.render_bundle(url, now=0.0)
        assert server.stats.renders == 1
        # Same (url, epoch): the second call must come from the store.
        _, d2 = server.render_bundle(url, now=60.0)
        assert d2 == d1
        assert server.stats.renders == 1
        assert server.stats.store_hits == 1

    def test_push_catalog_queues_and_announces(self, catalog_server):
        registry, server = catalog_server
        tx = registry.get("lhr")
        result = server.push_catalog(tx, now=0.0, processes=1)
        assert result.n_pages == len(server.generator.all_urls())
        assert server.stats.pushes == result.n_pages
        # Every page plus the catalog announcement item.
        assert tx.carousel.queue_length() == result.n_pages + 1

    def test_push_catalog_warms_render_bundle(self, catalog_server):
        registry, server = catalog_server
        result = server.push_catalog(registry.get("lhr"), now=0.0, processes=1)
        url = server.generator.all_urls()[0]
        _, data = server.render_bundle(url, now=60.0)
        assert server.stats.renders == 0
        assert server.stats.store_hits == 1
        assert data == result.pages[0].data


class TestWorkloadWithPipeline:
    def test_measured_sizes_and_store_reuse(self):
        cfg = WorkloadConfig(
            rate_bps=40_000.0, n_pages=8, n_hours=2, seed=42, quality=10
        )
        pipeline = CatalogPipeline(
            CatalogConfig(
                seed=42, n_sites=cfg.n_sites, width=240, max_height=600, quality=10
            )
        )
        result = BroadcastWorkload(cfg).run(pipeline=pipeline)
        # Hour 0 enqueues every page at its measured encoded size.
        sizes = [
            len(pipeline.encode_page(url, 0).data)
            for url in pipeline.generator.all_urls()
        ]
        assert result.enqueued_mb_per_hour[0] == pytest.approx(sum(sizes) / 1e6)

        # A second rate point over the same store re-encodes nothing.
        puts_before = pipeline.store.stats.puts
        again = BroadcastWorkload(
            WorkloadConfig(rate_bps=10_000.0, n_pages=8, n_hours=2, seed=42)
        ).run(pipeline=pipeline)
        assert pipeline.store.stats.puts == puts_before
        assert (again.enqueued_mb_per_hour == result.enqueued_mb_per_hour).all()

    def test_seed_mismatch_rejected(self):
        cfg = WorkloadConfig(n_pages=8, n_hours=1, seed=7)
        pipeline = CatalogPipeline(_SMALL)  # seed 42
        with pytest.raises(ValueError):
            BroadcastWorkload(cfg).run(pipeline=pipeline)
