"""SONIC server: cache, transmitters, scheduler, request handling."""

import pytest

from repro.server.cache import PageCache
from repro.server.scheduler import PopularityScheduler, SchedulerConfig
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import Location
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.sms.message import SmsMessage
from repro.sms.protocol import PageRequest, RequestAck, RequestError, parse_downlink
from repro.transport.bundle import PageBundle
from repro.web.clickmap import ClickMap
from repro.web.sites import SiteGenerator

_LAHORE = Location(31.5204, 74.3587)
_KARACHI = Location(24.8607, 67.0011)


def _bundle(url: str, page_image) -> PageBundle:
    return PageBundle(url, page_image, ClickMap(), expiry_hours=1.0)


class TestPageCache:
    def test_put_get_fresh(self, page_image):
        cache = PageCache(default_ttl_s=100.0)
        cache.put(_bundle("a.pk/", page_image), now=0.0)
        assert cache.get("a.pk/", 50.0) is not None

    def test_ttl_expiry(self, page_image):
        cache = PageCache(default_ttl_s=100.0)
        cache.put(_bundle("a.pk/", page_image), now=0.0)
        assert cache.get("a.pk/", 150.0) is None

    def test_hit_counting(self, page_image):
        cache = PageCache()
        entry = cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.get("a.pk/", 1.0)
        cache.get("a.pk/", 2.0)
        assert entry.hits == 2

    def test_capacity_eviction_oldest(self, page_image):
        cache = PageCache(capacity=2)
        cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.put(_bundle("b.pk/", page_image), 1.0)
        cache.put(_bundle("c.pk/", page_image), 2.0)
        assert cache.get("a.pk/", 3.0) is None
        assert cache.get("c.pk/", 3.0) is not None

    def test_expire_sweep(self, page_image):
        cache = PageCache(default_ttl_s=10.0)
        cache.put(_bundle("a.pk/", page_image), 0.0)
        cache.put(_bundle("b.pk/", page_image), 8.0)
        assert cache.expire(now=15.0) == 1
        assert cache.urls() == ["b.pk/"]


class TestTransmitters:
    def _tx(self, station="lhr", where=_LAHORE, radius=30.0):
        return Transmitter(station, where, 93.7, coverage_km=radius)

    def test_coverage(self):
        tx = self._tx()
        assert tx.covers(Location(31.6, 74.4))
        assert not tx.covers(_KARACHI)

    def test_registry_routing_nearest(self):
        reg = TransmitterRegistry(
            [self._tx("lhr", _LAHORE), self._tx("khi", _KARACHI)]
        )
        assert reg.covering(Location(31.6, 74.4)).station_id == "lhr"
        assert reg.covering(_KARACHI).station_id == "khi"
        assert reg.covering(Location(30.0, 70.0)) is None

    def test_duplicate_station_rejected(self):
        reg = TransmitterRegistry([self._tx()])
        with pytest.raises(ValueError):
            reg.add(self._tx())

    def test_fm_band_validated(self):
        with pytest.raises(ValueError):
            Transmitter("x", _LAHORE, 50.0, coverage_km=10)


class TestScheduler:
    def test_hour_zero_seeds_catalog(self, site_generator):
        sched = PopularityScheduler(site_generator)
        pushes = sched.pages_to_push(0)
        assert len(pushes) == 100

    def test_later_hours_only_changed_plus_refresh(self, site_generator):
        sched = PopularityScheduler(
            site_generator, SchedulerConfig(refresh_top_n=2)
        )
        pushes = sched.pages_to_push(5)
        urls = [u for u, _ in pushes]
        changed = [
            u for u in site_generator.all_urls() if site_generator.changed_at(u, 5)
        ]
        assert set(changed) <= set(urls)
        assert len(urls) <= len(changed) + 2

    def test_morning_news_boost(self, site_generator):
        sched = PopularityScheduler(site_generator)
        news = [s for s in site_generator.websites() if s.category == "news"]
        if not news:
            pytest.skip("no news site in this corpus seed")
        url = news[0].landing_url
        assert sched.page_priority(url, 7) > sched.page_priority(url, 13)

    def test_priorities_follow_rank(self, site_generator):
        sched = PopularityScheduler(site_generator)
        top = site_generator.websites()[0].landing_url
        bottom = site_generator.websites()[-1].landing_url
        assert sched.page_priority(top, 12) > sched.page_priority(bottom, 12)


@pytest.fixture()
def server_env():
    gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
    generator = SiteGenerator(seed=2, n_sites=2)
    registry = TransmitterRegistry(
        [Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)]
    )
    server = SonicServer(
        generator,
        registry,
        gateway,
        ServerConfig(render_width=360, max_pixel_height=1_000),
    )
    return gateway, generator, registry, server


class TestSonicServer:
    def _request(self, gateway, server, url, now=0.0, where=_LAHORE):
        req = PageRequest(url, where.lat, where.lon)
        gateway.submit(SmsMessage("+92300123", server.config.sms_number, req.to_text()), now)
        gateway.deliver_due(now + 60.0)

    def test_request_ack_with_eta(self, server_env):
        gateway, generator, registry, server = server_env
        url = generator.all_urls()[0]
        self._request(gateway, server, url)
        replies = gateway.deliver_due(600.0)
        assert len(replies) == 1
        ack = parse_downlink(replies[0].text)
        assert isinstance(ack, RequestAck)
        assert ack.url == url
        assert ack.eta_seconds > 0
        assert registry.get("lhr").carousel.queue_length() == 1

    def test_no_coverage_rejected(self, server_env):
        gateway, generator, _, server = server_env
        self._request(gateway, server, generator.all_urls()[0], where=_KARACHI)
        replies = gateway.deliver_due(600.0)
        err = parse_downlink(replies[0].text)
        assert isinstance(err, RequestError)
        assert err.reason == "no-coverage"

    def test_auth_pages_unsupported(self, server_env):
        gateway, generator, _, server = server_env
        domain = generator.websites()[0].domain
        self._request(gateway, server, f"{domain}/login")
        err = parse_downlink(gateway.deliver_due(600.0)[0].text)
        assert isinstance(err, RequestError)
        assert "auth" in err.reason

    def test_unknown_site_rejected(self, server_env):
        gateway, _, _, server = server_env
        self._request(gateway, server, "nonexistent.pk/")
        err = parse_downlink(gateway.deliver_due(600.0)[0].text)
        assert isinstance(err, RequestError)

    def test_cache_hit_on_repeat_request(self, server_env):
        gateway, generator, _, server = server_env
        url = generator.all_urls()[0]
        self._request(gateway, server, url, now=0.0)
        gateway.deliver_due(600.0)
        renders_before = server.stats.renders
        self._request(gateway, server, url, now=700.0)
        gateway.deliver_due(1_300.0)
        assert server.stats.renders == renders_before
        assert server.stats.cache_hits >= 1

    def test_search_builds_results_page(self, server_env):
        gateway, _, registry, server = server_env
        gateway.submit(
            SmsMessage(
                "+92300123",
                server.config.sms_number,
                f"FIND cricket LOC {_LAHORE.lat},{_LAHORE.lon}",
            ),
            0.0,
        )
        gateway.deliver_due(60.0)
        replies = gateway.deliver_due(600.0)
        ack = parse_downlink(replies[0].text)
        assert isinstance(ack, RequestAck)
        assert ack.url.startswith("sonic.search/")
        assert server.stats.searches == 1

    def test_hourly_push_renders_and_queues(self, server_env):
        _, generator, registry, server = server_env
        pushed = server.hourly_push(0.0)
        assert pushed == len(generator.all_urls())
        assert registry.get("lhr").carousel.queue_length() == pushed

    def test_page_ids_stable(self, server_env):
        *_, server = server_env
        a = server.page_id("x.pk/")
        b = server.page_id("y.pk/")
        assert a != b
        assert server.page_id("x.pk/") == a


class TestBatchedRequests:
    def test_batch_matches_serial_acks(self, server_env):
        gateway, generator, registry, server = server_env
        urls = generator.all_urls()[:3]
        # Hot page: three users want urls[0], one wants urls[1].
        batch = [
            (PageRequest(urls[0], _LAHORE.lat, _LAHORE.lon), f"+9230{i}")
            for i in range(3)
        ] + [(PageRequest(urls[1], _LAHORE.lat, _LAHORE.lon), "+92309")]
        renders_before = server.stats.renders
        replies = server.handle_page_requests_batch(batch, now=0.0)
        assert len(replies) == 4
        acks = [parse_downlink(r) for r in replies]
        assert all(isinstance(a, RequestAck) for a in acks)
        assert [a.url for a in acks] == [urls[0]] * 3 + [urls[1]]
        # N requests for the hot page cost one render each unique page.
        assert server.stats.renders - renders_before == 2
        # One carousel transmission per unique page, not per request.
        tx = registry.covering(_LAHORE)
        assert tx.carousel.queue_length() == 2

    def test_batch_routes_errors_individually(self, server_env):
        gateway, generator, registry, server = server_env
        url = generator.all_urls()[0]
        batch = [
            (PageRequest(url, _LAHORE.lat, _LAHORE.lon), "+92301"),
            (PageRequest("bank.pk/login", _LAHORE.lat, _LAHORE.lon), "+92302"),
            (PageRequest(url, _KARACHI.lat, _KARACHI.lon), "+92303"),
            (PageRequest("nowhere.pk/", _LAHORE.lat, _LAHORE.lon), "+92304"),
        ]
        replies = [parse_downlink(r) for r in
                   server.handle_page_requests_batch(batch, now=0.0)]
        assert isinstance(replies[0], RequestAck)
        assert isinstance(replies[1], RequestError)
        assert replies[1].reason == "unsupported-auth"
        assert isinstance(replies[2], RequestError)
        assert replies[2].reason == "no-coverage"
        assert isinstance(replies[3], RequestError)
        assert replies[3].reason == "unknown-site"

    def test_batch_replies_reach_senders(self, server_env):
        gateway, generator, registry, server = server_env
        url = generator.all_urls()[0]
        inbox = []
        gateway.register("+92305", lambda m, now: inbox.append(m.text))
        server.handle_page_requests_batch(
            [(PageRequest(url, _LAHORE.lat, _LAHORE.lon), "+92305")], now=0.0
        )
        gateway.deliver_due(120.0)
        assert len(inbox) == 1
        assert isinstance(parse_downlink(inbox[0]), RequestAck)
