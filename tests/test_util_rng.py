"""Deterministic RNG derivation."""

from repro.util.rng import derive_rng


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(1, "channel", 0).random(5)
        b = derive_rng(1, "channel", 0).random(5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        a = derive_rng(1, "channel", 0).random(5)
        b = derive_rng(1, "channel", 1).random(5)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert (a != b).any()

    def test_label_types_mix(self):
        a = derive_rng(0, "page", "dawn.pk", 3)
        b = derive_rng(0, "page", "dawn.pk", "3")
        # Int 3 and string "3" stringify identically by design: stable keys.
        assert a.random() == b.random()

    def test_nested_vs_flat_labels_differ(self):
        a = derive_rng(0, "ab").random()
        b = derive_rng(0, "a", "b").random()
        assert a != b
