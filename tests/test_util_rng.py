"""Deterministic RNG derivation and the counter-based population streams."""

import numpy as np

from repro.util.rng import counter_normals, counter_uniforms, derive_key, derive_rng


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(1, "channel", 0).random(5)
        b = derive_rng(1, "channel", 0).random(5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        a = derive_rng(1, "channel", 0).random(5)
        b = derive_rng(1, "channel", 1).random(5)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert (a != b).any()

    def test_label_types_mix(self):
        a = derive_rng(0, "page", "dawn.pk", 3)
        b = derive_rng(0, "page", "dawn.pk", "3")
        # Int 3 and string "3" stringify identically by design: stable keys.
        assert a.random() == b.random()

    def test_nested_vs_flat_labels_differ(self):
        a = derive_rng(0, "ab").random()
        b = derive_rng(0, "a", "b").random()
        assert a != b


class TestDeriveKey:
    def test_key_matches_derive_rng_material(self):
        # Same path derivation: changing any label changes the key.
        assert derive_key(1, "a", 2) == derive_key(1, "a", 2)
        assert derive_key(1, "a", 2) != derive_key(1, "a", 3)
        assert derive_key(1, "a") != derive_key(2, "a")
        assert 0 <= derive_key(0) < 2**64


class TestCounterStreams:
    def test_uniforms_in_unit_interval(self):
        u = counter_uniforms(derive_key(0, "u"), np.arange(100_000))
        assert u.min() >= 0.0
        assert u.max() < 1.0

    def test_uniform_moments(self):
        u = counter_uniforms(derive_key(0, "m"), np.arange(200_000))
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.std() - (1.0 / 12.0) ** 0.5) < 0.005

    def test_partition_invariance(self):
        """The defining property: any slicing of the counter space
        reproduces the monolithic stream bit-for-bit."""
        key = derive_key(7, "partition")
        whole = counter_uniforms(key, np.arange(10_000))
        pieces = np.concatenate(
            [
                counter_uniforms(key, np.arange(0, 1_234)),
                counter_uniforms(key, np.arange(1_234, 7_777)),
                counter_uniforms(key, np.arange(7_777, 10_000)),
            ]
        )
        assert np.array_equal(whole, pieces)
        # Order of evaluation is irrelevant too.
        shuffled = counter_uniforms(key, np.array([5, 3, 8]))
        assert shuffled[1] == whole[3]

    def test_keys_give_independent_streams(self):
        c = np.arange(1_000)
        a = counter_uniforms(derive_key(0, "s", 0), c)
        b = counter_uniforms(derive_key(0, "s", 1), c)
        assert not np.array_equal(a, b)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_shape_preserved(self):
        u = counter_uniforms(derive_key(0, "2d"), np.arange(12).reshape(3, 4))
        assert u.shape == (3, 4)

    def test_normal_moments(self):
        z = counter_normals(derive_key(0, "n"), np.arange(200_000))
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01
        # Tail sanity: ~2.3% beyond +2 sigma.
        assert 0.015 < float((z > 2.0).mean()) < 0.03

    def test_normals_partition_invariant(self):
        key = derive_key(1, "np")
        whole = counter_normals(key, np.arange(1_000))
        halves = np.concatenate(
            [counter_normals(key, np.arange(500)),
             counter_normals(key, np.arange(500, 1_000))]
        )
        assert np.array_equal(whole, halves)
