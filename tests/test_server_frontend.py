"""Async SMS request front end: coalescing, backpressure, determinism."""

import numpy as np
import pytest

from repro.server.frontend import (
    FrontendConfig,
    RequestFrontend,
    SizeModelResolver,
)
from repro.server.ledger import RequestLedger
from repro.sim.workload import RequestTraceConfig, RequestTrace, generate_requests
from repro.web.sites import SiteGenerator


def _resolver(max_page_bytes=12 * 1024, seed=7):
    return SizeModelResolver(
        SiteGenerator(seed=seed, n_sites=25), max_page_bytes=max_page_bytes
    )


def _trace(**overrides) -> RequestTrace:
    defaults = dict(hours=1.0, n_pages=100, n_requests=5_000, seed=11)
    defaults.update(overrides)
    return generate_requests(RequestTraceConfig(**defaults))


class TestRequestTrace:
    def test_exact_count_mode(self):
        trace = _trace(n_requests=1_234)
        assert trace.n_requests == 1_234
        assert trace.times.size == trace.url_index.size

    def test_times_sorted_within_duration(self):
        trace = _trace()
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[0] >= 0.0
        assert trace.times[-1] < trace.duration_s

    def test_rate_mode_approximates_rate(self):
        config = RequestTraceConfig(hours=2.0, n_pages=50, rate_per_s=5.0, seed=3)
        trace = generate_requests(config)
        expected = config.rate_per_s * config.duration_s
        assert 0.9 * expected < trace.n_requests < 1.1 * expected

    def test_deterministic_per_seed(self):
        a, b = _trace(seed=9), _trace(seed=9)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.url_index, b.url_index)
        c = _trace(seed=10)
        assert not np.array_equal(a.times, c.times)

    def test_zipf_head_dominates(self):
        trace = _trace(n_requests=50_000)
        counts = np.bincount(trace.url_index, minlength=100)
        # Rank-0 must beat rank-50 clearly under exponent 0.9.
        assert counts[0] > 5 * counts[50]
        assert trace.url_index.min() >= 0
        assert trace.url_index.max() < 100


class TestCoalescing:
    def test_hot_page_costs_one_transmission(self):
        # Everyone asks for page 0 within one tick: one enqueue, N-1 coalesced.
        n = 200
        trace = RequestTrace(
            times=np.linspace(0.0, 5.0, n, endpoint=False),
            url_index=np.zeros(n, dtype=np.int32),
            n_pages=100,
            duration_s=10.0,
        )
        fe = RequestFrontend(_resolver(), FrontendConfig())
        result = fe.run(trace)
        assert result.stats.enqueued_pages == 1
        assert result.stats.coalesced == n - 1
        assert result.served_fraction == 1.0

    def test_latency_percentiles_ordered(self):
        fe = RequestFrontend(_resolver(), FrontendConfig())
        result = fe.run(_trace())
        assert 0 < result.p50_latency_s <= result.p90_latency_s
        assert result.p90_latency_s <= result.p99_latency_s

    def test_epoch_replacement_supersedes_stale_page(self):
        # Across site-epoch changes, a queued page re-requested at a new
        # epoch must be replaced in place, not duplicated.
        trace = _trace(hours=30.0, n_requests=30_000, n_pages=20)
        fe = RequestFrontend(
            _resolver(max_page_bytes=None), FrontendConfig(rate_bps=2_000.0)
        )
        result = fe.run(trace)
        assert result.stats.replaced_pages > 0


class TestDeterminism:
    @pytest.mark.parametrize("max_batch", [1, 7, 8192])
    def test_any_partition_matches(self, max_batch):
        trace = _trace(n_requests=3_000)
        reference = RequestFrontend(_resolver(), FrontendConfig())
        reference.run(trace, serial=True)
        fe = RequestFrontend(_resolver(), FrontendConfig(max_batch=max_batch))
        fe.run(trace)
        assert fe.ledger.digest() == reference.ledger.digest()

    def test_backpressure_paths_match_serial(self):
        trace = _trace(n_requests=8_000, hours=0.5)
        config = FrontendConfig(max_backlog_bytes=60_000, defer_capacity=200)
        runs = []
        for serial in (False, True):
            fe = RequestFrontend(_resolver(), config)
            result = fe.run(trace, serial=serial)
            runs.append((fe.ledger.digest(), result.stats))
        (d_async, s_async), (d_serial, s_serial) = runs
        assert s_async.shed > 0  # the config actually exercised shedding
        assert d_async == d_serial
        assert (s_async.deferred, s_async.shed, s_async.retried) == (
            s_serial.deferred, s_serial.shed, s_serial.retried
        )


class TestBackpressure:
    def test_defer_then_retry_on_drain(self):
        trace = _trace(n_requests=4_000, hours=0.5)
        config = FrontendConfig(
            max_backlog_bytes=60_000, defer_capacity=5_000,
            drain_grace_hours=24.0,
        )
        fe = RequestFrontend(_resolver(), config)
        result = fe.run(trace)
        stats = result.stats
        assert stats.deferred > 0
        assert stats.retried == stats.deferred  # all parked requests landed
        assert result.served_fraction == 1.0
        counts = result.ledger_stats.counts
        assert counts == {"broadcast": trace.n_requests}

    def test_shed_when_deferral_full(self):
        trace = _trace(n_requests=8_000, hours=0.5)
        config = FrontendConfig(max_backlog_bytes=60_000, defer_capacity=100)
        fe = RequestFrontend(_resolver(), config)
        result = fe.run(trace)
        stats = result.stats
        assert stats.shed > 0
        assert stats.peak_deferred <= config.defer_capacity
        counts = result.ledger_stats.counts
        assert counts.get("shed", 0) == stats.shed
        assert sum(counts.values()) == trace.n_requests

    def test_backlog_respects_threshold_for_new_pages(self):
        trace = _trace(n_requests=8_000, hours=0.5)
        config = FrontendConfig(max_backlog_bytes=60_000, defer_capacity=100)
        fe = RequestFrontend(_resolver(), config)
        result = fe.run(trace)
        # New pages never push past the threshold; only an in-place epoch
        # replacement may (its airtime is already committed).
        assert result.stats.peak_backlog_bytes <= config.max_backlog_bytes + 12 * 1024

    def test_health_snapshot_keys(self):
        fe = RequestFrontend(_resolver(), FrontendConfig())
        fe.run(_trace(n_requests=500))
        health = fe.health()
        for key in ("sim_hours", "submitted", "backlog_mb", "coalesce_ratio"):
            assert key in health
        assert health["submitted"] == 500


class TestLedgerIntegration:
    def test_file_ledger_survives_reopen(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        fe = RequestFrontend(
            _resolver(), FrontendConfig(), ledger=RequestLedger(path)
        )
        result = fe.run(_trace(n_requests=2_000))
        digest = fe.ledger.digest()
        fe.ledger.close()

        reopened = RequestLedger(path)
        assert len(reopened) == 2_000
        assert reopened.digest() == digest
        assert reopened.reconcile() == result.ledger_stats.counts
        reopened.close()

    def test_stats_percentiles(self):
        fe = RequestFrontend(_resolver(), FrontendConfig())
        result = fe.run(_trace(n_requests=1_000))
        stats = result.ledger_stats
        assert stats.n_requests == 1_000
        assert stats.n_broadcast == 1_000
        assert stats.percentile(50.0) <= stats.percentile(99.0)
