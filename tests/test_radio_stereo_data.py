"""The stereo multi-band data extension (paper's future work)."""

import numpy as np
import pytest

from repro.radio.channels import FmRadioLink
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def two_bursts(quick_modem):
    rng = derive_rng(4, "stereo-test")
    size = quick_modem.frame_payload_size
    a = [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(2)]
    b = [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(2)]
    return a, b, quick_modem.transmit_burst(a), quick_modem.transmit_burst(b)


class TestStereoData:
    def test_both_channels_decode_at_high_rssi(self, quick_modem, two_bursts):
        a, b, wave_a, wave_b = two_bursts
        link = FmRadioLink(seed=2)
        mono_rx, diff_rx = link.transmit_stereo(wave_a, wave_b, rssi_dbm=-65.0)
        mono_frames = quick_modem.receive(mono_rx, frames_per_burst=2)
        diff_frames = quick_modem.receive(diff_rx, frames_per_burst=2)
        assert [f.payload for f in mono_frames] == a
        assert [f.payload for f in diff_frames] == b

    def test_channels_are_independent(self, quick_modem, two_bursts):
        """The mono payloads must not leak into the stereo band."""
        a, b, wave_a, wave_b = two_bursts
        link = FmRadioLink(seed=3)
        _, diff_rx = link.transmit_stereo(wave_a, wave_b, rssi_dbm=-65.0)
        payloads = [f.payload for f in quick_modem.receive(diff_rx, frames_per_burst=2)]
        assert payloads == b != a

    def test_stereo_weaker_than_mono(self, quick_modem, two_bursts):
        """At marginal RSSI the subcarrier channel fails first."""
        a, b, wave_a, wave_b = two_bursts
        mono_ok = diff_ok = 0
        for seed in range(3):
            link = FmRadioLink(seed=10 + seed)
            mono_rx, diff_rx = link.transmit_stereo(wave_a, wave_b, rssi_dbm=-82.0)
            mono_ok += sum(f.ok for f in quick_modem.receive(mono_rx, frames_per_burst=2))
            diff_ok += sum(f.ok for f in quick_modem.receive(diff_rx, frames_per_burst=2))
        assert mono_ok >= diff_ok

    def test_length_mismatch_padded(self, quick_modem, two_bursts):
        _, _, wave_a, wave_b = two_bursts
        link = FmRadioLink(seed=5)
        mono_rx, diff_rx = link.transmit_stereo(wave_a, wave_b[: wave_b.size // 2], -65.0)
        assert mono_rx.size == diff_rx.size == max(wave_a.size, wave_b.size // 2)
