"""Reed-Solomon codec: correction capacity, erasures, failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fec.reed_solomon import ReedSolomon, RSDecodeError


@pytest.fixture(scope="module")
def rs16() -> ReedSolomon:
    return ReedSolomon(nsym=16)


class TestEncode:
    def test_systematic(self, rs16):
        data = bytes(range(50))
        block = rs16.encode(data)
        assert block[:50] == data
        assert len(block) == 50 + 16

    def test_empty_rejected(self, rs16):
        with pytest.raises(ValueError):
            rs16.encode(b"")

    def test_oversized_rejected(self, rs16):
        with pytest.raises(ValueError):
            rs16.encode(bytes(240))

    def test_max_data_len(self, rs16):
        assert rs16.max_data_len == 239
        block = rs16.encode(bytes(239))
        assert len(block) == 255

    def test_clean_block_checks(self, rs16):
        assert rs16.check(rs16.encode(b"hello sonic"))

    def test_invalid_nsym(self):
        with pytest.raises(ValueError):
            ReedSolomon(nsym=0)
        with pytest.raises(ValueError):
            ReedSolomon(nsym=255)


class TestErrorCorrection:
    def test_no_errors(self, rs16):
        data = b"the quick brown fox"
        assert rs16.decode(rs16.encode(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.binary(min_size=10, max_size=100),
        n_errors=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_corrects_up_to_capacity(self, rs16, data, n_errors, seed):
        rng = np.random.default_rng(seed)
        block = bytearray(rs16.encode(data))
        positions = rng.choice(len(block), size=n_errors, replace=False)
        for pos in positions:
            block[pos] ^= int(rng.integers(1, 256))
        assert rs16.decode(bytes(block)) == data

    def test_reports_corrected_count(self, rs16):
        block = bytearray(rs16.encode(b"payload"))
        block[0] ^= 0xFF
        block[3] ^= 0x01
        report = rs16.decode_detailed(bytes(block))
        assert report.corrected == 2

    def test_beyond_capacity_raises(self, rs16):
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        block = bytearray(rs16.encode(data))
        # Corrupt far beyond capacity; decoder must raise, not lie.
        for pos in range(0, 60):
            block[pos] ^= int(rng.integers(1, 256))
        with pytest.raises(RSDecodeError):
            rs16.decode(bytes(block))

    def test_check_fails_on_corruption(self, rs16):
        block = bytearray(rs16.encode(b"x" * 30))
        block[2] ^= 1
        assert not rs16.check(bytes(block))


class TestErasures:
    def test_twice_as_many_erasures(self, rs16):
        rng = np.random.default_rng(1)
        data = bytes(rng.integers(0, 256, 80, dtype=np.uint8))
        block = bytearray(rs16.encode(data))
        positions = rng.choice(len(block), size=16, replace=False)
        for pos in positions:
            block[pos] ^= int(rng.integers(1, 256))
        out = rs16.decode(bytes(block), erase_pos=[int(p) for p in positions])
        assert out == data

    def test_mixed_errors_and_erasures(self, rs16):
        rng = np.random.default_rng(2)
        data = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        block = bytearray(rs16.encode(data))
        corrupt = rng.choice(len(block), size=10, replace=False)
        for pos in corrupt:
            block[pos] ^= int(rng.integers(1, 256))
        # Flag 6 as erasures, leave 4 unknown: 2*4 + 6 = 14 <= 16.
        out = rs16.decode(bytes(block), erase_pos=[int(p) for p in corrupt[:6]])
        assert out == data

    def test_too_many_erasures_raises(self, rs16):
        block = rs16.encode(bytes(40))
        with pytest.raises(RSDecodeError):
            rs16.decode(block, erase_pos=list(range(17)))

    def test_erasure_position_validated(self, rs16):
        block = rs16.encode(bytes(40))
        with pytest.raises(ValueError):
            rs16.decode(block, erase_pos=[len(block)])


class TestOtherStrengths:
    @pytest.mark.parametrize("nsym", [2, 4, 8, 32, 64])
    def test_roundtrip_with_errors(self, nsym):
        rs = ReedSolomon(nsym=nsym)
        rng = np.random.default_rng(nsym)
        data = bytes(rng.integers(0, 256, min(100, rs.max_data_len), dtype=np.uint8))
        block = bytearray(rs.encode(data))
        for pos in rng.choice(len(block), size=nsym // 2, replace=False):
            block[pos] ^= int(rng.integers(1, 256))
        assert rs.decode(bytes(block)) == data

    def test_block_too_short_rejected(self):
        rs = ReedSolomon(nsym=16)
        with pytest.raises(ValueError):
            rs.decode(bytes(10))
