"""DARC 76 kHz subcarrier channel."""

import numpy as np
import pytest

from repro.radio.darc import DarcChannel, DarcConfig
from repro.radio.fm import FmDemodulator, FmModulator
from repro.radio.multiplex import FmMultiplexer


@pytest.fixture(scope="module")
def channel() -> DarcChannel:
    return DarcChannel()


class TestDarc:
    def test_roundtrip(self, channel):
        payload = bytes(range(200))
        assert channel.decode(channel.encode(payload)) == [payload]

    def test_rate_is_16kbps_class(self, channel):
        payload = bytes(1_000)
        wave = channel.encode(payload)
        rate = len(payload) * 8 / (wave.size / channel.config.mpx_rate)
        assert 12_000 < rate < 16_000  # goodput below the 16 kbps line rate

    def test_band_centred_at_76khz(self, channel):
        from repro.dsp.spectrum import band_power_db

        wave = channel.encode(bytes(500))
        inband = band_power_db(wave, 192_000, 68_000, 84_000)
        rds_band = band_power_db(wave, 192_000, 55_000, 59_000)
        assert inband - rds_band > 20

    def test_polarity_insensitive(self, channel):
        payload = b"differential coding"
        wave = channel.encode(payload)
        assert channel.decode(-wave) == [payload]

    def test_noise_tolerance(self, channel):
        rng = np.random.default_rng(0)
        payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
        wave = channel.encode(payload)
        sig_p = np.mean(wave**2)
        noisy = wave + rng.normal(0, np.sqrt(sig_p / 10**1.5), wave.size)
        assert channel.decode(noisy) == [payload]

    def test_garbage_decodes_to_nothing(self, channel):
        rng = np.random.default_rng(1)
        assert channel.decode(rng.normal(0, 1, 30_000)) == []

    def test_through_fm_chain(self, channel):
        payload = bytes(range(128))
        wave = channel.encode(payload)
        mux = FmMultiplexer()
        mono = 0.3 * np.sin(2 * np.pi * 1_000 * np.arange(12_000) / 48_000)
        mpx = mux.compose(mono, darc=wave)
        mod, dem = FmModulator(), FmDemodulator()
        rng = np.random.default_rng(2)
        iq = mod.modulate(mpx)
        cnr_db = 30.0
        noise = np.sqrt(10 ** (-cnr_db / 10) / 2) * (
            rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
        )
        band = mux.extract_darc_band(dem.demodulate(iq + noise))
        assert channel.decode(band) == [payload]

    def test_airtime_estimate(self, channel):
        wave = channel.encode(bytes(100))
        assert wave.size / 192_000 == pytest.approx(
            channel.airtime_seconds(100), rel=0.02
        )

    def test_payload_bounds(self, channel):
        with pytest.raises(ValueError):
            channel.encode(b"")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DarcConfig(subcarrier_hz=95_000)
