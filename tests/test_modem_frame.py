"""Frame codec: the CRC-32 + RS + interleave + convolutional pipeline."""

import numpy as np
import pytest

from repro.modem.frame import FecConfig, FrameCodec, FrameDecodeError


@pytest.fixture(scope="module")
def codec() -> FrameCodec:
    return FrameCodec(FecConfig(payload_size=100, rs_nsym=16, conv="v29"))


def _soft(bits: np.ndarray) -> np.ndarray:
    return 1.0 - 2.0 * bits.astype(np.float64)


class TestRoundTrip:
    def test_clean(self, codec):
        rng = np.random.default_rng(0)
        payload = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        assert codec.decode(_soft(codec.encode(payload))) == payload

    def test_wrong_payload_size(self, codec):
        with pytest.raises(ValueError):
            codec.encode(bytes(99))

    def test_frame_bits_static(self, codec):
        # All frames occupy the same coded length (static PHY schedule).
        a = codec.encode(bytes(100))
        b = codec.encode(bytes(range(100)) + bytes(0))
        assert a.size == b.size == codec.frame_bits

    def test_overhead_ratio(self, codec):
        # v29 (rate 1/2) + RS(120,104) + CRC: between 2x and 3x expansion.
        assert 2.0 < codec.overhead_ratio < 3.0

    def test_short_soft_input_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.decode(np.ones(10))


class TestErrorHandling:
    def test_corrects_channel_errors(self, codec):
        rng = np.random.default_rng(1)
        payload = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        soft = _soft(codec.encode(payload))
        flips = rng.choice(soft.size, size=int(0.04 * soft.size), replace=False)
        soft[flips] *= -1
        assert codec.decode(soft) == payload

    def test_unrecoverable_raises(self, codec):
        rng = np.random.default_rng(2)
        payload = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        soft = _soft(codec.encode(payload))
        # Random garbage for half the frame: must fail loudly, not lie.
        soft[: soft.size // 2] = rng.normal(0, 1, soft.size // 2)
        with pytest.raises(FrameDecodeError):
            codec.decode(soft)

    def test_crc_gates_forged_payload(self):
        # Without RS and conv, a bit flip must still be caught by CRC.
        codec = FrameCodec(FecConfig(payload_size=50, rs_nsym=0, conv="none"))
        payload = bytes(range(50))
        soft = _soft(codec.encode(payload))
        soft[13] *= -1
        with pytest.raises(FrameDecodeError):
            codec.decode(soft)


class TestConfigurations:
    @pytest.mark.parametrize(
        "fec",
        [
            FecConfig(payload_size=100, rs_nsym=16, conv="v29"),
            FecConfig(payload_size=100, rs_nsym=16, conv="v27"),
            FecConfig(payload_size=100, rs_nsym=0, conv="v29"),
            FecConfig(payload_size=100, rs_nsym=16, conv="none"),
            FecConfig(payload_size=100, rs_nsym=0, conv="none"),
            FecConfig(payload_size=100, rs_nsym=16, conv="v29", interleave=False),
            FecConfig(payload_size=100, rs_nsym=16, conv="v29", scramble=False),
            FecConfig(payload_size=300, rs_nsym=32, conv="v27"),
        ],
        ids=[
            "full", "v27", "no-rs", "no-conv", "no-fec",
            "no-interleave", "no-scramble", "large-payload",
        ],
    )
    def test_roundtrip_each_config(self, fec):
        codec = FrameCodec(fec)
        rng = np.random.default_rng(fec.payload_size + fec.rs_nsym)
        payload = bytes(rng.integers(0, 256, fec.payload_size, dtype=np.uint8))
        assert codec.decode(_soft(codec.encode(payload))) == payload

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            FecConfig(payload_size=0)
        with pytest.raises(ValueError):
            FecConfig(conv="v99")
        with pytest.raises(ValueError):
            FecConfig(rs_nsym=1)
        with pytest.raises(ValueError):
            FecConfig(rs_nsym=200, rs_max_block=100)

    def test_interleaving_helps_bursts(self):
        """A contiguous burst that breaks the plain codec is corrected
        once the interleaver spreads it across RS blocks."""
        rng = np.random.default_rng(5)
        payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
        outcomes = {}
        for interleave in (False, True):
            codec = FrameCodec(
                FecConfig(
                    payload_size=300,
                    rs_nsym=8,
                    rs_max_block=80,
                    conv="none",
                    interleave=interleave,
                )
            )
            soft = _soft(codec.encode(payload))
            # Burst of 9 corrupted bytes (72 bits): beyond one block's
            # 4-error budget without interleaving.
            start = 640
            soft[start : start + 72] *= -1
            try:
                outcomes[interleave] = codec.decode(soft) == payload
            except FrameDecodeError:
                outcomes[interleave] = False
        assert outcomes[True] and not outcomes[False]
