"""The audio-true full stack: render -> bundle -> frames -> OFDM audio ->
FM broadcast chain -> frames -> bundle -> browser.

The system-level simulations use the fitted loss model for speed; this
test runs one complete page through every real layer at least once, so
any cross-layer drift (frame sizes, header fields, codec format, modem
payload size) fails loudly here.
"""

import numpy as np
import pytest

from repro.client.client import ClientProfile, SonicClient
from repro.core.pipeline import page_to_waveform, waveform_to_frames
from repro.imaging.metrics import psnr_db
from repro.modem.modem import Modem
from repro.radio.channels import FmRadioLink
from repro.sim.geometry import Location
from repro.transport.bundle import BundleTransport, PageBundle
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator


@pytest.mark.slow
def test_full_stack_page_delivery():
    # 1. Render a small corpus page.
    generator = SiteGenerator(seed=3, n_sites=1)
    url = generator.all_urls()[0]
    rendered = PageRenderer(width=360, max_height=480).render(
        generator.page(url, hour=0)
    )

    # 2. Bundle (SWebp Q10 + click map) and chunk into 100-byte frames.
    bundle = PageBundle(url, rendered.image, rendered.clickmap, expiry_hours=6.0)
    data = bundle.to_bytes()
    frames = BundleTransport().chunk(data, page_id=1, version=0)
    assert len(frames) >= 4

    # 3. Modulate into audio and pass through the FM chain at -75 dB.
    modem = Modem("sonic-ofdm")
    wave = page_to_waveform(frames, modem, frames_per_burst=16)
    link = FmRadioLink(seed=9)
    received_audio = link.transmit(wave, rssi_dbm=-75.0)

    # 4. Demodulate back to transport frames.
    received = waveform_to_frames(received_audio, modem, frames_per_burst=16)
    assert len(received) == len(frames)
    assert all(f is not None for f in received), "clean chain lost frames"

    # 5. Client assembles the bundle and the browser opens it.
    client = SonicClient(
        ClientProfile("it-user", Location(31.52, 74.36), connection="cable")
    )
    completed = client.on_frames(received, now=100.0)
    assert [b.url for b in completed] == [url]
    opened = client.browser.open(url, now=101.0)
    assert opened is not None
    # The delivered screenshot is exactly the Q10-coded render — the
    # radio path added zero image damage on top of the codec.
    from repro.imaging.codec import SWebpCodec

    codec_reference = SWebpCodec(10).decode(SWebpCodec(10).encode(rendered.image))
    assert np.array_equal(opened.image, codec_reference)
    assert psnr_db(rendered.image, opened.image) > 20  # Q10 fidelity class
    assert opened.clickmap.regions == rendered.clickmap.regions
    assert opened.expiry_hours == 6.0
