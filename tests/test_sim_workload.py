"""Broadcast workload (Figure 4(c) engine)."""

import numpy as np
import pytest

from repro.sim.workload import BroadcastWorkload, PageSizeModel, WorkloadConfig
from repro.web.sites import SiteGenerator


class TestSizeModel:
    def test_deterministic(self):
        gen = SiteGenerator(seed=1)
        model = PageSizeModel(gen)
        url = gen.all_urls()[0]
        assert model.size_at(url, 3) == model.size_at(url, 3)

    def test_epoch_jitter_small(self):
        gen = SiteGenerator(seed=1)
        model = PageSizeModel(gen)
        url = gen.all_urls()[0]
        sizes = [model.size_at(url, e) for e in range(10)]
        assert max(sizes) / min(sizes) < 1.8

    def test_quality_scaling(self):
        gen = SiteGenerator(seed=1)
        url = gen.all_urls()[0]
        q10 = PageSizeModel(gen, quality=10).base_size(url)
        q90 = PageSizeModel(gen, quality=90).base_size(url)
        assert 2.5 < q90 / q10 < 4.5  # the paper's ~200 KB vs ~700 KB

    def test_calibration_overrides(self):
        gen = SiteGenerator(seed=1)
        model = PageSizeModel(gen)
        url = gen.all_urls()[0]
        model.calibrate({url: 123_456})
        assert model.base_size(url) == 123_456

    def test_sizes_in_paper_range(self):
        gen = SiteGenerator(seed=1)
        model = PageSizeModel(gen)
        sizes = [model.base_size(u) for u in gen.all_urls()]
        assert 100_000 < np.median(sizes) < 500_000


class TestWorkload:
    @pytest.fixture(scope="class")
    def short_runs(self):
        results = {}
        for rate in (10_000, 40_000):
            wl = BroadcastWorkload(WorkloadConfig(rate_bps=rate, n_hours=24))
            results[rate] = wl.run()
        return results

    def test_backlog_nonnegative(self, short_runs):
        for res in short_runs.values():
            assert (res.backlog_mb >= 0).all()

    def test_10kbps_rarely_drains(self, short_runs):
        """The paper: at 10 kbps the queue rarely reaches zero."""
        assert short_runs[10_000].fraction_time_empty() < 0.15

    def test_40kbps_drains_often(self, short_runs):
        assert short_runs[40_000].fraction_time_empty() > 0.3

    def test_higher_rate_lower_backlog(self, short_runs):
        assert (
            short_runs[40_000].backlog_mb.mean()
            < short_runs[10_000].backlog_mb.mean()
        )

    def test_bounded_backlog(self, short_runs):
        """SONIC is scalable: backlog does not grow without bound."""
        series = short_runs[10_000].backlog_mb
        first_half = series[: series.size // 2].max()
        assert series.max() < first_half * 2

    def test_n200_at_20k_like_n100_at_10k(self):
        a = BroadcastWorkload(
            WorkloadConfig(rate_bps=10_000, n_pages=100, n_hours=12)
        ).run()
        b = BroadcastWorkload(
            WorkloadConfig(rate_bps=20_000, n_pages=200, n_hours=12)
        ).run()
        # Twice the content at twice the rate: same saturation regime.
        assert b.fraction_time_empty() < 0.15
        assert b.backlog_mb.mean() > a.backlog_mb.mean()

    def test_invalid_page_count(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_pages=150).n_sites
