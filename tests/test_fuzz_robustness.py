"""Failure-injection fuzzing: damaged inputs fail loudly and typed.

A broadcast system feeds its parsers whatever the air delivers.  Every
decoder in the stack must respond to arbitrary corruption with its
documented exception (or an empty result) — never a hang, never a
foreign traceback, never silently wrong data that passes a checksum.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.imaging.codec import CodecError, SWebpCodec
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.framing import FRAME_SIZE, PAYLOAD_SIZE, Frame
from repro.web.clickmap import ClickMap, ClickRegion


@pytest.fixture(scope="module")
def encoded_image(photo_image) -> bytes:
    return SWebpCodec(30).encode(photo_image)


class TestCodecFuzz:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cut=st.floats(min_value=0.01, max_value=0.99))
    def test_truncation_raises_codec_error(self, encoded_image, cut):
        truncated = encoded_image[: max(1, int(len(encoded_image) * cut))]
        with pytest.raises(CodecError):
            SWebpCodec().decode(truncated)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 10_000))
    def test_corruption_contained(self, encoded_image, seed):
        """Byte corruption either decodes to *an image* or raises
        CodecError — nothing else escapes."""
        rng = np.random.default_rng(seed)
        data = bytearray(encoded_image)
        for pos in rng.choice(len(data), size=8, replace=False):
            data[pos] = int(rng.integers(0, 256))
        try:
            image = SWebpCodec().decode(bytes(data))
            assert image.dtype == np.uint8
        except CodecError:
            pass

    @settings(max_examples=20, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_garbage_raises(self, junk):
        with pytest.raises((CodecError, IndexError)):
            SWebpCodec().decode(junk)


class TestFrameFuzz:
    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(min_size=FRAME_SIZE, max_size=FRAME_SIZE))
    def test_random_frames_parse_or_valueerror(self, data):
        try:
            frame = Frame.from_bytes(data)
            assert len(frame.payload) == PAYLOAD_SIZE
        except ValueError:
            pass

    def test_bundle_reassembly_rejects_mixed_totals(self):
        bt = BundleTransport()
        a = bt.chunk(bytes(200), page_id=1)
        b = bt.chunk(bytes(500), page_id=1)
        with pytest.raises(ValueError):
            bt.reassemble(a + b)


class TestBundleFuzz:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 10_000))
    def test_corrupted_bundle_contained(self, photo_image, seed):
        bundle = PageBundle("x.pk/", photo_image, ClickMap([ClickRegion(0, 0, 5, 5, "x.pk/a")]))
        data = bytearray(bundle.to_bytes())
        rng = np.random.default_rng(seed)
        for pos in rng.choice(len(data), size=12, replace=False):
            data[pos] = int(rng.integers(0, 256))
        try:
            restored = PageBundle.from_bytes(bytes(data))
            assert restored.image.dtype == np.uint8
        except (ValueError, CodecError):
            pass

    @settings(max_examples=20, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=100))
    def test_garbage_bundle_raises(self, junk):
        with pytest.raises((ValueError, CodecError, IndexError)):
            PageBundle.from_bytes(junk)

    @settings(max_examples=20, deadline=None)
    @given(junk=st.binary(min_size=2, max_size=120))
    def test_garbage_clickmap_contained(self, junk):
        try:
            cm = ClickMap.from_bytes(junk)
            assert isinstance(len(cm), int)
        except ValueError:
            pass


class TestModemFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_noise_input_never_crashes(self, quick_modem, seed):
        rng = np.random.default_rng(seed)
        noise = rng.normal(0, 0.5, 40_000)
        for frame in quick_modem.receive(noise):
            assert frame.payload is None or len(frame.payload) == 100

    def test_dc_and_silence(self, quick_modem):
        assert quick_modem.receive(np.zeros(30_000)) == []
        assert quick_modem.receive(np.ones(30_000) * 0.3) == []

    def test_clipped_transmission_still_detected(self, quick_modem):
        rng = np.random.default_rng(3)
        payload = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        wave = np.clip(quick_modem.transmit_frame(payload) * 4, -0.4, 0.4)
        frames = quick_modem.receive(wave)
        assert len(frames) == 1  # detected; decode may or may not survive
