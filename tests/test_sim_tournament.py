"""The profile tournament: frontier coverage, caching, determinism."""

import json

import numpy as np
import pytest

from repro.sim.tournament import (
    Contender,
    SweepStore,
    TournamentConfig,
    TournamentResult,
    run_tournament,
    write_frontier_report,
)

TINY = dict(
    snr_grid_db=(0.0, 14.0),
    distance_grid_m=(0.2,),
    rssi_grid_dbm=(-70.0,),
    payload_bytes=12,
    n_messages=2,
    master_seed=7,
)


@pytest.fixture(scope="module")
def tiny_result() -> TournamentResult:
    return run_tournament(TournamentConfig(**TINY), processes=1)


class TestFrontier:
    def test_covers_all_four_profiles(self, tiny_result):
        frontier = tiny_result.frontier()
        assert {row["profile"] for row in frontier} == {
            "sonic-ofdm", "fsk", "gmsk", "audioqr",
        }

    def test_sorted_fastest_first(self, tiny_result):
        rates = [row["net_bps"] for row in tiny_result.frontier()]
        assert rates == sorted(rates, reverse=True)
        # The OFDM profile is the throughput winner the paper picks.
        assert tiny_result.frontier()[0]["profile"] == "sonic-ofdm"

    def test_every_profile_wins_its_clean_cells(self, tiny_result):
        """At 14 dB AWGN every modem must decode its own probe."""
        for profile in tiny_result.config.profiles:
            rows = tiny_result.cells_for(profile, "awgn")
            best = max(rows, key=lambda c: c.value)
            assert best.n_lost == 0, profile

    def test_audioqr_dies_over_fm(self, tiny_result):
        """The FM mono chain low-passes away the 17.5-19.5 kHz band, so
        AudioQR's FM frontier entry must be empty — a real finding, not
        a bug (its chirps sit above the multiplexer's audio band)."""
        row = next(
            r for r in tiny_result.frontier() if r["profile"] == "audioqr"
        )
        assert row["min_rssi_dbm"] is None
        assert row["max_distance_m"] is not None  # fine acoustically

    def test_loss_models_fit_per_profile(self, tiny_result):
        models = tiny_result.loss_models()
        assert set(models) == set(tiny_result.config.profiles)
        for model in models.values():
            # Monotone logistic: loss grows as SNR falls.
            assert model.frame_error_probability(-20.0) > \
                model.frame_error_probability(30.0)


class TestDeterminismAndCaching:
    def test_pooled_equals_serial(self):
        serial = run_tournament(TournamentConfig(**TINY), processes=1)
        pooled = run_tournament(TournamentConfig(**TINY), processes=3)
        key = lambda c: (c.profile, c.axis, c.value, c.n_frames, c.n_lost)
        assert [key(c) for c in serial.cells] == [key(c) for c in pooled.cells]

    def test_warm_store_skips_every_cell(self, tmp_path):
        cfg = TournamentConfig(**TINY, store_dir=str(tmp_path))
        cold = run_tournament(cfg, processes=1)
        assert cold.n_cached == 0
        assert len(list(tmp_path.glob("sweep-*.json"))) == len(cold.cells)
        warm = run_tournament(cfg, processes=1)
        assert warm.n_cached == len(warm.cells)
        key = lambda c: (c.profile, c.axis, c.value, c.n_frames, c.n_lost)
        assert [key(c) for c in warm.cells] == [key(c) for c in cold.cells]

    def test_store_survives_process_boundary_shape(self, tmp_path):
        """A fresh SweepStore over the same directory answers from disk."""
        cfg = TournamentConfig(**TINY, store_dir=str(tmp_path))
        run_tournament(cfg, processes=1)
        fresh = SweepStore(tmp_path)
        warm = run_tournament(cfg, processes=1, store=fresh)
        assert warm.n_cached == len(warm.cells)

    def test_seed_changes_digest(self, tmp_path):
        """A different master seed must not hit the old store entries."""
        run_tournament(
            TournamentConfig(**TINY, store_dir=str(tmp_path)), processes=1
        )
        other = dict(TINY, master_seed=8)
        rerun = run_tournament(
            TournamentConfig(**other, store_dir=str(tmp_path)), processes=1
        )
        assert rerun.n_cached == 0

    def test_corrupt_store_entry_forces_remeasure(self, tmp_path):
        cfg = TournamentConfig(**TINY, store_dir=str(tmp_path))
        run_tournament(cfg, processes=1)
        victim = next(tmp_path.glob("sweep-*.json"))
        victim.write_text("{not json")
        warm = run_tournament(cfg, processes=1)
        assert warm.n_cached == len(warm.cells) - 1


class TestContender:
    def test_family_waveform_is_deterministic(self):
        cfg = TournamentConfig(**TINY)
        a = Contender("gmsk", cfg).waveform
        b = Contender("gmsk", cfg).waveform
        np.testing.assert_array_equal(a, b)

    def test_recovered_counts_multiset_matches(self):
        cfg = TournamentConfig(**TINY)
        c = Contender("fsk", cfg)
        assert c.recovered(c.waveform) == cfg.n_messages
        assert c.recovered(np.zeros(5000)) == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TournamentConfig(profiles=())
        with pytest.raises(ValueError):
            TournamentConfig(n_messages=0)
        with pytest.raises(ValueError):
            TournamentConfig(payload_bytes=300)


class TestReport:
    def test_write_frontier_report(self, tiny_result, tmp_path):
        json_path = tmp_path / "frontier.json"
        svg_path = tmp_path / "frontier.svg"
        write_frontier_report(tiny_result, json_path, svg_path)
        data = json.loads(json_path.read_text())
        assert len(data["frontier"]) == 4
        assert len(data["cells"]) == len(tiny_result.cells)
        svg = svg_path.read_text()
        assert svg.startswith("<svg")
        # Every profile that met the threshold appears as a labelled dot.
        for row in data["frontier"]:
            if row["min_snr_db"] is not None:
                assert row["profile"] in svg

    def test_json_roundtrips_cached_flags(self, tmp_path):
        cfg = TournamentConfig(**TINY, store_dir=str(tmp_path))
        run_tournament(cfg, processes=1)
        warm = run_tournament(cfg, processes=1)
        data = json.loads(warm.to_json())
        assert all(cell["cached"] for cell in data["cells"])
