"""SVG chart generation."""

import numpy as np
import pytest

from repro.report.plots import box_plot, cdf_chart, line_chart
from repro.report.svg import SvgCanvas


class TestSvgCanvas:
    def test_valid_document(self):
        canvas = SvgCanvas(200, 100)
        canvas.line(0, 0, 100, 50)
        canvas.rect(10, 10, 30, 20, fill="#eee")
        canvas.circle(50, 50, 5)
        canvas.text(20, 20, "hello <world> & 'more'")
        doc = canvas.to_string()
        assert doc.startswith("<svg")
        assert doc.rstrip().endswith("</svg>")
        assert "&lt;world&gt;" in doc
        assert "&amp;" in doc

    def test_save(self, tmp_path):
        canvas = SvgCanvas(100, 100)
        canvas.save(tmp_path / "x.svg")
        assert (tmp_path / "x.svg").read_text().startswith("<svg")

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)


class TestCharts:
    def test_line_chart(self, tmp_path):
        x = np.linspace(0, 48, 100)
        series = {
            "10kbps": (x, 10 + 5 * np.sin(x / 4)),
            "20kbps": (x, 5 + 3 * np.sin(x / 4)),
        }
        path = tmp_path / "line.svg"
        line_chart(series, path, title="backlog", x_label="hours", y_label="MB")
        doc = path.read_text()
        assert doc.count("<polyline") == 2
        assert "10kbps" in doc

    def test_cdf_chart(self, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "cdf.svg"
        cdf_chart(
            {"Q10": rng.lognormal(12, 0.3, 50), "Q90": rng.lognormal(13, 0.3, 50)},
            path,
            title="sizes",
            x_label="bytes",
        )
        assert path.read_text().count("<polyline") == 2

    def test_box_plot(self, tmp_path):
        rng = np.random.default_rng(1)
        groups = {d: rng.uniform(0, 20, 10) for d in ("10cm", "50cm", "1m")}
        path = tmp_path / "box.svg"
        box_plot(groups, path, title="loss", y_label="%")
        doc = path.read_text()
        assert doc.count("<rect") >= 4  # frame + three boxes
        assert "1m" in doc

    def test_empty_inputs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            line_chart({}, tmp_path / "x.svg")
        with pytest.raises(ValueError):
            cdf_chart({}, tmp_path / "x.svg")
        with pytest.raises(ValueError):
            box_plot({}, tmp_path / "x.svg")

    def test_constant_series_no_crash(self, tmp_path):
        line_chart(
            {"flat": (np.arange(5), np.zeros(5))}, tmp_path / "flat.svg"
        )
        assert (tmp_path / "flat.svg").exists()
