"""Tranco-like ranked list."""

import pytest

from repro.web.tranco import TrancoList


class TestTranco:
    def test_size(self):
        assert len(TrancoList(seed=0, size=500)) == 500

    def test_deterministic(self):
        a = [e.domain for e in TrancoList(seed=3).entries[:20]]
        b = [e.domain for e in TrancoList(seed=3).entries[:20]]
        assert a == b

    def test_seeds_differ(self):
        a = [e.domain for e in TrancoList(seed=1).entries[:20]]
        b = [e.domain for e in TrancoList(seed=2).entries[:20]]
        assert a != b

    def test_filter_suffix(self):
        tl = TrancoList(seed=0)
        pk = tl.filter(".pk")
        assert pk
        assert all(e.domain.endswith(".pk") for e in pk)
        ranks = [e.rank for e in pk]
        assert ranks == sorted(ranks)

    def test_top_is_paper_query(self):
        """Top 25 .pk domains — the paper's Tranco selection."""
        top = TrancoList(seed=0).top(25, suffix=".pk")
        assert len(top) == 25
        assert all(e.domain.endswith(".pk") for e in top)

    def test_weights_zipf_decreasing(self):
        entries = TrancoList(seed=0).entries
        assert entries[0].weight > entries[10].weight > entries[100].weight

    def test_min_pk_extension(self):
        tl = TrancoList(seed=0, size=500, min_pk=60)
        assert len(tl.filter(".pk")) >= 60

    def test_no_duplicate_domains(self):
        domains = [e.domain for e in TrancoList(seed=0).entries]
        assert len(domains) == len(set(domains))

    def test_size_floor(self):
        with pytest.raises(ValueError):
            TrancoList(size=10)
