"""GF(256) field axioms and table consistency."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fec.galois import GF

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(nonzero, nonzero)
    def test_mul_commutative(self, a, b):
        assert GF.mul(a, b) == GF.mul(b, a)

    @given(nonzero, nonzero, nonzero)
    def test_mul_associative(self, a, b, c):
        assert GF.mul(GF.mul(a, b), c) == GF.mul(a, GF.mul(b, c))

    @given(nonzero)
    def test_inverse(self, a):
        assert GF.mul(a, GF.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF.div(a, b) == GF.mul(a, GF.inv(b))

    @given(elements)
    def test_mul_by_zero(self, a):
        assert GF.mul(a, 0) == 0
        assert GF.mul(0, a) == 0

    @given(elements)
    def test_mul_identity(self, a):
        assert GF.mul(a, 1) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            GF.inv(0)

    @given(nonzero)
    def test_log_exp_inverse(self, a):
        assert GF.exp(GF.log(a)) == a

    def test_generator_order(self):
        # alpha generates the full multiplicative group of order 255.
        seen = set()
        for i in range(255):
            seen.add(GF.exp(i))
        assert len(seen) == 255

    @given(nonzero, st.integers(min_value=-5, max_value=510))
    def test_pow_consistent(self, a, k):
        expected = 1
        if k >= 0:
            for _ in range(k):
                expected = GF.mul(expected, a)
        else:
            inv = GF.inv(a)
            for _ in range(-k):
                expected = GF.mul(expected, inv)
        assert GF.pow(a, k) == expected


class TestVectorOps:
    @given(st.lists(elements, min_size=1, max_size=20), nonzero)
    def test_mul_vec_matches_scalar(self, values, scalar):
        arr = np.array(values)
        out = GF.mul_vec(arr, scalar)
        for v, o in zip(values, out):
            assert GF.mul(v, scalar) == o

    def test_poly_eval_many_matches_scalar(self):
        poly = np.array([3, 0, 7, 1])
        xs = np.arange(256)
        many = GF.poly_eval_many(poly, xs)
        for x in (0, 1, 2, 37, 255):
            assert many[x] == GF.poly_eval(poly, x)

    def test_poly_mul_identity(self):
        p = np.array([5, 4, 3])
        one = np.array([1])
        assert np.array_equal(GF.poly_mul(p, one), p)
