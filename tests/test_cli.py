"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.dsp.wav import read_wav, write_wav
from repro.imaging.pnm import read_pnm, write_ppm


class TestWav:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        samples = rng.uniform(-0.8, 0.8, 4_800)
        path = tmp_path / "x.wav"
        write_wav(path, samples, 48_000)
        restored, rate = read_wav(path)
        assert rate == 48_000
        assert np.max(np.abs(restored - samples)) < 1e-3

    def test_clipping_normalised(self, tmp_path):
        path = tmp_path / "loud.wav"
        write_wav(path, np.array([0.0, 2.0, -2.0]), 8_000)
        restored, _ = read_wav(path)
        assert np.max(np.abs(restored)) <= 1.0

    def test_mono_required(self, tmp_path):
        with pytest.raises(ValueError):
            write_wav(tmp_path / "x.wav", np.zeros((10, 2)))


class TestCli:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "sonic-ofdm" in out
        assert "audible-7k" in out

    def test_corpus(self, capsys):
        assert main(["corpus", "--sites", "4"]) == 0
        out = capsys.readouterr().out
        assert "16 pages" in out

    def test_render_and_codec_pipeline(self, tmp_path, capsys):
        from repro.web.sites import SiteGenerator

        url = SiteGenerator(seed=42).all_urls()[0]
        page_ppm = tmp_path / "page.ppm"
        clicks = tmp_path / "page.clicks"
        assert main([
            "render", url, "--width", "480", "--max-height", "600",
            "--out", str(page_ppm), "--clickmap", str(clicks),
        ]) == 0
        assert page_ppm.exists()
        assert clicks.read_text().strip()

        swebp = tmp_path / "page.swebp"
        out_ppm = tmp_path / "decoded.ppm"
        assert main(["encode", str(page_ppm), str(swebp), "--quality", "30"]) == 0
        assert main(["decode", str(swebp), str(out_ppm)]) == 0
        original = read_pnm(page_ppm)
        decoded = read_pnm(out_ppm)
        assert decoded.shape == original.shape

    def test_render_unknown_url(self, tmp_path, capsys):
        assert main(["render", "nonsense.example/", "--out", str(tmp_path / "x.ppm")]) == 1

    def test_modem_tx_rx(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"connect the unconnected" * 8)
        wav = tmp_path / "tx.wav"
        out = tmp_path / "rx.bin"
        assert main(["modem-tx", str(payload), str(wav)]) == 0
        assert main(["modem-rx", str(wav), "--output", str(out)]) == 0
        assert out.read_bytes().startswith(payload.read_bytes())

    def test_modem_tx_empty_file(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        assert main(["modem-tx", str(empty), str(tmp_path / "x.wav")]) == 1

    def test_decode_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.swebp"
        bad.write_bytes(b"not an image at all")
        assert main(["decode", str(bad), str(tmp_path / "o.ppm")]) == 1

    def test_catalog_end_to_end(self, capsys):
        assert main([
            "catalog", "--top", "1", "--sites", "2",
            "--width", "240", "--max-height", "600", "--processes", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "end-to-end" in out

    def test_catalog_warm_store(self, tmp_path, capsys):
        args = [
            "catalog", "--top", "1", "--sites", "2",
            "--width", "240", "--max-height", "600", "--processes", "1",
            "--store", str(tmp_path / "bundles"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # second run decodes straight from the store
        out = capsys.readouterr().out
        assert "1 store hits" in out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--seconds", "120", "--sites", "2",
            "--width", "360", "--max-height", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "user-c" in out
        assert "server:" in out

    def test_stream(self, capsys):
        assert main([
            "stream", "--hours", "0.01", "--pages", "4",
            "--progress-every", "100",
        ]) == 0
        out = capsys.readouterr().out
        # Live counters: chunk rate, frames decoded, carousel backlog.
        assert "chunks" in out
        assert "backlog" in out
        assert "frames" in out
        assert "streamed 0.010 h of audio" in out
        assert "pages completed: 1" in out  # first page lands inside 36 s

    def test_stream_awgn(self, capsys):
        assert main([
            "stream", "--hours", "0.002", "--pages", "4",
            "--impairment", "awgn", "--snr-db", "18",
            "--progress-every", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "awgn channel" in out
        assert "peak rx buffer" in out

    def test_serve(self, tmp_path, capsys):
        ledger = tmp_path / "requests.sqlite"
        assert main([
            "serve", "--hours", "0.5", "--requests", "3000",
            "--progress-every", "30", "--ledger", str(ledger),
        ]) == 0
        out = capsys.readouterr().out
        assert "async-batched: 3,000 requests" in out
        assert "latency: p50" in out
        assert "coalesce" in out
        assert "backpressure:" in out
        assert ledger.exists()
        from repro.server.ledger import RequestLedger

        reopened = RequestLedger(ledger)
        assert sum(reopened.reconcile().values()) == 3000
        reopened.close()

    def test_serve_serial_mode(self, capsys):
        assert main([
            "serve", "--hours", "0.1", "--requests", "200", "--serial",
            "--progress-every", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "serial: 200 requests" in out
