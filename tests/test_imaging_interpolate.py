"""Nearest-neighbour missing-pixel recovery."""

import numpy as np
import pytest

from repro.imaging.interpolate import (
    apply_loss,
    interpolate_missing,
    loss_mask_from_columns,
)


class TestMask:
    def test_column_segments(self):
        mask = loss_mask_from_columns((10, 5), [(2, 3, 7)])
        assert mask[3:7, 2].all()
        assert mask.sum() == 4

    def test_clamped_to_image(self):
        mask = loss_mask_from_columns((5, 5), [(0, -3, 99)])
        assert mask[:, 0].all()
        assert mask.sum() == 5

    def test_bad_column_rejected(self):
        with pytest.raises(ValueError):
            loss_mask_from_columns((5, 5), [(7, 0, 2)])


class TestApplyLoss:
    def test_masks_to_fill_value(self):
        img = np.full((4, 4, 3), 200, dtype=np.uint8)
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = True
        out = apply_loss(img, mask)
        assert (out[1, 2] == 0).all()
        assert (out[0, 0] == 200).all()

    def test_original_untouched(self):
        img = np.full((4, 4, 3), 200, dtype=np.uint8)
        mask = np.ones((4, 4), dtype=bool)
        apply_loss(img, mask)
        assert (img == 200).all()


class TestInterpolation:
    def test_left_priority(self):
        """The paper: missing pixels take the left neighbour first."""
        img = np.zeros((1, 3, 3), dtype=np.uint8)
        img[0, 0] = [10, 10, 10]
        img[0, 2] = [99, 99, 99]
        mask = np.zeros((1, 3), dtype=bool)
        mask[0, 1] = True
        out = interpolate_missing(img, mask)
        assert (out[0, 1] == 10).all()  # left wins over right

    def test_right_fallback_at_left_edge(self):
        img = np.zeros((1, 2, 3), dtype=np.uint8)
        img[0, 1] = [55, 55, 55]
        mask = np.zeros((1, 2), dtype=bool)
        mask[0, 0] = True
        out = interpolate_missing(img, mask)
        assert (out[0, 0] == 55).all()

    def test_single_lost_column_fully_recovered_on_uniform(self):
        img = np.full((20, 10, 3), 180, dtype=np.uint8)
        mask = loss_mask_from_columns((20, 10), [(4, 0, 20)])
        damaged = apply_loss(img, mask)
        out = interpolate_missing(damaged, mask)
        assert (out == 180).all()

    def test_wide_gap_fills_progressively(self):
        img = np.full((4, 12, 3), 77, dtype=np.uint8)
        mask = np.zeros((4, 12), dtype=bool)
        mask[:, 3:9] = True  # six adjacent lost columns
        out = interpolate_missing(apply_loss(img, mask), mask)
        assert (out == 77).all()

    def test_no_wraparound_from_roll(self):
        """Edge pixels must not borrow from the opposite edge."""
        img = np.zeros((3, 4, 3), dtype=np.uint8)
        img[:, -1] = 250  # bright right edge
        mask = np.zeros((3, 4), dtype=bool)
        mask[:, 0] = True  # lost left column
        img2 = img.copy()
        img2[mask] = 0
        out = interpolate_missing(img2, mask)
        # The left column's donor is its right neighbour (0), never the
        # wrapped-around 250 edge.
        assert (out[:, 0] == 0).all()

    def test_grayscale_supported(self):
        img = np.full((5, 5), 100, dtype=np.uint8)
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        img2 = img.copy()
        img2[2, 2] = 0
        assert interpolate_missing(img2, mask)[2, 2] == 100

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError):
            interpolate_missing(
                np.zeros((4, 4, 3), dtype=np.uint8), np.zeros((3, 3), dtype=bool)
            )

    def test_improves_fidelity_on_page(self, page_image):
        from repro.imaging.metrics import psnr_db
        rng = np.random.default_rng(0)
        mask = np.zeros(page_image.shape[:2], dtype=bool)
        lost_cols = rng.choice(page_image.shape[1], 40, replace=False)
        mask[:, lost_cols] = True
        damaged = apply_loss(page_image, mask)
        repaired = interpolate_missing(damaged, mask)
        assert psnr_db(page_image, repaired) > psnr_db(page_image, damaged) + 5
