"""Page rendering: layout, cropping, click-map extraction, scaling."""

import numpy as np
import pytest

from repro.web.clickmap import ClickMap
from repro.web.dom import (
    AdBanner,
    Divider,
    Footer,
    Header,
    Heading,
    ImageBlock,
    LinkGrid,
    LinkList,
    Page,
    Paragraph,
    SearchBox,
    Thumbnail,
)
from repro.web.render import PageRenderer


def _page(elements) -> Page:
    return Page(url="test.pk/", title="t", elements=elements)


class TestLayout:
    def test_width_and_dtype(self):
        r = PageRenderer(width=600, max_height=None)
        res = r.render(_page([Heading("Hello", 1)]))
        assert res.image.shape[1] == 600
        assert res.image.dtype == np.uint8

    def test_each_element_type_renders(self):
        elements = [
            Header("SITE", (("Nav", "test.pk/nav"),)),
            Heading("Headline", 1, href="test.pk/story"),
            Paragraph("Some body text for the page."),
            ImageBlock(200, 80, seed=1, caption="photo"),
            Thumbnail(200, 80, seed=2),
            LinkList((("More", "test.pk/more"),)),
            LinkGrid((("Dir A", "test.pk/a"), ("Dir B", "test.pk/b"),
                      ("Dir C", "test.pk/c"), ("Dir D", "test.pk/d"))),
            SearchBox(),
            AdBanner("BUY NOW", href="test.pk/ad"),
            Divider(),
            Footer((("About", "test.pk/about"),)),
        ]
        res = PageRenderer(width=500, max_height=None).render(_page(elements))
        assert res.image.shape[0] > 400
        # Ink exists (not a blank page).
        assert (res.image < 250).any()

    def test_empty_page(self):
        res = PageRenderer(width=400).render(_page([]))
        assert res.image.shape[0] >= 1

    def test_min_width_enforced(self):
        with pytest.raises(ValueError):
            PageRenderer(width=100)


class TestCropping:
    def _tall_page(self):
        return _page([Paragraph("words " * 40) for _ in range(120)])

    def test_ph_crop_applies(self):
        full = PageRenderer(width=400, max_height=None).render(self._tall_page())
        cropped = PageRenderer(width=400, max_height=2_000).render(self._tall_page())
        assert full.image.shape[0] > 2_000
        assert cropped.image.shape[0] == 2_000
        assert cropped.cropped
        assert not full.cropped
        assert cropped.full_height == full.image.shape[0]

    def test_clickmap_clipped_with_image(self):
        page = _page(
            [Paragraph("words " * 40) for _ in range(100)]
            + [LinkList((("tail link", "test.pk/tail"),))]
        )
        res = PageRenderer(width=400, max_height=1_000).render(page)
        for region in res.clickmap:
            assert region.y + region.height <= 1_000


class TestClickmap:
    def test_links_mapped(self):
        res = PageRenderer(width=500, max_height=None).render(
            _page(
                [
                    Header("S", (("Home", "test.pk/home"),)),
                    Heading("Story", 2, href="test.pk/story"),
                    LinkList((("A", "test.pk/a"), ("B", "test.pk/b"))),
                ]
            )
        )
        hrefs = set(res.clickmap.hrefs())
        assert {"test.pk/home", "test.pk/story", "test.pk/a", "test.pk/b"} <= hrefs

    def test_hit_test_on_heading(self):
        res = PageRenderer(width=500, max_height=None).render(
            _page([Heading("Clickable", 2, href="test.pk/x")])
        )
        region = res.clickmap.regions[0]
        assert res.clickmap.hit_test(region.x + 1, region.y + 1) == "test.pk/x"

    def test_linkgrid_regions_mapped(self):
        items = tuple((f"L{i}", f"test.pk/{i}") for i in range(9))
        res = PageRenderer(width=600, max_height=None).render(
            _page([LinkGrid(items, columns=3)])
        )
        assert len(res.clickmap) == 9
        # Three distinct x positions (columns), three rows.
        xs = {r.x for r in res.clickmap}
        assert len(xs) == 3

    def test_plain_heading_not_clickable(self):
        res = PageRenderer(width=500, max_height=None).render(
            _page([Heading("Plain", 2)])
        )
        assert len(res.clickmap) == 0

    def test_thumbnail_not_clickable(self):
        """Videos are replaced by thumbnails which are not clickable."""
        res = PageRenderer(width=500, max_height=None).render(
            _page([Thumbnail(300, 100, seed=3)])
        )
        assert len(res.clickmap) == 0


class TestScaling:
    def test_scaled_result(self):
        res = PageRenderer(width=1080, max_height=None).render(
            _page([Heading("Scale me", 1, href="test.pk/s"), Paragraph("body")])
        )
        scaled = res.scaled(1 / 3)
        assert scaled.image.shape[1] == 360
        assert scaled.image.shape[0] == res.image.shape[0] // 3
        r0, s0 = res.clickmap.regions[0], scaled.clickmap.regions[0]
        assert s0.x == pytest.approx(r0.x / 3, abs=1)

    def test_deterministic(self):
        page = _page([ImageBlock(300, 120, seed=9), Paragraph("abc")])
        a = PageRenderer(width=480).render(page).image
        b = PageRenderer(width=480).render(page).image
        assert np.array_equal(a, b)
