"""Receiver-side assembly and recovery metrics."""

import numpy as np
import pytest

from repro.transport.assemble import ColumnAssembler
from repro.transport.framing import Frame, FrameHeader, FrameType
from repro.transport.partition import ColumnTransport
from repro.util.rng import derive_rng


class TestAssembler:
    def test_complete_reception(self, page_image):
        t = ColumnTransport("raw")
        frames = t.partition(page_image)
        asm = ColumnAssembler(page_image.shape[:2])
        asm.add_frames(frames)
        assert asm.complete
        assert asm.coverage == 1.0
        result = asm.result()
        assert result.frame_loss_rate == 0.0
        assert result.pixel_loss_rate == 0.0
        assert np.array_equal(result.image, page_image)

    def test_partial_reception(self, page_image):
        t = ColumnTransport("raw")
        frames = t.partition(page_image)
        rng = derive_rng(1, "drop")
        kept = [f for f in frames if rng.random() > 0.1]
        asm = ColumnAssembler(page_image.shape[:2])
        asm.add_frames(kept)
        assert not asm.complete
        result = asm.result()
        assert result.frame_loss_rate == pytest.approx(
            1 - len(kept) / len(frames), abs=1e-9
        )
        assert 0.05 < result.pixel_loss_rate < 0.2

    def test_interpolation_improves(self, page_image):
        from repro.imaging.metrics import psnr_db

        t = ColumnTransport("raw")
        frames = t.partition(page_image)
        rng = derive_rng(2, "drop")
        kept = [f for f in frames if rng.random() > 0.1]
        asm = ColumnAssembler(page_image.shape[:2])
        asm.add_frames(kept)
        result = asm.result()
        assert psnr_db(page_image, result.interpolated()) > psnr_db(
            page_image, result.image
        )

    def test_gap_filling_across_cycles(self, page_image):
        """Frames from a second carousel cycle fill earlier gaps."""
        t = ColumnTransport("raw")
        frames = t.partition(page_image)
        half = len(frames) // 2
        asm = ColumnAssembler(page_image.shape[:2])
        asm.add_frames(frames[:half])
        first_loss = asm.result().pixel_loss_rate
        asm.add_frames(frames[half:])
        assert asm.complete
        assert asm.result().pixel_loss_rate == 0.0
        assert first_loss > 0.0

    def test_duplicates_idempotent(self, page_image):
        t = ColumnTransport("raw")
        frames = t.partition(page_image)
        asm = ColumnAssembler(page_image.shape[:2])
        asm.add_frames(frames)
        asm.add_frames(frames[:10])
        assert asm.complete

    def test_rejects_wrong_frame_type(self, page_image):
        asm = ColumnAssembler(page_image.shape[:2])
        bad = Frame(FrameHeader(FrameType.BUNDLE_BYTES, 0, 0, 1), b"x")
        with pytest.raises(ValueError):
            asm.add_frame(bad)

    def test_inconsistent_totals_rejected(self, page_image):
        asm = ColumnAssembler(page_image.shape[:2])
        a = Frame(FrameHeader(FrameType.COLUMN_PIXELS, 0, 0, 10, 0, 0, 5), bytes(15))
        b = Frame(FrameHeader(FrameType.COLUMN_PIXELS, 0, 1, 11, 0, 5, 5), bytes(15))
        asm.add_frame(a)
        with pytest.raises(ValueError):
            asm.add_frame(b)

    def test_empty_assembler(self, page_image):
        asm = ColumnAssembler(page_image.shape[:2])
        assert not asm.complete
        assert asm.coverage == 0.0
        result = asm.result()
        assert result.pixel_loss_rate == 1.0
        assert result.frame_loss_rate == 1.0
