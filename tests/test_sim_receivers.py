"""Receiver-fleet harness: determinism, impairments, and pool behaviour."""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.sim.receivers import FleetConfig, ReceiverReport, run_fleet


@pytest.fixture(scope="module")
def broadcast() -> np.ndarray:
    modem = Modem("sonic-ofdm")
    rng = np.random.default_rng(31)
    payloads = [
        rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
        for _ in range(6)
    ]
    return modem.transmit_burst(payloads)


class TestDeterminism:
    def test_serial_equals_pool(self, broadcast):
        """Same master seed => identical per-receiver loss maps, whether
        the fleet runs in-process or across the multiprocessing pool."""
        config = FleetConfig(
            n_receivers=4,
            master_seed=77,
            impairment="awgn",
            snr_db=9.0,  # low enough that losses actually occur
            snr_spread_db=8.0,
            frames_per_burst=6,
        )
        serial = run_fleet(broadcast, config, processes=1)
        pooled = run_fleet(broadcast, config, processes=2)
        assert serial.loss_maps() == pooled.loss_maps()
        assert [r.channel_param for r in serial.reports] == [
            r.channel_param for r in pooled.reports
        ]
        assert pooled.processes == 2

    def test_rerun_is_identical(self, broadcast):
        config = FleetConfig(
            n_receivers=3, master_seed=5, impairment="awgn", frames_per_burst=6
        )
        first = run_fleet(broadcast, config, processes=1)
        again = run_fleet(broadcast, config, processes=1)
        assert first.loss_maps() == again.loss_maps()

    def test_master_seed_changes_realisations(self, broadcast):
        a = run_fleet(
            broadcast,
            FleetConfig(n_receivers=3, master_seed=1, frames_per_burst=6),
            processes=1,
        )
        b = run_fleet(
            broadcast,
            FleetConfig(n_receivers=3, master_seed=2, frames_per_burst=6),
            processes=1,
        )
        assert [r.channel_param for r in a.reports] != [
            r.channel_param for r in b.reports
        ]


class TestImpairments:
    def test_clean_fleet_decodes_everything(self, broadcast):
        result = run_fleet(
            broadcast,
            FleetConfig(n_receivers=2, impairment="clean", frames_per_burst=6),
            processes=1,
        )
        assert result.mean_loss_rate == 0.0
        for report in result.reports:
            assert report.n_frames == 6
            assert report.loss_map == (False,) * 6
            assert report.frame_loss_rate == 0.0

    def test_awgn_snr_draws_spread_around_mean(self, broadcast):
        result = run_fleet(
            broadcast,
            FleetConfig(
                n_receivers=8,
                impairment="awgn",
                snr_db=20.0,
                snr_spread_db=4.0,
                frames_per_burst=6,
            ),
            processes=1,
        )
        snrs = [r.channel_param for r in result.reports]
        assert all(18.0 <= s <= 22.0 for s in snrs)
        assert len(set(snrs)) == len(snrs)  # independent draws

    def test_acoustic_distance_parameter(self, broadcast):
        result = run_fleet(
            broadcast,
            FleetConfig(
                n_receivers=2,
                impairment="acoustic",
                distance_m=0.1,
                distance_spread_m=0.1,
                frames_per_burst=6,
            ),
            processes=1,
        )
        for report in result.reports:
            assert 0.0 <= report.channel_param <= 0.2


class TestChunkedStreaming:
    @pytest.mark.parametrize("impairment", ["clean", "awgn", "acoustic"])
    def test_chunked_run_is_bit_identical_to_batch(self, broadcast, impairment):
        """``chunk_samples`` changes memory behaviour, never results: the
        streaming path replays the batch path's RNG draws exactly."""
        base = dict(
            n_receivers=3,
            master_seed=55,
            impairment=impairment,
            snr_db=10.0,
            snr_spread_db=6.0,
        )
        batch = run_fleet(broadcast, FleetConfig(**base), processes=1)
        chunked = run_fleet(
            broadcast, FleetConfig(**base, chunk_samples=4800), processes=1
        )
        for b, c in zip(batch.reports, chunked.reports):
            assert b.channel_param == c.channel_param
            assert b.loss_map == c.loss_map
            assert b.n_frames == c.n_frames

    def test_chunk_size_is_invisible(self, broadcast):
        """Any chunk size gives the same reports."""
        base = dict(n_receivers=2, master_seed=9, impairment="awgn", snr_db=9.0)
        reference = run_fleet(
            broadcast, FleetConfig(**base, chunk_samples=4800), processes=1
        )
        for chunk in (997, 48_000, broadcast.size):
            other = run_fleet(
                broadcast, FleetConfig(**base, chunk_samples=chunk), processes=1
            )
            for a, b in zip(reference.reports, other.reports):
                assert a.loss_map == b.loss_map

    def test_invalid_chunk_samples_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(n_receivers=1, chunk_samples=0)


class TestConfigAndReports:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(n_receivers=0)
        with pytest.raises(ValueError):
            FleetConfig(impairment="carrier-pigeon")

    def test_loss_rate_of_empty_receiver(self):
        report = ReceiverReport(0, 0.0, 0, 0, ())
        assert report.frame_loss_rate == 1.0

    def test_result_accounting(self, broadcast):
        result = run_fleet(
            broadcast,
            FleetConfig(n_receivers=3, impairment="clean", frames_per_burst=6),
            processes=1,
        )
        assert result.n_receivers == 3
        assert result.elapsed_s > 0
        assert result.receivers_per_s > 0
