"""SMS messages, segmentation, and the store-and-forward gateway."""

import pytest

from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.sms.message import MULTIPART_LIMIT, SEGMENT_LIMIT, SmsMessage, segment_text


class TestSegmentation:
    def test_single_segment(self):
        assert segment_text("x" * 160) == ["x" * 160]

    def test_two_segments(self):
        segments = segment_text("x" * 161)
        assert len(segments) == 2
        assert all(len(s) <= MULTIPART_LIMIT for s in segments)
        assert "".join(segments) == "x" * 161

    def test_extension_chars_cost_double(self):
        # 80 braces = 160 septets: fits; 81 doesn't.
        assert len(segment_text("{" * 80)) == 1
        assert len(segment_text("{" * 81)) == 2

    def test_non_gsm_rejected(self):
        with pytest.raises(ValueError):
            segment_text("中")


class TestMessage:
    def test_segment_count_is_billing_unit(self):
        msg = SmsMessage("+92300", "+92301", "x" * 306)
        assert msg.segment_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SmsMessage("", "+92301", "hi")
        with pytest.raises(ValueError):
            SmsMessage("+92300", "+92301", "中")


class TestGateway:
    def test_delivery_after_latency(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        msg = SmsMessage("+1", "+2", "hello")
        assert gw.submit(msg, now=0.0)
        assert gw.deliver_due(0.1) == []  # too early
        delivered = gw.deliver_due(120.0)
        assert delivered == [msg]
        assert gw.pending_count() == 0

    def test_handler_dispatch(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=2)
        inbox = []
        gw.register("+2", lambda m, now: inbox.append((m.text, now)))
        gw.submit(SmsMessage("+1", "+2", "ping"), 0.0)
        gw.submit(SmsMessage("+1", "+3", "other"), 0.0)
        gw.deliver_due(120.0)
        assert inbox == [("ping", 120.0)]

    def test_loss(self):
        gw = SmsGateway(GatewayConfig(loss_probability=1.0), seed=3)
        assert not gw.submit(SmsMessage("+1", "+2", "x"), 0.0)
        assert gw.lost_count == 1
        assert gw.pending_count() == 0

    def test_multisegment_penalty(self):
        cfg = GatewayConfig(loss_probability=0.0, latency_sigma=1e-9,
                            median_latency_s=4.0, per_segment_penalty_s=10.0)
        gw = SmsGateway(cfg, seed=4)
        gw.submit(SmsMessage("+1", "+2", "short"), 0.0)
        gw.submit(SmsMessage("+1", "+2", "y" * 200), 0.0)
        # Only the single-segment message arrives by t=8.
        assert len(gw.deliver_due(8.0)) == 1
        assert len(gw.deliver_due(30.0)) == 1

    def test_counters(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=5)
        for i in range(5):
            gw.submit(SmsMessage("+1", "+2", f"m{i}"), 0.0)
        gw.deliver_due(600.0)
        assert gw.submitted_count == 5
        assert gw.delivered_count == 5
