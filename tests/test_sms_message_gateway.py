"""SMS messages, segmentation, and the store-and-forward gateway."""

import pytest

from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.sms.message import MULTIPART_LIMIT, SEGMENT_LIMIT, SmsMessage, segment_text


class TestSegmentation:
    def test_single_segment(self):
        assert segment_text("x" * 160) == ["x" * 160]

    def test_two_segments(self):
        segments = segment_text("x" * 161)
        assert len(segments) == 2
        assert all(len(s) <= MULTIPART_LIMIT for s in segments)
        assert "".join(segments) == "x" * 161

    def test_extension_chars_cost_double(self):
        # 80 braces = 160 septets: fits; 81 doesn't.
        assert len(segment_text("{" * 80)) == 1
        assert len(segment_text("{" * 81)) == 2

    def test_non_gsm_rejected(self):
        with pytest.raises(ValueError):
            segment_text("中")


class TestMessage:
    def test_segment_count_is_billing_unit(self):
        msg = SmsMessage("+92300", "+92301", "x" * 306)
        assert msg.segment_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SmsMessage("", "+92301", "hi")
        with pytest.raises(ValueError):
            SmsMessage("+92300", "+92301", "中")


class TestGateway:
    def test_delivery_after_latency(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        msg = SmsMessage("+1", "+2", "hello")
        assert gw.submit(msg, now=0.0)
        assert gw.deliver_due(0.1) == []  # too early
        delivered = gw.deliver_due(120.0)
        assert delivered == [msg]
        assert gw.pending_count() == 0

    def test_handler_dispatch(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=2)
        inbox = []
        gw.register("+2", lambda m, now: inbox.append((m.text, now)))
        gw.submit(SmsMessage("+1", "+2", "ping"), 0.0)
        gw.submit(SmsMessage("+1", "+3", "other"), 0.0)
        gw.deliver_due(120.0)
        assert inbox == [("ping", 120.0)]

    def test_loss(self):
        gw = SmsGateway(GatewayConfig(loss_probability=1.0), seed=3)
        assert not gw.submit(SmsMessage("+1", "+2", "x"), 0.0)
        assert gw.lost_count == 1
        assert gw.pending_count() == 0

    def test_multisegment_penalty(self):
        cfg = GatewayConfig(loss_probability=0.0, latency_sigma=1e-9,
                            median_latency_s=4.0, per_segment_penalty_s=10.0)
        gw = SmsGateway(cfg, seed=4)
        gw.submit(SmsMessage("+1", "+2", "short"), 0.0)
        gw.submit(SmsMessage("+1", "+2", "y" * 200), 0.0)
        # Only the single-segment message arrives by t=8.
        assert len(gw.deliver_due(8.0)) == 1
        assert len(gw.deliver_due(30.0)) == 1

    def test_counters(self):
        gw = SmsGateway(GatewayConfig(loss_probability=0.0), seed=5)
        for i in range(5):
            gw.submit(SmsMessage("+1", "+2", f"m{i}"), 0.0)
        gw.deliver_due(600.0)
        assert gw.submitted_count == 5
        assert gw.delivered_count == 5


class _ReferenceGateway:
    """The historical sorted-list gateway, kept as the semantic oracle.

    ``submit`` appended and re-sorted the whole in-flight list by
    delivery time (a stable sort, so ties kept insertion order);
    ``deliver_due`` scanned it twice.  The shipping heap implementation
    must reproduce its delivery stream exactly, RNG draw for RNG draw.
    """

    def __init__(self, config: GatewayConfig, seed: int) -> None:
        import math

        from repro.util.rng import derive_rng

        self.config = config
        self._rng = derive_rng(seed, "sms-gateway")
        self._in_flight: list[tuple[float, SmsMessage]] = []
        self._log = math.log

    def submit(self, message: SmsMessage, now: float) -> bool:
        cfg = self.config
        if self._rng.random() < cfg.loss_probability:
            return False
        latency = float(
            self._rng.lognormal(
                mean=self._log(cfg.median_latency_s), sigma=cfg.latency_sigma
            )
        )
        latency += cfg.per_segment_penalty_s * (message.segment_count - 1)
        self._in_flight.append((now + latency, message))
        self._in_flight.sort(key=lambda pair: pair[0])
        return True

    def deliver_due(self, now: float) -> list[SmsMessage]:
        due = [m for t, m in self._in_flight if t <= now]
        self._in_flight = [p for p in self._in_flight if p[0] > now]
        return due


class TestGatewayHeapEquivalence:
    def test_default_config_not_shared(self):
        a, b = SmsGateway(seed=1), SmsGateway(seed=2)
        assert a.config == GatewayConfig()
        assert a.config is not b.config
        assert SmsGateway(None, seed=3).config == GatewayConfig()

    def test_heap_matches_reference_on_random_interleavings(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=60, deadline=None)
        @given(st.data())
        def check(data):
            config = GatewayConfig(loss_probability=0.25)
            seed = data.draw(st.integers(0, 2**16))
            heap_gw = SmsGateway(config, seed=seed)
            ref_gw = _ReferenceGateway(config, seed=seed)
            now = 0.0
            for i in range(data.draw(st.integers(1, 50))):
                if data.draw(st.booleans()):
                    # Vary length to cross the multi-segment penalty.
                    pad = "x" * data.draw(st.integers(0, 320))
                    msg = SmsMessage("+1", "+2", f"m{i}-{pad}")
                    assert heap_gw.submit(msg, now) == ref_gw.submit(msg, now)
                else:
                    now += data.draw(
                        st.floats(0.0, 30.0, allow_nan=False, allow_infinity=False)
                    )
                    assert heap_gw.deliver_due(now) == ref_gw.deliver_due(now)
            # Drain everything still in flight; order must match too.
            assert heap_gw.deliver_due(now + 1e6) == ref_gw.deliver_due(now + 1e6)
            assert heap_gw.pending_count() == 0

        check()

    def test_simultaneous_deliveries_keep_submit_order(self):
        # Identical latencies (sigma ~ 0): the heap's (time, seq) key must
        # deliver in submission order, exactly like the stable sort did.
        cfg = GatewayConfig(loss_probability=0.0, latency_sigma=0.0)
        gw = SmsGateway(cfg, seed=9)
        messages = [SmsMessage("+1", "+2", f"m{i}") for i in range(20)]
        for m in messages:
            gw.submit(m, 0.0)
        assert gw.deliver_due(60.0) == messages
