"""GGwave-style FSK baseline modem."""

import numpy as np
import pytest

from repro.modem.fsk import FskConfig, FskModem


@pytest.fixture(scope="module")
def modem() -> FskModem:
    return FskModem()


class TestFsk:
    def test_roundtrip(self, modem):
        wave = modem.transmit(b"sonic uplink msg")
        assert modem.receive(wave) == [b"sonic uplink msg"]

    def test_binary_payload(self, modem):
        payload = bytes(range(40))
        assert modem.receive(modem.transmit(payload)) == [payload]

    def test_rate_is_ggwave_class(self, modem):
        # GGwave reaches ~128 bps; this baseline sits in that ballpark,
        # an order of magnitude under the OFDM profile.
        assert 50 < modem.config.raw_bit_rate < 600

    def test_noise_tolerance(self, modem):
        rng = np.random.default_rng(0)
        wave = modem.transmit(b"hello")
        sig_p = np.mean(wave**2)
        noisy = wave + rng.normal(0, np.sqrt(sig_p / 10), wave.size)  # 10 dB
        assert modem.receive(noisy) == [b"hello"]

    def test_corruption_detected_by_crc(self, modem):
        rng = np.random.default_rng(1)
        wave = modem.transmit(b"hello world")
        noisy = wave + rng.normal(0, 1.5, wave.size)  # drown it
        assert modem.receive(noisy) == []

    def test_payload_bounds(self, modem):
        with pytest.raises(ValueError):
            modem.transmit(b"")
        with pytest.raises(ValueError):
            modem.transmit(bytes(256))

    def test_transmission_time_estimate(self, modem):
        wave = modem.transmit(bytes(50))
        est = modem.transmission_seconds(50)
        assert wave.size / modem.config.sample_rate == pytest.approx(est, rel=0.02)

    def test_tone_plan_validated(self):
        with pytest.raises(ValueError):
            FskConfig(base_freq_hz=23_000, num_tones=16)
        with pytest.raises(ValueError):
            FskConfig(num_tones=5)

    def test_two_messages(self, modem):
        w = np.concatenate(
            [modem.transmit(b"first"), np.zeros(4_000), modem.transmit(b"second")]
        )
        assert modem.receive(w) == [b"first", b"second"]
