"""Erasure-aided Reed-Solomon decoding in the frame codec."""

import numpy as np
import pytest

from repro.modem.frame import FecConfig, FrameCodec, FrameDecodeError


def _soft(bits: np.ndarray) -> np.ndarray:
    return 1.0 - 2.0 * bits.astype(np.float64)


@pytest.fixture(scope="module")
def codecs():
    base = dict(payload_size=200, rs_nsym=16, rs_max_block=120, conv="none")
    return (
        FrameCodec(FecConfig(**base, rs_erasures=False)),
        FrameCodec(FecConfig(**base, rs_erasures=True)),
    )


class TestErasureDecoding:
    def test_clean_roundtrip(self, codecs):
        _, with_erasures = codecs
        payload = bytes(range(200))
        assert with_erasures.decode(_soft(with_erasures.encode(payload))) == payload

    def test_low_confidence_bytes_recovered(self, codecs):
        """Bytes whose soft values were attenuated (fades) decode via
        erasures beyond the plain nsym/2 error budget."""
        plain, with_erasures = codecs
        rng = np.random.default_rng(0)
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        outcomes = {}
        for codec, label in ((plain, "plain"), (with_erasures, "erasures")):
            survived = 0
            for trial in range(12):
                soft = _soft(codec.encode(payload))
                # Fade 11 whole bytes per RS block span: flip their bits
                # AND crush their confidence, as a channel fade does.
                n_bytes = soft.size // 8
                faded = rng.choice(n_bytes, size=22, replace=False)
                for b in faded:
                    soft[b * 8 : (b + 1) * 8] *= -0.05
                try:
                    if codec.decode(soft) == payload:
                        survived += 1
                except FrameDecodeError:
                    pass
            outcomes[label] = survived
        # 11 faded bytes per block exceed the 8-error budget but fit the
        # 14-erasure budget.
        assert outcomes["erasures"] > outcomes["plain"]
        assert outcomes["erasures"] >= 10

    def test_confident_errors_still_handled(self, codecs):
        """Full-confidence bit flips (no erasure hint) still correct up
        to the classic nsym/2 budget."""
        _, with_erasures = codecs
        rng = np.random.default_rng(1)
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        soft = _soft(with_erasures.encode(payload))
        n_bytes = soft.size // 8
        for b in rng.choice(n_bytes, size=6, replace=False):
            soft[b * 8 : (b + 1) * 8] *= -1.0  # hard flips, confident
        assert with_erasures.decode(soft) == payload

    def test_erasures_ignored_with_conv(self):
        """With an inner code the flag is inert (confidence is consumed
        by Viterbi), and decoding still works."""
        codec = FrameCodec(
            FecConfig(payload_size=100, rs_nsym=16, conv="v29", rs_erasures=True)
        )
        payload = bytes(range(100))
        assert codec.decode(_soft(codec.encode(payload))) == payload
