"""Batch frame-pipeline equivalence and broadcast encode caching.

Pins every batch entry point added by the perf PR to the per-frame path
it replaced — convolutional encode/Viterbi, the block interleaver, the
frame codec, and the modem burst — then exercises the transmitter-side
LRU so a repeat broadcast of unchanged content provably performs no
re-encode.
"""

import numpy as np
import pytest

from repro.fec.convolutional import CONV_V27, CONV_V29, ConvolutionalCode
from repro.fec.interleaver import BlockInterleaver
from repro.modem.frame import FecConfig, FrameCodec
from repro.modem.modem import Modem
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import (
    BroadcastEncodeCache,
    Transmitter,
    TransmitterRegistry,
    payload_digest,
)
from repro.sim.geometry import Location
from repro.sms.gateway import GatewayConfig, SmsGateway
from repro.transport.bundle import BundleTransport
from repro.transport.carousel import CarouselItem
from repro.web.sites import SiteGenerator

_LAHORE = Location(31.5204, 74.3587)


class TestConvolutionalBatch:
    @pytest.mark.parametrize("code", [CONV_V27, CONV_V29], ids=["v27", "v29"])
    def test_encode_batch_matches_per_row(self, code):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (6, 120), dtype=np.uint8)
        batch = code.encode_batch(bits)
        for i in range(6):
            np.testing.assert_array_equal(batch[i], code.encode(bits[i]))

    @pytest.mark.parametrize("code", [CONV_V27, CONV_V29], ids=["v27", "v29"])
    def test_decode_soft_batch_matches_per_row(self, code):
        rng = np.random.default_rng(6)
        bits = rng.integers(0, 2, (5, 96), dtype=np.uint8)
        coded = code.encode_batch(bits)
        soft = (1.0 - 2.0 * coded) + rng.normal(0, 0.6, coded.shape)
        batch = code.decode_soft_batch(soft, 96)
        for i in range(5):
            np.testing.assert_array_equal(batch[i], code.decode_soft(soft[i], 96))

    def test_small_code_batch(self):
        code = ConvolutionalCode(3, (0b111, 0b101))
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, (4, 40), dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode_batch(bits)
        np.testing.assert_array_equal(code.decode_soft_batch(soft, 40), bits)


class TestInterleaverBatch:
    def test_many_matches_per_row(self):
        il = BlockInterleaver(4, 17)
        rng = np.random.default_rng(8)
        values = rng.integers(0, 256, (5, 68), dtype=np.uint8)
        inter = il.interleave_many(values)
        for i in range(5):
            np.testing.assert_array_equal(inter[i], il.interleave(values[i]))
        np.testing.assert_array_equal(il.deinterleave_many(inter), values)

    def test_shape_validated(self):
        il = BlockInterleaver(4, 17)
        with pytest.raises(ValueError):
            il.interleave_many(np.zeros((2, 67), dtype=np.uint8))


_CONFIGS = [
    FecConfig(),
    FecConfig(conv="none", rs_erasures=True),
    FecConfig(conv="v27", interleave=False),
    FecConfig(rs_nsym=0),
    FecConfig(rs_nsym=0, conv="none", scramble=False),
]


class TestFrameCodecBatch:
    @pytest.mark.parametrize("config", _CONFIGS)
    def test_encode_batch_matches_per_frame(self, config):
        codec = FrameCodec(config)
        rng = np.random.default_rng(9)
        payloads = [
            rng.integers(0, 256, config.payload_size, dtype=np.uint8).tobytes()
            for _ in range(5)
        ]
        batch = codec.encode_batch(payloads)
        for i, payload in enumerate(payloads):
            np.testing.assert_array_equal(batch[i], codec.encode(payload))

    @pytest.mark.parametrize("config", _CONFIGS)
    def test_decode_batch_matches_per_frame(self, config):
        codec = FrameCodec(config)
        rng = np.random.default_rng(10)
        payloads = [
            rng.integers(0, 256, config.payload_size, dtype=np.uint8).tobytes()
            for _ in range(4)
        ]
        bits = codec.encode_batch(payloads)
        soft = (1.0 - 2.0 * bits) + rng.normal(0, 0.25, bits.shape)
        decoded = codec.decode_batch(soft)
        for i in range(4):
            try:
                expected = codec.decode(soft[i])
            except Exception:
                expected = None
            assert decoded[i] == expected

    def test_decode_batch_survivors_with_one_dead_frame(self):
        codec = FrameCodec()
        rng = np.random.default_rng(12)
        payloads = [bytes([i] * 100) for i in range(3)]
        bits = codec.encode_batch(payloads)
        soft = 1.0 - 2.0 * bits.astype(np.float64)
        soft[1] = -soft[1]  # frame 1 inverted beyond any FEC's reach
        decoded = codec.decode_batch(soft)
        assert decoded[0] == payloads[0]
        assert decoded[1] is None
        assert decoded[2] == payloads[2]

    def test_encode_batch_validates_payload_size(self):
        with pytest.raises(ValueError):
            FrameCodec().encode_batch([b"short"])


class TestModemBurst:
    def test_burst_roundtrip(self):
        modem = Modem("sonic-ofdm")
        rng = np.random.default_rng(13)
        payloads = [
            rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
            for _ in range(4)
        ]
        wave = modem.transmit_burst(payloads)
        results = modem.receive(wave)
        assert [r.payload for r in results if r.ok] == payloads


class TestBroadcastEncodeCache:
    def _frames(self, data: bytes):
        return BundleTransport().chunk(data, page_id=3, version=1)

    def test_frame_cache_hits_and_misses(self):
        cache = BroadcastEncodeCache()
        transport = BundleTransport()
        data = b"page-bytes" * 40
        first = cache.frames(data, page_id=1, version=0, transport=transport)
        again = cache.frames(data, page_id=1, version=0, transport=transport)
        assert again is first
        assert cache.stats.frame_hits == 1 and cache.stats.frame_misses == 1
        cache.frames(data, page_id=1, version=1, transport=transport)
        assert cache.stats.frame_misses == 2  # new version is a new entry

    def test_waveform_cache_no_reencode_on_repeat(self, monkeypatch):
        import repro.core.pipeline as pipeline

        calls = []
        real = pipeline.frames_to_waveform

        def counting(frames, modem, frames_per_burst=16):
            calls.append(len(frames))
            return real(frames, modem, frames_per_burst=frames_per_burst)

        monkeypatch.setattr(pipeline, "frames_to_waveform", counting)
        data = b"unchanged page" * 30
        frames = self._frames(data)
        tx = Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)
        item = CarouselItem(
            "a.pk/", len(data), frames=frames, digest=payload_digest(data)
        )
        modem = Modem("sonic-ofdm")
        first = tx.broadcast_waveform(item, modem)
        second = tx.broadcast_waveform(item, modem)
        # The acceptance bar: the second broadcast performs no re-encode.
        assert len(calls) == 1
        assert second is first
        assert not second.flags.writeable
        assert tx.cache.stats.waveform_hits == 1
        assert tx.cache.stats.waveform_misses == 1
        assert tx.cache.stats.hits == 1

    def test_waveform_keyed_on_profile(self):
        data = b"profile-split" * 20
        frames = self._frames(data)
        cache = BroadcastEncodeCache()
        digest = payload_digest(data)
        a = cache.waveform(frames, digest, Modem("sonic-ofdm"))
        b = cache.waveform(frames, digest, Modem("audible-7k"))
        assert cache.stats.waveform_misses == 2
        assert a.size != b.size or not np.array_equal(a, b)

    def test_lru_eviction(self):
        cache = BroadcastEncodeCache(capacity=2)
        transport = BundleTransport()
        for i in range(3):
            cache.frames(bytes([i]) * 50, page_id=i, version=0, transport=transport)
        assert len(cache) == 2
        cache.frames(b"\x00" * 50, page_id=0, version=0, transport=transport)
        assert cache.stats.frame_misses == 4  # oldest entry was evicted

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BroadcastEncodeCache(capacity=0)

    def test_broadcast_waveform_requires_frames_and_digest(self):
        tx = Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)
        modem = Modem("sonic-ofdm")
        with pytest.raises(ValueError):
            tx.broadcast_waveform(CarouselItem("a.pk/", 10, digest="d"), modem)
        item = CarouselItem("a.pk/", 10, frames=self._frames(b"x" * 10))
        with pytest.raises(ValueError):
            tx.broadcast_waveform(item, modem)


class TestServerUsesCache:
    @pytest.fixture()
    def server_env(self):
        gateway = SmsGateway(GatewayConfig(loss_probability=0.0), seed=1)
        generator = SiteGenerator(seed=2, n_sites=2)
        registry = TransmitterRegistry(
            [Transmitter("lhr", _LAHORE, 93.7, coverage_km=30.0)]
        )
        server = SonicServer(
            generator,
            registry,
            gateway,
            ServerConfig(render_width=360, max_pixel_height=1_000),
        )
        return registry.get("lhr"), server

    def test_repeat_enqueue_chunks_once(self, server_env, monkeypatch):
        tx, server = server_env
        chunk_calls = []
        real_chunk = server._transport.chunk

        def counting(data, page_id=0, version=0):
            chunk_calls.append(page_id)
            return real_chunk(data, page_id=page_id, version=version)

        monkeypatch.setattr(server._transport, "chunk", counting)
        data = b"rendered bundle bytes" * 25
        url = "a.pk/"
        server.enqueue_broadcast(tx, url, data, priority=1.0, version=4)
        server.enqueue_broadcast(tx, url, data, priority=2.0, version=4)
        assert len(chunk_calls) == 1  # second broadcast re-used the frames
        assert tx.cache.stats.frame_hits == 1
        assert tx.carousel.queue_length() == 1  # digest match merged the entry

    def test_changed_content_misses(self, server_env):
        tx, server = server_env
        server.enqueue_broadcast(tx, "a.pk/", b"old" * 40, priority=1.0, version=0)
        server.enqueue_broadcast(tx, "a.pk/", b"new" * 40, priority=1.0, version=1)
        assert tx.cache.stats.frame_hits == 0
        assert tx.cache.stats.frame_misses == 2

    def test_carousel_items_carry_digest(self, server_env):
        tx, server = server_env
        data = b"digest me" * 30
        server.enqueue_broadcast(tx, "a.pk/", data, priority=1.0)
        item = tx.carousel.head()
        assert item is not None and item.digest == payload_digest(data)
