"""High-level modem: frames over audio, bursts, noise, multiple profiles."""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.modem.profiles import get_profile, list_profiles


@pytest.fixture(scope="module")
def payloads(quick_modem):
    rng = np.random.default_rng(9)
    size = quick_modem.frame_payload_size
    return [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(4)]


class TestSingleFrame:
    def test_clean_roundtrip(self, quick_modem, payloads):
        wave = quick_modem.transmit_frame(payloads[0])
        frames = quick_modem.receive(wave)
        assert len(frames) == 1
        assert frames[0].ok
        assert frames[0].payload == payloads[0]

    def test_frame_duration_consistent(self, quick_modem, payloads):
        wave = quick_modem.transmit_frame(payloads[0])
        assert wave.size == quick_modem.frame_samples

    def test_leading_and_trailing_silence(self, quick_modem, payloads):
        wave = quick_modem.transmit_frame(payloads[0])
        padded = np.concatenate([np.zeros(5_000), wave, np.zeros(5_000)])
        frames = quick_modem.receive(padded)
        assert [f.payload for f in frames] == [payloads[0]]

    def test_no_signal_no_frames(self, quick_modem):
        rng = np.random.default_rng(0)
        assert quick_modem.receive(rng.normal(0, 0.01, 30_000)) == []


class TestBursts:
    def test_burst_roundtrip(self, quick_modem, payloads):
        wave = quick_modem.transmit_burst(payloads)
        frames = quick_modem.receive(wave)
        assert [f.payload for f in frames] == payloads

    def test_burst_with_explicit_count(self, quick_modem, payloads):
        wave = quick_modem.transmit_burst(payloads)
        frames = quick_modem.receive(wave, frames_per_burst=len(payloads))
        assert [f.payload for f in frames] == payloads

    def test_burst_amortises_overhead(self, quick_modem):
        assert quick_modem.burst_net_bit_rate(16) > quick_modem.burst_net_bit_rate(1) * 1.15

    def test_two_bursts_in_one_recording(self, quick_modem, payloads):
        gap = np.zeros(3_000)
        wave = np.concatenate(
            [
                quick_modem.transmit_burst(payloads[:2]),
                gap,
                quick_modem.transmit_burst(payloads[2:]),
            ]
        )
        frames = quick_modem.receive(wave)
        assert [f.payload for f in frames] == payloads

    def test_empty_burst_rejected(self, quick_modem):
        with pytest.raises(ValueError):
            quick_modem.transmit_burst([])


class TestNoise:
    def test_decodes_through_moderate_noise(self, quick_modem, payloads):
        rng = np.random.default_rng(1)
        wave = quick_modem.transmit_burst(payloads)
        sig_p = np.mean(wave**2)
        noise = rng.normal(0, np.sqrt(sig_p / 10**1.2), wave.size)  # 12 dB SNR
        frames = quick_modem.receive(wave + noise)
        assert sum(f.ok for f in frames) == len(payloads)

    def test_loses_frames_in_heavy_noise(self, quick_modem, payloads):
        rng = np.random.default_rng(2)
        wave = quick_modem.transmit_burst(payloads)
        sig_p = np.mean(wave**2)
        noise = rng.normal(0, np.sqrt(sig_p * 10), wave.size)  # -10 dB SNR
        frames = quick_modem.receive(wave + noise)
        assert sum(f.ok for f in frames) == 0

    def test_lost_frames_reported_not_dropped(self, quick_modem, payloads):
        """A corrupted frame inside a burst appears as payload=None."""
        rng = np.random.default_rng(3)
        wave = quick_modem.transmit_burst(payloads)
        # Localised noise hit on the second frame's symbols only.
        cfg = quick_modem.profile.ofdm
        start = (
            len(quick_modem._preamble)
            + quick_modem.profile.guard_samples
            + (1 + quick_modem._n_payload_symbols) * cfg.symbol_len
        )
        span = quick_modem._n_payload_symbols * cfg.symbol_len
        wave = wave.copy()
        wave[start : start + span] += rng.normal(0, 0.6, span)
        frames = quick_modem.receive(wave, frames_per_burst=len(payloads))
        assert len(frames) == len(payloads)
        assert frames[0].ok
        assert not frames[1].ok


class TestProfiles:
    def test_registry_contents(self):
        names = list_profiles()
        assert "sonic-ofdm" in names
        assert "sonic-ofdm-fast" in names
        assert "audible-7k" in names

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("fm-wunderbar")

    def test_sonic_profile_is_92_subcarriers(self):
        profile = get_profile("sonic-ofdm")
        assert profile.ofdm.num_subcarriers == 92
        assert profile.fec.payload_size == 100  # paper's frame size
        assert profile.fec.conv == "v29"

    def test_fast_profile_is_faster(self):
        slow = get_profile("sonic-ofdm")
        fast = get_profile("sonic-ofdm-fast")
        assert fast.net_bit_rate() > slow.net_bit_rate()

    def test_modem_accepts_profile_name(self):
        modem = Modem("audible-7k")
        assert modem.profile.name == "audible-7k"
