"""Receiver burst delineation: per-frame offsets and active-symbol count."""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.modem.ofdm import strided_symbol_windows


@pytest.fixture(scope="module")
def modem() -> Modem:
    return Modem("sonic-ofdm")


@pytest.fixture(scope="module")
def burst(modem) -> tuple[np.ndarray, list[bytes]]:
    rng = np.random.default_rng(41)
    payloads = [
        rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
        for _ in range(5)
    ]
    return modem.transmit_burst(payloads), payloads


class TestPerFrameStartIndex:
    def test_frames_report_their_own_offsets(self, modem, burst):
        """Frames after the first must carry their true sample offsets,
        not the burst preamble position."""
        wave, payloads = burst
        received = modem.receive(wave, frames_per_burst=len(payloads))
        assert [f.payload for f in received] == payloads

        starts = [f.start_index for f in received]
        assert len(set(starts)) == len(starts)
        assert starts == sorted(starts)

        # Frame 0 reports the preamble position; frame j > 0 the start of
        # its own payload symbols (training + j frames of symbols in).
        sym_len = modem.profile.ofdm.symbol_len
        per_frame = modem._n_payload_symbols
        preamble_pos = starts[0]
        frame_start = preamble_pos + modem._preamble.size + modem.profile.guard_samples
        for j in range(1, len(starts)):
            assert starts[j] == frame_start + (1 + j * per_frame) * sym_len

    def test_single_frame_unchanged(self, modem):
        payload = bytes(range(100))
        wave = modem.transmit_frame(payload)
        received = modem.receive(wave)
        assert len(received) == 1
        assert received[0].payload == payload

    def test_multi_burst_offsets_stay_ordered(self, modem):
        rng = np.random.default_rng(43)
        payloads = [
            rng.integers(0, 256, 100, dtype=np.uint8).tobytes() for _ in range(4)
        ]
        gap = np.zeros(modem.profile.guard_samples)
        wave = np.concatenate(
            [
                modem.transmit_burst(payloads[:2]),
                gap,
                modem.transmit_burst(payloads[2:]),
            ]
        )
        received = modem.receive(wave, frames_per_burst=2)
        assert [f.payload for f in received] == payloads
        starts = [f.start_index for f in received]
        assert starts == sorted(starts) and len(set(starts)) == 4


class TestActiveSymbolCount:
    def test_burst_size_inferred_without_hint(self, modem, burst):
        wave, payloads = burst
        received = modem.receive(wave)  # no frames_per_burst hint
        assert [f.payload for f in received] == payloads

    def test_vectorised_count_matches_per_symbol_loop(self, modem, burst):
        """The one-FFT band-energy scan must agree with the seed's
        per-symbol loop."""
        wave, _ = burst
        cfg = modem.profile.ofdm
        offset = modem._preamble.size + modem.profile.guard_samples
        frame_start = offset  # burst starts at sample 0
        max_symbols = (wave.size - frame_start) // cfg.symbol_len - 1

        def band_energy(sym_index: int) -> float:
            base = frame_start + sym_index * cfg.symbol_len + cfg.cp_len
            window = wave[base : base + cfg.fft_size]
            if window.size < cfg.fft_size:
                return 0.0
            return float(
                np.sum(np.abs(np.fft.rfft(window)[cfg.active_bins]) ** 2)
            )

        reference = band_energy(0)
        energies = np.array([band_energy(i) for i in range(1, max_symbols + 1)])
        above = np.nonzero(energies >= 0.25 * reference)[0]
        expected = int(above[-1]) + 1 if above.size else 0

        assert modem._count_active_symbols(wave, frame_start, max_symbols) == expected
        assert expected == 5 * modem._n_payload_symbols

    def test_silence_counts_zero(self, modem):
        wave = np.zeros(modem.frame_samples)
        assert modem._count_active_symbols(wave, 0, 4) == 0


class TestStridedWindows:
    def test_view_matches_fancy_indexing(self):
        samples = np.arange(1000, dtype=np.float64)
        view = strided_symbol_windows(samples, start=7, n=9, stride=100, width=64)
        bases = 7 + np.arange(9) * 100
        expected = samples[bases[:, None] + np.arange(64)[None, :]]
        assert view.shape == (9, 64)
        assert (view == expected).all()

    def test_view_is_read_only_and_zero_copy(self):
        samples = np.zeros(500)
        view = strided_symbol_windows(samples, 0, 4, 100, 80)
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        samples[100] = 42.0
        assert view[1, 0] == 42.0  # shares the caller's buffer
