"""Batch SWebp decoder equivalence against the scalar reference.

The seed's sequential token walk survives as ``decode_ref``; these tests
pin the table-driven batch ``decode`` to it bit-for-bit across the
quality scale, odd image geometries, degenerate token streams (all-EOB,
maximum ZRL chains), and malformed input — where both paths must raise
:class:`CodecError`, never a bare ``IndexError`` or silent corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imaging.codec import CodecError, SWebpCodec, SWebpHeader
from repro.imaging.huffman import CanonicalHuffman, pack_fields


def _test_image(shape, color, seed=0):
    """Gradient + noise: compressible but exercises DC diffs and AC runs."""
    rng = np.random.default_rng(seed)
    h, w = shape
    grad = np.linspace(0, 200, w)[None, :] + np.linspace(0, 40, h)[:, None]
    if color:
        img = grad[..., None] + rng.normal(0, 20, (h, w, 3))
    else:
        img = grad + rng.normal(0, 20, (h, w))
    return np.clip(img, 0, 255).astype(np.uint8)


class TestBatchMatchesReference:
    @pytest.mark.parametrize("quality", [0, 10, 37, 50, 80, 95])
    @pytest.mark.parametrize("color", [False, True])
    def test_quality_sweep(self, quality, color):
        codec = SWebpCodec(quality)
        encoded = codec.encode(_test_image((24, 40), color, seed=quality))
        assert np.array_equal(codec.decode(encoded), codec.decode_ref(encoded))

    @pytest.mark.parametrize(
        "shape", [(1, 1), (7, 9), (8, 8), (9, 17), (16, 16), (37, 53), (64, 48)]
    )
    @pytest.mark.parametrize("color", [False, True])
    def test_odd_geometries(self, shape, color):
        codec = SWebpCodec(10)
        encoded = codec.encode(_test_image(shape, color, seed=sum(shape)))
        decoded = codec.decode(encoded)
        assert decoded.shape == ((*shape, 3) if color else shape)
        assert np.array_equal(decoded, codec.decode_ref(encoded))

    @pytest.mark.parametrize("color", [False, True])
    def test_flat_image_all_eob(self, color):
        """Uniform 128 quantises to all-zero blocks: pure DC+EOB stream."""
        shape = (33, 47, 3) if color else (33, 47)
        image = np.full(shape, 128, dtype=np.uint8)
        codec = SWebpCodec(10)
        encoded = codec.encode(image)
        decoded = codec.decode(encoded)
        assert np.array_equal(decoded, codec.decode_ref(encoded))
        assert np.array_equal(decoded, image)  # DC-only blocks are exact

    def test_rendered_page(self, page_image):
        for quality in (10, 80):
            codec = SWebpCodec(quality)
            encoded = codec.encode(page_image)
            assert np.array_equal(
                codec.decode(encoded), codec.decode_ref(encoded)
            )

    def test_photo(self, photo_image):
        codec = SWebpCodec(50)
        encoded = codec.encode(photo_image)
        assert np.array_equal(codec.decode(encoded), codec.decode_ref(encoded))

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(min_value=1, max_value=40),
        w=st.integers(min_value=1, max_value=40),
        quality=st.integers(min_value=0, max_value=95),
        color=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_images(self, h, w, quality, color, seed):
        codec = SWebpCodec(quality)
        rng = np.random.default_rng(seed)
        shape = (h, w, 3) if color else (h, w)
        image = rng.integers(0, 256, shape, dtype=np.uint8)
        encoded = codec.encode(image)
        assert np.array_equal(codec.decode(encoded), codec.decode_ref(encoded))


# -- hand-built streams -------------------------------------------------------
#
# A one-block 8x8 grayscale stream assembled bit by bit, with tiny Huffman
# tables we control: DC symbol 0 (size-0 diff) is the single-bit code '0';
# the AC alphabet {EOB, (run=14,size=1), ZRL, (run=15,size=1)} gets the
# canonical 2-bit codes 00/01/10/11.

_COEF14 = (14 << 4) | 1  # run 14, 1-bit coefficient
_COEF15 = (15 << 4) | 1  # run 15, 1-bit coefficient


def _dc_table(symbols=(0,)):
    lengths = np.zeros(256, dtype=np.uint8)
    code_len = max(1, int(np.ceil(np.log2(len(symbols)))))
    for s in symbols:
        lengths[s] = code_len
    return CanonicalHuffman(lengths)


def _ac_table():
    lengths = np.zeros(256, dtype=np.uint8)
    for s in (0x00, _COEF14, 0xF0, _COEF15):
        lengths[s] = 2
    return CanonicalHuffman(lengths)


def _gray_stream(dc_table, ac_table, fields, w=8, h=8, quality=50):
    """Wrap hand-packed (value, n_bits) fields in a full SWebp stream."""
    vals = np.array([v for v, _ in fields], dtype=np.int64)
    lens = np.array([n for _, n in fields], dtype=np.int64)
    payload = pack_fields(vals, lens)
    header = (
        b"SWBP"
        + bytes([1, 0])
        + w.to_bytes(2, "big")
        + h.to_bytes(2, "big")
        + bytes([quality])
    )
    body = (
        dc_table.serialize()
        + ac_table.serialize()
        + int(lens.sum()).to_bytes(4, "big")
        + payload
    )
    return header + body


def _ac_code(table, sym):
    return (int(table.codes[sym]), int(table.lengths[sym]))


class TestHandBuiltStreams:
    def test_max_zrl_chain_decodes(self):
        """DC + ZRL*3 + coefficient landing exactly on position 63."""
        dc, ac = _dc_table(), _ac_table()
        zrl = _ac_code(ac, 0xF0)
        fields = [(0, 1), zrl, zrl, zrl, _ac_code(ac, _COEF14), (1, 1)]
        stream = _gray_stream(dc, ac, fields)
        codec = SWebpCodec(50)
        ref = codec.decode_ref(stream)
        assert np.array_equal(codec.decode(stream), ref)
        assert ref.shape == (8, 8)

    def test_zrl_past_64_raises(self):
        """DC + ZRL*4 runs to position 65: CodecError from both paths."""
        dc, ac = _dc_table(), _ac_table()
        zrl = _ac_code(ac, 0xF0)
        stream = _gray_stream(dc, ac, [(0, 1), zrl, zrl, zrl, zrl])
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)

    def test_coefficient_run_past_63_raises(self):
        """ZRL*3 then run=15 lands the coefficient past the block."""
        dc, ac = _dc_table(), _ac_table()
        zrl = _ac_code(ac, 0xF0)
        stream = _gray_stream(
            dc, ac, [(0, 1), zrl, zrl, zrl, _ac_code(ac, _COEF15)]
        )
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)

    def test_invalid_ac_code_raises(self):
        """A bit pattern outside the (incomplete) AC code set."""
        dc = _dc_table()
        lengths = np.zeros(256, dtype=np.uint8)
        lengths[0x00] = 2  # EOB = '00'; prefixes 1x map to no symbol
        ac = CanonicalHuffman(lengths)
        stream = _gray_stream(dc, ac, [(0, 1), (3, 2)])
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)

    def test_invalid_dc_code_raises(self):
        lengths = np.zeros(256, dtype=np.uint8)
        lengths[0] = 2  # DC size 0 = '00'; prefix '10' maps to no symbol
        dc = CanonicalHuffman(lengths)
        ac = _ac_table()
        stream = _gray_stream(dc, ac, [(2, 2), _ac_code(ac, 0x00)])
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)

    def test_dc_symbol_above_15_raises(self):
        """DC sizes only go to 15; a table smuggling symbol 20 is rejected."""
        dc = _dc_table(symbols=(0, 20))
        ac = _ac_table()
        # Canonical order gives symbol 20 the code '1'.
        stream = _gray_stream(dc, ac, [(1, 1)])
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)

    def test_truncated_payload_raises(self):
        """Dropping the payload's final byte exhausts the bit stream."""
        dc, ac = _dc_table(), _ac_table()
        zrl = _ac_code(ac, 0xF0)
        fields = [(0, 1), zrl, zrl, zrl, _ac_code(ac, _COEF14), (1, 1)]
        stream = _gray_stream(dc, ac, fields)[:-1]
        codec = SWebpCodec(50)
        with pytest.raises(CodecError):
            codec.decode_ref(stream)
        with pytest.raises(CodecError):
            codec.decode(stream)


class TestMalformedStreams:
    def test_bad_magic(self):
        codec = SWebpCodec(10)
        for decode in (codec.decode, codec.decode_ref):
            with pytest.raises(CodecError):
                decode(b"JUNKJUNKJUNK")

    def test_truncated_header(self):
        codec = SWebpCodec(10)
        for decode in (codec.decode, codec.decode_ref):
            with pytest.raises(CodecError):
                decode(b"SWBP\x01")

    def test_unsupported_version(self):
        codec = SWebpCodec(10)
        encoded = bytearray(codec.encode(_test_image((8, 8), False)))
        encoded[4] = 9
        for decode in (codec.decode, codec.decode_ref):
            with pytest.raises(CodecError):
                decode(bytes(encoded))

    def test_header_parse(self):
        codec = SWebpCodec(37)
        encoded = codec.encode(_test_image((13, 21), True))
        header = SWebpHeader.parse(encoded)
        assert (header.width, header.height) == (21, 13)
        assert header.color and header.quality == 37

    def test_truncation_sweep_parity(self):
        """Every truncation past the header errors identically in both paths.

        The batch transcoder detects exhaustion differently (list index
        overrun or the final limit check, not per-read EOF), so this pins
        the exception *type* — always CodecError — across the whole body.
        """
        codec = SWebpCodec(10)
        encoded = codec.encode(_test_image((17, 23), True, seed=3))
        step = max(1, (len(encoded) - 11) // 60)
        for cut in range(11, len(encoded), step):
            chopped = encoded[:cut]
            try:
                ref = codec.decode_ref(chopped)
                ref_err = None
            except CodecError:
                ref_err = CodecError
            if ref_err is None:
                assert np.array_equal(codec.decode(chopped), ref)
            else:
                with pytest.raises(CodecError):
                    codec.decode(chopped)
