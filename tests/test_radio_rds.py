"""RDS subcarrier: block coding, groups, RadioText."""

import numpy as np
import pytest

from repro.radio.rds import RdsDecoder, RdsEncoder, RdsGroup, _crc10, _syndrome, _OFFSETS


class TestBlockCoding:
    def test_checkword_syndrome_identity(self):
        # A valid block's syndrome equals its offset word.
        for name in ("A", "B", "C", "D"):
            info = 0x1234
            block = (info << 10) | (_crc10(info) ^ _OFFSETS[name])
            assert _syndrome(block) == _OFFSETS[name]

    def test_corrupted_block_breaks_syndrome(self):
        info = 0x4321
        block = (info << 10) | (_crc10(info) ^ _OFFSETS["A"])
        assert _syndrome(block ^ (1 << 13)) != _OFFSETS["A"]


class TestGroups:
    def test_radiotext_payload_roundtrip(self):
        g = RdsGroup.radiotext(0xBEEF, 2, "SONI")
        assert g.group_type == 0x2
        assert g.radiotext_payload() == (2, "SONI")

    def test_non_radiotext_returns_none(self):
        g = RdsGroup((0x1234, 0x0000, 0, 0))
        assert g.radiotext_payload() is None

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            RdsGroup((70_000, 0, 0, 0))
        with pytest.raises(ValueError):
            RdsGroup.radiotext(0, 16, "ABCD")


class TestPhysical:
    def test_loopback_groups(self):
        enc, dec = RdsEncoder(), RdsDecoder()
        groups = [RdsGroup.radiotext(0xCAFE, i, f"SG{i:02d}") for i in range(4)]
        out = dec.decode(enc.encode(groups))
        assert out == groups

    def test_loopback_text(self):
        enc, dec = RdsEncoder(), RdsDecoder()
        band = enc.encode_text(0x1234, "CONNECT THE UNCONNECTED!")
        assert dec.decode_text(band) == "CONNECT THE UNCONNECTED!"

    def test_bit_rate_is_standard(self):
        from repro.radio.rds import BIT_RATE

        assert BIT_RATE == pytest.approx(57_000 / 48)

    def test_noise_tolerance(self):
        enc, dec = RdsEncoder(), RdsDecoder()
        rng = np.random.default_rng(0)
        band = enc.encode_text(0x77, "WEATHER ALERT KARACHI")
        sig_p = np.mean(band**2)
        noisy = band + rng.normal(0, np.sqrt(sig_p / 10**1.5), band.size)
        assert dec.decode_text(noisy) == "WEATHER ALERT KARACHI"

    def test_garbage_decodes_to_nothing(self):
        dec = RdsDecoder()
        rng = np.random.default_rng(1)
        assert dec.decode(rng.normal(0, 1, 50_000)) == []

    def test_short_input(self):
        dec = RdsDecoder()
        assert dec.decode(np.zeros(100)) == []
