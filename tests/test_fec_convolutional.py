"""Convolutional codes and the Viterbi decoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fec.convolutional import CONV_V27, CONV_V29, ConvolutionalCode


class TestEncoder:
    def test_rate_and_lengths(self):
        assert CONV_V27.rate == 0.5
        bits = np.zeros(10, dtype=np.uint8)
        assert CONV_V27.encode(bits).size == CONV_V27.coded_length(10) == (10 + 6) * 2

    def test_zero_input_zero_output(self):
        coded = CONV_V27.encode(np.zeros(20, dtype=np.uint8))
        assert not coded.any()

    def test_linearity(self):
        # Convolutional codes are linear: enc(a^b) = enc(a)^enc(b).
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        lhs = CONV_V29.encode(a ^ b)
        rhs = CONV_V29.encode(a) ^ CONV_V29.encode(b)
        assert np.array_equal(lhs, rhs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CONV_V27.encode(np.zeros(0, dtype=np.uint8))

    def test_bad_constraint_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(2, (0b11, 0b01))
        with pytest.raises(ValueError):
            ConvolutionalCode(7, (0o171,))
        with pytest.raises(ValueError):
            ConvolutionalCode(3, (0o171, 0o133))  # polys too wide


class TestViterbi:
    @settings(max_examples=20, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=8, max_size=200),
    )
    def test_clean_roundtrip_v27(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        coded = CONV_V27.encode(arr)
        assert np.array_equal(CONV_V27.decode(coded, arr.size), arr)

    @pytest.mark.parametrize("code", [CONV_V27, CONV_V29], ids=["v27", "v29"])
    def test_corrects_scattered_bit_errors(self, code):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        coded = code.encode(bits)
        noisy = coded.copy()
        flips = rng.choice(coded.size, size=int(0.03 * coded.size), replace=False)
        noisy[flips] ^= 1
        decoded = code.decode(noisy, bits.size)
        assert np.array_equal(decoded, bits)

    def test_soft_beats_hard_at_low_snr(self):
        rng = np.random.default_rng(4)
        trials = 15
        soft_errs = hard_errs = 0
        for t in range(trials):
            bits = rng.integers(0, 2, 200).astype(np.uint8)
            coded = CONV_V27.encode(bits)
            bipolar = 1.0 - 2.0 * coded.astype(np.float64)
            noisy = bipolar + rng.normal(0, 0.9, bipolar.size)
            soft = CONV_V27.decode_soft(noisy, bits.size)
            hard = CONV_V27.decode((noisy < 0).astype(np.uint8), bits.size)
            soft_errs += int(np.sum(soft != bits))
            hard_errs += int(np.sum(hard != bits))
        assert soft_errs <= hard_errs

    def test_wrong_length_rejected(self):
        coded = CONV_V27.encode(np.ones(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            CONV_V27.decode(coded, 11)

    def test_v29_stronger_than_v27(self):
        # At a harsh flip rate the K=9 code should decode at least as well.
        rng = np.random.default_rng(5)
        errs = {}
        for code, name in ((CONV_V27, "v27"), (CONV_V29, "v29")):
            total = 0
            for t in range(8):
                bits = rng.integers(0, 2, 300).astype(np.uint8)
                coded = code.encode(bits)
                noisy = coded.copy()
                flips = rng.choice(
                    coded.size, size=int(0.065 * coded.size), replace=False
                )
                noisy[flips] ^= 1
                total += int(np.sum(code.decode(noisy, bits.size) != bits))
            errs[name] = total
        assert errs["v29"] <= errs["v27"]
