"""Request ledger: batched writes, digests, crash recovery."""

import os
import signal
import sqlite3
import subprocess
import sys

import numpy as np
import pytest

from repro.server.ledger import RequestLedger


class TestLedgerBasics:
    def test_insert_and_counts(self):
        led = RequestLedger()
        led.insert([0, 1, 2], 5, [0.0, 1.0, 2.0], 10.0, 10.0, "queued")
        led.insert([3], 6, [3.0], 10.0, None, "deferred")
        assert len(led) == 4
        assert led.counts() == {"queued": 3, "deferred": 1}

    def test_unknown_status_rejected(self):
        led = RequestLedger()
        with pytest.raises(ValueError):
            led.insert([0], 0, [0.0], None, None, "lost-in-space")

    def test_lifecycle_updates(self):
        led = RequestLedger()
        led.insert([0, 1], 3, [0.0, 5.0], 10.0, None, "deferred")
        led.mark_scheduled(np.array([0, 1]), 20.0)
        led.mark_broadcast(np.array([0, 1]), 120.0)
        assert led.counts() == {"broadcast": 2}
        assert led.latencies().tolist() == [120.0, 115.0]

    def test_updates_after_flush_hit_sqlite(self):
        # The in-buffer fold only covers unflushed rows; committed rows
        # must take the UPDATE path and land identically.
        led = RequestLedger()
        led.insert([0], 1, [0.0], 5.0, None, "deferred")
        led.commit()
        led.mark_scheduled(np.array([0]), 30.0)
        led.mark_broadcast(np.array([0]), 90.0)
        assert led.counts() == {"broadcast": 1}
        assert led.latencies().tolist() == [90.0]

    def test_digest_is_content_not_insertion_order(self):
        a = RequestLedger()
        a.insert([0], 1, [0.0], 1.0, 1.0, "queued")
        a.insert([1], 2, [0.5], 1.0, 1.0, "queued")
        b = RequestLedger()
        b.insert([1], 2, [0.5], 1.0, 1.0, "queued")
        b.insert([0], 1, [0.0], 1.0, 1.0, "queued")
        assert a.digest() == b.digest()

    def test_stats_empty(self):
        stats = RequestLedger().stats()
        assert stats.n_requests == 0
        assert np.isnan(stats.percentile(99.0))

    def test_reconcile_flags_inconsistency(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        led = RequestLedger(path)
        led.insert([0], 1, [0.0], 1.0, 1.0, "queued")
        led.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE requests SET status = 'broadcast'")  # no timestamp
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="broadcast state"):
            RequestLedger(path).reconcile()


_CRASH_SCRIPT = """
import sys
from repro.server.frontend import FrontendConfig, RequestFrontend, SizeModelResolver
from repro.server.ledger import RequestLedger
from repro.sim.workload import RequestTraceConfig, generate_requests
from repro.web.sites import SiteGenerator

path = sys.argv[1]
trace = generate_requests(
    RequestTraceConfig(hours=2.0, n_pages=100, n_requests=50_000, seed=21)
)
frontend = RequestFrontend(
    SizeModelResolver(SiteGenerator(seed=7, n_sites=25), max_page_bytes=12 * 1024),
    FrontendConfig(commit_every_ticks=20),
    ledger=RequestLedger(path),
)

def progress(f):
    # Committed at least once: signal readiness for the kill, then stall
    # so the parent's SIGKILL lands mid-run with the WAL half-written.
    print("READY", flush=True)
    import time
    time.sleep(30)

frontend.run(trace, progress=progress, progress_every=40)
"""


class TestCrashRecovery:
    def test_sigkill_mid_run_reconciles(self, tmp_path):
        """Kill the service mid-day; the reopened ledger must reconcile."""
        path = tmp_path / "ledger.sqlite"
        proc = subprocess.Popen(
            [sys.executable, "-c", _CRASH_SCRIPT, str(path)],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONUNBUFFERED": "1"},
        )
        try:
            line = proc.stdout.readline()
            assert b"READY" in line, f"worker never got going: {line!r}"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        led = RequestLedger(path)
        counts = led.reconcile()  # raises on inconsistency
        n = sum(counts.values())
        # At least one commit window landed, and no partial batch did.
        assert n > 0
        assert set(counts) <= {"queued", "deferred", "shed", "broadcast"}
        # Every broadcast row carries a complete, ordered timeline.
        rows = led._conn.execute(
            "SELECT submitted_at, scheduled_at, broadcast_at FROM requests"
            " WHERE status = 'broadcast'"
        ).fetchall()
        for submitted, scheduled, broadcast in rows:
            assert submitted <= scheduled <= broadcast
        led.close()
