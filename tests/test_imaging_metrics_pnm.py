"""Quality metrics and PNM file round trips."""

import numpy as np
import pytest

from repro.imaging.metrics import mse, psnr_db, ssim
from repro.imaging.pnm import read_pnm, write_pgm, write_ppm


class TestMetrics:
    def test_identical_images(self, photo_image):
        assert mse(photo_image, photo_image) == 0.0
        assert psnr_db(photo_image, photo_image) == 100.0
        assert ssim(photo_image, photo_image) == pytest.approx(1.0, abs=1e-9)

    def test_mse_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 10, dtype=np.uint8)
        assert mse(a, b) == 100.0

    def test_psnr_ordering(self, photo_image):
        rng = np.random.default_rng(0)
        small = photo_image.astype(int) + rng.integers(-5, 6, photo_image.shape)
        large = photo_image.astype(int) + rng.integers(-50, 51, photo_image.shape)
        small = np.clip(small, 0, 255).astype(np.uint8)
        large = np.clip(large, 0, 255).astype(np.uint8)
        assert psnr_db(photo_image, small) > psnr_db(photo_image, large)

    def test_ssim_penalises_structural_damage(self, page_image):
        blackout = page_image.copy()
        blackout[:, ::3] = 0
        assert ssim(page_image, blackout) < 0.7

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            ssim(np.zeros((2, 2)), np.zeros((3, 3)))


class TestPnm:
    def test_ppm_roundtrip(self, tmp_path, photo_image):
        path = tmp_path / "img.ppm"
        write_ppm(path, photo_image)
        assert np.array_equal(read_pnm(path), photo_image)

    def test_pgm_roundtrip(self, tmp_path, photo_image):
        path = tmp_path / "img.pgm"
        grey = photo_image[:, :, 1]
        write_pgm(path, grey)
        assert np.array_equal(read_pnm(path), grey)

    def test_header_format(self, tmp_path):
        path = tmp_path / "tiny.ppm"
        write_ppm(path, np.zeros((2, 3, 3), dtype=np.uint8))
        header = path.read_bytes()[:11]
        assert header.startswith(b"P6\n3 2\n255\n")

    def test_type_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3), dtype=np.uint8))

    def test_read_rejects_other_formats(self, tmp_path):
        path = tmp_path / "bad.pnm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            read_pnm(path)
