"""End-to-end channels: FM link and acoustic hop (integration-grade)."""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.radio.channels import AcousticChannel, AcousticConfig, FmLinkConfig, FmRadioLink


@pytest.fixture(scope="module")
def burst(quick_modem):
    rng = np.random.default_rng(11)
    size = quick_modem.frame_payload_size
    payloads = [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(3)]
    return payloads, quick_modem.transmit_burst(payloads)


class TestFmRadioLink:
    def test_high_rssi_transparent(self, quick_modem, burst):
        payloads, wave = burst
        link = FmRadioLink(seed=1)
        rx = link.transmit(wave, rssi_dbm=-65.0)
        frames = quick_modem.receive(rx, frames_per_burst=len(payloads))
        assert [f.payload for f in frames] == payloads

    def test_output_length_matches_input(self, burst):
        _, wave = burst
        link = FmRadioLink(seed=2)
        assert link.transmit(wave, -70.0).size == wave.size

    def test_low_rssi_destroys_frames(self, quick_modem, burst):
        payloads, wave = burst
        link = FmRadioLink(seed=3)
        rx = link.transmit(wave, rssi_dbm=-93.0)
        frames = quick_modem.receive(rx, frames_per_burst=len(payloads))
        assert sum(f.ok for f in frames) == 0

    def test_paper_rssi_bands(self, quick_modem, burst):
        """-65..-85 clean; below -90 nothing (paper Section 4)."""
        payloads, wave = burst
        for rssi in (-65.0, -75.0, -85.0):
            link = FmRadioLink(seed=4)
            frames = quick_modem.receive(
                link.transmit(wave, rssi), frames_per_burst=len(payloads)
            )
            assert sum(f.ok for f in frames) == len(payloads), rssi


class TestAcousticChannel:
    def test_cable_is_clean(self, quick_modem, burst):
        payloads, wave = burst
        channel = AcousticChannel(seed=5)
        frames = quick_modem.receive(
            channel.transmit(wave, 0.0), frames_per_burst=len(payloads)
        )
        assert [f.payload for f in frames] == payloads

    def test_beyond_cliff_collapses(self, quick_modem, burst):
        payloads, wave = burst
        channel = AcousticChannel(seed=6)
        frames = quick_modem.receive(
            channel.transmit(wave, 1.6), frames_per_burst=len(payloads)
        )
        assert sum(f.ok for f in frames) == 0

    def test_mean_snr_monotone_decreasing(self):
        channel = AcousticChannel()
        snrs = [channel.mean_snr_db(d) for d in (0.1, 0.5, 1.0, 1.2, 1.5)]
        assert all(a > b for a, b in zip(snrs, snrs[1:]))

    def test_cliff_kicks_in(self):
        cfg = AcousticConfig()
        channel = AcousticChannel(cfg)
        before = channel.mean_snr_db(1.0) - channel.mean_snr_db(1.1)
        after = channel.mean_snr_db(1.2) - channel.mean_snr_db(1.3)
        assert after > before * 2

    def test_output_shape_preserved(self):
        channel = AcousticChannel(seed=7)
        x = np.zeros(5_000)
        assert channel.transmit(x, 0.7).size == x.size

    def test_transmissions_vary(self):
        channel = AcousticChannel(seed=8)
        x = np.ones(2_000) * 0.1
        a = channel.transmit(x, 0.8)
        b = channel.transmit(x, 0.8)
        assert not np.array_equal(a, b)  # independent draws per call
