"""Batched soft-decision Viterbi equivalence against the scalar reference.

The seed's per-timestep decoder survives as ``decode_soft_ref``; these
property tests pin ``decode_soft_batch`` (and the thin ``decode_soft``
wrapper) to it bit-for-bit across random lengths and noise levels,
including the regimes that exercise each internal path:

* hard-decision-perfect inputs (the algebraic clean-codeword fast path),
* inputs with exact-zero soft values (which must *bypass* the fast path),
* hard ties between trellis predecessors, and
* batches larger than the ACS chunk size.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fec.convolutional import CONV_V27, CONV_V29

CODES = {"v27": CONV_V27, "v29": CONV_V29}


@pytest.mark.parametrize("name", CODES)
class TestBatchMatchesReference:
    @settings(max_examples=25, deadline=None)
    @given(
        n_frames=st.integers(min_value=1, max_value=6),
        n_info=st.integers(min_value=1, max_value=120),
        noise=st.floats(min_value=0.0, max_value=1.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_lengths_and_noise(self, name, n_frames, n_info, noise, seed):
        code = CODES[name]
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, (n_frames, n_info), dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode_batch(bits).astype(np.float64)
        soft = soft + rng.normal(0.0, noise, soft.shape)
        batch = code.decode_soft_batch(soft, n_info)
        for i in range(n_frames):
            assert (batch[i] == code.decode_soft_ref(soft[i], n_info)).all()

    def test_clean_codewords_roundtrip(self, name):
        code = CODES[name]
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, (16, 96), dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode_batch(bits).astype(np.float64)
        assert (code.decode_soft_batch(soft, 96) == bits).all()

    def test_exact_zero_soft_values_match_reference(self, name):
        """Zero-confidence bits must not take the algebraic fast path."""
        code = CODES[name]
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (8, 64), dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode_batch(bits).astype(np.float64)
        # Erase a handful of positions per frame to exactly 0.0.
        for i in range(soft.shape[0]):
            soft[i, rng.choice(soft.shape[1], 5, replace=False)] = 0.0
        batch = code.decode_soft_batch(soft, 64)
        for i in range(soft.shape[0]):
            assert (batch[i] == code.decode_soft_ref(soft[i], 64)).all()

    def test_hard_ties_match_reference(self, name):
        """Quantised soft values force metric ties; both paths must break
        them identically (towards predecessor 0)."""
        code = CODES[name]
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, (8, 48), dtype=np.uint8)
        coded = code.encode_batch(bits)
        soft = (1.0 - 2.0 * coded.astype(np.float64))
        flip = rng.random(soft.shape) < 0.2
        soft = np.where(flip, -soft, soft)  # hard errors, all-equal confidence
        batch = code.decode_soft_batch(soft, 48)
        for i in range(soft.shape[0]):
            assert (batch[i] == code.decode_soft_ref(soft[i], 48)).all()


class TestBatchMechanics:
    def test_wrapper_equals_batch_row(self):
        code = CONV_V29
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, 80, dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode(bits).astype(np.float64)
        soft += rng.normal(0.0, 0.8, soft.size)
        assert (
            code.decode_soft(soft, 80)
            == code.decode_soft_batch(soft[None, :], 80)[0]
        ).all()

    def test_batch_larger_than_chunk(self):
        code = CONV_V27
        n = code._FRAME_CHUNK + 3  # force the chunked ACS path to wrap
        rng = np.random.default_rng(13)
        bits = rng.integers(0, 2, (n, 24), dtype=np.uint8)
        soft = 1.0 - 2.0 * code.encode_batch(bits).astype(np.float64)
        soft += rng.normal(0.0, 1.0, soft.shape)
        batch = code.decode_soft_batch(soft, 24)
        for i in range(0, n, 17):
            assert (batch[i] == code.decode_soft_ref(soft[i], 24)).all()

    def test_shape_validation(self):
        code = CONV_V27
        with pytest.raises(ValueError):
            code.decode_soft(np.zeros((2, 8)), 2)
        with pytest.raises(ValueError):
            code.decode_soft_batch(np.zeros(8), 2)
        with pytest.raises(ValueError):
            code.decode_soft_batch(np.zeros((1, 7)), 2)  # odd coded length
