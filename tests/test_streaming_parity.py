"""Streaming decode must equal ``Modem.receive`` for ANY chunking.

The chunked receiver's whole contract is that chunk boundaries are
invisible: feeding a capture one sample at a time, in random slices, or
as one array yields bit-for-bit the frames, payloads, ``start_index``,
SNR and sync scores of the batch path.  This module sweeps randomized
chunk sizes (the PR's acceptance asks for >= 20) over captures whose
preambles deliberately straddle boundaries.
"""

import numpy as np
import pytest

from repro.modem import AudioQrModem, FskModem, GmskModem
from repro.modem.modem import Modem, ReceivedFrame
from repro.modem.streaming import StreamingReceiver


def _stream_decode(wave, modem, chunk_sizes, frames_per_burst=None):
    """Decode ``wave`` pushing chunks of the given sizes (cycled)."""
    rx = StreamingReceiver(modem, frames_per_burst=frames_per_burst)
    out: list[ReceivedFrame] = []
    i = 0
    k = 0
    while i < wave.size:
        step = int(chunk_sizes[k % len(chunk_sizes)])
        k += 1
        out += rx.push(wave[i : i + step])
        i += step
    out += rx.finish()
    return out


def _assert_same(streamed, batch):
    assert len(streamed) == len(batch)
    for s, b in zip(streamed, batch):
        assert s.payload == b.payload
        assert s.start_index == b.start_index
        assert s.snr_db == b.snr_db  # bit-equal, not approx
        assert s.sync_score == b.sync_score


@pytest.fixture(scope="module")
def capture():
    """Two bursts (16 + 8 frames) plus surrounding silence."""
    modem = Modem("sonic-ofdm")
    rng = np.random.default_rng(99)
    payloads = [
        rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
        for _ in range(24)
    ]
    first = modem.transmit_burst(payloads[:16])
    second = modem.transmit_burst(payloads[16:])
    guard = np.zeros(modem.profile.guard_samples)
    wave = np.concatenate([np.zeros(3000), first, guard, second, np.zeros(2000)])
    return modem, wave, payloads


class TestRandomChunkSizes:
    def test_twenty_random_chunkings(self, capture):
        """>= 20 randomized chunk sizes, 1 sample .. whole capture."""
        modem, wave, payloads = capture
        batch = modem.receive(wave, frames_per_burst=16)
        assert [f.payload for f in batch] == payloads
        rng = np.random.default_rng(7)
        sizes = np.unique(
            np.concatenate([
                [1, 17, wave.size],  # extremes always included
                rng.integers(2, wave.size, 18),
            ])
        )
        assert sizes.size >= 20
        for size in sizes:
            streamed = _stream_decode(wave, modem, [size], frames_per_burst=16)
            _assert_same(streamed, batch)

    def test_mixed_chunk_sizes_within_one_run(self, capture):
        """Chunk size varying mid-stream is just as invisible."""
        modem, wave, _ = capture
        batch = modem.receive(wave, frames_per_burst=16)
        rng = np.random.default_rng(21)
        for _ in range(5):
            sizes = rng.integers(1, 20_000, 64)
            _assert_same(_stream_decode(wave, modem, sizes, 16), batch)

    def test_boundary_straddles_preamble(self, capture):
        """Chunk edges placed inside each preamble's 1920 samples."""
        modem, wave, _ = capture
        batch = modem.receive(wave, frames_per_burst=16)
        preamble = modem._preamble.size
        # First preamble starts at 3000; split mid-chirp, then tiny chunks.
        for split in (3000 + 7, 3000 + preamble // 2, 3000 + preamble - 1):
            rx = StreamingReceiver(modem, frames_per_burst=16)
            out = rx.push(wave[:split])
            for i in range(split, wave.size, 4096):
                out += rx.push(wave[i : i + 4096])
            out += rx.finish()
            _assert_same(out, batch)

    def test_auto_burst_sizing_mode(self, capture):
        """Without frames_per_burst the receiver sizes bursts from the
        signal itself — still chunk-invariant."""
        modem, wave, _ = capture
        batch = modem.receive(wave)
        assert sum(1 for f in batch if f.ok) == 24
        for size in (997, 4800, 50_411):
            _assert_same(_stream_decode(wave, modem, [size]), batch)

    def test_empty_and_zero_size_pushes(self, capture):
        """Zero-length chunks interleaved anywhere are no-ops."""
        modem, wave, _ = capture
        batch = modem.receive(wave, frames_per_burst=16)
        rx = StreamingReceiver(modem, frames_per_burst=16)
        out = rx.push(np.zeros(0))
        for i in range(0, wave.size, 9999):
            out += rx.push(wave[i : i + 9999])
            out += rx.push(np.zeros(0))
        out += rx.finish()
        _assert_same(out, batch)

    def test_finish_is_idempotent_and_push_after_raises(self, capture):
        modem, wave, _ = capture
        rx = StreamingReceiver(modem, frames_per_burst=16)
        rx.push(wave)
        rx.finish()
        assert rx.finish() == []
        with pytest.raises(RuntimeError):
            rx.push(wave[:100])


# -- message-framed modem family (FSK / GMSK / AudioQR) ---------------------

FAMILY = {
    "fsk": (FskModem, [40, 18, 3]),
    "gmsk": (GmskModem, [80, 24, 200]),
    "audioqr": (AudioQrModem, [12, 30]),
}


def _family_capture(name):
    modem_cls, sizes = FAMILY[name]
    modem = modem_cls()
    rng = np.random.default_rng(hash(name) % 2**32)
    payloads = [bytes(rng.integers(0, 256, n, dtype=np.uint8)) for n in sizes]
    parts = [np.zeros(1700)]
    for p in payloads:
        parts.append(modem.transmit(p))
        parts.append(np.zeros(1300))
    wave = np.concatenate(parts)
    wave = wave + 0.01 * rng.standard_normal(wave.size)
    return modem, wave, payloads


def _family_stream(modem, wave, chunk_sizes):
    rx = modem.stream()
    out = []
    i = 0
    k = 0
    while i < wave.size:
        step = int(chunk_sizes[k % len(chunk_sizes)])
        k += 1
        out += rx.push(wave[i : i + step])
        i += step
    return out + rx.finish()


@pytest.mark.parametrize("name", list(FAMILY))
class TestFamilyChunkInvariance:
    def test_twenty_random_chunkings(self, name):
        """>= 20 randomized chunk sizes, 1 sample .. whole capture."""
        modem, wave, payloads = _family_capture(name)
        batch = modem.receive(wave)
        assert batch == payloads
        rng = np.random.default_rng(77)
        sizes = np.unique(
            np.concatenate([
                [1, 251, wave.size],  # extremes always included
                rng.integers(2, wave.size, 18),
            ])
        )
        assert sizes.size >= 20
        for size in sizes:
            assert _family_stream(modem, wave, [size]) == batch, (name, size)

    def test_mixed_chunk_sizes_within_one_run(self, name):
        modem, wave, _ = _family_capture(name)
        batch = modem.receive(wave)
        rng = np.random.default_rng(78)
        for _ in range(3):
            sizes = rng.integers(1, 30_000, 64)
            assert _family_stream(modem, wave, sizes) == batch

    def test_boundary_straddles_marker(self, name):
        """Chunk edges placed inside the sync marker itself."""
        modem, wave, _ = _family_capture(name)
        batch = modem.receive(wave)
        marker = modem.sync.template.size
        for split in (1700 + 3, 1700 + marker // 2, 1700 + marker - 1):
            rx = modem.stream()
            out = rx.push(wave[:split])
            for i in range(split, wave.size, 4096):
                out += rx.push(wave[i : i + 4096])
            out += rx.finish()
            assert out == batch

    def test_zero_size_pushes_and_finish_semantics(self, name):
        modem, wave, _ = _family_capture(name)
        batch = modem.receive(wave)
        rx = modem.stream()
        out = rx.push(np.zeros(0))
        for i in range(0, wave.size, 7777):
            out += rx.push(wave[i : i + 7777])
            out += rx.push(np.zeros(0))
        out += rx.finish()
        assert out == batch
        assert rx.finish() == []
        with pytest.raises(RuntimeError):
            rx.push(wave[:10])

    def test_buffer_is_trimmed(self, name):
        """The streaming buffer must not grow with the whole capture."""
        modem, wave, _ = _family_capture(name)
        rx = modem.stream()
        for i in range(0, wave.size, 4000):
            rx.push(wave[i : i + 4000])
        rx.finish()
        assert rx.messages_decoded == len(FAMILY[name][1])
        assert rx.max_buffer_samples < wave.size
