"""Examples stay runnable: compile every script and run the fastest one."""

import compileall
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5  # the deliverable floor is three


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    assert compileall.compile_file(script, quiet=2), script


@pytest.mark.slow
def test_rds_datacast_runs_end_to_end():
    """The fastest example executes cleanly as a subprocess."""
    script = Path(__file__).parent.parent / "examples" / "rds_datacast.py"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "roundtrip: OK" in result.stdout
