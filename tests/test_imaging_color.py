"""Colour conversion and chroma subsampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imaging.color import (
    downsample_420,
    rgb_to_ycbcr,
    upsample_420,
    ycbcr_planes,
    ycbcr_to_rgb,
)


class TestYCbCr:
    def test_grey_axis(self):
        grey = np.full((4, 4, 3), 128, dtype=np.uint8)
        ycc = rgb_to_ycbcr(grey)
        assert np.allclose(ycc[..., 0], 128.0)
        assert np.allclose(ycc[..., 1], 128.0, atol=1e-9)
        assert np.allclose(ycc[..., 2], 128.0, atol=1e-9)

    def test_primaries_luma_ordering(self):
        for color, luma in (((255, 0, 0), 76.2), ((0, 255, 0), 149.7), ((0, 0, 255), 29.1)):
            px = np.array([[color]], dtype=np.uint8)
            assert rgb_to_ycbcr(px)[0, 0, 0] == pytest.approx(luma, abs=0.5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_roundtrip_within_rounding(self, r, g, b):
        px = np.array([[[r, g, b]]], dtype=np.uint8)
        out = ycbcr_to_rgb(rgb_to_ycbcr(px))
        assert np.all(np.abs(out.astype(int) - px.astype(int)) <= 1)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((4, 4), dtype=np.uint8))


class TestYcbcrPlanesBitParity:
    """The LUT + row-dedup fast path must match the direct formula bitwise."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 40), st.integers(1, 40))
    def test_random_images(self, seed, h, w):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        ref = rgb_to_ycbcr(img)
        for i, plane in enumerate(ycbcr_planes(img)):
            assert plane.tobytes() == np.ascontiguousarray(ref[..., i]).tobytes()

    def test_repeated_rows_exercise_dedup(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 256, (4, 17, 3), dtype=np.uint8)
        img = rows[np.repeat(np.arange(4), [1, 30, 2, 30])]
        ref = rgb_to_ycbcr(img)
        for i, plane in enumerate(ycbcr_planes(img)):
            assert plane.tobytes() == np.ascontiguousarray(ref[..., i]).tobytes()

    def test_non_uint8_falls_back(self):
        img = np.random.default_rng(0).uniform(0, 255, (6, 6, 3))
        ref = rgb_to_ycbcr(img)
        for i, plane in enumerate(ycbcr_planes(img)):
            assert plane.tobytes() == np.ascontiguousarray(ref[..., i]).tobytes()


class TestDownsampleBitParity:
    """Explicit strided adds must match ``mean(axis=(1, 3))`` bitwise."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 23), st.integers(1, 23))
    def test_random_planes(self, seed, h, w):
        rng = np.random.default_rng(seed)
        plane = rng.uniform(0.0, 255.0, (h, w))
        padded = np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")
        ph, pw = padded.shape
        ref = padded.reshape(ph // 2, 2, pw // 2, 2).mean(axis=(1, 3))
        assert downsample_420(plane).tobytes() == ref.tobytes()


class TestSubsampling:
    def test_downsample_shape(self):
        plane = np.arange(64, dtype=np.float64).reshape(8, 8)
        assert downsample_420(plane).shape == (4, 4)

    def test_downsample_is_box_average(self):
        plane = np.array([[0.0, 4.0], [8.0, 12.0]])
        assert downsample_420(plane)[0, 0] == 6.0

    def test_odd_dimensions_padded(self):
        plane = np.ones((5, 7))
        assert downsample_420(plane).shape == (3, 4)

    def test_upsample_roundtrip_constant(self):
        plane = np.full((3, 3), 42.0)
        up = upsample_420(plane, 6, 6)
        assert up.shape == (6, 6)
        assert np.all(up == 42.0)

    def test_up_down_identity_on_constant_blocks(self):
        rng = np.random.default_rng(0)
        small = rng.uniform(0, 255, (4, 5))
        recovered = downsample_420(upsample_420(small, 8, 10))
        assert np.allclose(recovered, small)
