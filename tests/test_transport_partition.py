"""Column partitioning and reassembly (both raw and RLE modes)."""

import numpy as np
import pytest

from repro.transport.framing import FRAME_SIZE
from repro.transport.partition import ColumnTransport
from repro.util.rng import derive_rng


@pytest.fixture(scope="module", params=["raw", "rle"])
def transport(request) -> ColumnTransport:
    return ColumnTransport(request.param)


class TestPartition:
    def test_full_reassembly_exact(self, transport, page_image):
        frames = transport.partition(page_image, page_id=3)
        image, missing = transport.reassemble(frames, page_image.shape[:2])
        assert not missing.any()
        assert np.array_equal(image, page_image)

    def test_sequence_numbers_contiguous(self, transport, page_image):
        frames = transport.partition(page_image)
        seqs = [f.header.seq for f in frames]
        assert seqs == list(range(len(frames)))
        assert all(f.header.total == len(frames) for f in frames)

    def test_serialised_frames_are_100_bytes(self, transport, page_image):
        frames = transport.partition(page_image)
        for f in frames[:20]:
            assert len(f.to_bytes()) == FRAME_SIZE

    def test_loss_maps_to_pixels(self, transport, page_image):
        frames = transport.partition(page_image)
        rng = derive_rng(0, "drop")
        kept = [f for f in frames if rng.random() > 0.2]
        image, missing = transport.reassemble(kept, page_image.shape[:2])
        pixel_loss = missing.mean()
        assert 0.1 < pixel_loss < 0.35
        # Received pixels must be bit-exact (lossless transport).
        assert np.array_equal(image[~missing], page_image[~missing])

    def test_single_column_footprint(self, transport, page_image):
        """Every frame covers exactly one 1-pixel-wide column segment."""
        frames = transport.partition(page_image)
        h, w = page_image.shape[:2]
        for f in frames[:50]:
            assert 0 <= f.header.col < w
            assert f.header.row0 + f.header.n_pixels <= h

    def test_invalid_image_rejected(self, transport):
        with pytest.raises(ValueError):
            transport.partition(np.zeros((4, 4), dtype=np.uint8))


class TestRleSpecifics:
    def test_rle_fewer_frames_on_rendered_pages(self, page_image):
        raw_n = len(ColumnTransport("raw").partition(page_image))
        rle_n = len(ColumnTransport("rle").partition(page_image))
        assert rle_n < raw_n / 2

    def test_rle_regions_need_image(self, page_image):
        t = ColumnTransport("rle")
        with pytest.raises(ValueError):
            t.frame_regions(page_image.shape[:2])
        regions = t.frame_regions(page_image.shape[:2], page_image)
        assert len(regions) == len(t.partition(page_image))


class TestRawSpecifics:
    def test_raw_regions_pure_geometry(self):
        t = ColumnTransport("raw")
        regions = t.frame_regions((100, 4))
        per_col = -(-100 // 27)
        assert len(regions) == 4 * per_col
        # Regions tile each column without gaps.
        cover = {}
        for col, row0, n in regions:
            cover.setdefault(col, 0)
            cover[col] += n
        assert all(v == 100 for v in cover.values())

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            ColumnTransport("zip")
