"""Batch modem-family decoders pinned against their scalar references.

Each of the three baseline modems (FSK, GMSK, AudioQR) keeps its original
per-symbol scalar decoder as ``receive_ref``; the vectorised batch path
(``receive``) must produce bit-identical message lists on the same
capture.  Equality is property-tested over fixed seeds — payload sizes,
message counts and noise levels vary per case, but the RNG streams are
pinned so the suite is deterministic (no FP-tie flakiness).
"""

import numpy as np
import pytest

from repro.dsp.chirp import matched_filter_peak
from repro.modem import AudioQrModem, FskModem, GmskModem
from repro.modem.audioqr import bits_to_bytes_safe


def build_capture(modem, payloads, gap, noise, seed):
    rng = np.random.default_rng(seed)
    parts = [np.zeros(1200)]
    for p in payloads:
        parts.append(modem.transmit(p))
        parts.append(np.zeros(gap))
    cap = np.concatenate(parts)
    return cap + noise * rng.standard_normal(cap.size)


def random_payloads(seed, sizes):
    rng = np.random.default_rng(seed)
    return [bytes(rng.integers(0, 256, n, dtype=np.uint8)) for n in sizes]


MODEMS = {
    "fsk": FskModem,
    "gmsk": GmskModem,
    "audioqr": AudioQrModem,
}

# (seed, payload sizes, gap, noise) — pinned property cases per modem.
CASES = {
    "fsk": [
        (0, [20, 60, 1], 1500, 0.0),
        (1, [255, 33], 2500, 0.02),
        (2, [5] * 4, 900, 0.05),
    ],
    "gmsk": [
        (3, [40, 200, 7], 1500, 0.0),
        (4, [1024, 64], 2500, 0.02),
        (5, [16] * 4, 900, 0.05),
    ],
    "audioqr": [
        (6, [10, 25], 1500, 0.0),
        (7, [40, 3], 2500, 0.02),
        (8, [8] * 3, 900, 0.05),
    ],
}


@pytest.mark.parametrize("name", list(MODEMS))
class TestBatchEqualsRef:
    def test_receive_matches_ref_and_recovers_payloads(self, name):
        modem = MODEMS[name]()
        for seed, sizes, gap, noise in CASES[name]:
            payloads = random_payloads(seed, sizes)
            cap = build_capture(modem, payloads, gap, noise, seed + 100)
            ref = modem.receive_ref(cap)
            batch = modem.receive(cap)
            assert batch == ref, f"{name} seed={seed}"
            if noise <= 0.02:  # clean-enough channels must recover all
                assert batch == payloads, f"{name} seed={seed}"

    def test_corrupted_crc_rejected_identically(self, name):
        modem = MODEMS[name]()
        payloads = random_payloads(11, [24])
        cap = build_capture(modem, payloads, 1500, 0.0, 12)
        # Flatten the middle of the message body: CRC fails, both paths
        # must drop the frame the same way.
        mid = cap.size // 2
        cap[mid : mid + 4000] = 0.0
        assert modem.receive(cap) == modem.receive_ref(cap)

    def test_truncated_capture_matches_ref(self, name):
        """End-of-capture mid-message: eos decode equals the ref path."""
        modem = MODEMS[name]()
        payloads = random_payloads(13, [30])
        cap = build_capture(modem, payloads, 1500, 0.01, 14)
        for frac in (0.35, 0.6, 0.85):
            cut = cap[: int(cap.size * frac)]
            assert modem.receive(cut) == modem.receive_ref(cut)

    def test_empty_and_silence(self, name):
        modem = MODEMS[name]()
        assert modem.receive(np.zeros(0)) == []
        assert modem.receive(np.zeros(5000)) == modem.receive_ref(np.zeros(5000))


class TestPreambleSyncPinning:
    @pytest.mark.parametrize("name", list(MODEMS))
    def test_scan_equals_matched_filter_peak(self, name):
        modem = MODEMS[name]()
        payloads = random_payloads(21, [18, 40])
        cap = build_capture(modem, payloads, 1200, 0.03, 22)
        expected = matched_filter_peak(
            cap, modem.sync.template, modem.SYNC_THRESHOLD
        )
        assert modem.sync.scan(cap) == expected
        assert len(expected) >= 2


class TestFskVectorPacking:
    def test_symbols_for_matches_ref(self):
        modem = FskModem()
        rng = np.random.default_rng(31)
        for n in (1, 2, 7, 64, 258):
            msg = bytes(rng.integers(0, 256, n, dtype=np.uint8))
            np.testing.assert_array_equal(
                modem._symbols_for(msg), modem._symbols_for_ref(msg)
            )

    def test_pack_symbols_inverts_symbols_for(self):
        modem = FskModem()
        rng = np.random.default_rng(32)
        msg = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        packed = modem._pack_symbols(modem._symbols_for(msg))
        assert packed.tobytes() == msg


class TestAudioQrBitPacking:
    def test_bits_to_bytes_safe_matches_scalar_accumulator(self):
        rng = np.random.default_rng(41)
        for size in range(0, 21):
            for _ in range(8):
                bits = rng.integers(0, 2, size).astype(np.uint8)
                expected = 0
                for bit in bits:  # the seed's MSB-first accumulator
                    expected = (expected << 1) | int(bit)
                assert bits_to_bytes_safe(bits) == expected, bits


class TestGmskKernels:
    def test_decode_bits_batch_matches_ref(self):
        modem = GmskModem()
        sps = modem.config.samples_per_symbol
        rng = np.random.default_rng(51)
        for size in (5, sps * 3, 997, 4096):
            freq = rng.standard_normal(size)
            for delay in (0, 7, modem._delay, modem._delay + 3 * sps // 4):
                np.testing.assert_array_equal(
                    modem._decode_bits_batch(freq, delay, sps),
                    modem._decode_bits(freq, delay, sps),
                )

    def test_sync_shifts_match_ref_scan(self):
        modem = GmskModem()
        rng = np.random.default_rng(52)
        hits = 0
        for _ in range(40):
            bits = rng.integers(0, 2, 120).astype(np.uint8)
            # Sometimes plant the sync word at a random shift.
            if rng.random() < 0.6:
                at = int(rng.integers(0, modem._SHIFT_LIMIT + 1))
                bits[at : at + 16] = modem._sync_bits
            expected = [
                shift
                for shift in range(min(bits.size - 16, modem._SHIFT_LIMIT) + 1)
                if np.array_equal(bits[shift : shift + 16], modem._sync_bits)
            ]
            got = modem._sync_shifts(bits).tolist()
            assert got == expected
            hits += bool(expected)
        assert hits > 10  # the planted cases actually exercised matches

    def test_decode_attempt_prefix_stability(self):
        """Once decode_attempt resolves on a prefix, longer bodies agree."""
        modem = GmskModem()
        payloads = random_payloads(53, [48])
        cap = build_capture(modem, payloads, 2000, 0.01, 54)
        (start, _score), *_ = modem.sync.scan(cap)
        body = cap[start + modem.sync.template.size :]
        status, value = modem.decode_attempt(body[: modem._hdr_need], eos=False)
        assert status == "need"
        need = value
        status, resolved = modem.decode_attempt(body[:need], eos=False)
        assert status == "done" and resolved == payloads[0]
        for extra in (1, 333, body.size - need):
            status, again = modem.decode_attempt(body[: need + extra], eos=False)
            assert (status, again) == ("done", resolved)
