"""Chunk-capable channel streams (`repro.radio.streams`).

Two distinct guarantees, per stream:

* ``AcousticStream`` replays :meth:`AcousticChannel.transmit` — same
  seed, same RNG consumption order — so chunked output is bit-identical
  to the whole-array channel.
* ``FmLinkStream`` is chunk-*invariant* (any chunking of the input gives
  bit-identical output) and length-preserving, with the same threshold
  behaviour as the batch link; it is a streaming FM chain in its own
  right, not pinned to ``FmRadioLink.transmit``'s whole-array numerics.
"""

import numpy as np
import pytest

from repro.modem.modem import Modem
from repro.modem.streaming import StreamingReceiver
from repro.radio.channels import AcousticChannel, FmRadioLink
from repro.radio.streams import AwgnStream, StreamingFir


def _run_chunked(stream, wave, sizes):
    out = []
    i = 0
    k = 0
    while i < wave.size:
        step = int(sizes[k % len(sizes)])
        k += 1
        out.append(stream.process(wave[i : i + step]))
        i += step
    # Channel streams end with finish(); bare filters with flush().
    tail = stream.finish() if hasattr(stream, "finish") else stream.flush()
    if tail.size:
        out.append(tail)
    return np.concatenate(out)


@pytest.fixture(scope="module")
def burst():
    modem = Modem("sonic-ofdm")
    rng = np.random.default_rng(11)
    payloads = [
        rng.integers(0, 256, modem.frame_payload_size, dtype=np.uint8).tobytes()
        for _ in range(4)
    ]
    return modem, modem.transmit_burst(payloads), payloads


class TestAwgnStream:
    def test_chunked_equals_whole_draw(self):
        """Sequential normal draws equal one whole-array draw."""
        x = np.linspace(-1, 1, 10_000)
        whole = x + np.random.default_rng(5).normal(0.0, 0.1, x.size)
        stream = AwgnStream(np.random.default_rng(5), 0.1)
        assert np.array_equal(_run_chunked(stream, x, [997]), whole)

    def test_finish_is_empty(self):
        stream = AwgnStream(np.random.default_rng(0), 0.1)
        stream.process(np.zeros(10))
        assert stream.finish().size == 0


class TestAcousticStream:
    @pytest.mark.parametrize("distance_m", [0.0, 0.5, 1.3])
    def test_bit_identical_to_batch_channel(self, burst, distance_m):
        _, wave, _ = burst
        power = float(np.mean(wave**2))
        batch = AcousticChannel(seed=77).transmit(wave, distance_m)
        for sizes in ([997], [4800], [wave.size], [1, 48_000]):
            stream = AcousticChannel(seed=77).stream(
                distance_m, wave.size, power
            )
            assert np.array_equal(_run_chunked(stream, wave, sizes), batch)

    def test_rng_call_slots_advance(self, burst):
        """Opening a stream consumes one channel call slot, like transmit."""
        _, wave, _ = burst
        power = float(np.mean(wave**2))
        ch_batch = AcousticChannel(seed=3)
        first_b = ch_batch.transmit(wave, 0.5)
        second_b = ch_batch.transmit(wave, 0.5)
        ch_stream = AcousticChannel(seed=3)
        first_s = _run_chunked(ch_stream.stream(0.5, wave.size, power), wave, [4800])
        second_s = _run_chunked(ch_stream.stream(0.5, wave.size, power), wave, [4800])
        assert np.array_equal(first_s, first_b)
        assert np.array_equal(second_s, second_b)
        assert not np.array_equal(first_b, second_b)  # slots differ

    def test_overrun_raises(self, burst):
        _, wave, _ = burst
        stream = AcousticChannel(seed=1).stream(0.5, 1000, 1.0)
        stream.process(wave[:1000])
        with pytest.raises(ValueError):
            stream.process(wave[:1])


class TestStreamingFir:
    def test_chunk_invariant_and_matches_block_anchored_filter(self):
        rng = np.random.default_rng(9)
        taps = rng.normal(size=127)
        x = rng.normal(size=50_000)
        outs = []
        for sizes in ([x.size], [997], [1, 17, 4800]):
            fir = StreamingFir(taps)
            outs.append(_run_chunked(fir, x, sizes))
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])
        # Group delay compensated: output aligns with the input length.
        assert outs[0].size == x.size

    def test_delay_compensation_centres_impulse(self):
        taps = np.zeros(31)
        taps[15] = 1.0  # pure delay equal to the compensation
        x = np.zeros(500)
        x[100] = 1.0
        fir = StreamingFir(taps)
        y = _run_chunked(fir, x, [64])
        assert y.size == x.size
        assert np.argmax(np.abs(y)) == 100


class TestFmLinkStream:
    def test_chunk_invariance(self, burst):
        _, wave, _ = burst
        peak = float(np.max(np.abs(wave)))
        outs = []
        for sizes in ([wave.size], [4800], [997], [17]):
            stream = FmRadioLink(seed=13).stream(-70.0, peak_estimate=peak)
            outs.append(_run_chunked(stream, wave, sizes))
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)
        assert outs[0].size == wave.size

    def test_decodes_at_good_rssi_not_at_bad(self, burst):
        modem, wave, payloads = burst
        peak = float(np.max(np.abs(wave)))

        def decode(rssi):
            stream = FmRadioLink(seed=29).stream(rssi, peak_estimate=peak)
            rx = StreamingReceiver(modem, frames_per_burst=len(payloads))
            frames = []
            for i in range(0, wave.size, 4800):
                frames += rx.push(stream.process(wave[i : i + 4800]))
            tail = stream.finish()
            if tail.size:
                frames += rx.push(tail)
            return frames + rx.finish()

        good = decode(-70.0)
        assert [f.payload for f in good if f.ok] == payloads
        bad = decode(-95.0)  # beyond the FM threshold cliff
        assert sum(1 for f in bad if f.ok) < len(payloads)

    def test_noise_stream_ids_differ_per_open(self, burst):
        """Two streams from one link draw independent noise."""
        _, wave, _ = burst
        link = FmRadioLink(seed=41)
        peak = float(np.max(np.abs(wave)))
        a = _run_chunked(link.stream(-80.0, peak), wave, [4800])
        b = _run_chunked(link.stream(-80.0, peak), wave, [4800])
        assert not np.array_equal(a, b)
