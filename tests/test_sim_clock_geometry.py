"""Simulation clock and geographic primitives."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.geometry import Location, distance_km


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        assert clock.now == 10.0
        assert clock.now_hours == pytest.approx(10 / 3600)

    def test_events_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda now: fired.append(("b", now)))
        clock.schedule(2.0, lambda now: fired.append(("a", now)))
        clock.advance_to(10.0)
        assert fired == [("a", 2.0), ("b", 5.0)]

    def test_events_beyond_horizon_wait(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda now: fired.append(now))
        clock.advance_to(4.0)
        assert fired == []
        clock.advance_to(6.0)
        assert fired == [5.0]

    def test_recurring(self):
        clock = SimClock()
        ticks = []
        clock.schedule_every(10.0, lambda now: ticks.append(now))
        clock.advance_to(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_same_time_fifo(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda now: fired.append("first"))
        clock.schedule(1.0, lambda now: fired.append("second"))
        clock.advance_to(2.0)
        assert fired == ["first", "second"]

    def test_no_time_travel(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda now: None)


class TestGeometry:
    def test_lahore_islamabad(self):
        assert 260 < distance_km(Location(31.5204, 74.3587), Location(33.6844, 73.0479)) < 280

    def test_zero_distance(self):
        a = Location(31.5, 74.3)
        assert distance_km(a, a) == 0.0

    def test_symmetry(self):
        a, b = Location(24.86, 67.0), Location(31.5, 74.3)
        assert distance_km(a, b) == pytest.approx(distance_km(b, a))

    def test_coordinate_validation(self):
        with pytest.raises(ValueError):
            Location(91.0, 0.0)
        with pytest.raises(ValueError):
            Location(0.0, 181.0)
