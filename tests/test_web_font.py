"""Bitmap font rendering."""

import numpy as np
import pytest

from repro.web import font


class TestGlyphs:
    def test_shape(self):
        assert font.glyph("A").shape == (7, 5)

    def test_space_is_empty(self):
        assert not font.glyph(" ").any()

    def test_letters_nonempty(self):
        for c in "AZaz09!?":
            assert font.glyph(c).any(), c

    def test_unknown_falls_back(self):
        assert np.array_equal(font.glyph("é"), font.glyph("?"))

    def test_distinct_glyphs(self):
        rendered = {c: font.glyph(c).tobytes() for c in "ABCDEFGHIJ"}
        assert len(set(rendered.values())) == len(rendered)


class TestRenderText:
    def test_width_formula(self):
        assert font.text_width("abc") == 3 * 6 - 1
        assert font.text_width("abc", scale=2) == (3 * 6 - 1) * 2
        assert font.text_width("") == 0

    def test_canvas_shape(self):
        out = font.render_text("hi", scale=3)
        assert out.shape == (21, font.text_width("hi", 3))

    def test_scaling_preserves_pattern(self):
        base = font.render_text("X")
        scaled = font.render_text("X", scale=2)
        assert np.array_equal(scaled[::2, ::2], base)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            font.render_text("x", scale=0)

    def test_empty_string(self):
        out = font.render_text("")
        assert out.shape[0] == 7
        assert not out.any()
