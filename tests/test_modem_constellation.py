"""Constellation mapping/demapping invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.modem.constellation import Constellation

ORDERS = [2, 4, 16, 64, 256, 1024]


class TestStructure:
    @pytest.mark.parametrize("order", ORDERS)
    def test_unit_average_power(self, order):
        c = Constellation(order)
        assert np.mean(np.abs(c.points) ** 2) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("order", ORDERS)
    def test_all_points_distinct(self, order):
        c = Constellation(order)
        assert len(set(np.round(c.points, 9))) == order

    def test_unsupported_order(self):
        with pytest.raises(ValueError):
            Constellation(8)

    @pytest.mark.parametrize("order", [4, 16, 64])
    def test_gray_property_neighbours_differ_by_one_bit(self, order):
        """Nearest constellation neighbours differ in exactly one bit."""
        c = Constellation(order)
        pts = c.points
        m = c.bits_per_symbol
        min_dist = np.min(
            [np.abs(pts[i] - pts[j]) for i in range(order) for j in range(i)]
        )
        for i in range(order):
            for j in range(order):
                if i < j and np.abs(pts[i] - pts[j]) < min_dist * 1.01:
                    assert bin(i ^ j).count("1") == 1, (i, j)


class TestMapping:
    @pytest.mark.parametrize("order", ORDERS)
    def test_hard_roundtrip(self, order):
        c = Constellation(order)
        rng = np.random.default_rng(order)
        bits = rng.integers(0, 2, c.bits_per_symbol * 50).astype(np.uint8)
        symbols = c.map_bits(bits)
        assert np.array_equal(c.demap_hard(symbols), bits)

    def test_bit_count_validated(self):
        c = Constellation(16)
        with pytest.raises(ValueError):
            c.map_bits(np.ones(5, dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_hard_roundtrip_with_mild_noise(self, seed):
        c = Constellation(16)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, c.bits_per_symbol * 30).astype(np.uint8)
        symbols = c.map_bits(bits)
        noisy = symbols + (rng.normal(0, 0.05, symbols.size) + 1j * rng.normal(0, 0.05, symbols.size))
        assert np.array_equal(c.demap_hard(noisy), bits)


class TestSoftDemap:
    @pytest.mark.parametrize("order", [2, 4, 16, 64])
    def test_signs_match_hard_decision_when_clean(self, order):
        c = Constellation(order)
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, c.bits_per_symbol * 40).astype(np.uint8)
        soft = c.demap_soft(c.map_bits(bits))
        hard_from_soft = (soft < 0).astype(np.uint8)
        assert np.array_equal(hard_from_soft, bits)

    def test_confidence_scales_with_noise_var(self):
        c = Constellation(4)
        bits = np.array([0, 0, 1, 1], dtype=np.uint8)
        sym = c.map_bits(bits)
        strong = c.demap_soft(sym, noise_var=0.1)
        weak = c.demap_soft(sym, noise_var=1.0)
        assert np.all(np.abs(strong) > np.abs(weak))

    def test_noise_var_validated(self):
        c = Constellation(4)
        with pytest.raises(ValueError):
            c.demap_soft(np.array([1 + 1j]), noise_var=0.0)

    def test_ambiguous_symbol_low_confidence(self):
        c = Constellation(2)
        # A received point at the decision boundary carries ~zero LLR.
        soft = c.demap_soft(np.array([0.0 + 0j]))
        assert abs(soft[0]) < 1e-9
