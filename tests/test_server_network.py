"""Sharded multi-station broadcast network: determinism, adaptation, demand.

The contract this file pins:

* **Sharding is an execution detail** — serial, inline-reversed, and
  process-pool runs of the same config produce bit-identical per-station
  ledgers and schedule digests, for randomized station counts.
* **Profile adaptation is regional** — a degrading region's station
  walks down the rate ladder at carousel-cycle boundaries while a
  healthy region never switches.
* **Demand drives the schedule** — measured SMS request counts from each
  region's ledger feed the next epoch's allocation.
* **Registry iteration is deterministic** — two registries built from
  the same ``add`` sequence iterate identically (property test).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.radio.lossmodel import FrameLossModel
from repro.server.network import (
    DEFAULT_PROFILE_LADDER,
    REQUEST_PRIORITY,
    BroadcastNetwork,
    NetworkConfig,
    RegionSpec,
    Station,
    network_coverage,
    network_partition,
    run_network,
)
from repro.server.scheduler import AdaptiveProfileSelector
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import Location, RegionPartition
from repro.sms.protocol import LinkReport

_LAHORE = Location(31.5204, 74.3587)
_KARACHI = Location(24.8607, 67.0011)

#: Small-but-real run: 2 epochs, 6 ticks each, 40-page corpus.
_FAST = dict(hours=2, n_pages=40, tick_s=600.0, pages_per_station=8)


def _tx(call_sign="lhr-fm", station="lahore", where=_LAHORE, radius=30.0):
    return Transmitter(
        station_id=call_sign,
        location=where,
        frequency_mhz=93.0,
        coverage_km=radius,
        rate_bps=16_000.0,
        station=station,
    )


def _selector():
    return AdaptiveProfileSelector(
        {
            name: (rate, FrameLossModel(fer_midpoint_db=mid, fer_scale_db=scale))
            for name, rate, mid, scale in DEFAULT_PROFILE_LADDER
        }
    )


class TestStation:
    def test_rejects_foreign_transmitter(self):
        with pytest.raises(ValueError):
            Station("karachi", [_tx(station="lahore")])

    def test_covering_picks_nearest_own_mast(self):
        near = _tx("lhr-1", where=_LAHORE)
        far = _tx("lhr-2", where=Location(31.6, 74.5))
        station = Station("lahore", [near, far])
        assert station.covering(_LAHORE) is near
        assert station.covering(_KARACHI) is None

    def test_observe_report_counts_switches(self):
        station = Station("lahore", [_tx()], selector=_selector())
        assert station.observe_report(LinkReport("turbo", 16.0, 0, 256)) == "turbo"
        assert station.profile_switches == 0  # first advice is not a switch
        choice = station.observe_report(LinkReport("turbo", 2.0, 200, 256))
        assert choice != "turbo"
        assert station.profile_switches == 1

    def test_demand_snapshot_empty_without_ledger(self):
        station = Station("lahore", [_tx()])
        assert station.demand_snapshot() == {}


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(n_stations=0)
        with pytest.raises(ValueError):
            NetworkConfig(n_pages=30)  # not a multiple of 4
        with pytest.raises(ValueError):
            NetworkConfig(tick_s=7.0)  # does not divide the epoch
        with pytest.raises(ValueError):
            NetworkConfig(tick_s=600.0, profile_deadline_s=300.0)

    def test_resolved_regions_extend_past_defaults(self):
        regions = NetworkConfig(n_stations=11, tick_s=600.0).resolved_regions()
        assert len(regions) == 11
        assert len({r.name for r in regions}) == 11

    def test_rate_override_applies_everywhere(self):
        regions = NetworkConfig(
            n_stations=3, request_rate_per_s=0.5
        ).resolved_regions()
        assert all(r.rate_per_s == 0.5 for r in regions)


class TestDeterminism:
    def test_serial_vs_inline_sharded_bit_identical(self):
        config = NetworkConfig(n_stations=3, seed=11, **_FAST)
        serial = run_network(config)
        sharded = run_network(config, sharded=True, processes=1)
        assert serial.network_digest() == sharded.network_digest()
        assert serial.schedule_digests == sharded.schedule_digests
        for a, b in zip(serial.stations, sharded.stations):
            assert a.ledger_digest == b.ledger_digest
            assert a.profile_history == b.profile_history
            assert np.array_equal(a.backlog_mb, b.backlog_mb)

    def test_serial_vs_process_pool_bit_identical(self):
        config = NetworkConfig(n_stations=2, seed=5, **_FAST)
        serial = run_network(config)
        pooled = run_network(config, sharded=True, processes=2)
        assert serial.network_digest() == pooled.network_digest()

    @settings(max_examples=5, deadline=None)
    @given(
        n_stations=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_randomized_station_counts_stay_deterministic(self, n_stations, seed):
        config = NetworkConfig(
            n_stations=n_stations, seed=seed, hours=1,
            n_pages=20, tick_s=900.0, pages_per_station=5,
        )
        serial = run_network(config)
        sharded = run_network(config, sharded=True, processes=1)
        assert serial.network_digest() == sharded.network_digest()

    def test_different_seeds_diverge(self):
        a = run_network(NetworkConfig(n_stations=2, seed=1, **_FAST))
        b = run_network(NetworkConfig(n_stations=2, seed=2, **_FAST))
        assert a.network_digest() != b.network_digest()


class TestRateLadder:
    def test_degrading_region_walks_down_fresh_region_does_not(self):
        # One healthy region, one whose SNR falls 1 dB per hour: by the
        # end of the day the fading station has stepped down the ladder
        # to the robust rung, the steady one never left turbo.
        regions = (
            RegionSpec("steady", _LAHORE, rate_per_s=0.02),
            RegionSpec(
                "fading", _KARACHI, rate_per_s=0.02,
                snr_start_db=16.0, snr_drift_db_per_hour=-1.0,
            ),
        )
        config = NetworkConfig(
            n_stations=2, hours=24, tick_s=300.0, regions=regions,
            seed=3, pages_per_station=8,
        )
        result = run_network(config)

        steady = result.station("steady")
        assert steady.profile_switches == 0
        assert set(steady.profile_history) == {"turbo"}

        fading = result.station("fading")
        rates = dict((name, rate) for name, rate, _, _ in DEFAULT_PROFILE_LADDER)
        history_bps = [rates[p] for p in fading.profile_history]
        assert history_bps == sorted(history_bps, reverse=True)  # monotone walk
        assert fading.profile_history[0] == "turbo"
        assert fading.final_profile == "robust"
        assert fading.profile_switches >= 2  # multiple rungs, not one cliff

    def test_station_keyerror_for_unknown_region(self):
        result = run_network(NetworkConfig(n_stations=1, seed=0, **_FAST))
        with pytest.raises(KeyError):
            result.station("atlantis")


class TestDemandLoop:
    def test_ledger_counts_feed_scheduler(self):
        config = NetworkConfig(n_stations=2, seed=9, **_FAST)
        network = BroadcastNetwork(config)
        try:
            result = network.run()
            # Fold the final epoch's observed counts into the EWMA (the
            # run leaves them pending for the *next* rebalance).
            network.scheduler.rebalance(config.hours)
            for report in result.stations:
                ledger = network.ledgers[report.station_id]
                counts = ledger.demand_counts()
                # Every arrival is demand, whatever its fate.
                assert sum(counts.values()) == report.n_requests
                # ... and the scheduler saw it: its EWMA state for the
                # station is live exactly where the ledger counted.
                demand = network.scheduler.demand(report.station_id)
                assert all(demand[u] > 0 for u in counts)
        finally:
            network.close()

    def test_demanded_page_wins_next_allocation(self):
        network = BroadcastNetwork(
            NetworkConfig(n_stations=2, seed=9, **_FAST)
        )
        try:
            name = network.regions[0].name
            worst = int(np.argmin(network.scheduler._priors[name]))
            network.scheduler.observe(name, {worst: 50})
            allocations = network.scheduler.rebalance(0)
            assert allocations[name][0][0] == worst
        finally:
            network.close()

    def test_requests_outrank_any_demand_score(self):
        network = BroadcastNetwork(NetworkConfig(n_stations=1, seed=0, **_FAST))
        try:
            name = network.regions[0].name
            network.scheduler.observe(name, {0: 10_000})
            allocations = network.scheduler.rebalance(0)
            top_score = allocations[name][0][1]
            assert top_score < REQUEST_PRIORITY / 1e3
        finally:
            network.close()

    def test_shared_store_hits_across_stations(self):
        # Same corpus, N stations: the first station to need a page
        # encodes it; everyone else's epochs land store hits.
        result = run_network(NetworkConfig(n_stations=3, seed=4, **_FAST))
        solo = run_network(NetworkConfig(n_stations=1, seed=4, **_FAST))
        assert result.store_hits > 0
        assert result.store_misses > 0
        # Sharing pays: three stations land proportionally more hits
        # than one station's own allocation re-use alone.
        assert result.store_hits / max(1, result.store_misses) > (
            solo.store_hits / max(1, solo.store_misses)
        )


class TestRegistryDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=999),
                st.sampled_from(["lahore", "karachi", "multan", "quetta"]),
            ),
            max_size=20,
            unique_by=lambda e: e[0],
        )
    )
    def test_same_add_sequence_iterates_identically(self, entries):
        def build():
            registry = TransmitterRegistry()
            for call_sign, station in entries:
                registry.add(_tx(f"tx-{call_sign}", station=station))
            return registry

        a, b = build(), build()
        assert [t.station_id for t in a.all()] == [
            t.station_id for t in b.all()
        ]
        assert a.station_ids() == b.station_ids()
        # all() preserves add order; station_ids() first-add order.
        assert [t.station_id for t in a.all()] == [
            f"tx-{c}" for c, _ in entries
        ]
        seen: list[str] = []
        for _, station in entries:
            if station not in seen:
                seen.append(station)
        assert a.station_ids() == seen
        for station in seen:
            assert [t.station_id for t in a.for_station(station)] == [
                f"tx-{c}" for c, s in entries if s == station
            ]


class TestRegionPartition:
    def test_assign_picks_nearest(self):
        partition = RegionPartition(
            names=("lahore", "karachi"), centers=(_LAHORE, _KARACHI)
        )
        lats = np.array([_LAHORE.lat, _KARACHI.lat, 31.6])
        lons = np.array([_LAHORE.lon, _KARACHI.lon, 74.4])
        assert partition.assign(lats, lons).tolist() == [0, 1, 0]
        assert partition.nearest(_KARACHI) == "karachi"

    def test_rejects_mismatched_and_duplicate_names(self):
        with pytest.raises(ValueError):
            RegionPartition(names=("a",), centers=(_LAHORE, _KARACHI))
        with pytest.raises(ValueError):
            RegionPartition(names=("a", "a"), centers=(_LAHORE, _KARACHI))

    def test_network_partition_matches_config_regions(self):
        config = NetworkConfig(n_stations=3, **_FAST)
        partition = network_partition(config)
        assert partition.names == tuple(
            r.name for r in config.resolved_regions()
        )


class TestNetworkCoverage:
    def test_per_station_coverage_accounts_for_every_receiver(self):
        config = NetworkConfig(n_stations=2, seed=6, **_FAST)
        coverage = network_coverage(config, n_receivers=400)
        names = [c.station for c in coverage]
        assert names == [r.name for r in config.resolved_regions()]
        total = sum(c.n_receivers for c in coverage)
        assert total == 400  # every scattered listener attributed once
        for cov in coverage:
            assert cov.n_receivers > 0
            assert 0.0 <= cov.mean_loss_rate <= 1.0
