"""Unequal error protection scheduling."""

import numpy as np
import pytest

from repro.transport.partition import ColumnTransport
from repro.transport.uep import (
    UepPolicy,
    importance_weighted_damage,
    important_rows,
    schedule_with_uep,
)
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def framed_page(page_image):
    transport = ColumnTransport("raw")
    return page_image, transport, transport.partition(page_image, page_id=1)


class TestImportance:
    def test_fold_always_important(self, page_image):
        rows = important_rows(page_image, UepPolicy(fold_rows=100))
        assert rows[:100].all()

    def test_text_rows_detected(self, page_image):
        policy = UepPolicy(fold_rows=0)
        rows = important_rows(page_image, policy)
        # A rendered page has both text rows and whitespace rows.
        assert rows.any()
        assert not rows.all()

    def test_blank_page_only_fold(self):
        blank = np.full((200, 50, 3), 255, dtype=np.uint8)
        rows = important_rows(blank, UepPolicy(fold_rows=40))
        assert rows[:40].all()
        assert not rows[40:].any()

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            UepPolicy(repeats=0)


class TestSchedule:
    def test_repeats_only_important(self, framed_page):
        image, _, frames = framed_page
        policy = UepPolicy(fold_rows=50, text_row_fraction=1.1, repeats=2)
        schedule = schedule_with_uep(frames, image, policy)
        extra = len(schedule) - len(frames)
        important_frames = [f for f in frames if f.header.row0 < 50]
        assert extra == len(important_frames)
        # Original pass comes first, duplicates after.
        assert schedule[: len(frames)] == frames

    def test_repeats_one_is_identity(self, framed_page):
        image, _, frames = framed_page
        assert schedule_with_uep(frames, image, UepPolicy(repeats=1)) == frames

    def test_uep_reduces_important_damage(self, framed_page):
        image, transport, frames = framed_page
        policy = UepPolicy(fold_rows=200, text_row_fraction=1.1, repeats=3)
        schedule = schedule_with_uep(frames, image, policy)
        rng = derive_rng(3, "uep-test")
        kept = [f for f in schedule if rng.random() >= 0.3]
        _, missing = transport.reassemble(kept, image.shape[:2])
        fold_damage = importance_weighted_damage(image, missing, policy)
        overall = float(missing.mean())
        assert fold_damage < overall

    def test_damage_metric_bounds(self, framed_page):
        image, _, _ = framed_page
        none = np.zeros(image.shape[:2], dtype=bool)
        all_lost = np.ones(image.shape[:2], dtype=bool)
        assert importance_weighted_damage(image, none) == 0.0
        assert importance_weighted_damage(image, all_lost) == 1.0
