"""Demand-driven page allocation for the multi-station scheduler.

The :class:`DemandScheduler` is the piece that turns each region's
measured SMS demand into per-station airtime: EWMA demand plus a
region-local popularity prior plus an aging counter.  The properties
pinned here are the ones the network's determinism and fairness story
rests on:

* rebalance convergence — steady demand produces a stable allocation;
* starvation-freeness — every demanded page is eventually allocated,
  however small the airtime budget (the aging term);
* deterministic tie-break — allocations are a pure function of
  ``(seed, observe history, epoch)``, never of dict order or hash seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.server.scheduler import DemandConfig, DemandScheduler, schedule_digest

N_PAGES = 16


def _scheduler(
    stations=("lahore", "karachi"),
    n_pages=N_PAGES,
    pages_per_station=4,
    seed=0,
    **knobs,
) -> DemandScheduler:
    return DemandScheduler(
        list(stations),
        n_pages,
        config=DemandConfig(
            pages_per_station=pages_per_station, seed=seed, **knobs
        ),
    )


def _uniform_priors(stations, n_pages):
    return {sid: np.full(n_pages, 1.0 / n_pages) for sid in stations}


class TestValidation:
    def test_rejects_empty_and_duplicate_stations(self):
        with pytest.raises(ValueError):
            DemandScheduler([], N_PAGES)
        with pytest.raises(ValueError):
            DemandScheduler(["a", "a"], N_PAGES)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            DemandConfig(decay=1.0)
        with pytest.raises(ValueError):
            DemandConfig(decay=-0.1)
        with pytest.raises(ValueError):
            DemandConfig(pages_per_station=0)
        with pytest.raises(ValueError):
            DemandConfig(aging_weight=-0.01)

    def test_rejects_wrong_prior_shape(self):
        with pytest.raises(ValueError):
            DemandScheduler(["a"], N_PAGES, priors={"a": np.ones(N_PAGES + 1)})

    def test_observe_rejects_out_of_range_url(self):
        sched = _scheduler()
        with pytest.raises(ValueError):
            sched.observe("lahore", {N_PAGES: 1})
        with pytest.raises(ValueError):
            sched.observe("lahore", {-1: 1})


class TestDemandDynamics:
    def test_observes_accumulate_until_rebalance(self):
        sched = _scheduler()
        sched.observe("lahore", {3: 2})
        sched.observe("lahore", {3: 5, 7: 1})
        sched.rebalance(0)
        demand = sched.demand("lahore")
        assert demand[3] == pytest.approx(7.0)
        assert demand[7] == pytest.approx(1.0)

    def test_demand_decays_exponentially(self):
        sched = _scheduler(decay=0.5)
        sched.observe("lahore", {0: 8})
        sched.rebalance(0)
        sched.rebalance(1)
        sched.rebalance(2)
        assert sched.demand("lahore")[0] == pytest.approx(8.0 * 0.5**2)

    def test_demand_outranks_prior(self):
        # A page buried at the bottom of the prior jumps to the top of
        # the allocation on one epoch of real demand.
        sched = _scheduler()
        worst = N_PAGES - 1
        sched.observe("lahore", {worst: 10})
        allocations = sched.rebalance(0)
        assert allocations["lahore"][0][0] == worst

    def test_stations_are_independent(self):
        sched = _scheduler()
        sched.observe("lahore", {5: 100})
        allocations = sched.rebalance(0)
        assert allocations["lahore"][0][0] == 5
        assert allocations["karachi"][0][0] != 5
        assert sched.demand("karachi").sum() == 0.0


class TestRebalanceConvergence:
    def test_steady_demand_stabilises(self):
        # Constant demand on K <= budget pages: once the EWMA has burned
        # in, consecutive epochs allocate the same demanded pages.
        sched = _scheduler(pages_per_station=6)
        hot = {1: 4, 5: 3, 9: 2, 13: 1}
        history = []
        for epoch in range(8):
            sched.observe("lahore", hot)
            allocations = sched.rebalance(epoch)
            history.append([u for u, _ in allocations["lahore"]])
        for chosen in history[2:]:
            assert set(hot).issubset(chosen)
        # The demanded pages hold their *rank order* too: demand weights
        # dominate the prior and the allocation lists scores descending.
        for chosen in history[2:]:
            assert chosen[:4] == [1, 5, 9, 13]

    def test_scores_descend_and_indices_unique(self):
        sched = _scheduler()
        sched.observe("lahore", {2: 3, 4: 1})
        allocations = sched.rebalance(0)
        for pages in allocations.values():
            scores = [s for _, s in pages]
            assert scores == sorted(scores, reverse=True)
            assert len({u for u, _ in pages}) == len(pages)


class TestStarvationFreeness:
    def test_every_demanded_page_eventually_allocated(self):
        # 12 pages with identical steady demand, budget of 3: the aging
        # counter must round-robin the backlog so no page starves.
        n_pages, budget = 12, 3
        sched = DemandScheduler(
            ["solo"],
            n_pages,
            priors=_uniform_priors(["solo"], n_pages),
            config=DemandConfig(pages_per_station=budget, seed=7),
        )
        demanded = set(range(n_pages))
        never_seen = set(demanded)
        for epoch in range(3 * (n_pages // budget)):
            sched.observe("solo", {u: 1 for u in demanded})
            allocations = sched.rebalance(epoch)
            never_seen -= {u for u, _ in allocations["solo"]}
        assert never_seen == set()

    def test_age_resets_when_demand_goes_quiet(self):
        sched = _scheduler(pages_per_station=1)
        sched.observe("lahore", {10: 1, 11: 1})
        sched.rebalance(0)
        # Page left unallocated keeps aging only while demand persists;
        # after the EWMA decays to zero the counter resets, so stale
        # pages do not creep back into the schedule years later.
        for epoch in range(1, 60):
            sched.rebalance(epoch)
        top = sched.rebalance(60)["lahore"][0][0]
        assert top == 0  # the prior's favourite, not a long-dead request


class TestDeterminism:
    def test_identical_histories_identical_allocations(self):
        a = _scheduler(seed=3)
        b = _scheduler(seed=3)
        for epoch in range(4):
            for sched in (a, b):
                sched.observe("lahore", {epoch: 2, 8: 1})
                sched.observe("karachi", {15 - epoch: 3})
            assert schedule_digest(a.rebalance(epoch)) == schedule_digest(
                b.rebalance(epoch)
            )

    def test_tiebreak_is_seed_keyed(self):
        # All-ties field (zero demand, uniform prior): the allocation is
        # pure tie-break, and the tie-break is keyed by the seed.
        stations = ["solo"]
        priors = _uniform_priors(stations, N_PAGES)
        a = DemandScheduler(
            stations, N_PAGES, priors=priors,
            config=DemandConfig(pages_per_station=4, seed=0),
        )
        b = DemandScheduler(
            stations, N_PAGES, priors=priors,
            config=DemandConfig(pages_per_station=4, seed=1),
        )
        assert schedule_digest(a.rebalance(0)) != schedule_digest(b.rebalance(0))

    def test_tiebreak_varies_by_epoch_and_station(self):
        stations = ["a", "b"]
        sched = DemandScheduler(
            stations, N_PAGES, priors=_uniform_priors(stations, N_PAGES),
            config=DemandConfig(pages_per_station=4, seed=0),
        )
        first = sched.rebalance(0)
        second = sched.rebalance(1)
        assert [u for u, _ in first["a"]] != [u for u, _ in first["b"]]
        assert [u for u, _ in first["a"]] != [u for u, _ in second["a"]]

    @settings(max_examples=20, deadline=None)
    @given(
        counts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=N_PAGES - 1),
                st.integers(min_value=1, max_value=50),
            ),
            max_size=12,
        ),
        epochs=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_allocation_replays_bit_identically(self, counts, epochs, seed):
        digests = []
        for _ in range(2):
            sched = _scheduler(seed=seed)
            run = []
            for epoch in range(epochs):
                sched.observe("lahore", {u: n for u, n in counts})
                allocations = sched.rebalance(epoch)
                assert all(
                    len(pages) == sched.config.pages_per_station
                    for pages in allocations.values()
                )
                run.append(schedule_digest(allocations))
            digests.append(run)
        assert digests[0] == digests[1]


class TestScheduleDigest:
    def test_digest_tracks_content(self):
        base = {"a": [(0, 1.0), (1, 0.5)]}
        assert schedule_digest(base) == schedule_digest(
            {"a": [(0, 1.0), (1, 0.5)]}
        )
        assert schedule_digest(base) != schedule_digest({"a": [(0, 1.0)]})
        assert schedule_digest(base) != schedule_digest(
            {"b": [(0, 1.0), (1, 0.5)]}
        )
        assert schedule_digest(base) != schedule_digest(
            {"a": [(0, 1.0), (2, 0.5)]}
        )
