"""Calibration fitting: recovery, monotonicity, persistence, convergence."""

import numpy as np
import pytest

from repro.radio.lossmodel import (
    CalibrationStore,
    FrameLossModel,
    calibration_digest,
    fit_logistic_fer,
)
from repro.sim.population import PopulationConfig, run_population
from repro.util.rng import derive_rng


def _synthetic_samples(mid, scale, snrs, n_frames, seed):
    rng = derive_rng(seed, "fit-samples")
    z = np.clip((np.asarray(snrs) - mid) / scale, -40, 40)
    p = 1.0 / (1.0 + np.exp(z))
    lost = rng.binomial(n_frames, p)
    return [(float(s), n_frames, int(l)) for s, l in zip(snrs, lost)]


class TestFit:
    def test_recovers_generating_curve(self):
        samples = _synthetic_samples(3.3, 0.45, np.linspace(0, 7, 40), 200, 1)
        model = FrameLossModel.fit_from_runs(samples)
        assert model.fer_midpoint_db == pytest.approx(3.3, abs=0.2)
        assert model.fer_scale_db == pytest.approx(0.45, rel=0.4)

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_fitted_curve_monotone_in_snr_and_rssi(self, seed):
        """Property: whatever the (noisy) samples, the fitted FER is
        monotone decreasing in audio SNR and non-increasing in RSSI."""
        rng = derive_rng(seed, "prop-fit")
        mid = float(rng.uniform(0, 8))
        scale = float(rng.uniform(0.1, 2.0))
        samples = _synthetic_samples(
            mid, scale, np.linspace(mid - 5, mid + 5, 25), 64, seed
        )
        model = FrameLossModel.fit_from_runs(samples)
        snr_grid = np.linspace(-10, 20, 200)
        fer = model.frame_error_probability(snr_grid)
        assert np.all(np.diff(fer) <= 1e-12)
        rssi_grid = np.linspace(-100, -60, 200)
        fer_rssi = model.frame_error_probability(
            model.audio_snr_from_rssi(rssi_grid)
        )
        assert np.all(np.diff(fer_rssi) <= 1e-12)

    def test_degenerate_all_ok_saturates_low(self):
        samples = [(s, 100, 0) for s in np.linspace(5, 15, 10)]
        model = FrameLossModel.fit_from_runs(samples)
        assert model.frame_error_probability(10.0) < 0.05

    def test_rejects_empty_and_malformed(self):
        with pytest.raises(ValueError):
            fit_logistic_fer([], [], [])
        with pytest.raises(ValueError):
            fit_logistic_fer([1.0], [10], [11])

    def test_fit_is_deterministic(self):
        samples = _synthetic_samples(3.0, 0.5, np.linspace(0, 6, 20), 100, 9)
        a = FrameLossModel.fit_from_runs(samples)
        b = FrameLossModel.fit_from_runs(samples)
        assert (a.fer_midpoint_db, a.fer_scale_db) == (
            b.fer_midpoint_db,
            b.fer_scale_db,
        )


class TestPersistence:
    def test_round_trip_through_store(self, tmp_path):
        model = FrameLossModel(fer_midpoint_db=2.71828, fer_scale_db=0.31415)
        store = CalibrationStore(tmp_path)
        digest = calibration_digest("sonic-ofdm", snr_db=4.0, seed=0)
        store.save(digest, model)
        # A fresh store instance must read back identical parameters.
        loaded = CalibrationStore(tmp_path).load(digest)
        assert loaded is not None
        assert loaded.fer_midpoint_db == model.fer_midpoint_db
        assert loaded.fer_scale_db == model.fer_scale_db

    def test_miss_and_corrupt_entries_return_none(self, tmp_path):
        store = CalibrationStore(tmp_path)
        assert store.load("feedfacedeadbeef") is None
        bad = tmp_path / "losscurve-0000000000000bad.json"
        bad.write_text("{not json")
        assert CalibrationStore(tmp_path).load("0000000000000bad") is None

    def test_memory_only_store(self):
        store = CalibrationStore(None)
        model = FrameLossModel(fer_midpoint_db=1.0, fer_scale_db=0.5)
        store.save("aa", model)
        assert store.load("aa").fer_midpoint_db == 1.0
        assert CalibrationStore(None).load("aa") is None

    def test_digest_sensitivity(self):
        a = calibration_digest("sonic-ofdm", snr_db=4.0)
        assert a == calibration_digest("sonic-ofdm", snr_db=4.0)
        assert a != calibration_digest("sonic-fsk", snr_db=4.0)
        assert a != calibration_digest("sonic-ofdm", snr_db=5.0)
        assert a != calibration_digest("sonic-ofdm", snr_db=4.0, extra=1)


class TestStatisticalConvergence:
    def test_population_loss_converges_to_curve_at_1e5(self):
        """KS distance between the Tier-2 empirical loss distribution and
        the generating curve's predicted distribution, at n = 1e5.

        Each receiver's drawn loss rate concentrates on its model
        probability as the horizon grows, so the two population CDFs
        must agree tightly.
        """
        model = FrameLossModel()
        config = PopulationConfig(n_receivers=100_000, hours=8.0, master_seed=29)
        result = run_population(model, config)
        empirical = np.sort(result.loss_rates)
        # A horizon of F frames resolves loss rates to multiples of 1/F:
        # the curve's prediction for the *empirical* distribution is its
        # probabilities quantised to that grid (a receiver at p = 1e-18
        # loses exactly zero of its 1e5 frames).
        f = result.frames_per_receiver
        predicted = np.sort(np.rint(result.loss_probs * f) / f)
        grid = np.linspace(0.0, 1.0, 2001)
        ks = np.max(
            np.abs(
                np.searchsorted(empirical, grid, side="right")
                - np.searchsorted(predicted, grid, side="right")
            )
            / empirical.size
        )
        assert ks < 0.02

    def test_short_horizon_mean_loss_matches_expectation(self):
        """Exact-Bernoulli path: population mean loss ~ mean model p."""
        model = FrameLossModel()
        config = PopulationConfig(
            n_receivers=20_000,
            hours=0.05,
            master_seed=31,
            exact_frame_threshold=10**9,
        )
        result = run_population(model, config)
        assert result.mean_loss_rate == pytest.approx(
            float(result.loss_probs.mean()), abs=0.01
        )


class TestArrayAwareCurves:
    def test_scalar_and_array_paths_agree(self):
        model = FrameLossModel()
        snrs = np.linspace(-5, 15, 11)
        arr = model.frame_error_probability(snrs)
        for s, p in zip(snrs, arr):
            assert model.frame_error_probability(float(s)) == pytest.approx(p)
        rssis = np.linspace(-95, -60, 11)
        arr = model.audio_snr_from_rssi(rssis)
        for r, v in zip(rssis, arr):
            assert model.audio_snr_from_rssi(float(r)) == pytest.approx(v)

    def test_instance_constants_change_the_curve(self):
        steep = FrameLossModel(fer_midpoint_db=5.0, fer_scale_db=0.1)
        assert steep.frame_error_probability(4.5) > 0.95
        assert steep.frame_error_probability(5.5) < 0.05
