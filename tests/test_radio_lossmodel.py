"""The fast frame-loss model and its consistency with the DSP chain."""

import numpy as np
import pytest

from repro.radio.lossmodel import FrameLossModel


@pytest.fixture(scope="module")
def model() -> FrameLossModel:
    return FrameLossModel(seed=0)


class TestFrameErrorCurve:
    def test_monotone_in_snr(self, model):
        probs = [model.frame_error_probability(snr) for snr in (-5, 0, 3, 5, 10)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_asymptotes(self, model):
        assert model.frame_error_probability(30) < 1e-6
        assert model.frame_error_probability(-20) > 1 - 1e-6

    def test_waterfall_location_matches_measured_chain(self, model):
        # The real sonic-ofdm chain decodes cleanly at >=5 dB and fails
        # hard at <=2 dB (measured in test_modem_modem noise tests).
        assert model.frame_error_probability(5.5) < 0.05
        assert model.frame_error_probability(2.0) > 0.9


class TestFmThreshold:
    def test_linear_region(self, model):
        assert model.audio_snr_from_rssi(-65.0) == pytest.approx(35.0)
        assert model.audio_snr_from_rssi(-85.0) == pytest.approx(15.0)

    def test_collapse_region_steeper(self, model):
        upper = model.audio_snr_from_rssi(-80.0) - model.audio_snr_from_rssi(-85.0)
        lower = model.audio_snr_from_rssi(-85.0) - model.audio_snr_from_rssi(-90.0)
        assert lower > upper * 2

    def test_paper_bands(self, model):
        """Loss-free at -65..-85; partial -85..-90; dead below -90."""
        clean = model.frame_losses_at_rssi(300, -80.0, call=1)
        assert clean.mean() == 0.0
        partial = model.frame_losses_at_rssi(300, -88.5, call=2)
        assert 0.0 < partial.mean() < 0.6
        dead = model.frame_losses_at_rssi(300, -93.0, call=3)
        assert dead.mean() > 0.95


class TestDistanceDraws:
    def test_cable_lossless(self, model):
        losses = model.frame_losses_at_distance(500, 0.0, call=1)
        assert losses.mean() == 0.0

    def test_loss_grows_with_distance(self, model):
        rates = []
        for i, d in enumerate((0.2, 1.0, 1.4)):
            total = sum(
                model.frame_losses_at_distance(100, d, call=100 * i + k).mean()
                for k in range(10)
            )
            rates.append(total / 10)
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] > 0.9  # beyond the cliff

    def test_reproducible_per_call(self, model):
        a = model.frame_losses_at_distance(50, 1.0, call=7)
        b = model.frame_losses_at_distance(50, 1.0, call=7)
        assert np.array_equal(a, b)
        c = model.frame_losses_at_distance(50, 1.0, call=8)
        assert not np.array_equal(a, c)
