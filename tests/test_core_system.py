"""Full-system integration: the Figure 3 workflow."""

import pytest

from repro.client.browser import ClickOutcome
from repro.core.config import SystemConfig
from repro.core.system import SonicSystem


@pytest.fixture(scope="module")
def system() -> SonicSystem:
    sys = SonicSystem(SystemConfig(n_sites=2, render_width=360, max_pixel_height=1_000))
    sys.run(seconds=3_600, step_s=5)
    return sys


class TestBroadcastDelivery:
    def test_cable_users_receive_catalog(self, system):
        for name in ("user-b", "user-c"):
            client = system.client(name)
            assert len(client.cache.urls()) == len(system.generator.all_urls())
            assert client.frame_loss_rate == 0.0

    def test_air_user_sees_losses(self, system):
        user_a = system.client("user-a")
        assert user_a.frames_seen > 0
        assert user_a.frame_loss_rate > 0.05

    def test_broadcast_reaches_everyone(self, system):
        """Downlink is broadcast: passive users get requested pages too."""
        user_b = system.client("user-b")
        assert len(user_b.cache.urls()) > 0  # never sent a single SMS


class TestRequestWorkflow:
    def test_request_ack_and_delivery(self):
        sys = SonicSystem(
            SystemConfig(
                n_sites=2, render_width=360, max_pixel_height=800,
                auto_hourly_push=False,
            )
        )
        user_c = sys.client("user-c")
        url = sys.generator.all_urls()[1]
        assert user_c.request_page(url, sys.clock.now)
        sys.run(seconds=900, step_s=5)
        assert user_c.acks
        assert user_c.acks[0].url == url
        assert url in user_c.cache
        assert url not in user_c.pending_requests

    def test_users_without_sms_cannot_request(self, system):
        assert not system.client("user-a").request_page("x.pk/", 0.0)
        assert not system.client("user-b").request_page("x.pk/", 0.0)

    def test_search_workflow_end_to_end(self):
        """FIND query -> results page broadcast -> client browses it."""
        sys = SonicSystem(
            SystemConfig(
                n_sites=2, render_width=360, max_pixel_height=800,
                auto_hourly_push=False,
            )
        )
        user_c = sys.client("user-c")
        assert user_c.search("cricket Pakistan", sys.clock.now)
        sys.run(seconds=600, step_s=5)
        results_urls = [u for u in user_c.cache.urls() if u.startswith("sonic.search/")]
        assert results_urls, "search results page never delivered"
        bundle = user_c.browser.open(results_urls[0], sys.clock.now)
        assert bundle is not None
        # Result links target corpus pages.
        corpus = set(sys.generator.all_urls())
        linked = [h for h in bundle.clickmap.hrefs() if h in corpus]
        assert linked or len(bundle.clickmap) == 0  # zero hits is legal


class TestBrowsing:
    def test_catalog_and_click_flow(self, system):
        user_c = system.client("user-c")
        now = system.clock.now
        entries = user_c.browser.catalog.entries(now)
        assert entries
        landing = next(e.url for e in entries if e.url.endswith("/"))
        bundle = user_c.browser.open(landing, now)
        assert bundle is not None
        # Click the first mapped region (device coordinates).
        region = bundle.clickmap.regions[0]
        factor = user_c.profile.scale_factor
        result = user_c.click(
            int((region.x + 2) * factor), int((region.y + 2) * factor), now
        )
        assert result.outcome in (ClickOutcome.CACHE_HIT, ClickOutcome.NEEDS_UPLINK)

    def test_stats_coherent(self, system):
        stats = system.server.stats
        assert stats.pushes >= len(system.generator.all_urls())
        assert stats.renders > 0


class TestConfig:
    def test_frames_per_second(self):
        assert SystemConfig(broadcast_rate_bps=10_000).frames_per_second == 12.5

    def test_custom_profiles(self):
        sys = SonicSystem(
            SystemConfig(n_sites=2, auto_hourly_push=False), profiles=[]
        )
        assert sys.clients == []
