"""Click handling over static screenshots.

"Within a webpage, a user might be interested in visiting some internal
pages by following classic hyperlinks.  If the requested internal page
is locally available ... the page would instantly load.  If not, an
active uplink is required" (Section 3.1).  Interactivity is limited to
hyperlinks (Section 3.2) — the click map resolves taps to targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.client.cache import ClientCache
from repro.client.catalog import Catalog
from repro.transport.bundle import PageBundle

__all__ = ["ClickOutcome", "ClickResult", "Browser"]


class ClickOutcome(Enum):
    """What happened when the user tapped the screen."""

    NO_TARGET = "no-target"  # tap outside any click region
    CACHE_HIT = "cache-hit"  # target page loads instantly
    NEEDS_UPLINK = "needs-uplink"  # target missing; SMS request required


@dataclass(frozen=True)
class ClickResult:
    outcome: ClickOutcome
    href: str | None = None
    bundle: PageBundle | None = None


class Browser:
    """Navigation state of the client app."""

    def __init__(self, cache: ClientCache, scale_factor: float = 1.0) -> None:
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        self._cache = cache
        self.catalog = Catalog(cache)
        self.scale_factor = scale_factor
        self.current: PageBundle | None = None
        self.history: list[str] = []

    def open(self, url: str, now: float) -> PageBundle | None:
        """Open a page from cache; records the view."""
        bundle = self._cache.get(url, now)
        if bundle is None:
            return None
        self.current = bundle
        self.history.append(url)
        self.catalog.record_view(url)
        return bundle

    def click(self, x: int, y: int, now: float) -> ClickResult:
        """Resolve a tap at *device* coordinates on the current page.

        Device coordinates are divided by the scaling factor before the
        click-map lookup, mirroring how the client app scales both the
        image and the map (Section 3.2).
        """
        if self.current is None:
            return ClickResult(ClickOutcome.NO_TARGET)
        # The map stored in the bundle is in source-image coordinates.
        map_x = int(x / self.scale_factor)
        map_y = int(y / self.scale_factor)
        href = self.current.clickmap.hit_test(map_x, map_y)
        if href is None:
            return ClickResult(ClickOutcome.NO_TARGET)
        bundle = self._cache.get(href, now)
        if bundle is not None:
            self.current = bundle
            self.history.append(href)
            self.catalog.record_view(href)
            return ClickResult(ClickOutcome.CACHE_HIT, href, bundle)
        return ClickResult(ClickOutcome.NEEDS_UPLINK, href)

    def back(self, now: float) -> PageBundle | None:
        """Return to the previous page if it is still cached."""
        if len(self.history) < 2:
            return None
        self.history.pop()
        return self.open(self.history.pop(), now)
