"""Incremental page assembly from a live decoded frame stream.

A SONIC phone does not wait for a capture to end: frames arrive while
the carousel is still on air, and the app fills pages in progressively —
including pages whose transmission was already under way when the user
tuned in (the missed columns arrive on the next carousel cycle).

:class:`StreamingPageAssembler` is that consumer: feed it the
:class:`~repro.modem.modem.ReceivedFrame` batches a
:class:`~repro.modem.streaming.StreamingReceiver` emits and it keeps
per-page fill state, completes bundles as their last frame lands, and
reports reception progress for the page currently on air.  A full
:class:`~repro.client.client.SonicClient` does the same via its
:meth:`~repro.client.client.SonicClient.on_received_frames` adapter;
this class is the dependency-free core used by ``repro stream``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modem.modem import ReceivedFrame
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.framing import Frame, FrameType

__all__ = ["AssembledPage", "StreamingPageAssembler"]


@dataclass(frozen=True)
class AssembledPage:
    """One page completed mid-stream."""

    bundle: PageBundle
    completed_at: float  # stream time, seconds


class StreamingPageAssembler:
    """Progressive frames -> bundles consumer for the chunked dataflow."""

    def __init__(self) -> None:
        self._transport = BundleTransport()
        # Keyed by (page_id, version): chunks of different renders of
        # the same page must never mix.
        self._partial: dict[tuple[int, int], dict[int, Frame]] = {}
        self.pages: list[AssembledPage] = []
        self.pages_raw = 0  # reassembled fully but not a parseable bundle
        self.frames_seen = 0
        self.frames_lost = 0
        self.frames_alien = 0  # decoded fine but not a bundle frame

    def push(
        self, received: list[ReceivedFrame], now: float = 0.0
    ) -> list[PageBundle]:
        """Ingest one decoded batch; returns bundles it completed.

        Lost frames (failed FEC) leave gaps that persist across carousel
        cycles, so a later rebroadcast of the same version fills them —
        this is also what makes mid-carousel tune-in work: the columns
        missed before tune-in are just gaps like any other.
        """
        completed: list[PageBundle] = []
        for rx in received:
            self.frames_seen += 1
            if rx.payload is None:
                self.frames_lost += 1
                continue
            try:
                frame = Frame.from_bytes(rx.payload)
            except (ValueError, KeyError):
                self.frames_lost += 1
                continue
            if frame.header.frame_type != FrameType.BUNDLE_BYTES:
                self.frames_alien += 1
                continue
            key = (frame.header.page_id, frame.header.col)
            slots = self._partial.setdefault(key, {})
            slots[frame.header.seq] = frame
            if len(slots) == frame.header.total:
                data = self._transport.reassemble(list(slots.values()))
                del self._partial[key]
                if data is None:
                    continue
                try:
                    bundle = PageBundle.from_bytes(data)
                except ValueError:
                    # Fully received, but the payload is not a bundle
                    # (synthetic ``repro stream`` traffic, foreign apps).
                    self.pages_raw += 1
                else:
                    self.pages.append(AssembledPage(bundle, now))
                    completed.append(bundle)
                # Older partial versions of this page are now moot.
                stale = [k for k in self._partial if k[0] == key[0]]
                for k in stale:
                    del self._partial[k]
        return completed

    def progress(self, page_id: int) -> float:
        """Best reception fraction across in-flight versions of a page."""
        best = 0.0
        for (pid, _version), slots in self._partial.items():
            if pid != page_id or not slots:
                continue
            total = next(iter(slots.values())).header.total
            best = max(best, len(slots) / total)
        return best

    @property
    def pages_completed(self) -> int:
        """Fully received pages, whether or not they parsed as bundles."""
        return len(self.pages) + self.pages_raw

    @property
    def partial_pages(self) -> int:
        """Pages currently filling in (tuned-in mid-transmission or gapped)."""
        return len(self._partial)
