"""The client app's catalog view.

"the app shows a catalog of available webpages, organized by content,
popularity, and/or user interest" (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.cache import ClientCache

__all__ = ["CatalogEntry", "Catalog"]


@dataclass(frozen=True)
class CatalogEntry:
    """One row of the catalog screen."""

    url: str
    domain: str
    received_at: float
    view_count: int


class Catalog:
    """Organises cached pages for browsing."""

    def __init__(self, cache: ClientCache) -> None:
        self._cache = cache
        self._views: dict[str, int] = {}

    def record_view(self, url: str) -> None:
        self._views[url] = self._views.get(url, 0) + 1

    def entries(self, now: float) -> list[CatalogEntry]:
        self._cache.expire(now)
        out = []
        for url in self._cache.urls():
            out.append(
                CatalogEntry(
                    url=url,
                    domain=url.partition("/")[0],
                    received_at=self._cache.received_at(url) or 0.0,
                    view_count=self._views.get(url, 0),
                )
            )
        return out

    def by_domain(self, now: float) -> dict[str, list[CatalogEntry]]:
        """Catalog grouped by site ("organized by content")."""
        grouped: dict[str, list[CatalogEntry]] = {}
        for entry in self.entries(now):
            grouped.setdefault(entry.domain, []).append(entry)
        return grouped

    def by_popularity(self, now: float) -> list[CatalogEntry]:
        """Most-viewed pages first ("organized by popularity")."""
        return sorted(
            self.entries(now), key=lambda e: (-e.view_count, -e.received_at)
        )

    def most_recent(self, now: float, n: int = 10) -> list[CatalogEntry]:
        return sorted(self.entries(now), key=lambda e: -e.received_at)[:n]
