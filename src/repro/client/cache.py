"""Client-side page cache.

"When the webpage is received, it is inserted in a cache with expiration
date set according to a time indicated by the server." (Section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.bundle import PageBundle

__all__ = ["ClientCache"]


@dataclass
class _Entry:
    bundle: PageBundle
    received_at: float

    def fresh(self, now: float) -> bool:
        return now - self.received_at < self.bundle.expiry_hours * 3600.0


class ClientCache:
    """Bounded cache honouring the server-advertised expiry."""

    def __init__(self, capacity: int = 50) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: dict[str, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def put(self, bundle: PageBundle, now: float) -> None:
        if len(self._entries) >= self.capacity and bundle.url not in self._entries:
            victim = min(self._entries.values(), key=lambda e: e.received_at)
            del self._entries[victim.bundle.url]
        self._entries[bundle.url] = _Entry(bundle, now)

    def get(self, url: str, now: float) -> PageBundle | None:
        entry = self._entries.get(url)
        if entry is None:
            return None
        if not entry.fresh(now):
            del self._entries[url]
            return None
        return entry.bundle

    def received_at(self, url: str) -> float | None:
        entry = self._entries.get(url)
        return entry.received_at if entry else None

    def urls(self) -> list[str]:
        return list(self._entries)

    def expire(self, now: float) -> int:
        stale = [u for u, e in self._entries.items() if not e.fresh(now)]
        for u in stale:
            del self._entries[u]
        return len(stale)
