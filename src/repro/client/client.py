"""The SONIC client application.

Figure 3's three user classes map to :class:`ClientProfile` settings:

* **User A** — nearby FM radio over the air: ``connection="air"`` with a
  speaker-to-phone distance, no SMS.
* **User B** — phone with an internal FM tuner: ``connection="cable"``
  (zero air distance), no SMS.
* **User C** — radio via audio jack *and* an SMS plan: ``connection=
  "cable"``, ``has_sms=True`` — the only user able to request pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.browser import Browser
from repro.client.cache import ClientCache
from repro.sim.geometry import Location
from repro.sms.gateway import SmsGateway
from repro.sms.message import SmsMessage
from repro.sms.protocol import (
    PageRequest,
    RequestAck,
    RequestError,
    parse_downlink,
)
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.framing import Frame, FrameType

__all__ = ["ClientProfile", "SonicClient"]


@dataclass(frozen=True)
class ClientProfile:
    """Hardware and subscription capabilities of one user."""

    name: str
    location: Location
    connection: str = "cable"  # "cable" (tuner/jack) or "air"
    distance_m: float = 0.0  # speaker-to-mic gap when connection="air"
    has_sms: bool = False
    phone_number: str = ""
    screen_width: int = 360  # low-end device; source images are 1080

    def __post_init__(self) -> None:
        if self.connection not in ("cable", "air"):
            raise ValueError("connection must be 'cable' or 'air'")
        if self.has_sms and not self.phone_number:
            raise ValueError("an SMS-capable client needs a phone number")

    @property
    def scale_factor(self) -> float:
        """Image/click-map scaling factor (Section 3.2)."""
        return self.screen_width / 1080.0


class SonicClient:
    """Receives broadcasts, maintains the cache, issues requests."""

    def __init__(
        self,
        profile: ClientProfile,
        gateway: SmsGateway | None = None,
        server_number: str | None = None,
        cache_capacity: int = 50,
    ) -> None:
        self.profile = profile
        self.cache = ClientCache(capacity=cache_capacity)
        self.browser = Browser(self.cache, scale_factor=profile.scale_factor)
        self._gateway = gateway
        self._server_number = server_number
        self._transport = BundleTransport()
        # Keyed by (page_id, version): chunks of different renders of the
        # same page must never mix.
        self._partial: dict[tuple[int, int], dict[int, Frame]] = {}
        self.pending_requests: dict[str, float] = {}  # url -> request time
        self.acks: list[RequestAck] = []
        self.errors: list[RequestError] = []
        self.upcoming: dict[str, "CatalogEntryInfo"] = {}  # from announcements
        self._catalog_frames: dict[int, Frame] = {}
        self.frames_seen = 0
        self.frames_lost = 0
        if gateway is not None and profile.has_sms:
            gateway.register(profile.phone_number, self._on_sms)

    # -- downlink ------------------------------------------------------------

    def on_frames(
        self, frames: list[Frame | None], now: float
    ) -> list[PageBundle]:
        """Ingest a received frame batch; None entries are lost frames.

        Returns bundles completed by this batch (already cached).  Gaps
        persist across batches, so later carousel cycles can fill them.
        """
        completed: list[PageBundle] = []
        for frame in frames:
            self.frames_seen += 1
            if frame is None:
                self.frames_lost += 1
                continue
            if frame.header.frame_type == FrameType.METADATA:
                self._ingest_catalog_frame(frame)
                continue
            if frame.header.frame_type != FrameType.BUNDLE_BYTES:
                continue
            key = (frame.header.page_id, frame.header.col)
            slots = self._partial.setdefault(key, {})
            slots[frame.header.seq] = frame
            if len(slots) == frame.header.total:
                data = self._transport.reassemble(list(slots.values()))
                if data is not None:
                    bundle = PageBundle.from_bytes(data)
                    self.cache.put(bundle, now)
                    self.pending_requests.pop(bundle.url, None)
                    self.upcoming.pop(bundle.url, None)
                    completed.append(bundle)
                    del self._partial[key]
                    # Older partial versions of this page are now moot.
                    stale = [
                        k for k in self._partial if k[0] == frame.header.page_id
                    ]
                    for k in stale:
                        del self._partial[k]
        return completed

    def on_received_frames(self, received, now: float) -> list[PageBundle]:
        """Ingest raw modem output (:class:`ReceivedFrame` batches).

        Adapter for the chunked dataflow: wire this as a
        :class:`~repro.core.stream.StreamSession` ``on_frames`` callback
        and the client consumes the broadcast incrementally — no
        whole-capture array, progressive page fill-in, and mid-carousel
        tune-in for free (missed columns are gaps a later cycle fills).
        """
        frames: list[Frame | None] = []
        for rx in received:
            if rx.payload is None:
                frames.append(None)
                continue
            try:
                frames.append(Frame.from_bytes(rx.payload))
            except (ValueError, KeyError):
                frames.append(None)
        return self.on_frames(frames, now)

    def _ingest_catalog_frame(self, frame: Frame) -> None:
        """Accumulate catalog announcements into the 'upcoming' view."""
        from repro.transport.metadata import CatalogAnnouncement

        if self._catalog_frames:
            stored_total = next(iter(self._catalog_frames.values())).header.total
            if frame.header.total != stored_total:
                self._catalog_frames.clear()  # a new announcement started
        self._catalog_frames[frame.header.seq] = frame
        announcement = CatalogAnnouncement.from_frames(
            list(self._catalog_frames.values())
        )
        if announcement is None:
            return
        self._catalog_frames.clear()
        for entry in announcement.entries:
            self.upcoming[entry.url] = entry

    def reception_progress(self, page_id: int) -> float:
        """Best reception fraction across in-flight versions of a page."""
        best = 0.0
        for (pid, _version), slots in self._partial.items():
            if pid != page_id or not slots:
                continue
            total = next(iter(slots.values())).header.total
            best = max(best, len(slots) / total)
        return best

    # -- uplink ------------------------------------------------------------

    def request_page(self, url: str, now: float) -> bool:
        """Send a GET over SMS; False when this user has no uplink."""
        if not self.profile.has_sms or self._gateway is None:
            return False
        if self._server_number is None:
            raise ValueError("client has SMS but no server number configured")
        req = PageRequest(url, self.profile.location.lat, self.profile.location.lon)
        message = SmsMessage(
            self.profile.phone_number, self._server_number, req.to_text(), now
        )
        accepted = self._gateway.submit(message, now)
        if accepted:
            self.pending_requests[url] = now
        return accepted

    def search(self, query: str, now: float) -> bool:
        """Send a FIND query over SMS ("queries to search engines",
        Section 3.1); False when this user has no uplink."""
        if not self.profile.has_sms or self._gateway is None:
            return False
        if self._server_number is None:
            raise ValueError("client has SMS but no server number configured")
        from repro.sms.protocol import SearchRequest

        req = SearchRequest(
            query, self.profile.location.lat, self.profile.location.lon
        )
        message = SmsMessage(
            self.profile.phone_number, self._server_number, req.to_text(), now
        )
        return self._gateway.submit(message, now)

    def _on_sms(self, message: SmsMessage, now: float) -> None:
        try:
            reply = parse_downlink(message.text)
        except ValueError:
            return
        if isinstance(reply, RequestAck):
            self.acks.append(reply)
        else:
            self.errors.append(reply)
            self.pending_requests.pop(reply.url, None)

    # -- browsing ------------------------------------------------------------

    def click(self, x: int, y: int, now: float):
        """Tap the current page; auto-request on a cache miss if able."""
        result = self.browser.click(x, y, now)
        from repro.client.browser import ClickOutcome

        if result.outcome == ClickOutcome.NEEDS_UPLINK and result.href:
            self.request_page(result.href, now)
        return result

    @property
    def frame_loss_rate(self) -> float:
        """Observed fraction of lost frames."""
        if self.frames_seen == 0:
            return 0.0
        return self.frames_lost / self.frames_seen
