"""The SONIC client (paper Section 3.1).

A standalone user-space application on a low-end phone: it decodes
webpage bundles from the FM audio downlink, keeps them in a cache with
server-dictated expiry, shows a catalog of available pages, resolves
clicks through click maps, and — for users who pay for SMS — requests
missing pages over the uplink.
"""

from repro.client.cache import ClientCache
from repro.client.catalog import Catalog, CatalogEntry
from repro.client.browser import Browser, ClickOutcome
from repro.client.client import SonicClient, ClientProfile
from repro.client.streaming import AssembledPage, StreamingPageAssembler

__all__ = [
    "ClientCache",
    "Catalog",
    "CatalogEntry",
    "Browser",
    "ClickOutcome",
    "SonicClient",
    "ClientProfile",
    "AssembledPage",
    "StreamingPageAssembler",
]
