"""Pull-based chunked broadcast dataflow: carousel -> audio -> frames.

The paper's SONIC station transmits *continuously*: a carousel drains at
the channel rate for days while phones tune in and out mid-stream.  This
module is the transmit half (and the glue) of that dataflow:

* :class:`WaveformSource` — pulls frame bursts from a supply on demand
  and emits fixed-size audio chunks, so a 48-hour broadcast never exists
  as one array.  Repeat bursts (the carousel case) hit the burst-level
  :class:`~repro.server.transmitters.BroadcastEncodeCache` and skip
  FEC + OFDM entirely.
* :class:`CarouselFrameSource` — adapts a
  :class:`~repro.transport.carousel.BroadcastCarousel` into that burst
  supply, materialising frame payloads lazily (head item only) so a deep
  backlog costs O(page), not O(backlog).
* :class:`StreamSession` — steps source -> channel -> receiver one chunk
  at a time with live counters; both ``repro stream`` and the audio-true
  system path drive this.

:func:`repro.core.pipeline.frames_to_waveform` is the whole-broadcast
wrapper over :class:`WaveformSource`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.modem.modem import Modem, ReceivedFrame
    from repro.modem.streaming import StreamingReceiver
    from repro.server.transmitters import BroadcastEncodeCache
    from repro.transport.carousel import BroadcastCarousel, CarouselItem
    from repro.transport.framing import Frame

__all__ = [
    "WaveformSource",
    "CarouselFrameSource",
    "StreamStats",
    "StreamSession",
]

#: 100 ms of audio at the modem rate — the default streaming granularity.
DEFAULT_CHUNK_SAMPLES = 4800


class WaveformSource:
    """Fixed-size audio chunks pulled on demand from a burst supply.

    ``next_burst()`` returns the next burst of frame payload bytes, or
    ``None`` when the supply has nothing to send.  With ``idle_fill``
    the source then emits silence (a live station carrying an idle
    carousel); without it, ``None`` ends the stream (a finite frame
    list).  Bursts are separated by one ``guard_samples`` silence block
    — *between* bursts only, never after the last one, so the emitted
    sample count matches :meth:`Modem.broadcast_samples` exactly.
    """

    def __init__(
        self,
        next_burst: Callable[[], "list[bytes] | None"],
        modem: "Modem",
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
        idle_fill: bool = False,
        cache: "BroadcastEncodeCache | None" = None,
    ) -> None:
        if chunk_samples < 1:
            raise ValueError("chunk_samples must be >= 1")
        self._next_burst = next_burst
        self._modem = modem
        self.chunk_samples = chunk_samples
        self.idle_fill = idle_fill
        self._cache = cache
        self._fifo: deque[np.ndarray] = deque()
        self._fifo_samples = 0
        self._needs_guard = False  # a burst was just emitted, no idle since
        self._exhausted = False
        self.bursts_encoded = 0
        self.frames_encoded = 0
        self.samples_emitted = 0

    def _encode_burst(self, payloads: "list[bytes]") -> np.ndarray:
        if self._cache is not None:
            return self._cache.burst(payloads, self._modem)
        return self._modem.transmit_burst(payloads)

    def _refill(self) -> bool:
        """Pull one burst into the fifo; False when nothing was added."""
        if self._exhausted:
            return False
        payloads = self._next_burst()
        if not payloads:
            if not self.idle_fill:
                self._exhausted = True
            return False
        if self._needs_guard:
            guard = np.zeros(self._modem.profile.guard_samples)
            self._fifo.append(guard)
            self._fifo_samples += guard.size
        wave = self._encode_burst(payloads)
        self._fifo.append(wave)
        self._fifo_samples += wave.size
        self._needs_guard = True
        self.bursts_encoded += 1
        self.frames_encoded += len(payloads)
        return True

    def read(self) -> np.ndarray:
        """Next audio chunk: ``chunk_samples`` long while the stream
        lasts, shorter at the end, empty once exhausted."""
        while self._fifo_samples < self.chunk_samples:
            if not self._refill():
                break
        if self._fifo_samples == 0 and self._exhausted:
            return np.zeros(0)
        if self._fifo_samples < self.chunk_samples and not self._exhausted:
            # Idle carousel: pad this chunk with silence.  Silence is a
            # guard in itself, so the next burst needs no explicit one.
            pad = self.chunk_samples - self._fifo_samples
            self._fifo.append(np.zeros(pad))
            self._fifo_samples += pad
            self._needs_guard = False
        out: list[np.ndarray] = []
        need = self.chunk_samples
        while need > 0 and self._fifo:
            head = self._fifo[0]
            if head.size <= need:
                out.append(head)
                need -= head.size
                self._fifo.popleft()
            else:
                out.append(head[:need])
                self._fifo[0] = head[need:]
                need = 0
        self._fifo_samples -= sum(seg.size for seg in out)
        chunk = out[0] if len(out) == 1 else np.concatenate(out)
        self.samples_emitted += chunk.size
        return chunk

    def __iter__(self) -> Iterator[np.ndarray]:
        while True:
            chunk = self.read()
            if chunk.size == 0:
                return
            yield chunk

    def read_all(self) -> np.ndarray:
        """Drain the whole (finite) supply into one array — batch use."""
        chunks = list(self)
        return np.concatenate(chunks) if chunks else np.zeros(0)

    @property
    def buffered_samples(self) -> int:
        return self._fifo_samples


class CarouselFrameSource:
    """Burst supply over a :class:`BroadcastCarousel`.

    Frame payloads are produced via :meth:`BroadcastCarousel.emit_frames`
    so byte/backlog accounting stays consistent with the drained queue.
    Items queued with ``frames=None`` are materialised lazily through
    ``make_frames`` when they reach the head — a 200-page backlog only
    ever holds one page's frames in memory.
    """

    def __init__(
        self,
        carousel: "BroadcastCarousel",
        frames_per_burst: int = 16,
        make_frames: "Callable[[CarouselItem], list[Frame]] | None" = None,
    ) -> None:
        if frames_per_burst < 1:
            raise ValueError("frames_per_burst must be >= 1")
        self.carousel = carousel
        self.frames_per_burst = frames_per_burst
        self.make_frames = make_frames
        self.pages_materialised = 0

    def __call__(self) -> "list[bytes] | None":
        payloads: list[bytes] = []
        while len(payloads) < self.frames_per_burst:
            item = self.carousel.head()
            if item is None:
                break
            if item.frames is None:
                if self.make_frames is None:
                    raise ValueError(
                        f"item {item.url} has no frames and no make_frames "
                        "materialiser was provided"
                    )
                frames = self.make_frames(item)
                if not frames:
                    raise ValueError(f"item {item.url} materialised no frames")
                item.frames = frames
                self.pages_materialised += 1
            for _, frame in self.carousel.emit_frames(1):
                payloads.append(frame.to_bytes())
        return payloads or None


@dataclass
class StreamStats:
    """Live counters of one :class:`StreamSession`."""

    chunks: int = 0
    samples: int = 0
    frames_decoded: int = 0
    frames_ok: int = 0
    elapsed_s: float = 0.0  # wall clock spent in step()
    max_rx_buffer_samples: int = 0
    sample_rate: float = 48_000.0

    @property
    def audio_seconds(self) -> float:
        return self.samples / self.sample_rate

    @property
    def chunks_per_s(self) -> float:
        return self.chunks / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def realtime_factor(self) -> float:
        return self.audio_seconds / self.elapsed_s if self.elapsed_s > 0 else 0.0


class StreamSession:
    """Run source -> channel -> receiver one chunk at a time.

    The audio stream *is* the clock: each emitted chunk advances
    simulated time by ``chunk / sample_rate`` seconds.  ``on_advance(now)``
    fires before each chunk is pulled (schedule enqueues there);
    ``on_frames(frames, now)`` delivers every decoded frame batch (wire a
    client or assembler there).  Peak memory is O(chunk + burst): no hop
    ever holds the whole broadcast.
    """

    def __init__(
        self,
        source: WaveformSource,
        receiver: "StreamingReceiver",
        channel=None,
        carousel: "BroadcastCarousel | None" = None,
        on_frames: "Callable[[list[ReceivedFrame], float], None] | None" = None,
        on_advance: "Callable[[float], None] | None" = None,
    ) -> None:
        self.source = source
        self.receiver = receiver
        self.channel = channel
        self.carousel = carousel
        self.on_frames = on_frames
        self.on_advance = on_advance
        sample_rate = source._modem.profile.ofdm.sample_rate
        self.stats = StreamStats(sample_rate=sample_rate)
        self._finished = False

    @property
    def now(self) -> float:
        """Simulated seconds of audio emitted so far."""
        return self.stats.audio_seconds

    def step(self) -> bool:
        """Process one chunk; False once the source is exhausted."""
        if self._finished:
            return False
        t0 = time.perf_counter()
        if self.on_advance is not None:
            self.on_advance(self.now)
        chunk = self.source.read()
        if chunk.size == 0:
            return False
        chunk_s = chunk.size / self.stats.sample_rate
        if self.carousel is not None:
            self.carousel.advance_time(chunk_s)
        if self.channel is not None:
            chunk = self.channel.process(chunk)
        frames = self.receiver.push(chunk)
        self.stats.chunks += 1
        self._account(chunk.size, frames, time.perf_counter() - t0)
        if frames and self.on_frames is not None:
            self.on_frames(frames, self.now)
        return True

    def finish(self) -> "list[ReceivedFrame]":
        """Flush the channel tail and the receiver; returns final frames."""
        if self._finished:
            return []
        self._finished = True
        t0 = time.perf_counter()
        frames: "list[ReceivedFrame]" = []
        if self.channel is not None:
            tail = self.channel.finish()
            if tail.size:
                frames += self.receiver.push(tail)
        frames += self.receiver.finish()
        self._account(0, frames, time.perf_counter() - t0)
        if frames and self.on_frames is not None:
            self.on_frames(frames, self.now)
        return frames

    def run(
        self,
        duration_s: float | None = None,
        max_chunks: int | None = None,
        progress: "Callable[[StreamSession], None] | None" = None,
        progress_every: int = 50,
    ) -> StreamStats:
        """Step until the source ends, ``duration_s`` of audio has been
        emitted, or ``max_chunks`` chunks have been processed."""
        while True:
            if duration_s is not None and self.now >= duration_s:
                break
            if max_chunks is not None and self.stats.chunks >= max_chunks:
                break
            if not self.step():
                break
            if progress is not None and self.stats.chunks % progress_every == 0:
                progress(self)
        self.finish()
        if progress is not None:
            progress(self)
        return self.stats

    def _account(self, n_samples: int, frames, dt: float) -> None:
        self.stats.samples += n_samples
        self.stats.frames_decoded += len(frames)
        self.stats.frames_ok += sum(1 for f in frames if f.ok)
        self.stats.elapsed_s += dt
        self.stats.max_rx_buffer_samples = max(
            self.stats.max_rx_buffer_samples, self.receiver.buffered_samples
        )
