"""End-to-end pipelines used by experiments and examples.

Two pipelines matter in the paper:

* the *delivery* pipeline — rendered page -> bundle bytes -> 100-byte
  frames -> OFDM audio -> FM/acoustic channel -> frames -> bundle; and
* the *degradation* pipeline behind Figures 1 and 5 — rendered page ->
  column frames -> synthetic loss -> missing pixels -> (optional)
  nearest-neighbour interpolation, with quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.interpolate import interpolate_missing
from repro.imaging.metrics import psnr_db, ssim
from repro.modem.modem import Modem, ReceivedFrame
from repro.transport.framing import Frame
from repro.transport.partition import ColumnTransport
from repro.util.rng import derive_rng

__all__ = [
    "frames_to_waveform",
    "page_to_waveform",
    "waveform_to_frames",
    "LossSimulation",
    "simulate_column_loss",
]


def frames_to_waveform(
    frames: list[Frame], modem: Modem, frames_per_burst: int = 16
) -> np.ndarray:
    """Modulate transport frames into audio, bursting for efficiency.

    This is the canonical frames -> audio entry point, and the
    whole-broadcast wrapper over the chunked transmit engine
    (:class:`repro.core.stream.WaveformSource`): bursts of up to
    ``frames_per_burst`` frames go through the batched FEC + modulation
    path, separated by one ``guard_samples`` silence block *between*
    consecutive bursts.  No trailing guard is emitted after the final
    burst — the returned length equals :meth:`Modem.broadcast_samples`
    exactly, so airtime and goodput accounting line up.
    """
    if not frames:
        return np.zeros(0)
    from repro.core.stream import WaveformSource
    from repro.transport.framing import FRAME_SIZE

    if modem.frame_payload_size != FRAME_SIZE:
        raise ValueError(
            f"modem carries {modem.frame_payload_size}-byte payloads but "
            f"transport frames are {FRAME_SIZE} bytes"
        )
    bursts = (
        [f.to_bytes() for f in frames[i : i + frames_per_burst]]
        for i in range(0, len(frames), frames_per_burst)
    )
    source = WaveformSource(lambda: next(bursts, None), modem)
    return source.read_all()


#: Historical alias — use :func:`frames_to_waveform`; the pipeline
#: operates on any frame list, not just pages.
page_to_waveform = frames_to_waveform


def waveform_to_frames(
    samples: np.ndarray, modem: Modem, frames_per_burst: int = 16
) -> list[Frame | None]:
    """Demodulate audio back to transport frames (None = lost)."""
    out: list[Frame | None] = []
    for received in modem.receive(samples, frames_per_burst=frames_per_burst):
        if received.payload is None:
            out.append(None)
            continue
        try:
            out.append(Frame.from_bytes(received.payload))
        except (ValueError, KeyError):
            out.append(None)
    return out


@dataclass
class LossSimulation:
    """Outcome of the Figure-1 degradation pipeline for one page."""

    original: np.ndarray
    damaged: np.ndarray  # lost pixels black (Fig. 1 centre)
    interpolated: np.ndarray  # after NN recovery (Fig. 1 right)
    missing: np.ndarray  # boolean mask of lost pixels
    frame_loss_rate: float

    @property
    def pixel_loss_rate(self) -> float:
        return float(np.mean(self.missing))

    def psnr_damaged(self) -> float:
        return psnr_db(self.original, self.damaged)

    def psnr_interpolated(self) -> float:
        return psnr_db(self.original, self.interpolated)

    def ssim_damaged(self) -> float:
        return ssim(self.original, self.damaged)

    def ssim_interpolated(self) -> float:
        return ssim(self.original, self.interpolated)


def simulate_column_loss(
    image: np.ndarray,
    loss_rate: float,
    seed: int = 0,
    mode: str = "raw",
) -> LossSimulation:
    """Drop a uniform fraction of column frames, as the paper's study does.

    "we create screenshots of the top 50 Pakistani webpages with
    synthetic variable losses (5%, 10%, 20%, and 50%)" (Section 4).
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss rate must be in [0, 1)")
    image = np.asarray(image)
    transport = ColumnTransport(mode)
    h, w = image.shape[:2]
    regions = transport.frame_regions((h, w), image if mode == "rle" else None)
    rng = derive_rng(seed, "column-loss", int(loss_rate * 1000))
    lost = rng.random(len(regions)) < loss_rate

    missing = np.zeros((h, w), dtype=bool)
    for (col, row0, n), is_lost in zip(regions, lost):
        if is_lost:
            missing[row0 : row0 + n, col] = True
    damaged = image.copy()
    damaged[missing] = 0
    repaired = interpolate_missing(damaged, missing)
    return LossSimulation(
        original=image,
        damaged=damaged,
        interpolated=repaired,
        missing=missing,
        frame_loss_rate=float(np.mean(lost)),
    )
