"""Full-system simulation: the Figure 3 workflow, end to end.

``SonicSystem`` wires together everything this repository builds: the
synthetic web, the SONIC server, SMS gateway, FM transmitters with
broadcast carousels, and a population of clients with different
capabilities (users A/B/C).  Frame transport uses the calibrated
:class:`repro.radio.lossmodel.FrameLossModel` so hours of simulated
airtime run in seconds; the audio-true path is available through
:mod:`repro.core.pipeline` for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.client.client import ClientProfile, SonicClient
from repro.core.config import SystemConfig
from repro.radio.lossmodel import FrameLossModel
from repro.server.server import ServerConfig, SonicServer
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.clock import SimClock
from repro.sim.geometry import Location
from repro.sms.gateway import SmsGateway
from repro.transport.framing import Frame
from repro.web.sites import SiteGenerator

__all__ = ["SonicSystem"]

_LAHORE = Location(31.5204, 74.3587)


class SonicSystem:
    """A runnable SONIC deployment."""

    def __init__(
        self,
        config: SystemConfig = SystemConfig(),
        transmitters: list[Transmitter] | None = None,
        profiles: list[ClientProfile] | None = None,
    ) -> None:
        self.config = config
        self.clock = SimClock()
        self.gateway = SmsGateway(seed=config.seed)
        self.generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
        self.registry = TransmitterRegistry(
            transmitters
            if transmitters is not None
            else [
                Transmitter(
                    "lahore-93.7",
                    _LAHORE,
                    93.7,
                    coverage_km=30.0,
                    rate_bps=config.broadcast_rate_bps,
                )
            ]
        )
        self.server = SonicServer(
            self.generator,
            self.registry,
            self.gateway,
            ServerConfig(
                sms_number=config.sms_number,
                render_width=config.render_width,
                max_pixel_height=config.max_pixel_height,
                quality=config.quality,
            ),
        )
        self.loss_model = FrameLossModel(seed=config.seed)
        self.clients: list[SonicClient] = []
        for profile in profiles if profiles is not None else self.default_profiles():
            self.add_client(profile)
        self._loss_calls = 0
        if config.auto_hourly_push:
            self.server.hourly_push(0.0)
            self.clock.schedule_every(3600.0, self.server.hourly_push)

    @staticmethod
    def default_profiles() -> list[ClientProfile]:
        """The paper's three user classes (Figure 3)."""
        return [
            ClientProfile(
                "user-a", _LAHORE, connection="air", distance_m=1.0, has_sms=False
            ),
            ClientProfile("user-b", _LAHORE, connection="cable", has_sms=False),
            ClientProfile(
                "user-c",
                _LAHORE,
                connection="cable",
                has_sms=True,
                phone_number="+923001112223",
            ),
        ]

    def add_client(self, profile: ClientProfile) -> SonicClient:
        client = SonicClient(
            profile, gateway=self.gateway, server_number=self.config.sms_number
        )
        self.clients.append(client)
        return client

    def client(self, name: str) -> SonicClient:
        for c in self.clients:
            if c.profile.name == name:
                return c
        raise KeyError(f"no client named {name!r}")

    # -- time advancement ------------------------------------------------------------

    def step(self, seconds: float = 1.0) -> None:
        """Advance the simulation: SMS delivery, then frame broadcast."""
        self.clock.advance(seconds)
        now = self.clock.now
        self.gateway.deliver_due(now)

        n_frames = int(seconds * self.config.frames_per_second)
        if n_frames == 0:
            return
        for tx in self.registry.all():
            emitted: list[Frame] = [f for _, f in tx.carousel.emit_frames(n_frames)]
            if not emitted:
                continue
            for client in self.clients:
                if not tx.covers(client.profile.location):
                    continue
                self._loss_calls += 1
                distance = (
                    client.profile.distance_m
                    if client.profile.connection == "air"
                    else 0.0
                )
                lost = self.loss_model.frame_losses_at_distance(
                    len(emitted), distance, call=self._loss_calls
                )
                delivered: list[Frame | None] = [
                    None if was_lost else frame
                    for frame, was_lost in zip(emitted, lost)
                ]
                client.on_frames(delivered, now)

    def run(self, seconds: float, step_s: float = 1.0) -> None:
        """Run the simulation for ``seconds`` of simulated time."""
        remaining = seconds
        while remaining > 0:
            self.step(min(step_s, remaining))
            remaining -= step_s

    # -- audio-true streaming ----------------------------------------------

    def open_stream(
        self,
        station_id: str = "lahore-93.7",
        frames_per_burst: int = 16,
        chunk_samples: int | None = None,
        channel=None,
    ):
        """Audio-true chunked broadcast of one station's carousel.

        Where :meth:`step` moves frames through the calibrated loss
        model, the returned :class:`~repro.core.stream.StreamSession`
        actually modulates the queue through the station's burst cache,
        runs the audio through ``channel`` (a ``process``/``finish``
        stream from :mod:`repro.radio.streams`, or None for a clean
        wire), demodulates it chunk by chunk, and feeds every covered
        client via :meth:`SonicClient.on_received_frames` — all in
        O(chunk) memory, driven by the audio clock.
        """
        from repro.core.stream import (
            DEFAULT_CHUNK_SAMPLES,
            CarouselFrameSource,
            StreamSession,
            WaveformSource,
        )
        from repro.modem.modem import Modem
        from repro.modem.streaming import StreamingReceiver

        tx = self.registry.get(station_id)
        modem = Modem()
        covered = [
            c for c in self.clients if tx.covers(c.profile.location)
        ]

        def deliver(frames, now: float) -> None:
            for client in covered:
                client.on_received_frames(frames, now)

        source = WaveformSource(
            CarouselFrameSource(tx.carousel, frames_per_burst=frames_per_burst),
            modem,
            chunk_samples=chunk_samples or DEFAULT_CHUNK_SAMPLES,
            cache=tx.cache,
        )
        receiver = StreamingReceiver(modem, frames_per_burst=frames_per_burst)
        return StreamSession(
            source,
            receiver,
            channel=channel,
            carousel=tx.carousel,
            on_frames=deliver,
        )
