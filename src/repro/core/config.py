"""System-level configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Dimensioning of a full SONIC simulation.

    The defaults keep end-to-end runs fast (a small corpus rendered at
    phone width); the paper-scale corpus (25 sites, 1080-wide renders,
    10k pixel height) is what the benchmarks configure explicitly.
    """

    seed: int = 0
    n_sites: int = 4
    render_width: int = 360
    max_pixel_height: int | None = 2_000
    quality: int = 10
    broadcast_rate_bps: float = 10_000.0
    sms_number: str = "+92300766421"
    auto_hourly_push: bool = True

    @property
    def frames_per_second(self) -> float:
        """100-byte frames emitted per second at the broadcast rate."""
        return self.broadcast_rate_bps / 800.0
