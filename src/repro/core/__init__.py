"""SONIC core: the end-to-end system composed from every substrate."""

from repro.core.config import SystemConfig
from repro.core.pipeline import (
    LossSimulation,
    frames_to_waveform,
    page_to_waveform,
    waveform_to_frames,
    simulate_column_loss,
)
from repro.core.stream import (
    CarouselFrameSource,
    StreamSession,
    StreamStats,
    WaveformSource,
)
from repro.core.system import SonicSystem

__all__ = [
    "SystemConfig",
    "SonicSystem",
    "WaveformSource",
    "CarouselFrameSource",
    "StreamSession",
    "StreamStats",
    "LossSimulation",
    "frames_to_waveform",
    "page_to_waveform",
    "waveform_to_frames",
    "simulate_column_loss",
]
