"""RF propagation and RSSI modelling.

The paper's "Variable RSSI" experiment walks a TR508 transmitter/receiver
pair apart until the RSSI falls from −65 to below −90 dB, observing no
frame loss down to −85 dB, 2–15 % in the −85…−90 dB band, and total loss
below −90 dB.  This module provides the distance → RSSI → carrier-to-
noise mapping that reproduces those bands through the actual FM chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "friis_path_loss_db",
    "rssi_at_distance",
    "PropagationModel",
]

SPEED_OF_LIGHT = 299_792_458.0


def friis_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss in dB.

    >>> round(friis_path_loss_db(1000, 93.7e6), 1)
    71.9
    """
    if distance_m <= 0 or frequency_hz <= 0:
        raise ValueError("distance and frequency must be positive")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return float(20.0 * np.log10(4.0 * np.pi * distance_m / wavelength))


def rssi_at_distance(
    tx_power_dbm: float,
    distance_m,
    frequency_hz: float = 93.7e6,
    path_loss_exponent: float = 2.0,
    reference_m: float = 1.0,
):
    """RSSI via a log-distance path-loss model anchored at ``reference_m``.

    ``path_loss_exponent`` of 2 is free space; indoor/cluttered
    environments run 2.7-4, which is how a 1 km-rated transmitter ends up
    at -90 dB well before a kilometre.  ``distance_m`` may be a scalar
    or a numpy array (one RSSI per receiver position).
    """
    distance = np.maximum(np.asarray(distance_m, dtype=np.float64), reference_m)
    ref_loss = friis_path_loss_db(reference_m, frequency_hz)
    extra = 10.0 * path_loss_exponent * np.log10(distance / reference_m)
    out = tx_power_dbm - ref_loss - extra
    return float(out) if np.ndim(distance_m) == 0 else out


@dataclass(frozen=True)
class PropagationModel:
    """A transmitter + environment, mapping distance to RSSI and CNR.

    The defaults model the paper's TR508 low-power station: roughly
    -65 dB RSSI at ~25 m, crossing -90 dB before the 1 km rated range in
    a cluttered environment.
    """

    # TR508-class station: effective radiated power after the stub
    # antenna and indoor penetration losses, calibrated so the paper's
    # RSSI walk (-65 dB near the unit, below -90 dB before the 1 km
    # rated range) happens at plausible distances.
    tx_power_dbm: float = -13.5
    frequency_hz: float = 93.7e6
    path_loss_exponent: float = 2.2
    noise_floor_dbm: float = -95.0  # receiver noise in the FM bandwidth
    shadowing_sigma_db: float = 0.0  # optional log-normal shadowing

    def rssi_dbm(self, distance_m: float, rng: np.random.Generator | None = None) -> float:
        """RSSI at a distance, with optional shadowing."""
        rssi = rssi_at_distance(
            self.tx_power_dbm,
            distance_m,
            self.frequency_hz,
            self.path_loss_exponent,
        )
        if self.shadowing_sigma_db > 0 and rng is not None:
            rssi += float(rng.normal(0.0, self.shadowing_sigma_db))
        return rssi

    def rssi_dbm_batch(
        self,
        distances_m: np.ndarray,
        shadowing_db: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorised RSSI for a whole population of receiver distances.

        ``shadowing_db`` carries externally drawn log-normal shadowing
        offsets (one per receiver) so the caller controls the RNG — the
        population tier keys them on counter streams to stay partition-
        invariant.
        """
        rssi = rssi_at_distance(
            self.tx_power_dbm,
            np.asarray(distances_m, dtype=np.float64),
            self.frequency_hz,
            self.path_loss_exponent,
        )
        if shadowing_db is not None:
            rssi = rssi + shadowing_db
        return rssi

    def cnr_db(self, rssi_dbm: float) -> float:
        """Carrier-to-noise ratio the FM receiver sees at this RSSI."""
        return rssi_dbm - self.noise_floor_dbm

    def distance_for_rssi(self, rssi_dbm: float) -> float:
        """Invert the (deterministic) path-loss model."""
        ref_loss = friis_path_loss_db(1.0, self.frequency_hz)
        extra = self.tx_power_dbm - ref_loss - rssi_dbm
        return float(10.0 ** (extra / (10.0 * self.path_loss_exponent)))
