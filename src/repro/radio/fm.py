"""Frequency modulation and demodulation at complex baseband.

The RF carrier (93.7 MHz in the paper's prototype) is modelled at complex
baseband: the modulator integrates the multiplex signal into a phase and
the demodulator differentiates it back.  This keeps every FM artefact
that matters to SONIC — most importantly the *threshold effect*: as the
carrier-to-noise ratio drops below ~10 dB the discriminator output
degrades abruptly into impulsive clicks, which is why the paper sees no
frames at all below −90 dB RSSI rather than a graceful fade.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import resample

__all__ = ["FmModulator", "FmDemodulator"]


class FmModulator:
    """FM modulator: real multiplex signal -> complex baseband carrier."""

    def __init__(
        self,
        mpx_rate: float = 192_000.0,
        rf_rate: float = 384_000.0,
        max_deviation_hz: float = 75_000.0,
    ) -> None:
        if rf_rate < mpx_rate:
            raise ValueError("RF rate must be >= multiplex rate")
        ratio = rf_rate / mpx_rate
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError("rf_rate must be an integer multiple of mpx_rate")
        self.mpx_rate = mpx_rate
        self.rf_rate = rf_rate
        self.max_deviation_hz = max_deviation_hz
        self._up = int(round(ratio))

    def modulate(self, mpx: np.ndarray) -> np.ndarray:
        """Return the unit-amplitude complex envelope of the FM signal.

        ``mpx`` should be normalised to [-1, 1]; full scale maps to the
        maximum deviation (±75 kHz broadcast standard).
        """
        mpx = np.asarray(mpx, dtype=np.float64)
        rf_in = resample(mpx, self._up, 1) if self._up > 1 else mpx
        phase = (
            2.0
            * np.pi
            * self.max_deviation_hz
            * np.cumsum(rf_in)
            / self.rf_rate
        )
        return np.exp(1j * phase)


class FmDemodulator:
    """FM discriminator: complex baseband carrier -> multiplex signal."""

    def __init__(
        self,
        mpx_rate: float = 192_000.0,
        rf_rate: float = 384_000.0,
        max_deviation_hz: float = 75_000.0,
    ) -> None:
        ratio = rf_rate / mpx_rate
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError("rf_rate must be an integer multiple of mpx_rate")
        self.mpx_rate = mpx_rate
        self.rf_rate = rf_rate
        self.max_deviation_hz = max_deviation_hz
        self._down = int(round(ratio))

    def demodulate(self, iq: np.ndarray) -> np.ndarray:
        """Recover the multiplex signal from the complex envelope."""
        iq = np.asarray(iq, dtype=np.complex128)
        if iq.size < 2:
            return np.zeros(0)
        # Phase-difference discriminator; scale back to [-1, 1] full scale.
        delta = np.angle(iq[1:] * np.conj(iq[:-1]))
        mpx_rf = delta * self.rf_rate / (2.0 * np.pi * self.max_deviation_hz)
        mpx_rf = np.concatenate([[mpx_rf[0]], mpx_rf])
        if self._down > 1:
            return resample(mpx_rf, 1, self._down)
        return mpx_rf
