"""Fast frame-loss model fitted to the full DSP chain.

Running every broadcast through the OFDM modem + FM chain is the ground
truth, but system-level simulations (hours of air time, many clients)
need a cheaper equivalent.  This model reduces the chain to:

1. the audio-SNR a receiver sees (from RSSI via the FM threshold curve,
   or from air distance via the acoustic model), and
2. a logistic frame-error curve fitted to measured decode outcomes of
   the ``sonic-ofdm`` profile under AWGN (see tests/test_lossmodel.py
   for the fit's validation against the real chain).

Both fits are calibration constants of this reproduction, documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radio.channels import AcousticChannel, AcousticConfig
from repro.util.rng import derive_rng

__all__ = ["FrameLossModel"]

#: Logistic frame-error fit for the sonic-ofdm profile (AWGN).
_FER_MIDPOINT_DB = 3.3
_FER_SCALE_DB = 0.45

#: FM threshold curve: audio SNR as a function of RSSI (dB).
_FM_LINEAR_OFFSET_DB = 100.0
_FM_THRESHOLD_RSSI = -85.0
_FM_COLLAPSE_SLOPE = 3.0


@dataclass
class FrameLossModel:
    """Per-frame loss probabilities consistent with the DSP chain."""

    acoustic: AcousticConfig = AcousticConfig()
    seed: int = 0

    def frame_error_probability(self, snr_db: float) -> float:
        """FER of one frame at a given audio SNR."""
        z = (snr_db - _FER_MIDPOINT_DB) / _FER_SCALE_DB
        # Clamp to avoid overflow in exp for extreme SNRs.
        z = float(np.clip(z, -40.0, 40.0))
        return 1.0 / (1.0 + np.exp(z))

    def audio_snr_from_rssi(self, rssi_db: float) -> float:
        """FM receiver output SNR vs RSSI, with the threshold collapse.

        Above threshold the discriminator is linear (audio SNR tracks
        RSSI); below it, impulsive clicks collapse the output roughly
        three times faster — which is why the paper sees nothing at all
        below −90 dB.
        """
        linear = rssi_db + _FM_LINEAR_OFFSET_DB
        if rssi_db >= _FM_THRESHOLD_RSSI:
            return linear
        margin = _FM_THRESHOLD_RSSI - rssi_db
        return (_FM_THRESHOLD_RSSI + _FM_LINEAR_OFFSET_DB) - _FM_COLLAPSE_SLOPE * margin

    # -- transmission-level draws ------------------------------------------------

    def frame_losses_at_distance(
        self, n_frames: int, distance_m: float, call: int = 0
    ) -> np.ndarray:
        """Boolean loss vector for ``n_frames`` sent over an air gap.

        Mirrors :class:`repro.radio.channels.AcousticChannel`: one
        misalignment draw per transmission, flutter per ~0.25 s knot
        (about one frame), independent Bernoulli per frame.
        """
        rng = derive_rng(self.seed, "lossmodel-air", call)
        channel = AcousticChannel(self.acoustic)
        if distance_m <= 0:
            snr = self.acoustic.cable_snr_db
            p = self.frame_error_probability(snr)
            return rng.random(n_frames) < p
        base = channel.effective_snr_db(distance_m, rng)
        sigma = (
            self.acoustic.flutter_sigma_base_db
            + self.acoustic.flutter_sigma_db_per_m * distance_m
        )
        flutter = rng.normal(0.0, sigma, n_frames)
        probs = np.array(
            [self.frame_error_probability(base + f) for f in flutter]
        )
        return rng.random(n_frames) < probs

    def frame_losses_at_rssi(
        self, n_frames: int, rssi_db: float, call: int = 0
    ) -> np.ndarray:
        """Boolean loss vector for frames received at a given RSSI."""
        rng = derive_rng(self.seed, "lossmodel-rssi", call)
        snr = self.audio_snr_from_rssi(rssi_db)
        # Small per-frame wobble: multipath and interleaving residue.
        wobble = rng.normal(0.0, 0.8, n_frames)
        probs = np.array(
            [self.frame_error_probability(snr + w) for w in wobble]
        )
        return rng.random(n_frames) < probs
