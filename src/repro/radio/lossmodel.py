"""Fast frame-loss model fitted to the full DSP chain.

Running every broadcast through the OFDM modem + FM chain is the ground
truth, but system-level simulations (hours of air time, many clients)
need a cheaper equivalent.  This model reduces the chain to:

1. the audio-SNR a receiver sees (from RSSI via the FM threshold curve,
   or from air distance via the acoustic model), and
2. a logistic frame-error curve fitted to measured decode outcomes of
   the ``sonic-ofdm`` profile under AWGN (see tests/test_lossmodel.py
   for the fit's validation against the real chain).

The default curve constants are calibration constants of this
reproduction, documented in DESIGN.md.  :meth:`FrameLossModel.
fit_from_runs` re-derives them from *measured* fleet outcomes (the
two-tier population simulator's Tier 1), and :class:`CalibrationStore`
persists fitted curves keyed by a profile+channel digest so repeat runs
skip recalibration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.radio.channels import AcousticChannel, AcousticConfig
from repro.util.rng import derive_rng

__all__ = [
    "FrameLossModel",
    "fit_logistic_fer",
    "CalibrationStore",
    "calibration_digest",
]

#: Logistic frame-error fit for the sonic-ofdm profile (AWGN).
_FER_MIDPOINT_DB = 3.3
_FER_SCALE_DB = 0.45

#: FM threshold curve: audio SNR as a function of RSSI (dB).
_FM_LINEAR_OFFSET_DB = 100.0
_FM_THRESHOLD_RSSI = -85.0
_FM_COLLAPSE_SLOPE = 3.0


def fit_logistic_fer(
    snr_db: Sequence[float] | np.ndarray,
    n_frames: Sequence[int] | np.ndarray,
    n_lost: Sequence[int] | np.ndarray,
) -> tuple[float, float]:
    """Maximum-likelihood logistic FER fit to measured decode outcomes.

    Each sample is one receiver (or sweep point): ``n_lost[i]`` of
    ``n_frames[i]`` frames failed at audio SNR ``snr_db[i]``.  Returns
    ``(midpoint_db, scale_db)`` for ``p = 1 / (1 + exp((snr - mid) /
    scale))`` — monotone decreasing in SNR by construction (the scale is
    constrained positive).

    The likelihood surface of a two-parameter logistic is smooth, so a
    deterministic coarse-to-fine grid search is both dependency-free and
    reproducible bit-for-bit across platforms.
    """
    snr = np.asarray(snr_db, dtype=np.float64)
    total = np.asarray(n_frames, dtype=np.float64)
    lost = np.asarray(n_lost, dtype=np.float64)
    if snr.size == 0:
        raise ValueError("cannot fit a loss curve to zero samples")
    if np.any(lost > total) or np.any(total <= 0):
        raise ValueError("need 0 <= n_lost <= n_frames with n_frames > 0")

    lo = float(snr.min()) - 6.0
    hi = float(snr.max()) + 6.0

    def nll(mid: np.ndarray, scale: np.ndarray) -> np.ndarray:
        # mid/scale broadcast against the sample axis appended last.
        z = (snr - mid[..., None]) / scale[..., None]
        z = np.clip(z, -40.0, 40.0)
        p = 1.0 / (1.0 + np.exp(z))
        p = np.clip(p, 1e-12, 1.0 - 1e-12)
        return -np.sum(lost * np.log(p) + (total - lost) * np.log1p(-p), axis=-1)

    mid_grid = np.linspace(lo, hi, 61)
    scale_grid = np.geomspace(0.05, 10.0, 41)
    for _ in range(4):
        m, s = np.meshgrid(mid_grid, scale_grid, indexing="ij")
        surface = nll(m.ravel(), s.ravel()).reshape(m.shape)
        i, j = np.unravel_index(int(np.argmin(surface)), surface.shape)
        best_mid, best_scale = float(mid_grid[i]), float(scale_grid[j])
        mid_span = (mid_grid[-1] - mid_grid[0]) / 10.0
        mid_grid = np.linspace(best_mid - mid_span, best_mid + mid_span, 31)
        scale_lo = max(0.01, best_scale / 2.0)
        scale_grid = np.geomspace(scale_lo, best_scale * 2.0, 31)
    return best_mid, best_scale


@dataclass(frozen=True)
class FrameLossModel:
    """Per-frame loss probabilities consistent with the DSP chain.

    ``fer_midpoint_db``/``fer_scale_db`` default to the repository's
    calibration constants; :meth:`fit_from_runs` returns an instance
    carrying constants fitted to actual full-modem outcomes instead.
    """

    acoustic: AcousticConfig = AcousticConfig()
    seed: int = 0
    fer_midpoint_db: float = _FER_MIDPOINT_DB
    fer_scale_db: float = _FER_SCALE_DB

    @classmethod
    def fit_from_runs(
        cls,
        samples: Iterable[tuple[float, int, int]],
        *,
        acoustic: AcousticConfig | None = None,
        seed: int = 0,
    ) -> "FrameLossModel":
        """Calibrate the FER curve from measured ``(snr_db, n_frames,
        n_lost)`` decode outcomes (e.g. a Tier-1 full-modem fleet)."""
        rows = list(samples)
        mid, scale = fit_logistic_fer(
            [r[0] for r in rows], [r[1] for r in rows], [r[2] for r in rows]
        )
        return cls(
            acoustic=acoustic if acoustic is not None else AcousticConfig(),
            seed=seed,
            fer_midpoint_db=mid,
            fer_scale_db=scale,
        )

    def frame_error_probability(self, snr_db):
        """FER at a given audio SNR; accepts scalars or numpy arrays."""
        snr = np.asarray(snr_db, dtype=np.float64)
        z = (snr - self.fer_midpoint_db) / self.fer_scale_db
        # Clamp to avoid overflow in exp for extreme SNRs.
        z = np.clip(z, -40.0, 40.0)
        p = 1.0 / (1.0 + np.exp(z))
        return float(p) if np.ndim(snr_db) == 0 else p

    def audio_snr_from_rssi(self, rssi_db):
        """FM receiver output SNR vs RSSI, with the threshold collapse.

        Above threshold the discriminator is linear (audio SNR tracks
        RSSI); below it, impulsive clicks collapse the output roughly
        three times faster — which is why the paper sees nothing at all
        below −90 dB.  Accepts scalars or numpy arrays.
        """
        rssi = np.asarray(rssi_db, dtype=np.float64)
        linear = rssi + _FM_LINEAR_OFFSET_DB
        margin = _FM_THRESHOLD_RSSI - rssi
        collapsed = (
            _FM_THRESHOLD_RSSI + _FM_LINEAR_OFFSET_DB
        ) - _FM_COLLAPSE_SLOPE * margin
        out = np.where(rssi >= _FM_THRESHOLD_RSSI, linear, collapsed)
        return float(out) if np.ndim(rssi_db) == 0 else out

    # -- transmission-level draws ------------------------------------------------

    def frame_losses_at_distance(
        self, n_frames: int, distance_m: float, call: int = 0
    ) -> np.ndarray:
        """Boolean loss vector for ``n_frames`` sent over an air gap.

        Mirrors :class:`repro.radio.channels.AcousticChannel`: one
        misalignment draw per transmission, flutter per ~0.25 s knot
        (about one frame), independent Bernoulli per frame.
        """
        rng = derive_rng(self.seed, "lossmodel-air", call)
        channel = AcousticChannel(self.acoustic)
        if distance_m <= 0:
            snr = self.acoustic.cable_snr_db
            p = self.frame_error_probability(snr)
            return rng.random(n_frames) < p
        base = channel.effective_snr_db(distance_m, rng)
        sigma = (
            self.acoustic.flutter_sigma_base_db
            + self.acoustic.flutter_sigma_db_per_m * distance_m
        )
        flutter = rng.normal(0.0, sigma, n_frames)
        probs = self.frame_error_probability(base + flutter)
        return rng.random(n_frames) < probs

    def frame_losses_at_rssi(
        self, n_frames: int, rssi_db: float, call: int = 0
    ) -> np.ndarray:
        """Boolean loss vector for frames received at a given RSSI."""
        rng = derive_rng(self.seed, "lossmodel-rssi", call)
        snr = self.audio_snr_from_rssi(rssi_db)
        # Small per-frame wobble: multipath and interleaving residue.
        wobble = rng.normal(0.0, 0.8, n_frames)
        probs = self.frame_error_probability(snr + wobble)
        return rng.random(n_frames) < probs


def calibration_digest(profile: str, **channel: object) -> str:
    """Stable digest of a (profile, channel conditions) pair.

    The two-tier fleet keys persisted calibrations on this, so any
    change to the profile, impairment, SNR sweep, burst size, seed, or
    probe waveform forces a refit while identical reruns hit the store.
    """
    payload = json.dumps(
        {"profile": profile, **{k: repr(v) for k, v in sorted(channel.items())}},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class CalibrationStore:
    """Fitted-curve persistence keyed by :func:`calibration_digest`.

    With a directory, curves survive across processes and runs as tiny
    JSON files; without one, the store is a per-process memo.  Corrupt
    or missing entries simply force a refit.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memo: dict[str, tuple[float, float]] = {}

    def _path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"losscurve-{digest}.json"

    def load(self, digest: str) -> FrameLossModel | None:
        """Return the persisted model for ``digest``, or ``None``."""
        params = self._memo.get(digest)
        if params is None and self.directory is not None:
            try:
                raw = json.loads(self._path(digest).read_text())
                params = (float(raw["fer_midpoint_db"]), float(raw["fer_scale_db"]))
            except (OSError, ValueError, KeyError):
                return None
            self._memo[digest] = params
        if params is None:
            return None
        return FrameLossModel(fer_midpoint_db=params[0], fer_scale_db=params[1])

    def save(self, digest: str, model: FrameLossModel) -> None:
        self._memo[digest] = (model.fer_midpoint_db, model.fer_scale_db)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {
                "fer_midpoint_db": model.fer_midpoint_db,
                "fer_scale_db": model.fer_scale_db,
            }
            self._path(digest).write_text(json.dumps(payload, indent=2) + "\n")
