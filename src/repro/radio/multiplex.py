"""The FM baseband multiplex (Figure 2 of the paper).

A broadcast FM station stacks several services into one baseband signal:

* 30 Hz – 15 kHz: the mono program, (L+R)/2 — where SONIC puts its data;
* 19 kHz: the stereo pilot tone;
* 23 – 53 kHz: the stereo difference (L−R), DSB-SC around 38 kHz;
* 57 kHz: the RDS subcarrier (see :mod:`repro.radio.rds`).

SONIC transmits in the mono channel with a 9.2 kHz-centred OFDM carrier,
so the multiplexer/demultiplexer pair here is what places the modem's
audio onto the FM baseband and recovers it at the receiver.  The unused
bands (stereo, RDS, DARC) are the "other bands" the paper proposes for
future rate increases — composing data into them is supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import fir_bandpass, fir_lowpass, filter_signal, resample

__all__ = ["MultiplexConfig", "FmMultiplexer"]


@dataclass(frozen=True)
class MultiplexConfig:
    """Standard broadcast FM multiplex dimensioning."""

    audio_rate: float = 48_000.0
    mpx_rate: float = 192_000.0
    mono_cutoff_hz: float = 15_000.0
    pilot_hz: float = 19_000.0
    stereo_center_hz: float = 38_000.0
    rds_center_hz: float = 57_000.0
    darc_center_hz: float = 76_000.0
    pilot_level: float = 0.09
    mono_level: float = 0.45
    stereo_level: float = 0.45
    rds_level: float = 0.05
    darc_level: float = 0.05

    def __post_init__(self) -> None:
        ratio = self.mpx_rate / self.audio_rate
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError("mpx_rate must be an integer multiple of audio_rate")


class FmMultiplexer:
    """Compose and decompose the FM baseband multiplex."""

    def __init__(self, config: MultiplexConfig = MultiplexConfig()) -> None:
        self.config = config
        self._up = int(round(config.mpx_rate / config.audio_rate))
        self._mono_lp_audio = fir_lowpass(
            config.mono_cutoff_hz, config.audio_rate, 127
        )
        self._mono_lp_mpx = fir_lowpass(
            config.mono_cutoff_hz + 1_000.0, config.mpx_rate, 511
        )
        self._pilot_bp = fir_bandpass(
            config.pilot_hz - 400.0, config.pilot_hz + 400.0, config.mpx_rate, 511
        )
        self._stereo_bp = fir_bandpass(
            config.stereo_center_hz - config.mono_cutoff_hz,
            config.stereo_center_hz + config.mono_cutoff_hz,
            config.mpx_rate,
            511,
        )
        self._rds_bp = fir_bandpass(
            config.rds_center_hz - 2_400.0,
            config.rds_center_hz + 2_400.0,
            config.mpx_rate,
            511,
        )
        self._darc_bp = fir_bandpass(
            config.darc_center_hz - 14_000.0,
            config.darc_center_hz + 14_000.0,
            config.mpx_rate,
            511,
        )

    # -- compose ----------------------------------------------------------

    def compose(
        self,
        mono: np.ndarray,
        stereo_diff: np.ndarray | None = None,
        rds: np.ndarray | None = None,
        darc: np.ndarray | None = None,
    ) -> np.ndarray:
        """Build the multiplex from per-service signals.

        ``mono`` and ``stereo_diff`` are at the audio rate; ``rds`` is
        already a 57 kHz-centred signal at the multiplex rate (as produced
        by :class:`repro.radio.rds.RdsEncoder`).
        """
        cfg = self.config
        mono = filter_signal(self._mono_lp_audio, np.asarray(mono, dtype=np.float64))
        mpx = cfg.mono_level * resample(mono, self._up, 1)
        for sidecar in (rds, darc):
            if sidecar is not None and sidecar.size > mpx.size:
                # Let a subcarrier tail outlast the audio program.
                mpx = np.concatenate([mpx, np.zeros(sidecar.size - mpx.size)])
        n = mpx.size
        t = np.arange(n) / cfg.mpx_rate
        if stereo_diff is not None or rds is not None:
            mpx = mpx + cfg.pilot_level * np.sin(2 * np.pi * cfg.pilot_hz * t)
        if stereo_diff is not None:
            diff = filter_signal(
                self._mono_lp_audio, np.asarray(stereo_diff, dtype=np.float64)
            )
            diff_mpx = resample(diff, self._up, 1)[:n]
            if diff_mpx.size < n:
                diff_mpx = np.concatenate([diff_mpx, np.zeros(n - diff_mpx.size)])
            # cos at 38 kHz: exactly what squaring the 19 kHz sine pilot
            # regenerates at the receiver (phase-locked by construction).
            carrier = np.cos(2 * np.pi * cfg.stereo_center_hz * t)
            mpx = mpx + cfg.stereo_level * diff_mpx * carrier
        if rds is not None:
            rds = np.asarray(rds, dtype=np.float64)
            usable = min(n, rds.size)
            mpx[:usable] += cfg.rds_level * rds[:usable]
        if darc is not None:
            darc = np.asarray(darc, dtype=np.float64)
            usable = min(n, darc.size)
            mpx[:usable] += cfg.darc_level * darc[:usable]
        return mpx

    # -- decompose ----------------------------------------------------------

    def extract_mono(self, mpx: np.ndarray) -> np.ndarray:
        """Recover the mono program at the audio rate."""
        cfg = self.config
        mono_mpx = filter_signal(self._mono_lp_mpx, np.asarray(mpx, dtype=np.float64))
        audio = resample(mono_mpx, 1, self._up)
        return audio / cfg.mono_level

    def extract_pilot(self, mpx: np.ndarray) -> np.ndarray:
        """The 19 kHz pilot tone (multiplex rate)."""
        return filter_signal(self._pilot_bp, np.asarray(mpx, dtype=np.float64))

    def extract_stereo_diff(self, mpx: np.ndarray) -> np.ndarray:
        """Recover L-R at the audio rate using a pilot-derived 38 kHz carrier."""
        cfg = self.config
        mpx = np.asarray(mpx, dtype=np.float64)
        band = filter_signal(self._stereo_bp, mpx)
        pilot = self.extract_pilot(mpx)
        # Square the pilot to regenerate a phase-locked 38 kHz reference:
        # sin(wt)^2 = (1 - cos(2wt)) / 2, so 1 - 2*sin^2 = cos(2wt).
        pilot_norm = pilot / max(1e-9, np.sqrt(2.0 * np.mean(pilot**2)))
        carrier = 1.0 - 2.0 * pilot_norm**2
        carrier_bp = filter_signal(
            fir_bandpass(
                cfg.stereo_center_hz - 1_000,
                cfg.stereo_center_hz + 1_000,
                cfg.mpx_rate,
                511,
            ),
            carrier,
        )
        scale = np.sqrt(2.0 * np.mean(carrier_bp**2))
        carrier_bp = carrier_bp / max(1e-9, scale)
        demod = band * carrier_bp * 2.0
        diff = resample(filter_signal(self._mono_lp_mpx, demod), 1, self._up)
        return diff / cfg.stereo_level

    def extract_rds_band(self, mpx: np.ndarray) -> np.ndarray:
        """The 57 kHz RDS band (multiplex rate), level-normalised."""
        band = filter_signal(self._rds_bp, np.asarray(mpx, dtype=np.float64))
        return band / self.config.rds_level

    def extract_darc_band(self, mpx: np.ndarray) -> np.ndarray:
        """The 76 kHz DARC band (multiplex rate), level-normalised."""
        band = filter_signal(self._darc_bp, np.asarray(mpx, dtype=np.float64))
        return band / self.config.darc_level

    def has_pilot(self, mpx: np.ndarray) -> bool:
        """Detect whether a stereo pilot is present."""
        pilot = self.extract_pilot(mpx)
        total = float(np.mean(np.asarray(mpx, dtype=np.float64) ** 2))
        return float(np.mean(pilot**2)) > 1e-4 * max(total, 1e-12)
