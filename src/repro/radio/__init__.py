"""FM radio substrate.

Models the full broadcast path the SONIC prototype uses: the audio
program (the modem waveform) rides the mono channel of the FM baseband
multiplex (Figure 2 of the paper), is frequency-modulated onto an RF
carrier, crosses a propagation channel whose received signal strength
(RSSI) follows distance, and is FM-demodulated and de-multiplexed back to
audio at the receiver.  The final hop — FM radio speaker to phone
microphone — is a separate acoustic channel.
"""

from repro.radio.fm import FmModulator, FmDemodulator
from repro.radio.multiplex import FmMultiplexer, MultiplexConfig
from repro.radio.propagation import (
    PropagationModel,
    friis_path_loss_db,
    rssi_at_distance,
)
from repro.radio.channels import (
    AcousticChannel,
    AcousticConfig,
    FmRadioLink,
    FmLinkConfig,
)
from repro.radio.rds import RdsEncoder, RdsDecoder, RdsGroup
from repro.radio.darc import DarcChannel, DarcConfig
from repro.radio.lossmodel import FrameLossModel

__all__ = [
    "FmModulator",
    "FmDemodulator",
    "FmMultiplexer",
    "MultiplexConfig",
    "PropagationModel",
    "friis_path_loss_db",
    "rssi_at_distance",
    "AcousticChannel",
    "AcousticConfig",
    "FmRadioLink",
    "FmLinkConfig",
    "RdsEncoder",
    "RdsDecoder",
    "RdsGroup",
    "DarcChannel",
    "DarcConfig",
    "FrameLossModel",
]
