"""DARC: the 76 kHz high-rate FM subcarrier.

Figure 2 of the paper shows DARC (DAta Radio Channel) above RDS in the
FM baseband; the paper lists it among the bands that could raise SONIC's
rate.  Real DARC uses LMSK at 16 kbps — an order of magnitude above
RDS.  This implementation keeps the band plan and bit rate but uses
differentially-encoded BPSK (the same physical layer our RDS decoder
proved out), which is a documented simplification (DESIGN.md).

Framing: [0xB5B5 sync] [u16 length] [payload] [crc16], repeated as
needed.  At 16 kbps the channel moves a 300 KB SONIC page in ~2.5
minutes without touching the audio program at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import fir_lowpass, filter_signal
from repro.fec.crc import crc16_ccitt
from repro.util.bits import bits_to_bytes, bytes_to_bits

__all__ = ["DarcConfig", "DarcChannel"]

_SYNC = 0xB5B5


@dataclass(frozen=True)
class DarcConfig:
    """DARC band plan (ETSI EN 300 751 band, simplified modulation)."""

    mpx_rate: float = 192_000.0
    subcarrier_hz: float = 76_000.0
    bit_rate: float = 16_000.0

    def __post_init__(self) -> None:
        if self.subcarrier_hz + self.bit_rate >= self.mpx_rate / 2:
            raise ValueError("DARC band exceeds the multiplex Nyquist limit")


class DarcChannel:
    """Byte blobs <-> 76 kHz-centred waveforms at the multiplex rate."""

    MAX_PAYLOAD = 65_535

    def __init__(self, config: DarcConfig = DarcConfig()) -> None:
        self.config = config
        self._lp = fir_lowpass(config.bit_rate * 0.75, config.mpx_rate, 255)

    # -- encode ------------------------------------------------------------

    def encode(self, payload: bytes) -> np.ndarray:
        """Frame and modulate ``payload`` onto the 76 kHz subcarrier."""
        if not 0 < len(payload) <= self.MAX_PAYLOAD:
            raise ValueError(f"payload must be 1..{self.MAX_PAYLOAD} bytes")
        message = (
            b"\xaa\xaa"  # bit-sync pad
            + _SYNC.to_bytes(2, "big")
            + len(payload).to_bytes(2, "big")
            + payload
            + crc16_ccitt(payload).to_bytes(2, "big")
        )
        bits = bytes_to_bits(message)
        # Differential encoding (polarity-insensitive at the receiver).
        diff = np.zeros(bits.size, dtype=np.int64)
        prev = 0
        for i, b in enumerate(bits):
            prev ^= int(b)
            diff[i] = prev
        cfg = self.config
        spb = cfg.mpx_rate / cfg.bit_rate
        n = int(np.ceil(bits.size * spb)) + 1
        t = np.arange(n) / cfg.mpx_rate
        idx = np.minimum((t * cfg.bit_rate).astype(np.int64), diff.size - 1)
        levels = 2.0 * diff[idx] - 1.0
        return levels * np.cos(2.0 * np.pi * cfg.subcarrier_hz * t)

    # -- decode ------------------------------------------------------------

    def decode(self, band: np.ndarray) -> list[bytes]:
        """Recover every framed payload from the 76 kHz band signal."""
        cfg = self.config
        band = np.asarray(band, dtype=np.float64)
        if band.size < 64:
            return []
        t = np.arange(band.size) / cfg.mpx_rate
        z = band * np.exp(-2j * np.pi * cfg.subcarrier_hz * t)
        z = filter_signal(self._lp, z.real) + 1j * filter_signal(self._lp, z.imag)
        phase = 0.5 * np.angle(np.mean(z**2))
        x = (z * np.exp(-1j * phase)).real

        spb = cfg.mpx_rate / cfg.bit_rate
        n_bits = int(band.size / spb)
        if n_bits < 64:
            return []
        # Timing: choose the bit-clock offset with the widest eye.
        best = None
        for offset in np.linspace(0, spb, 8, endpoint=False):
            centers = (offset + (np.arange(n_bits) + 0.5) * spb).astype(np.int64)
            centers = centers[centers < x.size]
            vals = x[centers]
            metric = float(np.mean(np.abs(vals)))
            if best is None or metric > best[0]:
                best = (metric, vals)
        hard = (best[1] > 0).astype(np.uint8)
        bits = np.concatenate([[hard[0]], hard[1:] ^ hard[:-1]])
        return self._frames_from_bits(bits)

    @staticmethod
    def _frames_from_bits(bits: np.ndarray) -> list[bytes]:
        sync_bits = bytes_to_bits(_SYNC.to_bytes(2, "big"))
        out: list[bytes] = []
        i = 0
        limit = bits.size - 16
        while i <= limit:
            if not np.array_equal(bits[i : i + 16], sync_bits):
                i += 1
                continue
            body = bits[i + 16 :]
            usable = body[: (body.size // 8) * 8]
            if usable.size < 40:
                break
            stream = bits_to_bytes(usable)
            length = int.from_bytes(stream[0:2], "big")
            if length == 0 or 2 + length + 2 > len(stream):
                i += 1
                continue
            payload = stream[2 : 2 + length]
            stored = int.from_bytes(stream[2 + length : 2 + length + 2], "big")
            if crc16_ccitt(payload) == stored:
                out.append(payload)
                i += 16 + (2 + length + 2) * 8
            else:
                i += 1
        return out

    def airtime_seconds(self, payload_len: int) -> float:
        return (2 + 2 + 2 + payload_len + 2) * 8 / self.config.bit_rate
