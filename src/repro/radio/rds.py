"""Radio Data System (RDS) on the 57 kHz subcarrier.

RDS carries 1187.5 bps of digital data inside a standard FM broadcast —
it is the channel RevCast [44] and the driver-warning systems [23, 24]
discussed in Section 2 build on, and one of the bands the paper proposes
for extending SONIC's rate.  This module implements the physical and
block layers:

* 26-bit blocks: 16 information bits + 10 checkword bits (CRC with
  generator x^10+x^8+x^7+x^5+x^4+x^3+1, offset words A/B/C/C'/D);
* groups of 4 blocks (104 bits);
* differential encoding and biphase (Manchester) symbols, DSB-SC
  modulated on a 57 kHz carrier at the multiplex rate;
* a block-synchronising decoder that locates groups by syndrome.

A minimal group-2A "RadioText" application codec is included so whole
text messages can be round-tripped over the simulated broadcast chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import fir_lowpass, filter_signal

__all__ = ["RdsGroup", "RdsEncoder", "RdsDecoder"]

BIT_RATE = 1_187.5  # 57 kHz / 48
_POLY = 0b10110111001  # x^10 + x^8 + x^7 + x^5 + x^4 + x^3 + 1
_OFFSETS = {"A": 0x0FC, "B": 0x198, "C": 0x168, "Cp": 0x350, "D": 0x1B4}
_BLOCK_SEQUENCE = ("A", "B", "C", "D")


def _crc10(info: int) -> int:
    """Remainder of info * x^10 modulo the RDS generator polynomial."""
    reg = info << 10
    for bit in range(25, 9, -1):
        if reg & (1 << bit):
            reg ^= _POLY << (bit - 10)
    return reg & 0x3FF


def _syndrome(block: int) -> int:
    """Remainder of a received 26-bit block modulo the generator."""
    reg = block
    for bit in range(25, 9, -1):
        if reg & (1 << bit):
            reg ^= _POLY << (bit - 10)
    return reg & 0x3FF


@dataclass(frozen=True)
class RdsGroup:
    """One RDS group: four 16-bit information words."""

    blocks: tuple[int, int, int, int]

    def __post_init__(self) -> None:
        if len(self.blocks) != 4 or any(not 0 <= b < 65_536 for b in self.blocks):
            raise ValueError("a group is four 16-bit words")

    @classmethod
    def radiotext(cls, pi_code: int, segment: int, text4: str) -> "RdsGroup":
        """Build a group-2A RadioText segment carrying 4 characters."""
        if not 0 <= segment < 16:
            raise ValueError("segment must be in [0, 16)")
        padded = (text4 + "    ")[:4]
        data = padded.encode("latin-1", errors="replace")
        block_b = (0x2 << 12) | (0 << 11) | segment  # group 2A, segment addr
        return cls(
            (
                pi_code & 0xFFFF,
                block_b,
                (data[0] << 8) | data[1],
                (data[2] << 8) | data[3],
            )
        )

    @property
    def group_type(self) -> int:
        return (self.blocks[1] >> 12) & 0xF

    def radiotext_payload(self) -> tuple[int, str] | None:
        """Decode a 2A group back to (segment, 4 chars), else None."""
        if self.group_type != 0x2:
            return None
        segment = self.blocks[1] & 0xF
        chars = bytes(
            [
                (self.blocks[2] >> 8) & 0xFF,
                self.blocks[2] & 0xFF,
                (self.blocks[3] >> 8) & 0xFF,
                self.blocks[3] & 0xFF,
            ]
        )
        return segment, chars.decode("latin-1")


class RdsEncoder:
    """Groups -> 57 kHz-centred waveform at the multiplex rate."""

    def __init__(self, mpx_rate: float = 192_000.0, subcarrier_hz: float = 57_000.0):
        self.mpx_rate = mpx_rate
        self.subcarrier_hz = subcarrier_hz

    def _group_bits(self, group: RdsGroup) -> list[int]:
        bits: list[int] = []
        for word, name in zip(group.blocks, _BLOCK_SEQUENCE):
            check = _crc10(word) ^ _OFFSETS[name]
            block = (word << 10) | check
            bits.extend((block >> (25 - i)) & 1 for i in range(26))
        return bits

    def encode(self, groups: list[RdsGroup]) -> np.ndarray:
        """Differentially encode, biphase-shape and modulate the groups."""
        bits: list[int] = []
        for group in groups:
            bits.extend(self._group_bits(group))
        # Differential encoding: d[i] = b[i] xor d[i-1].
        diff = []
        prev = 0
        for b in bits:
            prev = b ^ prev
            diff.append(prev)

        duration = len(diff) / BIT_RATE
        n = int(np.ceil(duration * self.mpx_rate))
        t = np.arange(n) / self.mpx_rate
        bit_phase = t * BIT_RATE  # fractional bit index per sample
        bit_idx = np.minimum(bit_phase.astype(np.int64), len(diff) - 1)
        frac = bit_phase - bit_idx
        levels = 2.0 * np.array(diff, dtype=np.float64)[bit_idx] - 1.0
        # Biphase: first half-bit carries the level, second its negation,
        # each shaped by a sine lobe to bound occupied bandwidth.
        shape = np.sin(2.0 * np.pi * frac) * np.where(frac < 0.5, 1.0, 1.0)
        baseband = levels * shape
        carrier = np.cos(2.0 * np.pi * self.subcarrier_hz * t)
        return baseband * carrier

    def encode_text(self, pi_code: int, text: str) -> np.ndarray:
        """Encode arbitrary text as a run of 2A RadioText groups."""
        groups = [
            RdsGroup.radiotext(pi_code, seg, text[i : i + 4])
            for seg, i in enumerate(range(0, min(len(text), 64), 4))
        ]
        return self.encode(groups)


class RdsDecoder:
    """57 kHz band -> groups, with syndrome-based block synchronisation."""

    def __init__(self, mpx_rate: float = 192_000.0, subcarrier_hz: float = 57_000.0):
        self.mpx_rate = mpx_rate
        self.subcarrier_hz = subcarrier_hz
        self._lp = fir_lowpass(2_400.0, mpx_rate, 511)

    def _soft_bits(self, band: np.ndarray) -> np.ndarray:
        """Coherent I/Q demod plus half-bit integration to soft bit levels."""
        band = np.asarray(band, dtype=np.float64)
        n = band.size
        t = np.arange(n) / self.mpx_rate
        z = band * np.exp(-2j * np.pi * self.subcarrier_hz * t)
        z = filter_signal(self._lp, z.real) + 1j * filter_signal(self._lp, z.imag)
        # Carrier phase recovery for BPSK: derotate by angle(mean(z^2))/2.
        phase = 0.5 * np.angle(np.mean(z**2))
        x = (z * np.exp(-1j * phase)).real

        samples_per_bit = self.mpx_rate / BIT_RATE
        n_bits = int(n / samples_per_bit)
        if n_bits < 2:
            return np.zeros(0)
        # Timing search: pick the bit-clock offset with the strongest eye.
        best_offset, best_metric, best_vals = 0, -1.0, None
        for offset in np.linspace(0, samples_per_bit, 16, endpoint=False):
            centers1 = (offset + np.arange(n_bits) * samples_per_bit
                        + samples_per_bit * 0.25).astype(np.int64)
            centers2 = centers1 + int(samples_per_bit * 0.5)
            valid = centers2 < n
            v1 = x[centers1[valid]]
            v2 = x[centers2[valid]]
            vals = v1 - v2  # biphase: first half minus second half
            metric = float(np.mean(np.abs(vals)))
            if metric > best_metric:
                best_metric, best_offset, best_vals = metric, offset, vals
        return best_vals if best_vals is not None else np.zeros(0)

    def decode(self, band: np.ndarray) -> list[RdsGroup]:
        """Recover every intact group from the 57 kHz band signal."""
        soft = self._soft_bits(band)
        if soft.size < 104:
            return []
        hard = (soft > 0).astype(np.int64)
        # Undo differential encoding (polarity-insensitive).
        bits = hard[1:] ^ hard[:-1]
        bits = np.concatenate([[hard[0]], bits])

        def block_at(i: int) -> int:
            value = 0
            for b in bits[i : i + 26]:
                value = (value << 1) | int(b)
            return value

        groups: list[RdsGroup] = []
        i = 0
        limit = bits.size - 104
        while i <= limit:
            if _syndrome(block_at(i)) == _OFFSETS["A"]:
                names = ("A", "B", "C", "D")
                alt = ("A", "B", "Cp", "D")
                words = []
                ok = True
                for j, (name, alt_name) in enumerate(zip(names, alt)):
                    blk = block_at(i + 26 * j)
                    syn = _syndrome(blk)
                    if syn not in (_OFFSETS[name], _OFFSETS[alt_name]):
                        ok = False
                        break
                    words.append(blk >> 10)
                if ok:
                    groups.append(RdsGroup(tuple(words)))
                    i += 104
                    continue
            i += 1
        return groups

    def decode_text(self, band: np.ndarray) -> str:
        """Reassemble RadioText segments into a string."""
        segments: dict[int, str] = {}
        for group in self.decode(band):
            payload = group.radiotext_payload()
            if payload is not None:
                segments[payload[0]] = payload[1]
        if not segments:
            return ""
        text = "".join(segments.get(i, "    ") for i in range(max(segments) + 1))
        return text.rstrip()
