"""End-to-end channels: the FM RF link and the acoustic (speaker-to-mic) hop.

Two independent impairments stand between the SONIC server and the bits
in the client app:

1. :class:`FmRadioLink` — modem audio -> FM multiplex -> FM modulation ->
   RF noise set by RSSI -> FM demodulation -> mono audio.  Reproduces the
   paper's Variable-RSSI experiment (Section 4).
2. :class:`AcousticChannel` — the over-the-air gap between an FM radio's
   speaker and the phone's microphone.  Reproduces Figure 4(a): zero loss
   over "cable" (distance 0), growing loss with distance, aggravated by
   uncontrolled speaker/microphone misalignment, and a hard cliff past
   ~1.1 m.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.fm import FmDemodulator, FmModulator
from repro.radio.multiplex import FmMultiplexer, MultiplexConfig
from repro.util.rng import derive_rng

__all__ = ["FmLinkConfig", "FmRadioLink", "AcousticConfig", "AcousticChannel"]


@dataclass(frozen=True)
class FmLinkConfig:
    """Dimensioning of the simulated FM broadcast chain."""

    audio_rate: float = 48_000.0
    mpx_rate: float = 192_000.0
    rf_rate: float = 384_000.0
    max_deviation_hz: float = 75_000.0
    # Calibrated so the paper's RSSI bands come out of the chain: clean
    # down to -85 dB, fluctuating partial loss to ~-90, dead below.
    noise_floor_dbm: float = -97.0
    audio_headroom: float = 0.9  # modem audio is scaled into this fraction


class FmRadioLink:
    """One FM transmitter-to-tuner hop at a configurable RSSI."""

    def __init__(self, config: FmLinkConfig = FmLinkConfig(), seed: int = 0) -> None:
        self.config = config
        mpx_cfg = MultiplexConfig(
            audio_rate=config.audio_rate, mpx_rate=config.mpx_rate
        )
        self._mux = FmMultiplexer(mpx_cfg)
        self._mod = FmModulator(config.mpx_rate, config.rf_rate, config.max_deviation_hz)
        self._demod = FmDemodulator(
            config.mpx_rate, config.rf_rate, config.max_deviation_hz
        )
        self._seed = seed
        self._calls = 0

    def transmit(
        self,
        audio: np.ndarray,
        rssi_dbm: float,
        stereo_diff: np.ndarray | None = None,
        rds: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run ``audio`` through the whole FM chain at the given RSSI.

        Returns the mono audio recovered by the receiver, time-aligned
        and scaled to match the input (so the modem can decode it
        directly).
        """
        cfg = self.config
        audio = np.asarray(audio, dtype=np.float64)
        peak = float(np.max(np.abs(audio))) if audio.size else 0.0
        scale = cfg.audio_headroom / peak if peak > 0 else 1.0
        mpx = self._mux.compose(audio * scale, stereo_diff=stereo_diff, rds=rds)
        iq = self._mod.modulate(mpx)

        cnr_db = rssi_dbm - cfg.noise_floor_dbm
        noise_power = 10.0 ** (-cnr_db / 10.0)  # carrier amplitude is 1
        rng = derive_rng(self._seed, "fm-link", self._calls)
        self._calls += 1
        noise = np.sqrt(noise_power / 2.0) * (
            rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
        )
        mpx_rx = self._demod.demodulate(iq + noise)
        mono = self._mux.extract_mono(mpx_rx)
        mono = mono[: audio.size] / scale
        if mono.size < audio.size:
            mono = np.concatenate([mono, np.zeros(audio.size - mono.size)])
        return mono

    def transmit_stereo(
        self, mono: np.ndarray, diff: np.ndarray, rssi_dbm: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run two independent data signals through the mono and stereo
        subchannels of one FM carrier (the paper's multi-band future
        work: "using the left and right band of the Stereo channel").

        Returns the recovered (mono, stereo-difference) audio pair.  The
        difference channel sits on a DSB-SC subcarrier at 38 kHz, so it
        pays the well-known stereo SNR penalty and fails at a higher
        RSSI than the mono channel — exactly the trade a deployment
        would see.
        """
        cfg = self.config
        mono = np.asarray(mono, dtype=np.float64)
        diff = np.asarray(diff, dtype=np.float64)
        n = max(mono.size, diff.size)
        mono = np.pad(mono, (0, n - mono.size))
        diff = np.pad(diff, (0, n - diff.size))
        peak = max(float(np.max(np.abs(mono))), float(np.max(np.abs(diff))), 1e-9)
        scale = cfg.audio_headroom / peak
        mpx = self._mux.compose(mono * scale, stereo_diff=diff * scale)
        iq = self._mod.modulate(mpx)
        cnr_db = rssi_dbm - cfg.noise_floor_dbm
        noise_power = 10.0 ** (-cnr_db / 10.0)
        rng = derive_rng(self._seed, "fm-link-stereo", self._calls)
        self._calls += 1
        noise = np.sqrt(noise_power / 2.0) * (
            rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
        )
        mpx_rx = self._demod.demodulate(iq + noise)
        mono_rx = self._mux.extract_mono(mpx_rx)[:n] / scale
        diff_rx = self._mux.extract_stereo_diff(mpx_rx)[:n] / scale
        return mono_rx, diff_rx

    def stream(self, rssi_dbm: float, peak_estimate: float = 1.0):
        """Open a chunked FM hop at ``rssi_dbm``.

        Returns a :class:`repro.radio.streams.FmLinkStream` whose output
        is invariant to how the input is chunked; the whole-array
        :meth:`transmit` stays the reference for the calibrated RSSI
        experiments.
        """
        from repro.radio.streams import FmLinkStream

        return FmLinkStream(self, rssi_dbm, peak_estimate=peak_estimate)

    def received_rds_band(self, audio: np.ndarray, rssi_dbm: float, rds: np.ndarray) -> np.ndarray:
        """Transmit with an RDS subcarrier and return the received 57 kHz band."""
        cfg = self.config
        audio = np.asarray(audio, dtype=np.float64)
        peak = float(np.max(np.abs(audio))) if audio.size else 0.0
        scale = cfg.audio_headroom / peak if peak > 0 else 1.0
        mpx = self._mux.compose(audio * scale, rds=rds)
        iq = self._mod.modulate(mpx)
        cnr_db = rssi_dbm - cfg.noise_floor_dbm
        noise_power = 10.0 ** (-cnr_db / 10.0)
        rng = derive_rng(self._seed, "fm-link-rds", self._calls)
        self._calls += 1
        noise = np.sqrt(noise_power / 2.0) * (
            rng.normal(size=iq.size) + 1j * rng.normal(size=iq.size)
        )
        mpx_rx = self._demod.demodulate(iq + noise)
        return self._mux.extract_rds_band(mpx_rx)


@dataclass(frozen=True)
class AcousticConfig:
    """Speaker-to-microphone acoustic path parameters.

    Calibrated so the loss quartiles match Figure 4(a): "cable"
    (distance 0) is lossless, ~1 m shows 10-20 % median frame loss, and
    beyond ~1.1 m the link collapses.
    """

    sample_rate: float = 48_000.0
    # Mean-SNR curve: calibrated against Figure 4(a) rather than derived
    # from first principles (the paper's speaker volume, room and phone
    # are unknown).  Near-field level + room reverberation flatten the
    # slope below spherical spreading; past ``cliff_start_m`` the direct
    # path leaves the microphone's pickup pattern and the link collapses,
    # matching the paper's 100 % loss above 1.1 m.
    base_snr_db: float = 12.0  # mean SNR extrapolated to d -> 0 over air
    slope_db_per_m: float = 5.0
    cliff_start_m: float = 1.1
    cliff_db_per_m: float = 25.0
    # Random components.
    misalignment_sigma_db_per_m: float = 1.5  # per-transmission, half-normal
    flutter_sigma_base_db: float = 2.6  # slow in-transmission fading ...
    flutter_sigma_db_per_m: float = 1.3  # ... growing with distance
    flutter_knot_s: float = 0.25  # correlation time of the flutter
    reverb_delays_ms: tuple[float, ...] = (1.5, 4.0, 9.0)
    reverb_gains: tuple[float, ...] = (0.12, 0.06, 0.03)
    cable_snr_db: float = 55.0  # residual noise of the jack/tuner path


class AcousticChannel:
    """Over-the-air hop between an FM radio speaker and a phone microphone."""

    def __init__(self, config: AcousticConfig = AcousticConfig(), seed: int = 0) -> None:
        self.config = config
        self._seed = seed
        self._calls = 0

    def mean_snr_db(self, distance_m: float) -> float:
        """Deterministic part of the SNR-vs-distance curve."""
        cfg = self.config
        if distance_m <= 0:
            return cfg.cable_snr_db
        snr = cfg.base_snr_db - cfg.slope_db_per_m * distance_m
        if distance_m > cfg.cliff_start_m:
            snr -= cfg.cliff_db_per_m * (distance_m - cfg.cliff_start_m)
        return snr

    def effective_snr_db(
        self, distance_m: float, rng: np.random.Generator
    ) -> float:
        """Draw the per-transmission SNR at a given distance.

        On top of the mean curve, speaker/microphone misalignment (which
        the paper explicitly did not control for) costs a half-normal
        penalty whose scale grows with distance.
        """
        cfg = self.config
        if distance_m <= 0:
            return cfg.cable_snr_db
        misalignment = abs(
            float(rng.normal(0.0, cfg.misalignment_sigma_db_per_m * distance_m))
        )
        return self.mean_snr_db(distance_m) - misalignment

    def transmit(self, audio: np.ndarray, distance_m: float) -> np.ndarray:
        """Propagate ``audio`` across ``distance_m`` metres of air.

        ``distance_m == 0`` models the paper's "cable" configuration
        (internal FM tuner or jack cable): near-lossless.
        """
        cfg = self.config
        audio = np.asarray(audio, dtype=np.float64)
        rng = derive_rng(self._seed, "acoustic", self._calls)
        self._calls += 1

        out = audio.copy()
        if distance_m > 0:
            # Early reflections from the room.
            for delay_ms, gain in zip(cfg.reverb_delays_ms, cfg.reverb_gains):
                shift = int(delay_ms * 1e-3 * cfg.sample_rate)
                if 0 < shift < out.size:
                    echo = np.zeros_like(out)
                    echo[shift:] = gain * audio[: audio.size - shift]
                    out = out + echo
            # Slow gain flutter: neither the phone nor the radio is held
            # still, so the effective gain wanders during a transmission.
            out = out * self._flutter_gain(out.size, distance_m, rng)
        snr_db = self.effective_snr_db(distance_m, rng)
        signal_power = float(np.mean(audio**2)) if audio.size else 0.0
        noise_power = signal_power / (10.0 ** (snr_db / 10.0))
        out = out + rng.normal(0.0, np.sqrt(max(noise_power, 0.0)), out.size)
        return out

    def stream(
        self, distance_m: float, total_samples: int, signal_power: float
    ):
        """Open a chunked hop across ``distance_m`` metres of air.

        Consumes one RNG call slot, exactly like one :meth:`transmit`
        call, and — given the same total length and whole-signal power
        up front — produces bit-identical output for any chunking (see
        :class:`repro.radio.streams.AcousticStream`).
        """
        from repro.radio.streams import AcousticStream

        return AcousticStream(self, distance_m, total_samples, signal_power)

    def _flutter_gain(
        self, n_samples: int, distance_m: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Smooth random gain trajectory (linear interpolation of knots)."""
        cfg = self.config
        sigma = cfg.flutter_sigma_base_db + cfg.flutter_sigma_db_per_m * distance_m
        knot_samples = max(1, int(cfg.flutter_knot_s * cfg.sample_rate))
        n_knots = n_samples // knot_samples + 2
        knots_db = rng.normal(0.0, sigma, n_knots)
        x = np.arange(n_samples) / knot_samples
        gain_db = np.interp(x, np.arange(n_knots), knots_db)
        return 10.0 ** (gain_db / 20.0)
