"""Chunk-capable channel processors for the streaming broadcast engine.

Each stream consumes audio one chunk at a time and carries its filter,
phase, and RNG state across chunk boundaries, so a 48-hour broadcast
flows through the channel in O(chunk) memory:

* :class:`AwgnStream` — additive white noise; chunked draws continue the
  generator stream, so output is bit-identical to one whole-array draw.
* :class:`AcousticStream` — the speaker-to-microphone hop.  Given the
  total sample count and whole-signal power up front (both known for a
  scheduled broadcast) its output is **bit-identical** to
  :meth:`AcousticChannel.transmit` on the concatenated input, for any
  chunking: reverb carries an input tail, flutter knots are drawn once
  in the batch RNG order, and noise is drawn sequentially.
* :class:`FmLinkStream` — a streaming FM chain (audio -> multiplex ->
  FM -> RF noise -> discriminator -> audio) built from stateful direct-
  form FIRs and carry-over phase accumulators.  Its output is invariant
  to the chunk size (RF noise is drawn in fixed absolute-index blocks),
  though it is a distinct filter implementation from the whole-array
  :meth:`FmRadioLink.transmit`, whose fftconvolve chain stays untouched
  for the calibrated RSSI experiments.

All streams share one interface: ``process(chunk) -> ndarray`` (may
return fewer samples than consumed while filters fill) and
``finish() -> ndarray`` (the flushed tail; total output length equals
total input length).
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.dsp.filters import fir_lowpass
from repro.radio.channels import AcousticChannel, FmLinkConfig, FmRadioLink
from repro.radio.multiplex import MultiplexConfig
from repro.util.rng import derive_rng

__all__ = [
    "AwgnStream",
    "AcousticStream",
    "FmLinkStream",
    "StreamingFir",
]

#: RF noise is drawn per absolute-index block of this many samples so
#: the noise sequence never depends on how the input was chunked.
NOISE_BLOCK = 1 << 16


class AwgnStream:
    """Additive white Gaussian noise with a carried-over generator.

    Sequential ``Generator.normal`` draws continue the underlying bit
    stream exactly, so chunked processing reproduces a single whole-
    array draw bit-for-bit — this is what lets the fleet's streaming
    receive path match its batch path sample-identically.
    """

    def __init__(self, rng: np.random.Generator, sigma: float) -> None:
        self._rng = rng
        self.sigma = float(sigma)

    def process(self, chunk: np.ndarray) -> np.ndarray:
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.size == 0:
            return chunk
        return chunk + self._rng.normal(0.0, self.sigma, chunk.size)

    def finish(self) -> np.ndarray:
        return np.zeros(0)


class AcousticStream:
    """Chunked :class:`AcousticChannel` hop, bit-exact against batch.

    The batch path draws, in order: flutter knots (one array sized from
    the total length), the misalignment penalty (one draw), then the
    noise (one whole-length draw).  Knowing ``total_samples`` and the
    whole-signal ``signal_power`` up front — both are known for a
    scheduled broadcast — lets the stream replay that exact order with
    the knots and misalignment at construction and the noise drawn
    sequentially per chunk, which continues the generator bit stream.
    """

    def __init__(
        self,
        channel: AcousticChannel,
        distance_m: float,
        total_samples: int,
        signal_power: float,
    ) -> None:
        if total_samples < 0:
            raise ValueError("total_samples must be >= 0")
        cfg = channel.config
        self.config = cfg
        self.distance_m = float(distance_m)
        self.total_samples = int(total_samples)
        self._pos = 0
        self._rng = derive_rng(channel._seed, "acoustic", channel._calls)
        channel._calls += 1

        self._taps: list[tuple[int, float]] = []
        self._knots_db: np.ndarray | None = None
        self._knot_samples = max(1, int(cfg.flutter_knot_s * cfg.sample_rate))
        if distance_m > 0:
            for delay_ms, gain in zip(cfg.reverb_delays_ms, cfg.reverb_gains):
                shift = int(delay_ms * 1e-3 * cfg.sample_rate)
                # The batch path gates each echo on the *total* length.
                if 0 < shift < total_samples:
                    self._taps.append((shift, gain))
            sigma = cfg.flutter_sigma_base_db + cfg.flutter_sigma_db_per_m * distance_m
            n_knots = total_samples // self._knot_samples + 2
            self._knots_db = self._rng.normal(0.0, sigma, n_knots)
            snr_db = channel.effective_snr_db(distance_m, self._rng)
        else:
            snr_db = cfg.cable_snr_db
        noise_power = signal_power / (10.0 ** (snr_db / 10.0))
        self._noise_sigma = float(np.sqrt(max(noise_power, 0.0)))
        self._max_shift = max((s for s, _ in self._taps), default=0)
        self._tail = np.zeros(0)  # last max_shift input samples

    def process(self, chunk: np.ndarray) -> np.ndarray:
        chunk = np.asarray(chunk, dtype=np.float64)
        if self._pos + chunk.size > self.total_samples:
            raise ValueError("more samples pushed than total_samples")
        if chunk.size == 0:
            return chunk
        out = chunk.copy()
        if self.distance_m > 0:
            ext = np.concatenate([self._tail, chunk])
            base = ext.size - chunk.size  # index of chunk[0] within ext
            for shift, gain in self._taps:
                # echo[i] = gain * audio[pos + i - shift]; samples before
                # the stream start contribute nothing (batch zero-fill).
                src_lo = base - shift
                n_skip = max(0, -(self._pos - shift))  # leading zeros
                if n_skip < chunk.size:
                    seg = ext[src_lo + n_skip : src_lo + chunk.size]
                    out[n_skip : n_skip + seg.size] += gain * seg
            if self._max_shift:
                self._tail = ext[-self._max_shift :]
            x = np.arange(self._pos, self._pos + chunk.size) / self._knot_samples
            gain_db = np.interp(x, np.arange(self._knots_db.size), self._knots_db)
            out = out * (10.0 ** (gain_db / 20.0))
        out = out + self._rng.normal(0.0, self._noise_sigma, out.size)
        self._pos += chunk.size
        return out

    def finish(self) -> np.ndarray:
        return np.zeros(0)


class StreamingFir:
    """Causal FIR over fixed absolute-index blocks, chunk-invariant.

    ``lfilter`` with a carried state is *not* bit-reproducible across
    chunk boundaries (scipy's summation order differs near the start of
    each call), so this filter uses the same technique as the streaming
    preamble correlator: convolve in fixed blocks anchored at absolute
    stream positions via ``fftconvolve(..., "valid")``.  Every output
    sample is then computed from exactly the same input window with
    exactly the same arithmetic no matter how the input was chunked.
    The first ``(taps-1)//2`` outputs (the group delay) are dropped and
    the same number of zeros is flushed at the end, so the output is
    time-aligned with the input and equal in length, like
    :func:`repro.dsp.filters.filter_signal` for whole arrays.
    """

    def __init__(self, taps: np.ndarray, block: int | None = None) -> None:
        self._taps = np.asarray(taps, dtype=np.float64)
        m = self._taps.size
        self.block = block if block is not None else max(4096, 4 * m)
        self.delay = (m - 1) // 2
        self._to_drop = self.delay
        self._context = np.zeros(m - 1)  # last taps-1 input samples
        self._pending = np.zeros(0)
        self._flushed = False

    def _filter_segment(self, seg: np.ndarray) -> np.ndarray:
        """Causal outputs for ``seg`` given the carried left context."""
        y = signal.fftconvolve(
            np.concatenate([self._context, seg]), self._taps, mode="valid"
        )
        tail = np.concatenate([self._context, seg])[-(self._taps.size - 1) :]
        self._context = tail
        return y

    def _emit(self, y: np.ndarray) -> np.ndarray:
        if self._to_drop:
            n = min(self._to_drop, y.size)
            self._to_drop -= n
            y = y[n:]
        return y

    def process(self, x: np.ndarray) -> np.ndarray:
        if self._flushed:
            raise RuntimeError("filter already flushed")
        self._pending = np.concatenate([self._pending, np.asarray(x, dtype=np.float64)])
        outs: list[np.ndarray] = []
        while self._pending.size >= self.block:
            outs.append(self._emit(self._filter_segment(self._pending[: self.block])))
            self._pending = self._pending[self.block :]
        return np.concatenate(outs) if outs else np.zeros(0)

    def flush(self) -> np.ndarray:
        """Emit the buffered tail; total output length equals input."""
        if self._flushed:
            return np.zeros(0)
        self._flushed = True
        # The delay-compensation zeros land at a position fixed by the
        # total input length alone, so the flush is chunk-invariant too.
        tail = np.concatenate([self._pending, np.zeros(self.delay)])
        self._pending = np.zeros(0)
        outs: list[np.ndarray] = []
        while tail.size >= self.block:
            outs.append(self._emit(self._filter_segment(tail[: self.block])))
            tail = tail[self.block :]
        if tail.size:
            outs.append(self._emit(self._filter_segment(tail)))
        return np.concatenate(outs) if outs else np.zeros(0)


class _Upsampler:
    """Integer-factor polyphase upsampler (zero-stuff + streaming FIR)."""

    def __init__(self, factor: int, taps: np.ndarray) -> None:
        self.factor = factor
        self._fir = StreamingFir(np.asarray(taps, dtype=np.float64) * factor)

    def _stuff(self, x: np.ndarray) -> np.ndarray:
        stuffed = np.zeros(x.size * self.factor)
        stuffed[:: self.factor] = x
        return stuffed

    def process(self, x: np.ndarray) -> np.ndarray:
        if x.size == 0:
            return np.zeros(0)
        return self._fir.process(self._stuff(x))

    def flush(self) -> np.ndarray:
        return self._fir.flush()


class _Decimator:
    """Anti-aliased integer-factor decimator on an absolute-index grid.

    Keeping samples whose *absolute* filtered-stream index is a multiple
    of the factor makes the output independent of chunk boundaries.
    """

    def __init__(self, factor: int, taps: np.ndarray) -> None:
        self.factor = factor
        self._fir = StreamingFir(taps)
        self._abs = 0

    def _take(self, x: np.ndarray) -> np.ndarray:
        if x.size == 0:
            return np.zeros(0)
        first = (-self._abs) % self.factor
        out = x[first :: self.factor].copy()
        self._abs += x.size
        return out

    def process(self, x: np.ndarray) -> np.ndarray:
        return self._take(self._fir.process(x))

    def flush(self) -> np.ndarray:
        return self._take(self._fir.flush())


class FmLinkStream:
    """Streaming FM transmitter-to-tuner hop at a fixed RSSI.

    The chain mirrors :meth:`FmRadioLink.transmit` hop for hop — mono
    low-pass, x4 multiplex upsample, x2 RF upsample, phase integration,
    complex AWGN, phase-difference discrimination, /2 and /4 back to the
    audio rate — but every stage is stateful, so the output for a given
    input is the same for ANY chunking.  Two deliberate differences from
    the batch method keep it causal and chunk-invariant: the input scale
    is fixed up front (``peak_estimate``) instead of measured from the
    whole array, and RF noise comes from absolute-index blocks of a
    derived generator rather than one whole-capture draw.
    """

    def __init__(
        self,
        link: FmRadioLink,
        rssi_dbm: float,
        peak_estimate: float = 1.0,
    ) -> None:
        cfg: FmLinkConfig = link.config
        mpx_cfg = MultiplexConfig(audio_rate=cfg.audio_rate, mpx_rate=cfg.mpx_rate)
        self.config = cfg
        self.rssi_dbm = float(rssi_dbm)
        if peak_estimate <= 0:
            raise ValueError("peak_estimate must be positive")
        self._scale = cfg.audio_headroom / float(peak_estimate)
        self._mono_level = mpx_cfg.mono_level
        up_mpx = int(round(cfg.mpx_rate / cfg.audio_rate))
        up_rf = int(round(cfg.rf_rate / cfg.mpx_rate))
        self._rf_rate = cfg.rf_rate
        self._deviation = cfg.max_deviation_hz

        self._lp_audio = StreamingFir(
            fir_lowpass(mpx_cfg.mono_cutoff_hz, cfg.audio_rate, 127)
        )
        self._up_mpx = _Upsampler(
            up_mpx, fir_lowpass(0.45 * cfg.audio_rate, cfg.mpx_rate, 127)
        )
        self._up_rf = _Upsampler(
            up_rf, fir_lowpass(0.45 * cfg.mpx_rate, cfg.rf_rate, 127)
        )
        self._down_rf = _Decimator(
            up_rf, fir_lowpass(0.45 * cfg.mpx_rate, cfg.rf_rate, 127)
        )
        self._down_audio = _Decimator(
            up_mpx,
            fir_lowpass(mpx_cfg.mono_cutoff_hz + 1_000.0, cfg.mpx_rate, 511),
        )

        cnr_db = rssi_dbm - cfg.noise_floor_dbm
        self._noise_amp = float(np.sqrt(10.0 ** (-cnr_db / 10.0) / 2.0))
        self._noise_seed = link._seed
        self._noise_stream = link._calls
        link._calls += 1
        self._noise_pos = 0
        self._noise_cache: tuple[int, np.ndarray] | None = None

        self._phase_carry = 0.0  # running cumsum of the RF drive signal
        self._iq_carry: np.complex128 | None = None  # last RF sample
        self._first_delta: bool = True
        self.samples_in = 0
        self.samples_out = 0
        self._finished = False

    # -- noise -------------------------------------------------------------

    def _noise(self, n: int) -> np.ndarray:
        """Complex AWGN for the next ``n`` RF samples, chunk-invariant.

        Sample ``i`` of the stream always comes from block ``i //
        NOISE_BLOCK`` of a generator derived from the block index, so the
        noise a given RF sample sees never depends on chunk boundaries.
        """
        out = np.empty(n, dtype=np.complex128)
        filled = 0
        pos = self._noise_pos
        while filled < n:
            block_idx, offset = divmod(pos, NOISE_BLOCK)
            if self._noise_cache is None or self._noise_cache[0] != block_idx:
                rng = derive_rng(
                    self._noise_seed, "fm-stream-noise", self._noise_stream, block_idx
                )
                raw = rng.normal(size=2 * NOISE_BLOCK)
                self._noise_cache = (
                    block_idx,
                    raw[:NOISE_BLOCK] + 1j * raw[NOISE_BLOCK:],
                )
            take = min(n - filled, NOISE_BLOCK - offset)
            out[filled : filled + take] = self._noise_cache[1][offset : offset + take]
            filled += take
            pos += take
        self._noise_pos = pos
        return self._noise_amp * out

    # -- chain stages ------------------------------------------------------
    # Each helper enters the chain at one hop so finish() can flush the
    # stages in order, feeding every tail through the remaining hops.

    def _from_mono(self, mono: np.ndarray) -> np.ndarray:
        return self._from_mpx(self._up_mpx.process(mono) * self._mono_level)

    def _from_mpx(self, mpx: np.ndarray) -> np.ndarray:
        return self._from_rf(self._up_rf.process(mpx))

    def _from_rf(self, rf_in: np.ndarray) -> np.ndarray:
        if rf_in.size == 0:
            return np.zeros(0)
        # Prepending the carry *inside* the cumsum keeps the sequential
        # accumulation order of a whole-array cumsum, hence bit-exact
        # results for any chunking.
        csum = np.cumsum(np.concatenate([[self._phase_carry], rf_in]))[1:]
        self._phase_carry = float(csum[-1])
        phase = 2.0 * np.pi * self._deviation * csum / self._rf_rate
        iq = np.exp(1j * phase) + self._noise(rf_in.size)

        if self._iq_carry is None:
            pair = iq
        else:
            pair = np.concatenate([[self._iq_carry], iq])
        delta = np.angle(pair[1:] * np.conj(pair[:-1]))
        self._iq_carry = iq[-1]
        if self._first_delta and delta.size:
            # The batch discriminator duplicates its first difference to
            # keep input and output lengths equal; do the same once.
            delta = np.concatenate([[delta[0]], delta])
            self._first_delta = False
        mpx_rx = delta * self._rf_rate / (2.0 * np.pi * self._deviation)
        return self._from_mpx_rx(mpx_rx)

    def _from_mpx_rx(self, mpx_rx: np.ndarray) -> np.ndarray:
        return self._from_mono_mpx(self._down_rf.process(mpx_rx))

    def _from_mono_mpx(self, mono_mpx: np.ndarray) -> np.ndarray:
        out = self._down_audio.process(mono_mpx)
        return out / (self._mono_level * self._scale)

    def process(self, chunk: np.ndarray) -> np.ndarray:
        if self._finished:
            raise RuntimeError("stream already finished")
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.size == 0:
            return np.zeros(0)
        self.samples_in += chunk.size
        out = self._from_mono(self._lp_audio.process(chunk * self._scale))
        self.samples_out += out.size
        return out

    def finish(self) -> np.ndarray:
        """Flush every stage in order; output length equals input length."""
        if self._finished:
            return np.zeros(0)
        self._finished = True
        parts = [
            self._from_mono(self._lp_audio.flush()),
            self._from_mpx(self._up_mpx.flush() * self._mono_level),
            self._from_rf(self._up_rf.flush()),
            self._from_mono_mpx(self._down_rf.flush()),
            self._down_audio.flush() / (self._mono_level * self._scale),
        ]
        tail = np.concatenate(parts)
        # Stage flushes are sized by each filter's group delay, so the
        # chain emits exactly the input length; trim defensively anyway.
        tail = tail[: max(0, self.samples_in - self.samples_out)]
        self.samples_out += tail.size
        return tail
