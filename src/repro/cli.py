"""Command-line interface: ``python -m repro <command>``.

The operational face of the reproduction — what a radio station or a
curious user would actually run:

* ``profiles``             list modem profiles and their rates
* ``corpus``               list the synthetic .pk corpus
* ``render URL``           render a corpus page to PPM (+ click map)
* ``encode / decode``      SWebp image compression
* ``modem-tx / modem-rx``  bytes <-> playable WAV audio
* ``simulate``             run the end-to-end system and report
* ``catalog``              top-N catalog: render -> encode -> modem -> decode
* ``serve``                batched SMS request front end over a simulated day
* ``bench``                run the perf benchmarks (BENCH_pipeline.json)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_profiles(args: argparse.Namespace) -> int:
    from repro.modem.modem import Modem
    from repro.modem.profiles import get_profile, list_profiles

    print(f"{'profile':22} {'raw PHY bps':>12} {'net bps':>10} {'band kHz':>14} {'order':>6}")
    for name in list_profiles():
        profile = get_profile(name)
        cfg = profile.ofdm
        lo = cfg.first_bin * cfg.sample_rate / cfg.fft_size / 1000
        hi = lo + cfg.bandwidth_hz / 1000
        print(
            f"{name:22} {profile.raw_bit_rate():12.0f} {profile.net_bit_rate():10.0f} "
            f"{lo:6.1f}-{hi:5.1f} {cfg.constellation_order:>6}"
        )
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.web.sites import SiteGenerator

    generator = SiteGenerator(seed=args.seed, n_sites=args.sites)
    print(f"{'rank':>4} {'category':12} domain")
    for site in generator.websites():
        print(f"{site.rank:>4} {site.category:12} {site.domain}")
    print(f"\n{len(generator.all_urls())} pages "
          f"({args.sites} landing + {args.sites * 3} internal)")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.imaging.pnm import write_ppm
    from repro.web.render import PageRenderer
    from repro.web.sites import SiteGenerator

    generator = SiteGenerator(seed=args.seed)
    renderer = PageRenderer(width=args.width, max_height=args.max_height)
    try:
        result = renderer.render(generator.page(args.url, hour=args.hour))
    except KeyError:
        print(f"error: {args.url!r} is not in the corpus "
              f"(try `python -m repro corpus`)", file=sys.stderr)
        return 1
    write_ppm(args.out, result.image)
    print(f"rendered {args.url} at hour {args.hour}: "
          f"{result.image.shape[0]}x{result.image.shape[1]} "
          f"(full height {result.full_height}) -> {args.out}")
    if args.clickmap:
        with open(args.clickmap, "w") as f:
            for region in result.clickmap:
                f.write(f"{region.x} {region.y} {region.width} {region.height} {region.href}\n")
        print(f"click map ({len(result.clickmap)} regions) -> {args.clickmap}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.imaging.codec import SWebpCodec
    from repro.imaging.pnm import read_pnm

    image = read_pnm(args.input)
    data = SWebpCodec(args.quality).encode(image)
    Path(args.output).write_bytes(data)
    print(f"{args.input} ({image.nbytes} B raw) -> {args.output} "
          f"({len(data)} B, Q{args.quality}, {image.nbytes / len(data):.1f}x)")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    from repro.imaging.codec import CodecError, SWebpCodec
    from repro.imaging.pnm import write_pgm, write_ppm

    try:
        image = SWebpCodec().decode(Path(args.input).read_bytes())
    except CodecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if image.ndim == 3:
        write_ppm(args.output, image)
    else:
        write_pgm(args.output, image)
    print(f"{args.input} -> {args.output} ({image.shape[0]}x{image.shape[1]})")
    return 0


def _cmd_modem_tx(args: argparse.Namespace) -> int:
    from repro.dsp.wav import write_wav
    from repro.modem.modem import Modem

    data = Path(args.input).read_bytes()
    modem = Modem(args.profile)
    size = modem.frame_payload_size
    payloads = [
        data[i : i + size].ljust(size, b"\0") for i in range(0, len(data), size)
    ]
    if not payloads:
        print("error: input file is empty", file=sys.stderr)
        return 1
    wave_out = modem.transmit_burst(payloads)
    write_wav(args.output, wave_out, int(modem.profile.ofdm.sample_rate))
    seconds = wave_out.size / modem.profile.ofdm.sample_rate
    print(f"{len(data)} B -> {len(payloads)} frames -> {args.output} "
          f"({seconds:.2f}s of audio at {args.profile})")
    return 0


def _cmd_modem_rx(args: argparse.Namespace) -> int:
    from repro.dsp.wav import read_wav
    from repro.modem.modem import Modem

    samples, rate = read_wav(args.input)
    modem = Modem(args.profile)
    expected = int(modem.profile.ofdm.sample_rate)
    if rate != expected:
        print(f"warning: WAV is {rate} Hz, profile expects {expected} Hz",
              file=sys.stderr)
    frames = modem.receive(samples)
    good = [f.payload for f in frames if f.ok]
    if args.output:
        Path(args.output).write_bytes(b"".join(good))
    print(f"{len(frames)} frames detected, {len(good)} decoded "
          f"({100 * (1 - len(good) / max(len(frames), 1)):.0f}% loss)"
          + (f" -> {args.output}" if args.output else ""))
    return 0 if good else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.config import SystemConfig
    from repro.core.system import SonicSystem

    system = SonicSystem(
        SystemConfig(
            n_sites=args.sites,
            render_width=args.width,
            max_pixel_height=args.max_height,
            broadcast_rate_bps=args.rate,
        )
    )
    if args.request:
        system.client("user-c").request_page(args.request, system.clock.now)
    system.run(seconds=args.seconds, step_s=5.0)

    print(f"simulated {args.seconds:.0f}s at {args.rate / 1000:.0f} kbps, "
          f"{len(system.generator.all_urls())} corpus pages")
    stats = system.server.stats
    print(f"server: {stats.renders} renders, {stats.pushes} pushes, "
          f"{stats.requests} requests, {stats.cache_hits} cache hits")
    for client in system.clients:
        print(f"  {client.profile.name:8} cache {len(client.cache.urls()):3} pages, "
              f"frame loss {client.frame_loss_rate * 100:5.1f}%, "
              f"acks {len(client.acks)}")
    return 0


def _print_population_report(result) -> None:
    """Population distributions of a two-tier fleet run."""
    pop = result.population
    model = result.calibration
    src = "store" if result.calibration_cached else "fitted from tier 1"
    print(
        f"\ncalibration: FER midpoint {model.fer_midpoint_db:.2f} dB, "
        f"scale {model.fer_scale_db:.2f} dB ({src})"
    )
    cfg = pop.config
    print(
        f"population:  {pop.n_receivers:,} receivers x {cfg.hours:.0f} h "
        f"({pop.frames_per_receiver:,} frames each, "
        f"{cfg.pages}-page carousel, {cfg.geometry.radius_km:.1f} km disc)"
    )
    qs = (0.05, 0.25, 0.5, 0.75, 0.95)
    loss = pop.loss_quantiles(qs)
    read = pop.readability_quantiles(qs)
    header = "".join(f"p{int(q * 100):>2}" + " " * 6 for q in qs)
    print(f"\n{'':14}{header}mean")
    print("frame loss    " + "".join(f"{100 * v:7.2f}% " for v in loss)
          + f"{100 * pop.mean_loss_rate:6.2f}%")
    print("readability   " + "".join(f"{v:7.2f}  " for v in read)
          + f"{float(pop.readability.mean()):6.2f}")
    full = float((pop.pages_decoded == cfg.pages).mean())
    print(
        f"\npages: mean {float(pop.pages_decoded.mean()):.1f}/{cfg.pages} "
        f"decoded, {100 * full:.1f}% of receivers hold the full catalog"
    )
    print(f"\n{'distance':>14} {'receivers':>10} {'mean loss':>10}")
    for lo, hi, mean, n in pop.loss_by_distance(8):
        if n == 0:
            continue
        print(f"{lo:6.0f}-{hi:4.0f} m {n:>10,} {100 * mean:>9.2f}%")
    print(
        f"\ntier 2: {pop.receiver_frames:,} receiver-frames in "
        f"{pop.elapsed_s:.2f}s ({pop.receiver_frames_per_s:,.0f}/s)"
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Broadcast one waveform to a fleet of simulated receivers."""
    from repro.modem.modem import Modem
    from repro.sim.receivers import FleetConfig, run_fleet
    from repro.util.rng import derive_rng

    from repro.core.stream import WaveformSource

    modem = Modem(args.profile)
    rng = derive_rng(args.seed, "fleet-payload")
    size = modem.frame_payload_size

    def bursts():
        for i in range(0, args.frames, args.frames_per_burst):
            yield [
                rng.integers(0, 256, size, dtype=np.uint8).tobytes()
                for _ in range(min(args.frames_per_burst, args.frames - i))
            ]

    supply = bursts()
    # Streaming TX engine: guard blocks between bursts only, so the
    # broadcast ends on its last payload symbol, not on silence.
    wave = WaveformSource(lambda: next(supply, None), modem).read_all()

    population = None
    if args.population > 0:
        from repro.sim.geometry import PopulationGeometry
        from repro.sim.population import PopulationConfig

        population = PopulationConfig(
            n_receivers=args.population,
            hours=args.hours,
            pages=args.pages,
            geometry=PopulationGeometry(radius_km=args.radius_km),
            shadowing_sigma_db=args.shadowing_db,
            chunk_receivers=args.chunk_receivers,
        )

    config = FleetConfig(
        n_receivers=args.receivers,
        master_seed=args.seed,
        profile=args.profile,
        # Tier-1 calibration must sweep the FER transition region, so
        # population mode pins the fleet to a wide AWGN spread around
        # the threshold instead of the demo's comfortable 14 dB.
        impairment="awgn" if population else args.impairment,
        frames_per_burst=args.frames_per_burst,
        snr_db=args.cal_snr_db if population else args.snr_db,
        snr_spread_db=args.cal_spread_db if population else 6.0,
        distance_m=args.distance_m,
        population=population,
        calibration_dir=args.calibration_dir,
    )
    result = run_fleet(wave, config, processes=args.processes)

    audio_s = wave.size / modem.profile.ofdm.sample_rate
    unit = {"clean": "", "awgn": " dB", "acoustic": " m"}[config.impairment]
    print(f"{'rx':>4} {'channel':>10} {'frames':>7} {'ok':>5} {'loss':>7}")
    for r in result.reports:
        print(
            f"{r.receiver_id:>4} {r.channel_param:>9.2f}{unit or ' '} "
            f"{r.n_frames:>7} {r.n_ok:>5} {r.frame_loss_rate * 100:>6.1f}%"
        )
    print(
        f"\n{result.n_receivers} receivers x {audio_s:.1f}s broadcast on "
        f"{result.processes} process(es): {result.elapsed_s:.2f}s "
        f"({result.receivers_per_s:.1f} receivers/s, "
        f"mean loss {result.mean_loss_rate * 100:.1f}%)"
    )
    if result.population is not None:
        _print_population_report(result)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Run a live chunked broadcast: carousel -> audio -> channel -> pages.

    The whole Figure 4(c) schedule executes as a dataflow: the hourly
    re-render schedule enqueues pages, the streaming transmitter
    modulates them burst by burst through the broadcast encode cache,
    the audio crosses a chunk-capable channel, and a streaming receiver
    plus page assembler consume it — all in O(chunk) memory, so
    ``--hours 48 --pages 200`` runs without ever materialising the
    multi-gigabyte capture.
    """
    from repro.client.streaming import StreamingPageAssembler
    from repro.core.stream import CarouselFrameSource, StreamSession, WaveformSource
    from repro.modem.modem import Modem
    from repro.modem.streaming import StreamingReceiver
    from repro.server.transmitters import BroadcastEncodeCache
    from repro.sim.workload import BroadcastWorkload, WorkloadConfig
    from repro.transport.bundle import BundleTransport
    from repro.transport.carousel import BroadcastCarousel
    from repro.util.rng import derive_rng

    modem = Modem(args.profile)
    sample_rate = modem.profile.ofdm.sample_rate
    chunk_samples = max(1, int(args.chunk_s * sample_rate))
    duration_s = args.hours * 3600.0
    n_chunks = max(1, int(np.ceil(duration_s * sample_rate / chunk_samples)))
    total_samples = n_chunks * chunk_samples

    n_hours = max(1, int(np.ceil(args.hours)))
    workload = BroadcastWorkload(
        WorkloadConfig(
            rate_bps=args.rate, n_pages=args.pages, n_hours=n_hours, seed=args.seed
        )
    )
    urls = workload.generator.all_urls()
    if args.max_page_kb:
        # Real modelled pages are hundreds of kB — hours of airtime each
        # at FM rates.  Capping keeps short runs meaningful; the byte
        # accounting stays consistent because the cap goes through the
        # size model, not around it.
        cap = args.max_page_kb * 1024
        workload.size_model.calibrate(
            {u: min(workload.size_model.base_size(u), cap) for u in urls}
        )
    page_ids = {u: i for i, u in enumerate(urls)}
    carousel = BroadcastCarousel(args.rate)
    transport = BundleTransport()

    def make_frames(item):
        """Synthetic page payload, deterministic per (url, enqueue time)."""
        rng = derive_rng(args.seed, "stream-payload", item.url, int(item.enqueued_at))
        data = rng.integers(0, 256, item.size_bytes, dtype=np.uint8).tobytes()
        return transport.chunk(data, page_id=page_ids[item.url], version=0)

    hour_state = {"next": 0}

    def on_advance(now: float) -> None:
        while hour_state["next"] <= int(now // 3600) and hour_state["next"] < n_hours:
            workload.enqueue_hour(carousel, hour_state["next"])
            hour_state["next"] += 1

    channel = None
    if args.impairment != "clean":
        probe = modem.transmit_burst([bytes(modem.frame_payload_size)] * 4)
        if args.impairment == "awgn":
            from repro.radio.streams import AwgnStream

            power = float(np.mean(probe**2))
            sigma = np.sqrt(power / (10.0 ** (args.snr_db / 10.0)))
            channel = AwgnStream(derive_rng(args.seed, "stream-awgn"), sigma)
        elif args.impairment == "acoustic":
            from repro.radio.channels import AcousticChannel

            channel = AcousticChannel(seed=args.seed).stream(
                args.distance_m, total_samples, float(np.mean(probe**2))
            )
        else:  # fm
            from repro.radio.channels import FmRadioLink

            channel = FmRadioLink(seed=args.seed).stream(
                args.rssi_dbm, peak_estimate=float(np.max(np.abs(probe)))
            )

    # An encoded sonic-ofdm burst is ~4 MB of float64, so the cache is
    # sized in single digits of bursts: it only pays off when the
    # carousel rebroadcasts identical content (gap-filling cycles), and
    # 0 disables it for workloads that never repeat a burst.
    cache = (
        BroadcastEncodeCache(capacity=args.cache_bursts)
        if args.cache_bursts > 0
        else None
    )
    source = WaveformSource(
        CarouselFrameSource(
            carousel, frames_per_burst=args.frames_per_burst, make_frames=make_frames
        ),
        modem,
        chunk_samples=chunk_samples,
        idle_fill=True,
        cache=cache,
    )
    receiver = StreamingReceiver(modem, frames_per_burst=args.frames_per_burst)
    assembler = StreamingPageAssembler()
    session = StreamSession(
        source,
        receiver,
        channel=channel,
        carousel=carousel,
        on_frames=lambda frames, now: assembler.push(frames, now),
        on_advance=on_advance,
    )

    def progress(s: StreamSession) -> None:
        st = s.stats
        print(
            f"t={st.audio_seconds:8.1f}s  chunks {st.chunks:>6} "
            f"({st.chunks_per_s:6.1f}/s, {st.realtime_factor:5.1f}x rt)  "
            f"frames {st.frames_ok}/{st.frames_decoded}  "
            f"pages {assembler.pages_completed}  "
            f"backlog {carousel.backlog_bytes() / 1e6:7.2f} MB  "
            f"rxbuf {st.max_rx_buffer_samples / 1000:.0f}k"
        )

    stats = session.run(
        duration_s=duration_s,
        max_chunks=n_chunks,
        progress=progress,
        progress_every=args.progress_every,
    )

    hits = cache.stats.burst_hits if cache is not None else 0
    misses = (
        cache.stats.burst_misses if cache is not None else source.bursts_encoded
    )
    print(
        f"\nstreamed {stats.audio_seconds / 3600:.3f} h of audio "
        f"({args.pages} pages at {args.rate / 1000:.0f} kbps, "
        f"{args.impairment} channel) in {stats.elapsed_s:.1f}s wall "
        f"({stats.realtime_factor:.1f}x realtime)"
    )
    print(
        f"frames: {stats.frames_ok}/{stats.frames_decoded} ok, "
        f"pages completed: {assembler.pages_completed}, "
        f"burst cache: {hits} hits / {misses} misses"
    )
    print(
        f"peak rx buffer: {stats.max_rx_buffer_samples} samples "
        f"({stats.max_rx_buffer_samples * 8 / 1e6:.1f} MB) vs "
        f"{total_samples} total ({total_samples * 8 / 1e6:.1f} MB unchunked)"
    )
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    """Top-N catalog through render -> encode -> modem -> channel -> decode."""
    import time

    from repro.core.pipeline import frames_to_waveform, waveform_to_frames
    from repro.modem.modem import Modem
    from repro.server.cache import BundleStore
    from repro.server.catalog import CatalogConfig, CatalogPipeline
    from repro.transport.bundle import BundleTransport, PageBundle
    from repro.util.rng import derive_rng

    store = BundleStore(directory=args.store)
    pipeline = CatalogPipeline(
        CatalogConfig(
            seed=args.seed,
            n_sites=args.sites,
            width=args.width,
            max_height=args.max_height,
            quality=args.quality,
        ),
        store=store,
    )
    if args.persistent:
        pipeline.start(args.processes)
    urls = pipeline.generator.all_urls()[: args.top]
    try:
        result = pipeline.encode_catalog(
            urls, hour=args.hour, processes=args.processes
        )
    finally:
        pipeline.close()

    modem = Modem(args.profile)
    transport = BundleTransport()
    sample_rate = modem.profile.ofdm.sample_rate
    t_radio = 0.0
    audio_s = 0.0
    n_frames = 0
    rows = []
    ok_pages = 0
    for i, page in enumerate(result.pages):
        t0 = time.perf_counter()
        frames = transport.chunk(page.data, page_id=i, version=page.epoch)
        wave = frames_to_waveform(frames, modem, frames_per_burst=16)
        if args.impairment == "awgn":
            rng = derive_rng(args.seed, "catalog-awgn", i)
            power = float(np.mean(wave**2))
            noise = power / (10.0 ** (args.snr_db / 10.0))
            wave = wave + rng.normal(0.0, np.sqrt(noise), wave.size)
        received = waveform_to_frames(wave, modem, frames_per_burst=16)
        blob = transport.reassemble([f for f in received if f is not None])
        ok = blob == page.data
        if ok:
            PageBundle.from_bytes(blob)  # decode the image end-to-end
            ok_pages += 1
        t_radio += time.perf_counter() - t0
        audio_s += wave.size / sample_rate
        n_frames += len(frames)
        rows.append(
            f"  {page.url:34} {len(page.data):>8} B {len(frames):>5} frames "
            f"{'store' if page.from_store else 'encoded':>7} {'ok' if ok else 'FAIL'}"
        )

    print(f"{'url':36} {'bytes':>8} {'frames':>11} {'source':>7} rx")
    print("\n".join(rows))
    total = result.elapsed_s + t_radio
    print(
        f"\nrender+encode: {result.n_pages} pages in {result.elapsed_s:.2f}s "
        f"({result.pages_per_s:.2f} pages/s, {result.store_hits} store hits, "
        f"{result.encoded} encoded, {result.processes} process(es))"
    )
    print(
        f"radio:         {n_frames} frames / {audio_s:.1f}s of audio in "
        f"{t_radio:.2f}s ({audio_s / t_radio:.1f}x realtime)"
    )
    print(
        f"end-to-end:    {ok_pages}/{result.n_pages} pages ok, "
        f"{result.n_pages / total:.2f} pages/s, "
        f"{audio_s / total:.1f}x realtime overall"
    )
    return 0 if ok_pages == result.n_pages else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a simulated SMS request day through the async front end."""
    from repro.server.frontend import (
        CatalogResolver,
        FrontendConfig,
        RequestFrontend,
        SizeModelResolver,
    )
    from repro.server.ledger import RequestLedger
    from repro.sim.workload import RequestTraceConfig, generate_requests
    from repro.web.sites import SiteGenerator

    pipeline = None
    if args.resolver == "catalog":
        from repro.server.cache import BundleStore
        from repro.server.catalog import CatalogConfig, CatalogPipeline

        pipeline = CatalogPipeline(
            CatalogConfig(
                seed=args.seed,
                n_sites=args.sites,
                width=args.width,
                max_height=args.max_height,
                quality=10,
                reference=args.respawn_pool,
            ),
            store=BundleStore(directory=args.store) if args.store else None,
        )
        if not args.respawn_pool:
            # Persistent pool: workers spawn once and build their
            # renderer once, then serve every resolve for the whole day.
            pipeline.start(args.processes)
        resolver = CatalogResolver(pipeline, processes=args.processes)
    else:
        resolver = SizeModelResolver(
            SiteGenerator(seed=args.seed, n_sites=args.sites),
            max_page_bytes=args.max_page_kb * 1024 if args.max_page_kb else None,
        )

    n_pages = min(args.pages, len(resolver.urls))
    trace = generate_requests(
        RequestTraceConfig(
            hours=args.hours,
            n_pages=n_pages,
            rate_per_s=args.rate_per_s,
            n_requests=args.requests,
            seed=args.seed,
        )
    )
    print(
        f"trace: {trace.n_requests:,} requests over {args.hours:.1f} h "
        f"across {n_pages} pages (seed {args.seed})"
    )

    frontend = RequestFrontend(
        resolver,
        FrontendConfig(
            rate_bps=args.rate,
            tick_s=args.tick_s,
            max_batch=args.max_batch,
            max_backlog_bytes=args.max_backlog_kb * 1024,
            defer_capacity=args.defer_capacity,
            pipelined=not args.respawn_pool,
            prefetch=not (args.no_prefetch or args.respawn_pool),
        ),
        ledger=RequestLedger(args.ledger) if args.ledger else None,
    )

    def progress(f: RequestFrontend) -> None:
        h = f.health()
        print(
            f"t={h['sim_hours']:5.1f}h  submitted {int(h['submitted']):>9,}  "
            f"queue {int(h['queue_depth_pages']):>4} pages / "
            f"{h['backlog_mb']:6.2f} MB  deferred {int(h['deferred']):>5}  "
            f"coalesce {h['coalesce_ratio'] * 100:5.1f}%  "
            f"shed {int(h['shed']):>6}"
        )

    result = frontend.run(
        trace, serial=args.serial, progress=progress,
        progress_every=args.progress_every,
    )
    frontend.ledger.reconcile()

    stats = result.stats
    mode = "serial" if args.serial else "async-batched"
    print(
        f"\n{mode}: {result.n_requests:,} requests in {result.elapsed_s:.2f}s "
        f"({result.requests_per_s:,.0f} req/s, "
        f"{stats.batches:,} batches of {stats.mean_batch_size:.1f})"
    )
    print(
        f"latency: p50 {result.p50_latency_s:.1f}s  "
        f"p90 {result.p90_latency_s:.1f}s  p99 {result.p99_latency_s:.1f}s  "
        f"(request -> broadcast, {100 * result.served_fraction:.1f}% served)"
    )
    print(
        f"pages: {stats.enqueued_pages:,} transmissions for "
        f"{stats.submitted:,} requests "
        f"({100 * stats.coalesce_ratio:.1f}% coalesced, "
        f"{stats.replaced_pages} epoch replacements), "
        f"store {result.store_hits}/{result.store_hits + result.store_misses} hits"
    )
    print(
        f"backpressure: {stats.deferred:,} deferred "
        f"({stats.retried:,} retried), {stats.shed:,} shed, "
        f"peak backlog {stats.peak_backlog_bytes / 1e6:.2f} MB, "
        f"peak ingest depth {stats.peak_queue_depth} cohorts"
    )
    if pipeline is not None:
        print(
            f"render pool: {'respawn-per-batch (reference)' if args.respawn_pool else 'persistent'}, "
            f"prefetch {pipeline.prefetch_used}/{pipeline.prefetch_submitted} "
            f"speculative renders used"
        )
        pipeline.close()
    if args.ledger:
        print(f"ledger: {len(frontend.ledger):,} rows -> {args.ledger}")
    frontend.ledger.close()
    return 0


def _bench_smoke(repo_root: Path) -> int:
    """Fast perf regression gate against the checked-in baseline JSON."""
    import json
    import time

    from repro.core.pipeline import frames_to_waveform, waveform_to_frames
    from repro.modem.modem import Modem
    from repro.sim.receivers import FleetConfig, run_fleet
    from repro.transport.framing import Frame, FrameHeader, FrameType

    bench_json = repo_root / "BENCH_pipeline.json"
    if not bench_json.exists():
        print("error: no checked-in BENCH_pipeline.json to compare against",
              file=sys.stderr)
        return 1
    baseline = json.loads(bench_json.read_text())
    if "end_to_end" not in baseline:
        print(
            "error: BENCH_pipeline.json has no end_to_end section — "
            "run `python -m repro bench` once to establish the baseline",
            file=sys.stderr,
        )
        return 1
    rx_base = baseline["end_to_end"]["rx_frames_per_s"]

    modem = Modem("sonic-ofdm")
    n_frames = 24
    rng = np.random.default_rng(13)
    frames = [
        Frame(
            FrameHeader(FrameType.BUNDLE_BYTES, page_id=1, seq=i, total=n_frames),
            rng.integers(0, 256, 83, dtype=np.uint8).tobytes(),
        )
        for i in range(n_frames)
    ]
    wave = frames_to_waveform(frames, modem, frames_per_burst=16)
    received = waveform_to_frames(wave, modem, frames_per_burst=16)  # warm-up
    best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        received = waveform_to_frames(wave, modem, frames_per_burst=16)
        best = min(best, time.perf_counter() - t0)
    delivered = sum(1 for f in received if f is not None)
    rx_now = n_frames / best

    fleet = run_fleet(
        wave, FleetConfig(n_receivers=2, impairment="clean"), processes=1
    )

    print(f"receiver decode: {rx_now:.0f} frames/s "
          f"(baseline {rx_base:.0f}, {rx_now / rx_base:.2f}x)")
    print(f"fleet harness:   {fleet.receivers_per_s:.1f} receivers/s, "
          f"mean loss {fleet.mean_loss_rate * 100:.0f}%")
    if delivered != n_frames:
        print(f"error: clean channel delivered {delivered}/{n_frames} frames",
              file=sys.stderr)
        return 1
    if fleet.mean_loss_rate > 0:
        print("error: clean fleet lost frames", file=sys.stderr)
        return 1
    if rx_now < 0.7 * rx_base:
        print(
            f"error: receiver decode regressed >30% "
            f"({rx_now:.0f} vs baseline {rx_base:.0f} frames/s)",
            file=sys.stderr,
        )
        return 1

    # --- imaging gate: batch SWebp decode (same spec as the bench) ---
    from repro.imaging.codec import SWebpCodec
    from repro.web.render import PageRenderer
    from repro.web.sites import SiteGenerator

    if "imaging" not in baseline or "catalog" not in baseline:
        print(
            "error: BENCH_pipeline.json has no imaging/catalog section — "
            "run `python -m repro bench` once to establish the baseline",
            file=sys.stderr,
        )
        return 1

    gen = SiteGenerator(seed=42, n_sites=4)
    page_img = PageRenderer(width=1080, max_height=1600).render(
        gen.page(gen.all_urls()[0], 0)
    ).image
    codec = SWebpCodec(10)
    encoded = codec.encode(page_img)
    codec.decode(encoded)  # warm-up
    best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        image = codec.decode(encoded)
        best = min(best, time.perf_counter() - t0)
    decode_base = baseline["imaging"]["decode_pages_per_s"]
    decode_now = 1.0 / best
    print(f"swebp decode:    {decode_now:.1f} pages/s "
          f"(baseline {decode_base:.1f}, {decode_now / decode_base:.2f}x)")
    if not np.array_equal(image, codec.decode_ref(encoded)):
        print("error: batch decode diverged from decode_ref", file=sys.stderr)
        return 1
    if decode_now < 0.7 * decode_base:
        print(
            f"error: batch SWebp decode regressed >30% "
            f"({decode_now:.1f} vs baseline {decode_base:.1f} pages/s)",
            file=sys.stderr,
        )
        return 1

    # --- catalog gate: store-backed pipeline (same spec as the bench) ---
    from repro.server.catalog import CatalogConfig, CatalogPipeline

    pipeline = CatalogPipeline(
        CatalogConfig(seed=42, n_sites=2, width=360, max_height=1200, quality=10)
    )
    t0 = time.perf_counter()
    cold = pipeline.encode_catalog(hour=0, processes=1)
    t_cold = time.perf_counter() - t0
    warm = pipeline.encode_catalog(hour=0, processes=1)
    cold_base = baseline["catalog"]["cold_pages_per_s"]
    cold_now = cold.n_pages / t_cold
    print(f"catalog encode:  {cold_now:.1f} pages/s cold "
          f"(baseline {cold_base:.1f}, {cold_now / cold_base:.2f}x), "
          f"{warm.store_hits}/{warm.n_pages} warm store hits")
    if warm.store_hits != warm.n_pages:
        print("error: warm catalog run re-encoded pages", file=sys.stderr)
        return 1
    if [p.data for p in warm.pages] != [p.data for p in cold.pages]:
        print("error: warm catalog bytes differ from cold run", file=sys.stderr)
        return 1
    if cold_now < 0.7 * cold_base:
        print(
            f"error: catalog encode regressed >30% "
            f"({cold_now:.1f} vs baseline {cold_base:.1f} pages/s)",
            file=sys.stderr,
        )
        return 1
    # --- streaming gate: chunked decode parity + rate ---
    from repro.modem.streaming import StreamingReceiver

    if "streaming" not in baseline:
        print(
            "error: BENCH_pipeline.json has no streaming section — "
            "run `python -m repro bench` once to establish the baseline",
            file=sys.stderr,
        )
        return 1
    batch_rx = modem.receive(wave, frames_per_burst=16)
    best = np.inf
    base_chunks = 0
    for chunk_samples in (4800, 7777):
        receiver = StreamingReceiver(modem, frames_per_burst=16)
        stream_rx = []
        t0 = time.perf_counter()
        n_chunks = 0
        for i in range(0, wave.size, chunk_samples):
            stream_rx += receiver.push(wave[i : i + chunk_samples])
            n_chunks += 1
        stream_rx += receiver.finish()
        if chunk_samples == 4800:  # rate is defined at the default chunk size
            best = min(best, time.perf_counter() - t0)
            base_chunks = n_chunks
        same = len(stream_rx) == len(batch_rx) and all(
            s.payload == b.payload and s.start_index == b.start_index
            for s, b in zip(stream_rx, batch_rx)
        )
        if not same:
            print(
                f"error: streaming decode (chunk={chunk_samples}) diverged "
                "from Modem.receive",
                file=sys.stderr,
            )
            return 1
    chunks_base = baseline["streaming"]["chunks_per_s"]
    chunks_now = base_chunks / best
    print(f"streaming rx:    {chunks_now:.0f} chunks/s "
          f"(baseline {chunks_base:.0f}, {chunks_now / chunks_base:.2f}x), "
          f"parity ok at 2 chunk sizes")
    if chunks_now < 0.7 * chunks_base:
        print(
            f"error: streaming decode regressed >30% "
            f"({chunks_now:.0f} vs baseline {chunks_base:.0f} chunks/s)",
            file=sys.stderr,
        )
        return 1

    # --- population gate: Tier-2 statistical fleet rate + determinism ---
    import dataclasses

    from repro.radio.lossmodel import FrameLossModel
    from repro.sim.population import PopulationConfig, run_population

    if "fleet_population" not in baseline:
        print(
            "error: BENCH_pipeline.json has no fleet_population section — "
            "run `python -m repro bench -k fleet` once to establish the "
            "baseline",
            file=sys.stderr,
        )
        return 1
    pop_config = PopulationConfig(n_receivers=100_000, hours=48.0, master_seed=7)
    pop = run_population(FrameLossModel(), pop_config)
    rechunked = run_population(
        FrameLossModel(), dataclasses.replace(pop_config, chunk_receivers=37_013)
    )
    pop_base = baseline["fleet_population"]["receiver_frames_per_s"]
    pop_now = pop.receiver_frames_per_s
    print(f"population:      {pop_now:.2e} receiver-frames/s "
          f"(baseline {pop_base:.2e}, {pop_now / pop_base:.2f}x)")
    if not np.array_equal(pop.loss_rates, rechunked.loss_rates):
        print("error: population results depend on chunk partitioning",
              file=sys.stderr)
        return 1
    if pop_now < 1e6:
        print(
            f"error: population tier below the 1e6 receiver-frames/s floor "
            f"({pop_now:.2e})",
            file=sys.stderr,
        )
        return 1
    if pop_now < 0.7 * pop_base:
        print(
            f"error: population tier regressed >30% "
            f"({pop_now:.2e} vs baseline {pop_base:.2e} receiver-frames/s)",
            file=sys.stderr,
        )
        return 1

    # --- request front end gate: batched SMS ingest rate + determinism ---
    from repro.server.frontend import (
        FrontendConfig,
        RequestFrontend,
        SizeModelResolver,
    )
    from repro.sim.workload import RequestTraceConfig, generate_requests

    if "request_frontend" not in baseline:
        print(
            "error: BENCH_pipeline.json has no request_frontend section — "
            "run `python -m repro bench -k frontend` once to establish the "
            "baseline",
            file=sys.stderr,
        )
        return 1

    from repro.server.ledger import RequestLedger

    def _frontend(trace, serial=False, ledger=None):
        fe = RequestFrontend(
            SizeModelResolver(
                SiteGenerator(seed=7, n_sites=25), max_page_bytes=12 * 1024
            ),
            FrontendConfig(),
            ledger=ledger,
        )
        return fe, fe.run(trace, serial=serial)

    # The smoke day's ledger lands next to the other bench artifacts so
    # CI can upload it and a failing latency number can be dissected.
    ledger_dir = repo_root / "benchmarks" / "output"
    ledger_dir.mkdir(exist_ok=True)
    ledger_path = ledger_dir / "request_ledger.sqlite"
    ledger_path.unlink(missing_ok=True)
    trace = generate_requests(
        RequestTraceConfig(hours=4.0, n_pages=100, n_requests=100_000, seed=42)
    )
    fe, res = _frontend(trace, ledger=RequestLedger(ledger_path))
    fe.ledger.reconcile()
    fe.ledger.close()
    fe_base = baseline["request_frontend"]["requests_per_s"]
    print(
        f"request ingest:  {res.requests_per_s:,.0f} req/s "
        f"(baseline {fe_base:,.0f}, {res.requests_per_s / fe_base:.2f}x), "
        f"p50/p99 {res.p50_latency_s:.0f}/{res.p99_latency_s:.0f}s "
        f"at {res.n_requests:,} queued requests"
    )
    if res.served_fraction < 1.0:
        print(
            f"error: front end served only "
            f"{100 * res.served_fraction:.2f}% of requests",
            file=sys.stderr,
        )
        return 1
    if res.requests_per_s < 1e5:
        print(
            f"error: request ingest below the 1e5 requests/s floor "
            f"({res.requests_per_s:,.0f})",
            file=sys.stderr,
        )
        return 1
    if res.requests_per_s < 0.7 * fe_base:
        print(
            f"error: request ingest regressed >30% "
            f"({res.requests_per_s:,.0f} vs baseline {fe_base:,.0f} req/s)",
            file=sys.stderr,
        )
        return 1
    small = generate_requests(
        RequestTraceConfig(hours=2.0, n_pages=100, n_requests=20_000, seed=3)
    )
    fe_async, _ = _frontend(small)
    fe_serial, _ = _frontend(small, serial=True)
    if fe_async.ledger.digest() != fe_serial.ledger.digest():
        print(
            "error: async-batched ledger diverged from the serial reference",
            file=sys.stderr,
        )
        return 1
    print("request ledger:  serial == async-batched (digest match)")

    # --- serve_catalog gate: full-fidelity resolve, pipelined == serial ---
    from repro.server.cache import BundleStore
    from repro.server.catalog import CatalogConfig, CatalogPipeline
    from repro.server.frontend import CatalogResolver

    if "serve_catalog" not in baseline:
        print(
            "error: BENCH_pipeline.json has no serve_catalog section — "
            "run `python -m repro bench -k serve_catalog` once to establish "
            "the baseline",
            file=sys.stderr,
        )
        return 1
    sc_base = baseline["serve_catalog"]["requests_per_s"]
    cat_trace = generate_requests(
        RequestTraceConfig(hours=2.0, n_pages=12, n_requests=6_000, seed=42)
    )

    def _catalog_frontend(serial=False, persistent=False):
        pipeline = CatalogPipeline(
            CatalogConfig(seed=42, n_sites=3, width=360, max_height=600,
                          quality=10),
            store=BundleStore(),
        )
        if persistent:
            pipeline.start()  # host-sized: subprocess pool or inline worker
        fe = RequestFrontend(
            CatalogResolver(pipeline, processes=2), FrontendConfig()
        )
        res = fe.run(cat_trace, serial=serial)
        digest = fe.ledger.digest()
        pipeline.close()
        fe.ledger.close()
        return res, digest, pipeline.store

    _, d_serial, store_serial = _catalog_frontend(serial=True)
    sc_res, d_pipe, store_pipe = _catalog_frontend(persistent=True)
    if d_pipe != d_serial:
        print(
            "error: pipelined catalog ledger diverged from the serial "
            "reference",
            file=sys.stderr,
        )
        return 1
    if not store_pipe.superset_of(store_serial):
        print(
            "error: pipelined bundle store diverged from the serial "
            "reference (bundle bytes differ)",
            file=sys.stderr,
        )
        return 1
    print(
        f"catalog serve:   {sc_res.requests_per_s:,.0f} req/s "
        f"(baseline {sc_base:,.0f}, {sc_res.requests_per_s / sc_base:.2f}x), "
        f"serial == pipelined (digest match)"
    )
    if sc_res.requests_per_s < 0.5 * sc_base:
        print(
            f"error: catalog serve regressed >50% "
            f"({sc_res.requests_per_s:,.0f} vs baseline {sc_base:,.0f} "
            f"req/s)",
            file=sys.stderr,
        )
        return 1
    # --- modem family gate: vectorised decode stage vs scalar reference ---
    from repro.modem import AudioQrModem, FskModem, GmskModem

    if "modem_family" not in baseline:
        print(
            "error: BENCH_pipeline.json has no modem_family section — "
            "run `python -m repro bench -k modem_family` once to establish "
            "the baseline",
            file=sys.stderr,
        )
        return 1
    # Same specs as benchmarks/perf/test_perf_modem_family.py.  The fsk
    # decode stage is tens of ms, so a single pass is all timing noise —
    # it gets best-of-5; the multi-second gmsk/audioqr stages have floor
    # headroom well beyond single-pass jitter.
    family_specs = {
        "fsk": (FskModem, [220] * 8, 1500, 5),
        "gmsk": (GmskModem, [256] * 40, 2000, 1),
        "audioqr": (AudioQrModem, [150] * 6, 1500, 1),
    }
    fam_rng = np.random.default_rng(67)
    for i, (name, (cls, sizes, gap, repeats)) in enumerate(family_specs.items()):
        fam_modem = cls()
        payloads = [
            bytes(fam_rng.integers(0, 256, n, dtype=np.uint8)) for n in sizes
        ]
        cap_rng = np.random.default_rng(70 + i)
        parts = [np.zeros(1200)]
        for p in payloads:
            parts.append(fam_modem.transmit(p))
            parts.append(np.zeros(gap))
        cap = np.concatenate(parts)
        cap = cap + 0.01 * cap_rng.standard_normal(cap.size)
        peaks = fam_modem.sync.scan(cap)  # shared by both paths; untimed
        offset = fam_modem.sync.template.size

        def run_ref():
            return [
                m for start, _ in peaks
                if (m := fam_modem._decode_peak_ref(cap, start)) is not None
            ]

        def run_batch():
            out = []
            for start, _ in peaks:
                status, payload = fam_modem.decode_attempt(
                    cap[start + offset:], eos=True
                )
                if status == "done" and payload is not None:
                    out.append(payload)
            return out

        ref_msgs = run_ref()  # warm-up doubles as the correctness probe
        batch_msgs = run_batch()
        ref_s = batch_s = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_ref()
            ref_s = min(ref_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_batch()
            batch_s = min(batch_s, time.perf_counter() - t0)
        fam_base = baseline["modem_family"][name]
        speedup = ref_s / batch_s
        print(f"{name + ' decode:':<17}{speedup:.1f}x vs scalar ref "
              f"(baseline {fam_base['speedup']:.1f}x, floor "
              f"{fam_base['floor']:g}x), {len(batch_msgs)} messages")
        if batch_msgs != ref_msgs or batch_msgs != payloads:
            print(f"error: {name} batch decode diverged from scalar reference",
                  file=sys.stderr)
            return 1
        if speedup < fam_base["floor"]:
            print(
                f"error: {name} decode stage below its {fam_base['floor']:g}x "
                f"floor ({speedup:.1f}x)",
                file=sys.stderr,
            )
            return 1
        if speedup < 0.7 * fam_base["speedup"]:
            print(
                f"error: {name} decode speedup regressed >30% "
                f"({speedup:.1f}x vs baseline {fam_base['speedup']:.1f}x)",
                file=sys.stderr,
            )
            return 1

    # --- tournament gate: warm SweepStore answers the whole sweep ---
    import tempfile

    from repro.sim.tournament import TournamentConfig, run_tournament

    if "tournament" not in baseline:
        print(
            "error: BENCH_pipeline.json has no tournament section — "
            "run `python -m repro bench -k tournament` once to establish "
            "the baseline",
            file=sys.stderr,
        )
        return 1
    with tempfile.TemporaryDirectory() as sweep_dir:
        # Same spec as benchmarks/perf/test_perf_tournament.py.
        sweep_config = TournamentConfig(
            snr_grid_db=(-2.0, 2.0, 6.0, 12.0),
            distance_grid_m=(0.2, 0.8),
            rssi_grid_dbm=(-70.0, -88.0),
            payload_bytes=24,
            n_messages=4,
            master_seed=11,
            store_dir=sweep_dir,
        )
        t0 = time.perf_counter()
        cold_sweep = run_tournament(sweep_config, processes=1)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_sweep = run_tournament(sweep_config, processes=1)
        t_warm = time.perf_counter() - t0
    sweep_base = baseline["tournament"]["warm_speedup"]
    sweep_ratio = t_cold / t_warm
    print(f"tournament:      {len(cold_sweep.cells)} cells, warm store "
          f"{sweep_ratio:.0f}x vs cold (baseline {sweep_base:.0f}x)")
    cell_key = lambda c: (c.profile, c.axis, c.value, c.n_frames, c.n_lost)
    if [cell_key(c) for c in warm_sweep.cells] != [
        cell_key(c) for c in cold_sweep.cells
    ]:
        print("error: warm tournament cells differ from the cold sweep",
              file=sys.stderr)
        return 1
    if warm_sweep.n_cached != len(warm_sweep.cells):
        print("error: warm tournament re-measured cells", file=sys.stderr)
        return 1
    frontier_profiles = {row["profile"] for row in cold_sweep.frontier()}
    if frontier_profiles != set(sweep_config.profiles):
        print("error: frontier does not cover every profile", file=sys.stderr)
        return 1
    from repro.sim.tournament import write_frontier_report

    write_frontier_report(
        cold_sweep,
        ledger_dir / "frontier.json",
        ledger_dir / "frontier.svg",
    )
    print(f"frontier:        {ledger_dir / 'frontier.json'} (+ .svg)")
    if sweep_ratio < 100.0:
        print(
            f"error: warm SweepStore below the 100x floor ({sweep_ratio:.0f}x)",
            file=sys.stderr,
        )
        return 1

    # --- network gate: multi-station day, serial == sharded digests ---
    from repro.server.network import NetworkConfig, run_network

    if "network" not in baseline:
        print(
            "error: BENCH_pipeline.json has no network section — "
            "run `python -m repro bench -k network` once to establish "
            "the baseline",
            file=sys.stderr,
        )
        return 1
    net_config = NetworkConfig(n_stations=3, hours=6, tick_s=120.0, seed=42)
    t0 = time.perf_counter()
    net_serial = run_network(net_config)
    t_net = time.perf_counter() - t0
    net_sharded = run_network(net_config, sharded=True)
    net_base = baseline["network"]
    station_hours_per_s = net_config.n_stations * net_config.hours / t_net
    min_goodput = min(s.goodput_bps for s in net_serial.stations)
    print(
        f"network:         {net_config.n_stations} stations x "
        f"{net_config.hours}h in {t_net:.2f}s "
        f"({station_hours_per_s:.0f} station-hours/s, baseline "
        f"{net_base['station_hours_per_s']:.0f}), "
        f"min goodput {min_goodput / 1e3:.1f} kbps"
    )
    if net_serial.network_digest() != net_sharded.network_digest():
        print(
            "error: sharded network run diverged from the serial reference "
            "(ledger/schedule digests differ)",
            file=sys.stderr,
        )
        return 1
    print("network ledgers: serial == sharded (digest match)")
    # Honest floor: the smoke day's demand keeps every carousel busy, so
    # each station must sustain at least half the slowest profile's rate.
    if min_goodput < net_base["goodput_floor_bps"]:
        print(
            f"error: station goodput below the "
            f"{net_base['goodput_floor_bps']:.0f} bps floor "
            f"({min_goodput:.0f} bps)",
            file=sys.stderr,
        )
        return 1
    if station_hours_per_s < 0.7 * net_base["station_hours_per_s"]:
        print(
            f"error: network simulation regressed >30% "
            f"({station_hours_per_s:.0f} vs baseline "
            f"{net_base['station_hours_per_s']:.0f} station-hours/s)",
            file=sys.stderr,
        )
        return 1
    # Per-station reports land next to the other bench artifacts so CI
    # uploads them (backlog/goodput per station, digests included).
    (ledger_dir / "network_stations.json").write_text(
        json.dumps(net_serial.to_json_dict(), indent=2) + "\n"
    )
    print(f"station reports: {ledger_dir / 'network_stations.json'}")

    print("perf smoke ok")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf benchmarks (pytest -m perf) and report the JSON path."""
    import pytest

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
    if not bench_dir.is_dir():
        # Fall back to an invocation from the repository root.
        bench_dir = Path.cwd() / "benchmarks" / "perf"
    if not bench_dir.is_dir():
        print(
            "error: benchmarks/perf not found — run from the repository checkout",
            file=sys.stderr,
        )
        return 1
    if args.smoke:
        return _bench_smoke(bench_dir.parents[1])
    argv = ["-m", "perf", "-s", "-q", str(bench_dir)]
    if args.keyword:
        argv += ["-k", args.keyword]
    code = pytest.main(argv)
    out = bench_dir.parents[1] / "BENCH_pipeline.json"
    if code == 0 and out.exists():
        print(f"\nresults -> {out}")
    return code


def _cmd_network(args: argparse.Namespace) -> int:
    """Simulate a multi-region broadcast day on the sharded network."""
    import json
    import time

    from repro.server.network import NetworkConfig, network_coverage, run_network

    config = NetworkConfig(
        n_stations=args.stations,
        hours=args.hours,
        n_pages=args.pages,
        seed=args.seed,
        tick_s=args.tick_s,
        pages_per_station=args.pages_per_station,
        request_rate_per_s=args.rate,
    )
    t0 = time.perf_counter()
    result = run_network(config, sharded=args.sharded, processes=args.processes)
    elapsed = time.perf_counter() - t0
    mode = "sharded" if args.sharded else "serial"
    print(
        f"{config.n_stations} stations x {config.hours}h "
        f"({config.n_pages}-page corpus) in {elapsed:.2f}s, {mode}"
    )
    print(
        f"{'station':<12} {'requests':>9} {'broadcast':>9} {'shed':>6} "
        f"{'goodput':>9} {'peak blog':>10} {'p50':>7} {'p99':>8} "
        f"{'sw':>3} {'profile':>8}"
    )
    for s in result.stations:
        print(
            f"{s.station_id:<12} {s.n_requests:>9,} {s.n_broadcast:>9,} "
            f"{s.n_shed:>6,} {s.goodput_bps / 1e3:>7.1f}kb {s.peak_backlog_mb:>8.2f}MB "
            f"{s.latency_p50_s:>6.0f}s {s.latency_p99_s:>7.0f}s "
            f"{s.profile_switches:>3} {s.final_profile:>8}"
        )
    lookups = result.store_hits + result.store_misses
    hit_pct = 100.0 * result.store_hits / lookups if lookups else 0.0
    print(
        f"shared store: {result.store_hits}/{lookups} hits ({hit_pct:.0f}%) — "
        f"pages encoded once, broadcast by every demanding station"
    )
    print(f"network digest: {result.network_digest()}")

    if args.verify:
        other = run_network(config, sharded=not args.sharded)
        if other.network_digest() != result.network_digest():
            print(
                "error: serial and sharded runs diverged (digest mismatch)",
                file=sys.stderr,
            )
            return 1
        print("determinism: serial == sharded (digest match)")
    if args.coverage:
        print(f"\nper-station coverage ({args.coverage:,} Tier-2 listeners):")
        for cov in network_coverage(config, args.coverage, result=result):
            print(
                f"  {cov.station:<12} {cov.n_receivers:>7,} listeners  "
                f"loss {100 * cov.mean_loss_rate:5.1f}%  "
                f"readability {cov.mean_readability:4.1f}/10  "
                f"pages {100 * cov.mean_pages_fraction:5.1f}%"
            )
    if args.json:
        payload = result.to_json_dict()
        if args.coverage:
            payload["coverage"] = [
                cov.to_json_dict()
                for cov in network_coverage(config, args.coverage, result=result)
            ]
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nreports -> {args.json}")
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    """Sweep every modem profile across the channel matrix."""
    from repro.sim.tournament import (
        SweepStore,
        TournamentConfig,
        run_tournament,
        write_frontier_report,
    )

    def _floats(text: str) -> tuple[float, ...]:
        return tuple(float(v) for v in text.split(",") if v.strip())

    config = TournamentConfig(
        profiles=tuple(p.strip() for p in args.profiles.split(",") if p.strip()),
        snr_grid_db=_floats(args.snr_db),
        distance_grid_m=_floats(args.distance_m),
        rssi_grid_dbm=_floats(args.rssi_dbm),
        payload_bytes=args.payload_bytes,
        n_messages=args.messages,
        master_seed=args.seed,
        loss_threshold=args.loss_threshold,
        store_dir=args.store,
    )
    result = run_tournament(
        config,
        processes=args.processes,
        store=SweepStore(args.store) if args.store else None,
    )
    print(
        f"swept {len(result.cells)} cells ({result.n_cached} from store) "
        f"in {result.elapsed_s:.1f}s with {result.processes} process(es)"
    )
    for axis, unit in (("awgn", "dB SNR"), ("acoustic", "m"), ("fm", "dBm")):
        print(f"\n{axis} axis ({unit}):")
        for profile in config.profiles:
            cells = result.cells_for(profile, axis)
            losses = "  ".join(
                f"{c.value:>7g}: {100 * c.loss_rate:3.0f}%" for c in cells
            )
            print(f"  {profile:<12} {losses}")
    print("\nrate-vs-robustness frontier "
          f"(loss <= {config.loss_threshold:g}):")
    print(f"  {'profile':<12} {'net bps':>9}  {'min SNR':>8}  "
          f"{'max dist':>9}  {'min RSSI':>9}")
    for row in result.frontier():
        fmt = lambda v, suffix: "-" if v is None else f"{v:g}{suffix}"
        print(
            f"  {row['profile']:<12} {row['net_bps']:>9.0f}  "
            f"{fmt(row['min_snr_db'], ' dB'):>8}  "
            f"{fmt(row['max_distance_m'], ' m'):>9}  "
            f"{fmt(row['min_rssi_dbm'], ''):>9}"
        )
    if args.json or args.svg:
        json_path = Path(args.json) if args.json else Path("frontier.json")
        write_frontier_report(
            result, json_path, Path(args.svg) if args.svg else None
        )
        print(f"\nfrontier -> {json_path}" + (f", {args.svg}" if args.svg else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SONIC reproduction: connect the unconnected via FM radio & SMS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profiles", help="list modem profiles").set_defaults(func=_cmd_profiles)

    p = sub.add_parser("corpus", help="list the synthetic .pk corpus")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--sites", type=int, default=25)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("render", help="render a corpus page to PPM")
    p.add_argument("url")
    p.add_argument("--hour", type=int, default=0)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--width", type=int, default=1080)
    p.add_argument("--max-height", type=int, default=10_000)
    p.add_argument("--out", default="page.ppm")
    p.add_argument("--clickmap", default=None)
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser("encode", help="compress a PPM/PGM image to SWebp")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--quality", type=int, default=10)
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("decode", help="decompress SWebp back to PPM/PGM")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("modem-tx", help="encode a file as modem audio (WAV)")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--profile", default="sonic-ofdm")
    p.set_defaults(func=_cmd_modem_tx)

    p = sub.add_parser("modem-rx", help="decode modem audio (WAV) to bytes")
    p.add_argument("input")
    p.add_argument("--output", default=None)
    p.add_argument("--profile", default="sonic-ofdm")
    p.set_defaults(func=_cmd_modem_rx)

    p = sub.add_parser(
        "bench", help="run the perf benchmarks (writes BENCH_pipeline.json)"
    )
    p.add_argument("-k", dest="keyword", default=None,
                   help="pytest -k expression to select benchmarks")
    p.add_argument("--smoke", action="store_true",
                   help="quick gate: fail if receiver decode regressed >30%% "
                        "vs the checked-in BENCH_pipeline.json")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "tournament",
        help="sweep every modem profile across the channel matrix and "
             "report the rate-vs-robustness frontier",
    )
    p.add_argument("--profiles", default="sonic-ofdm,fsk,gmsk,audioqr",
                   help="comma-separated profiles to race")
    p.add_argument("--snr-db", default="0,4,8,14",
                   help="comma-separated AWGN SNR grid (dB)")
    p.add_argument("--distance-m", default="0.3,0.8,1.3",
                   help="comma-separated acoustic distance grid (m)")
    p.add_argument("--rssi-dbm", default="-70,-85,-91",
                   help="comma-separated FM RSSI grid (dBm)")
    p.add_argument("--payload-bytes", type=int, default=32,
                   help="probe message size for the baseline modems")
    p.add_argument("--messages", type=int, default=4,
                   help="probe messages (or OFDM frames) per cell")
    p.add_argument("--loss-threshold", type=float, default=0.1,
                   help="frontier operating point (max loss rate)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--processes", type=int, default=None,
                   help="worker processes (default: one per core; 1 = serial)")
    p.add_argument("--store", default=None,
                   help="SweepStore directory for memoised cells")
    p.add_argument("--json", default=None, help="write the frontier JSON here")
    p.add_argument("--svg", default=None, help="write the frontier SVG here")
    p.set_defaults(func=_cmd_tournament)

    p = sub.add_parser(
        "fleet", help="broadcast one waveform to N simulated receivers"
    )
    p.add_argument("--receivers", type=int, default=8)
    p.add_argument("--frames", type=int, default=32)
    p.add_argument("--frames-per-burst", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", default="sonic-ofdm")
    p.add_argument("--impairment", choices=["clean", "awgn", "acoustic"],
                   default="awgn")
    p.add_argument("--snr-db", type=float, default=14.0)
    p.add_argument("--distance-m", type=float, default=0.9)
    p.add_argument("--processes", type=int, default=None)
    p.add_argument("--population", type=int, default=0,
                   help="two-tier mode: also simulate N statistical "
                        "receivers calibrated from the full-modem fleet "
                        "(0 = off)")
    p.add_argument("--hours", type=float, default=48.0,
                   help="population carousel horizon in hours")
    p.add_argument("--pages", type=int, default=200,
                   help="population catalog size (paper's N=200)")
    p.add_argument("--radius-km", type=float, default=1.0,
                   help="population coverage-disc radius")
    p.add_argument("--shadowing-db", type=float, default=4.0,
                   help="log-normal shadowing sigma for population RSSI")
    p.add_argument("--chunk-receivers", type=int, default=65_536,
                   help="population receivers per vectorised batch")
    p.add_argument("--cal-snr-db", type=float, default=4.0,
                   help="tier-1 calibration fleet centre SNR (population "
                        "mode; sweeps the FER transition)")
    p.add_argument("--cal-spread-db", type=float, default=10.0,
                   help="tier-1 calibration fleet SNR spread (population mode)")
    p.add_argument("--calibration-dir", default=None,
                   help="directory for persisted loss-curve calibrations")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "network",
        help="simulate a sharded multi-region broadcast day "
             "(demand-driven page scheduling)",
    )
    p.add_argument("--stations", type=int, default=4,
                   help="regional stations (defaults cover Pakistani metros)")
    p.add_argument("--hours", type=int, default=24,
                   help="simulated broadcast hours (one scheduler epoch each)")
    p.add_argument("--pages", type=int, default=100,
                   help="corpus pages shared by all stations (multiple of 4)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--tick-s", type=float, default=60.0,
                   help="simulation step; must divide the 3600 s epoch")
    p.add_argument("--pages-per-station", type=int, default=24,
                   help="per-epoch airtime budget of each station")
    p.add_argument("--rate", type=float, default=None,
                   help="override every region's SMS request rate (req/s)")
    p.add_argument("--sharded", action="store_true",
                   help="step each epoch's stations concurrently")
    p.add_argument("--processes", type=int, default=None,
                   help="worker processes for --sharded")
    p.add_argument("--verify", action="store_true",
                   help="re-run in the other mode and compare digests")
    p.add_argument("--coverage", type=int, default=0, metavar="N",
                   help="also report per-station Tier-2 coverage for N listeners")
    p.add_argument("--json", default=None,
                   help="write per-station reports to this JSON file")
    p.set_defaults(func=_cmd_network)

    p = sub.add_parser(
        "stream",
        help="run a live chunked broadcast (carousel -> audio -> pages)",
    )
    p.add_argument("--hours", type=float, default=0.02,
                   help="audio hours to stream (48 for the Fig. 4(c) horizon)")
    p.add_argument("--rate", type=float, default=20_000.0)
    p.add_argument("--pages", type=int, default=8,
                   help="corpus pages (multiple of 4; 200 for the paper's N=200)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--profile", default="sonic-ofdm")
    p.add_argument("--frames-per-burst", type=int, default=16)
    p.add_argument("--chunk-s", type=float, default=0.1,
                   help="audio chunk size in seconds")
    p.add_argument("--impairment",
                   choices=["clean", "awgn", "acoustic", "fm"], default="clean")
    p.add_argument("--snr-db", type=float, default=14.0)
    p.add_argument("--distance-m", type=float, default=0.5)
    p.add_argument("--rssi-dbm", type=float, default=-70.0)
    p.add_argument("--max-page-kb", type=int, default=12,
                   help="cap synthetic page size (0 = real modelled sizes)")
    p.add_argument("--cache-bursts", type=int, default=8,
                   help="burst-level encode cache capacity (0 disables)")
    p.add_argument("--progress-every", type=int, default=200,
                   help="print live counters every N chunks")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "catalog",
        help="push the top-N catalog through render -> encode -> modem -> decode",
    )
    p.add_argument("--top", type=int, default=3, help="how many catalog pages")
    p.add_argument("--sites", type=int, default=4)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--hour", type=int, default=0)
    p.add_argument("--width", type=int, default=720)
    p.add_argument("--max-height", type=int, default=1_600)
    p.add_argument("--quality", type=int, default=10)
    p.add_argument("--profile", default="sonic-ofdm")
    p.add_argument("--impairment", choices=["clean", "awgn"], default="clean")
    p.add_argument("--snr-db", type=float, default=14.0)
    p.add_argument("--processes", type=int, default=None,
                   help="pool size for render+encode (default: cpu count)")
    p.add_argument("--persistent", action="store_true",
                   help="start a persistent worker pool (reusable across "
                        "encode_catalog calls) instead of a per-call pool")
    p.add_argument("--store", default=None,
                   help="directory for the persistent bundle store")
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser(
        "serve",
        help="serve a simulated SMS request day through the async front end",
    )
    p.add_argument("--hours", type=float, default=24.0,
                   help="simulated request-day length")
    p.add_argument("--requests", type=int, default=None,
                   help="exact request count (default: Poisson at --rate-per-s)")
    p.add_argument("--rate-per-s", type=float, default=12.0,
                   help="mean SMS arrival rate (requests/second)")
    p.add_argument("--pages", type=int, default=100,
                   help="distinct pages in the Zipf request mix")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--sites", type=int, default=25)
    p.add_argument("--rate", type=float, default=20_000.0,
                   help="FM broadcast rate in bits/s")
    p.add_argument("--tick-s", type=float, default=10.0,
                   help="batch window / carousel drain granularity")
    p.add_argument("--max-batch", type=int, default=8192,
                   help="max requests per dispatch batch")
    p.add_argument("--max-backlog-kb", type=int, default=4_000,
                   help="carousel saturation threshold (backpressure)")
    p.add_argument("--defer-capacity", type=int, default=20_000,
                   help="parked requests before shedding")
    p.add_argument("--max-page-kb", type=int, default=12,
                   help="cap modelled page size (0 = real modelled sizes)")
    p.add_argument("--resolver", choices=["size-model", "catalog"],
                   default="size-model",
                   help="size-model prices pages; catalog renders+encodes them")
    p.add_argument("--store", default=None,
                   help="bundle store directory (catalog resolver)")
    p.add_argument("--processes", type=int, default=None,
                   help="render+encode pool size (catalog resolver)")
    p.add_argument("--width", type=int, default=360,
                   help="render width in pixels (catalog resolver)")
    p.add_argument("--max-height", type=int, default=1_200,
                   help="crop rendered pages to this height (catalog resolver)")
    p.add_argument("--respawn-pool", action="store_true",
                   help="reference baseline: respawn the render pool per "
                        "batch and resolve on the event loop (seed renderer)")
    p.add_argument("--no-prefetch", action="store_true",
                   help="disable speculative next-hour prefetch")
    p.add_argument("--ledger", default=None,
                   help="sqlite path for the persistent request ledger "
                        "(default: in-memory)")
    p.add_argument("--serial", action="store_true",
                   help="one-request-at-a-time reference mode")
    p.add_argument("--progress-every", type=int, default=2000,
                   help="print service health every N batches")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("simulate", help="run the end-to-end system")
    p.add_argument("--seconds", type=float, default=1_800.0)
    p.add_argument("--rate", type=float, default=10_000.0)
    p.add_argument("--sites", type=int, default=2)
    p.add_argument("--width", type=int, default=360)
    p.add_argument("--max-height", type=int, default=1_200)
    p.add_argument("--request", default=None, help="URL for user-c to request")
    p.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
