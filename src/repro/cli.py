"""Command-line interface: ``python -m repro <command>``.

The operational face of the reproduction — what a radio station or a
curious user would actually run:

* ``profiles``             list modem profiles and their rates
* ``corpus``               list the synthetic .pk corpus
* ``render URL``           render a corpus page to PPM (+ click map)
* ``encode / decode``      SWebp image compression
* ``modem-tx / modem-rx``  bytes <-> playable WAV audio
* ``simulate``             run the end-to-end system and report
* ``bench``                run the perf benchmarks (BENCH_pipeline.json)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_profiles(args: argparse.Namespace) -> int:
    from repro.modem.modem import Modem
    from repro.modem.profiles import get_profile, list_profiles

    print(f"{'profile':22} {'raw PHY bps':>12} {'net bps':>10} {'band kHz':>14} {'order':>6}")
    for name in list_profiles():
        profile = get_profile(name)
        cfg = profile.ofdm
        lo = cfg.first_bin * cfg.sample_rate / cfg.fft_size / 1000
        hi = lo + cfg.bandwidth_hz / 1000
        print(
            f"{name:22} {profile.raw_bit_rate():12.0f} {profile.net_bit_rate():10.0f} "
            f"{lo:6.1f}-{hi:5.1f} {cfg.constellation_order:>6}"
        )
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.web.sites import SiteGenerator

    generator = SiteGenerator(seed=args.seed, n_sites=args.sites)
    print(f"{'rank':>4} {'category':12} domain")
    for site in generator.websites():
        print(f"{site.rank:>4} {site.category:12} {site.domain}")
    print(f"\n{len(generator.all_urls())} pages "
          f"({args.sites} landing + {args.sites * 3} internal)")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.imaging.pnm import write_ppm
    from repro.web.render import PageRenderer
    from repro.web.sites import SiteGenerator

    generator = SiteGenerator(seed=args.seed)
    renderer = PageRenderer(width=args.width, max_height=args.max_height)
    try:
        result = renderer.render(generator.page(args.url, hour=args.hour))
    except KeyError:
        print(f"error: {args.url!r} is not in the corpus "
              f"(try `python -m repro corpus`)", file=sys.stderr)
        return 1
    write_ppm(args.out, result.image)
    print(f"rendered {args.url} at hour {args.hour}: "
          f"{result.image.shape[0]}x{result.image.shape[1]} "
          f"(full height {result.full_height}) -> {args.out}")
    if args.clickmap:
        with open(args.clickmap, "w") as f:
            for region in result.clickmap:
                f.write(f"{region.x} {region.y} {region.width} {region.height} {region.href}\n")
        print(f"click map ({len(result.clickmap)} regions) -> {args.clickmap}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.imaging.codec import SWebpCodec
    from repro.imaging.pnm import read_pnm

    image = read_pnm(args.input)
    data = SWebpCodec(args.quality).encode(image)
    Path(args.output).write_bytes(data)
    print(f"{args.input} ({image.nbytes} B raw) -> {args.output} "
          f"({len(data)} B, Q{args.quality}, {image.nbytes / len(data):.1f}x)")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    from repro.imaging.codec import CodecError, SWebpCodec
    from repro.imaging.pnm import write_pgm, write_ppm

    try:
        image = SWebpCodec().decode(Path(args.input).read_bytes())
    except CodecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if image.ndim == 3:
        write_ppm(args.output, image)
    else:
        write_pgm(args.output, image)
    print(f"{args.input} -> {args.output} ({image.shape[0]}x{image.shape[1]})")
    return 0


def _cmd_modem_tx(args: argparse.Namespace) -> int:
    from repro.dsp.wav import write_wav
    from repro.modem.modem import Modem

    data = Path(args.input).read_bytes()
    modem = Modem(args.profile)
    size = modem.frame_payload_size
    payloads = [
        data[i : i + size].ljust(size, b"\0") for i in range(0, len(data), size)
    ]
    if not payloads:
        print("error: input file is empty", file=sys.stderr)
        return 1
    wave_out = modem.transmit_burst(payloads)
    write_wav(args.output, wave_out, int(modem.profile.ofdm.sample_rate))
    seconds = wave_out.size / modem.profile.ofdm.sample_rate
    print(f"{len(data)} B -> {len(payloads)} frames -> {args.output} "
          f"({seconds:.2f}s of audio at {args.profile})")
    return 0


def _cmd_modem_rx(args: argparse.Namespace) -> int:
    from repro.dsp.wav import read_wav
    from repro.modem.modem import Modem

    samples, rate = read_wav(args.input)
    modem = Modem(args.profile)
    expected = int(modem.profile.ofdm.sample_rate)
    if rate != expected:
        print(f"warning: WAV is {rate} Hz, profile expects {expected} Hz",
              file=sys.stderr)
    frames = modem.receive(samples)
    good = [f.payload for f in frames if f.ok]
    if args.output:
        Path(args.output).write_bytes(b"".join(good))
    print(f"{len(frames)} frames detected, {len(good)} decoded "
          f"({100 * (1 - len(good) / max(len(frames), 1)):.0f}% loss)"
          + (f" -> {args.output}" if args.output else ""))
    return 0 if good else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.config import SystemConfig
    from repro.core.system import SonicSystem

    system = SonicSystem(
        SystemConfig(
            n_sites=args.sites,
            render_width=args.width,
            max_pixel_height=args.max_height,
            broadcast_rate_bps=args.rate,
        )
    )
    if args.request:
        system.client("user-c").request_page(args.request, system.clock.now)
    system.run(seconds=args.seconds, step_s=5.0)

    print(f"simulated {args.seconds:.0f}s at {args.rate / 1000:.0f} kbps, "
          f"{len(system.generator.all_urls())} corpus pages")
    stats = system.server.stats
    print(f"server: {stats.renders} renders, {stats.pushes} pushes, "
          f"{stats.requests} requests, {stats.cache_hits} cache hits")
    for client in system.clients:
        print(f"  {client.profile.name:8} cache {len(client.cache.urls()):3} pages, "
              f"frame loss {client.frame_loss_rate * 100:5.1f}%, "
              f"acks {len(client.acks)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf benchmarks (pytest -m perf) and report the JSON path."""
    import pytest

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
    if not bench_dir.is_dir():
        # Fall back to an invocation from the repository root.
        bench_dir = Path.cwd() / "benchmarks" / "perf"
    if not bench_dir.is_dir():
        print(
            "error: benchmarks/perf not found — run from the repository checkout",
            file=sys.stderr,
        )
        return 1
    argv = ["-m", "perf", "-s", "-q", str(bench_dir)]
    if args.keyword:
        argv += ["-k", args.keyword]
    code = pytest.main(argv)
    out = bench_dir.parents[1] / "BENCH_pipeline.json"
    if code == 0 and out.exists():
        print(f"\nresults -> {out}")
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SONIC reproduction: connect the unconnected via FM radio & SMS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profiles", help="list modem profiles").set_defaults(func=_cmd_profiles)

    p = sub.add_parser("corpus", help="list the synthetic .pk corpus")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--sites", type=int, default=25)
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser("render", help="render a corpus page to PPM")
    p.add_argument("url")
    p.add_argument("--hour", type=int, default=0)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--width", type=int, default=1080)
    p.add_argument("--max-height", type=int, default=10_000)
    p.add_argument("--out", default="page.ppm")
    p.add_argument("--clickmap", default=None)
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser("encode", help="compress a PPM/PGM image to SWebp")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--quality", type=int, default=10)
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("decode", help="decompress SWebp back to PPM/PGM")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("modem-tx", help="encode a file as modem audio (WAV)")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--profile", default="sonic-ofdm")
    p.set_defaults(func=_cmd_modem_tx)

    p = sub.add_parser("modem-rx", help="decode modem audio (WAV) to bytes")
    p.add_argument("input")
    p.add_argument("--output", default=None)
    p.add_argument("--profile", default="sonic-ofdm")
    p.set_defaults(func=_cmd_modem_rx)

    p = sub.add_parser(
        "bench", help="run the perf benchmarks (writes BENCH_pipeline.json)"
    )
    p.add_argument("-k", dest="keyword", default=None,
                   help="pytest -k expression to select benchmarks")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("simulate", help="run the end-to-end system")
    p.add_argument("--seconds", type=float, default=1_800.0)
    p.add_argument("--rate", type=float, default=10_000.0)
    p.add_argument("--sites", type=int, default=2)
    p.add_argument("--width", type=int, default=360)
    p.add_argument("--max-height", type=int, default=1_200)
    p.add_argument("--request", default=None, help="URL for user-c to request")
    p.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
