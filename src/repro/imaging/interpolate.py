"""Missing-pixel recovery by nearest-neighbour interpolation.

SONIC replaces the pixels of lost frames "with the value of their
adjacent pixel, prioritizing the left pixel given that the webpage
consists mostly of text read from left to right" (Section 3.3).  Because
the transport partitions images into 1-pixel-wide vertical columns, a
lost frame blanks a contiguous vertical run of one column — so the left
neighbour is usually intact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["interpolate_missing", "loss_mask_from_columns", "apply_loss"]


def loss_mask_from_columns(
    shape: tuple[int, int], lost: list[tuple[int, int, int]]
) -> np.ndarray:
    """Build a boolean (H, W) mask from lost column segments.

    ``lost`` holds ``(column, row_start, row_end)`` triples (end
    exclusive), the footprint of lost transport frames.
    """
    h, w = shape
    mask = np.zeros((h, w), dtype=bool)
    for col, r0, r1 in lost:
        if not 0 <= col < w:
            raise ValueError(f"column {col} outside image of width {w}")
        mask[max(0, r0) : min(h, r1), col] = True
    return mask


def apply_loss(
    image: np.ndarray, mask: np.ndarray, fill_value: int = 0
) -> np.ndarray:
    """Blank the masked pixels (what the user sees without recovery)."""
    image = np.asarray(image)
    if mask.shape != image.shape[:2]:
        raise ValueError("mask shape must match image height x width")
    out = image.copy()
    out[mask] = fill_value
    return out


def interpolate_missing(
    image: np.ndarray, mask: np.ndarray, max_passes: int = 4
) -> np.ndarray:
    """Fill masked pixels from their nearest intact neighbour.

    Priority order per pass: left, right, above, below — the paper's
    left-first rule.  Several passes let wide gaps (adjacent lost
    columns) fill progressively inward; any pixels still missing after
    ``max_passes`` are left at their current value.
    """
    image = np.asarray(image)
    if mask.shape != image.shape[:2]:
        raise ValueError("mask shape must match image height x width")
    out = image.copy()
    missing = mask.copy()
    for _ in range(max_passes):
        if not missing.any():
            break
        for shift_axis, shift in ((1, 1), (1, -1), (0, 1), (0, -1)):
            if not missing.any():
                break
            donor = np.roll(out, shift, axis=shift_axis)
            donor_ok = ~np.roll(missing, shift, axis=shift_axis)
            # roll wraps around the image edge; the wrapped lane is invalid.
            if shift_axis == 1 and shift == 1:
                donor_ok[:, 0] = False
            elif shift_axis == 1:
                donor_ok[:, -1] = False
            elif shift == 1:
                donor_ok[0, :] = False
            else:
                donor_ok[-1, :] = False
            fill = missing & donor_ok
            out[fill] = donor[fill]
            missing = missing & ~fill
    return out
