"""Canonical Huffman coding and bit-level serialisation.

The entropy-coding back end of :mod:`repro.imaging.codec`.  Code lengths
are capped at 16 bits (redistributed JPEG-style) so the decoder can run
off a single 16-bit peek table.  Bit packing is vectorised: all codewords
and extra-bit fields are laid out with cumulative offsets and written in
``max_length`` numpy passes rather than per-token Python loops.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["build_code_lengths", "CanonicalHuffman", "pack_fields", "BitReader"]

MAX_CODE_LEN = 16


def build_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths (capped at 16) for a frequency table.

    Symbols with zero frequency get length 0 (no code).  A single-symbol
    alphabet gets length 1.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    symbols = np.nonzero(freqs)[0]
    n = symbols.size
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if n == 0:
        return lengths
    if n == 1:
        lengths[symbols[0]] = 1
        return lengths

    # Standard Huffman tree construction over (weight, tiebreak, symbols).
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in symbols
    ]
    heapq.heapify(heap)
    counter = int(freqs.size)
    depth = {int(s): 0 for s in symbols}
    while len(heap) > 1:
        w1, _, group1 = heapq.heappop(heap)
        w2, _, group2 = heapq.heappop(heap)
        for s in group1 + group2:
            depth[s] += 1
        counter += 1
        heapq.heappush(heap, (w1 + w2, counter, group1 + group2))

    for s, d in depth.items():
        lengths[s] = d

    # Cap at MAX_CODE_LEN by pulling overlong codes up and pushing one
    # shorter code down (the classic JPEG "adjust bits" redistribution,
    # done on the Kraft sum).
    if lengths.max() > MAX_CODE_LEN:
        lengths = _limit_lengths(lengths)
    return lengths


def _limit_lengths(lengths: np.ndarray) -> np.ndarray:
    """Re-distribute code lengths so none exceeds MAX_CODE_LEN."""
    lengths = lengths.astype(np.int64)
    over = lengths > MAX_CODE_LEN
    kraft = np.sum(0.5 ** lengths[lengths > 0])
    lengths[over] = MAX_CODE_LEN
    kraft = np.sum(0.5 ** lengths[lengths > 0])
    # While the Kraft inequality is violated, lengthen the shortest
    # amenable codes (each lengthening of a code at depth d frees 2^-d-1).
    order = np.argsort(lengths)
    while kraft > 1.0 + 1e-12:
        for s in order:
            if 0 < lengths[s] < MAX_CODE_LEN:
                kraft -= 0.5 ** lengths[s]
                lengths[s] += 1
                kraft += 0.5 ** lengths[s]
                if kraft <= 1.0 + 1e-12:
                    break
    return lengths.astype(np.uint8)


class CanonicalHuffman:
    """Canonical code assignment + fast encode tables + 16-bit peek decode."""

    def __init__(self, lengths: np.ndarray) -> None:
        lengths = np.asarray(lengths, dtype=np.uint8)
        if lengths.max(initial=0) > MAX_CODE_LEN:
            raise ValueError("code length exceeds 16 bits")
        self.lengths = lengths
        self.codes = np.zeros(lengths.size, dtype=np.uint32)
        order = sorted(
            (int(l), int(s)) for s, l in enumerate(lengths) if l > 0
        )
        code = 0
        prev_len = 0
        for length, symbol in order:
            code <<= length - prev_len
            self.codes[symbol] = code
            code += 1
            prev_len = length
        # Peek tables are decode-only; the encoder builds six tables per
        # image and never peeks, so they materialise lazily via
        # :attr:`peek_tables` on the first decode.
        self._peek_symbol: np.ndarray | None = None
        self._peek_length: np.ndarray | None = None

    def serialize(self) -> bytes:
        """Compact table: count + (symbol, length) pairs for used symbols."""
        used = np.nonzero(self.lengths)[0]
        out = bytearray()
        out += len(used).to_bytes(2, "big")
        for s in used:
            out.append(int(s) & 0xFF)
            out.append(int(self.lengths[s]))
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes, offset: int, alphabet: int = 256):
        """Inverse of :meth:`serialize`; returns (table, new_offset)."""
        count = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        lengths = np.zeros(alphabet, dtype=np.uint8)
        for _ in range(count):
            lengths[data[offset]] = data[offset + 1]
            offset += 2
        return cls(lengths), offset

    def _build_peek(self) -> None:
        symbol_tab = np.zeros(1 << MAX_CODE_LEN, dtype=np.int32) - 1
        length_tab = np.zeros(1 << MAX_CODE_LEN, dtype=np.uint8)
        for s, l in enumerate(self.lengths):
            l = int(l)
            if l == 0:
                continue
            prefix = int(self.codes[s]) << (MAX_CODE_LEN - l)
            span = 1 << (MAX_CODE_LEN - l)
            symbol_tab[prefix : prefix + span] = s
            length_tab[prefix : prefix + span] = l
        self._peek_symbol = symbol_tab
        self._peek_length = length_tab

    @property
    def peek_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """(symbol, length) lookup tables indexed by a 16-bit peek."""
        if self._peek_symbol is None:
            self._build_peek()
        return self._peek_symbol, self._peek_length


def pack_fields(values: np.ndarray, lengths: np.ndarray) -> bytes:
    """Concatenate variable-width big-endian bit fields into bytes.

    ``values[i]`` is written MSB-first in ``lengths[i]`` bits.  Fields of
    length 0 are skipped.  Vectorised: one pass per bit position of the
    longest field.
    """
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    values, lengths = values[keep], lengths[keep]
    total = int(np.sum(lengths))
    if total == 0:
        return b""
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    bits = np.zeros(-(-total // 8) * 8, dtype=np.uint8)
    max_len = int(lengths.max())
    for b in range(max_len):
        mask = lengths > b
        pos = offsets[mask] + lengths[mask] - 1 - b
        bits[pos] = (values[mask] >> b) & 1
    return np.packbits(bits).tobytes()


class BitReader:
    """MSB-first bit cursor over bytes with a 16-bit peek window."""

    def __init__(self, data: bytes, bit_offset: int = 0) -> None:
        # Pad so a peek near the end never runs off the buffer.
        self._data = bytes(data) + b"\x00\x00\x00\x00"
        self.pos = bit_offset
        self.limit = len(data) * 8

    def peek16(self) -> int:
        byte_idx = self.pos >> 3
        window = int.from_bytes(self._data[byte_idx : byte_idx + 4], "big")
        return (window >> (16 - (self.pos & 7))) & 0xFFFF

    def read(self, n_bits: int) -> int:
        if n_bits == 0:
            return 0
        if not 0 < n_bits <= 32:
            raise ValueError(f"cannot read {n_bits} bits at once")
        if self.pos + n_bits > self.limit:
            raise EOFError("bit stream exhausted")
        byte_idx = self.pos >> 3
        window = int.from_bytes(self._data[byte_idx : byte_idx + 5], "big")
        shift = 40 - (self.pos & 7) - n_bits
        self.pos += n_bits
        return (window >> shift) & ((1 << n_bits) - 1)

    def skip(self, n_bits: int) -> None:
        if self.pos + n_bits > self.limit:
            raise EOFError("bit stream exhausted")
        self.pos += n_bits
