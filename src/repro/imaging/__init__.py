"""Imaging substrate: lossy still-image codec and loss recovery.

SONIC transmits *images* of rendered webpages instead of HTML/JS (paper
Section 3.2), encoded as WebP at quality 10.  ``SWebpCodec`` is a
from-scratch block-DCT codec with the same rate-quality mechanism and the
same 0-95 quality scale; ``interpolate`` implements the paper's
nearest-neighbour missing-pixel recovery with left-pixel priority.
"""

from repro.imaging.color import (
    rgb_to_ycbcr,
    ycbcr_to_rgb,
    downsample_420,
    upsample_420,
)
from repro.imaging.codec import SWebpCodec, CodecError
from repro.imaging.interpolate import (
    interpolate_missing,
    loss_mask_from_columns,
)
from repro.imaging.metrics import mse, psnr_db, ssim
from repro.imaging.pnm import read_pnm, write_pgm, write_ppm

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "downsample_420",
    "upsample_420",
    "SWebpCodec",
    "CodecError",
    "interpolate_missing",
    "loss_mask_from_columns",
    "mse",
    "psnr_db",
    "ssim",
    "read_pnm",
    "write_pgm",
    "write_ppm",
]
