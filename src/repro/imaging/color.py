"""Colour-space conversion and chroma subsampling (BT.601 full range)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_planes",
    "ycbcr_to_rgb",
    "downsample_420",
    "upsample_420",
]

# Per-channel lookup tables: lut[k] holds coeff * k (or 128 + coeff * k)
# for every uint8 value, so conversion is three gathers + two adds per
# plane.  Each table entry is the identical float64 product the direct
# formula computes, and the adds happen in the same left-to-right order,
# so ycbcr_planes() is bit-identical to rgb_to_ycbcr().
_LUTS: tuple[np.ndarray, ...] | None = None


def _luts() -> tuple[np.ndarray, ...]:
    global _LUTS
    if _LUTS is None:
        k = np.arange(256, dtype=np.float64)
        _LUTS = (
            0.299 * k, 0.587 * k, 0.114 * k,  # y = (r + g) + b
            128.0 - 0.168736 * k, 0.331264 * k, 0.5 * k,  # cb = (r - g) + b
            128.0 + 0.5 * k, 0.418688 * k, 0.081312 * k,  # cr = (r - g) - b
        )
    return _LUTS


# Pair tables: entry (r << 8) | g holds the correctly-rounded partial
# sums (yr+yg, cbr-cbg, crr-crg) for that red/green combination, so the
# whole conversion is two gathers and one add.  The table stores the
# same rounded float64 the runtime expression produces (one rounding per
# add either way), subtraction is folded into the sign of the blue
# products (IEEE a - b == a + (-b) and -(c*k) == (-c)*k exactly), and
# the final adds run left-to-right — so every output bit matches
# rgb_to_ycbcr().
_LUTS_PAIR: tuple[np.ndarray, np.ndarray] | None = None


def _luts_pair() -> tuple[np.ndarray, np.ndarray]:
    global _LUTS_PAIR
    if _LUTS_PAIR is None:
        k = np.arange(256, dtype=np.float64)
        r = np.repeat(k, 256)
        g = np.tile(k, 256)
        rg = np.empty((65536, 3))
        rg[:, 0] = 0.299 * r + 0.587 * g
        rg[:, 1] = (128.0 - 0.168736 * r) + (-(0.331264 * g))
        rg[:, 2] = (128.0 + 0.5 * r) + (-(0.418688 * g))
        b = np.empty((256, 3))
        b[:, 0] = 0.114 * k
        b[:, 1] = 0.5 * k
        b[:, 2] = -(0.081312 * k)
        _LUTS_PAIR = (rg, b)
    return _LUTS_PAIR


def ycbcr_planes(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """BT.601 conversion as three separate float64 planes.

    Bit-identical to :func:`rgb_to_ycbcr` (pinned by tests) but avoids
    the (H, W, 3) stack copy — the encoder splits the planes right back
    apart anyway.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {rgb.shape}")
    if rgb.dtype != np.uint8:  # LUTs index by uint8; take the direct path
        ycc = rgb_to_ycbcr(rgb)
        return ycc[..., 0], ycc[..., 1], ycc[..., 2]
    # Rendered pages repeat rows in long vertical runs (flat bands, text
    # leading), so convert one representative per run and gather the rest
    # back by index — identical bytes in, identical floats out.
    h, w, _ = rgb.shape
    rows = rgb.reshape(h, w * 3)
    diff = (rows[1:] != rows[:-1]).any(axis=1)
    ids = np.empty(h, dtype=np.intp)
    ids[0] = 0
    np.cumsum(diff, out=ids[1:])
    reps = np.empty(h, dtype=bool)
    reps[0] = True
    reps[1:] = diff
    sub = rgb[reps]
    pair, blue = _luts_pair()
    idx = sub[..., 0].astype(np.intp)
    idx <<= 8
    idx |= sub[..., 1]
    ycc = pair[idx]
    ycc += blue[sub[..., 2].astype(np.intp)]
    full = ycc[ids]
    return full[..., 0], full[..., 1], full[..., 2]


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) uint8 RGB image to float YCbCr planes.

    Output is float64 with Y in [0, 255] and Cb/Cr centred on 128.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {rgb.shape}")
    r = rgb[..., 0].astype(np.float64)
    g = rgb[..., 1].astype(np.float64)
    b = rgb[..., 2].astype(np.float64)
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Convert float YCbCr planes back to a uint8 RGB image."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def downsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average chroma subsampling (pads odd dimensions by edge).

    Written as explicit strided adds in ``mean``'s own reduction order —
    row pairs first, then the column pair, i.e. ``(a+b) + (c+d)`` — so
    the result is bit-identical to ``.mean(axis=(1, 3))`` without the
    generic reduce machinery.
    """
    plane = np.asarray(plane, dtype=np.float64)
    h, w = plane.shape
    if h % 2 or w % 2:
        plane = np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")
        h, w = plane.shape
    x = plane.reshape(h // 2, 2, w // 2, 2)
    if w < 4:  # degenerate layouts reduce in a different order
        return x.mean(axis=(1, 3))
    out = (x[:, 0, :, 0] + x[:, 0, :, 1]) + (x[:, 1, :, 0] + x[:, 1, :, 1])
    out /= 4.0
    return out


def upsample_420(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour chroma upsampling back to (out_h, out_w)."""
    plane = np.asarray(plane, dtype=np.float64)
    up = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return up[:out_h, :out_w]
