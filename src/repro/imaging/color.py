"""Colour-space conversion and chroma subsampling (BT.601 full range)."""

from __future__ import annotations

import numpy as np

__all__ = ["rgb_to_ycbcr", "ycbcr_to_rgb", "downsample_420", "upsample_420"]


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) uint8 RGB image to float YCbCr planes.

    Output is float64 with Y in [0, 255] and Cb/Cr centred on 128.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {rgb.shape}")
    r = rgb[..., 0].astype(np.float64)
    g = rgb[..., 1].astype(np.float64)
    b = rgb[..., 2].astype(np.float64)
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Convert float YCbCr planes back to a uint8 RGB image."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def downsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average chroma subsampling (pads odd dimensions by edge)."""
    plane = np.asarray(plane, dtype=np.float64)
    h, w = plane.shape
    if h % 2 or w % 2:
        plane = np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")
        h, w = plane.shape
    return plane.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_420(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour chroma upsampling back to (out_h, out_w)."""
    plane = np.asarray(plane, dtype=np.float64)
    up = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return up[:out_h, :out_w]
