"""Binary PPM/PGM image files.

The repository has no image library dependency, so visual artefacts
(Figure 1 reproductions, example screenshots) are written as NetPBM
files, which any image viewer opens.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "write_pgm", "read_pnm"]


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 image as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError("expected (H, W, 3) uint8 image")
    h, w = image.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(image.tobytes())


def write_pgm(path: str | Path, image: np.ndarray) -> None:
    """Write an (H, W) uint8 image as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ValueError("expected (H, W) uint8 image")
    h, w = image.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode())
        f.write(image.tobytes())


def read_pnm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) or PGM (P5) file back into numpy."""
    data = Path(path).read_bytes()
    if not data.startswith((b"P5", b"P6")):
        raise ValueError("not a binary PGM/PPM file")
    color = data.startswith(b"P6")
    # Parse header tokens (magic, width, height, maxval), skipping comments.
    tokens: list[bytes] = []
    pos = 0
    while len(tokens) < 4:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        tokens.append(data[start:pos])
    pos += 1  # single whitespace after maxval
    w, h = int(tokens[1]), int(tokens[2])
    if int(tokens[3]) != 255:
        raise ValueError("only 8-bit PNM supported")
    raw = np.frombuffer(data, dtype=np.uint8, count=h * w * (3 if color else 1), offset=pos)
    return raw.reshape(h, w, 3) if color else raw.reshape(h, w)
