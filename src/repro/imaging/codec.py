"""SWebp: a from-scratch block-DCT lossy image codec.

Stands in for WebP in the reproduction (see DESIGN.md): same rate-quality
mechanism (transform coding with quality-scaled quantisation and entropy
coding) and the same 0-95 quality scale the paper sweeps in Figure 4(b).

Pipeline: RGB -> YCbCr -> 4:2:0 chroma subsampling -> 8x8 DCT ->
quality-scaled quantisation -> zig-zag + run-length tokens -> per-plane
canonical Huffman tables.  Encoding is fully vectorised; decoding is a
sequential token walk with a 16-bit peek table.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sfft

from repro.imaging.color import (
    downsample_420,
    rgb_to_ycbcr,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.imaging.huffman import (
    BitReader,
    CanonicalHuffman,
    build_code_lengths,
    pack_fields,
)

__all__ = ["SWebpCodec", "CodecError"]

_MAGIC = b"SWBP"

# JPEG Annex K reference quantisation tables.
_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def _zigzag_order() -> np.ndarray:
    """Indices that map a flattened 8x8 block to zig-zag order."""
    coords = [(i, j) for i in range(8) for j in range(8)]
    coords.sort(key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 else ij[0]))
    return np.array([i * 8 + j for i, j in coords], dtype=np.int64)


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)
_BITLEN = np.zeros(1 << 15, dtype=np.int64)
for _v in range(1, 1 << 15):
    _BITLEN[_v] = _v.bit_length()

_ZRL = 0xF0  # sixteen zeros
_EOB = 0x00  # end of block


class CodecError(Exception):
    """Raised on malformed or truncated SWebp streams."""


def _scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """libjpeg-style quality scaling of a reference quantisation table."""
    q = min(max(int(quality), 1), 100)
    scale = 5000.0 / q if q < 50 else 200.0 - 2.0 * q
    table = np.floor((base * scale + 50.0) / 100.0)
    return np.clip(table, 1, 255)


def _blockify(plane: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad to 8x8 multiples (edge mode) and return (blocks, rows, cols)."""
    h, w = plane.shape
    ph, pw = (-h) % 8, (-w) % 8
    if ph or pw:
        plane = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    hh, ww = plane.shape
    rows, cols = hh // 8, ww // 8
    blocks = (
        plane.reshape(rows, 8, cols, 8).transpose(0, 2, 1, 3).reshape(-1, 8, 8)
    )
    return blocks, rows, cols


def _unblockify(blocks: np.ndarray, rows: int, cols: int, h: int, w: int) -> np.ndarray:
    plane = (
        blocks.reshape(rows, cols, 8, 8).transpose(0, 2, 1, 3).reshape(rows * 8, cols * 8)
    )
    return plane[:h, :w]


class SWebpCodec:
    """Encoder/decoder at a fixed quality setting.

    >>> codec = SWebpCodec(quality=10)
    >>> data = codec.encode(image)       # (H, W, 3) or (H, W) uint8
    >>> restored = codec.decode(data)
    """

    def __init__(self, quality: int = 10) -> None:
        if not 0 <= quality <= 95:
            raise ValueError("quality must be in [0, 95] (WebP scale)")
        self.quality = quality
        self._qy = _scaled_table(_LUMA_QUANT, quality)
        self._qc = _scaled_table(_CHROMA_QUANT, quality)

    # -- encoding ------------------------------------------------------------

    def encode(self, image: np.ndarray) -> bytes:
        """Compress an (H, W, 3) colour or (H, W) grayscale uint8 image."""
        image = np.asarray(image)
        if image.dtype != np.uint8:
            raise ValueError("expected a uint8 image")
        color = image.ndim == 3
        if color and image.shape[2] != 3:
            raise ValueError(f"expected 3 channels, got {image.shape}")
        if image.ndim not in (2, 3):
            raise ValueError(f"expected 2-D or 3-D image, got shape {image.shape}")
        h, w = image.shape[:2]
        if not 1 <= h <= 65_535 or not 1 <= w <= 65_535:
            raise ValueError("image dimensions must fit in 16 bits")

        header = bytearray(_MAGIC)
        header.append(1)  # version
        header.append(1 if color else 0)
        header += w.to_bytes(2, "big") + h.to_bytes(2, "big")
        header.append(self.quality)

        if color:
            ycc = rgb_to_ycbcr(image)
            planes = [
                (ycc[..., 0], self._qy),
                (downsample_420(ycc[..., 1]), self._qc),
                (downsample_420(ycc[..., 2]), self._qc),
            ]
        else:
            planes = [(image.astype(np.float64), self._qy)]

        body = bytearray()
        for plane, qtable in planes:
            body += self._encode_plane(plane, qtable)
        return bytes(header) + bytes(body)

    def encoded_size(self, image: np.ndarray) -> int:
        """Size in bytes of :meth:`encode`'s output for this image."""
        return len(self.encode(image))

    def _encode_plane(self, plane: np.ndarray, qtable: np.ndarray) -> bytes:
        blocks, rows, cols = _blockify(plane - 128.0)
        coeffs = sfft.dctn(blocks, axes=(1, 2), norm="ortho")
        quant = np.round(coeffs / qtable).astype(np.int64)
        n_blocks = quant.shape[0]
        zz = quant.reshape(n_blocks, 64)[:, _ZIGZAG]

        # --- DC tokens (differential) ---
        dc = zz[:, 0]
        dc_diff = np.concatenate([[dc[0]], np.diff(dc)])
        dc_size = _BITLEN[np.minimum(np.abs(dc_diff), (1 << 15) - 1)]
        dc_extra = np.where(dc_diff >= 0, dc_diff, dc_diff + (1 << dc_size) - 1)
        dc_keys = np.arange(n_blocks, dtype=np.int64) * 66 * 100

        # --- AC tokens ---
        ac = zz[:, 1:]
        nz_b, nz_c = np.nonzero(ac)
        vals = ac[nz_b, nz_c]
        first_in_block = np.concatenate([[True], np.diff(nz_b) != 0])
        prev_c = np.concatenate([[0], nz_c[:-1]])
        runs = np.where(first_in_block, nz_c, nz_c - prev_c - 1)
        zrl_count = runs // 16
        run_rem = runs % 16
        sizes = _BITLEN[np.minimum(np.abs(vals), (1 << 15) - 1)]
        if np.any(np.abs(vals) >= (1 << 15)):
            raise CodecError("coefficient magnitude exceeds 15-bit limit")
        ac_syms = (run_rem.astype(np.int64) << 4) | sizes
        ac_extra = np.where(vals >= 0, vals, vals + (1 << sizes) - 1)
        ac_keys = (nz_b * 66 + 1 + nz_c) * 100

        # ZRL emissions: zrl_count[i] tokens just before symbol i.
        zrl_parent = np.repeat(np.arange(nz_b.size), zrl_count)
        if zrl_parent.size:
            # j-th ZRL of its parent gets a key just below the parent's.
            cum = np.concatenate([[0], np.cumsum(zrl_count)[:-1]])
            j = np.arange(zrl_parent.size) - cum[zrl_parent]
            k = zrl_count[zrl_parent]
            zrl_keys = ac_keys[zrl_parent] - (k - j)
        else:
            zrl_keys = np.zeros(0, dtype=np.int64)

        # EOB per block whose last nonzero is before position 62 (or empty).
        last_nz = np.full(n_blocks, -1, dtype=np.int64)
        last_nz[nz_b] = nz_c  # nonzeros are in order; the last write wins
        eob_blocks = np.nonzero(last_nz < 62)[0]
        eob_keys = (eob_blocks * 66 + 65) * 100

        # --- Huffman tables ---
        dc_freq = np.bincount(dc_size, minlength=256)
        ac_all_syms = np.concatenate(
            [
                ac_syms,
                np.full(zrl_keys.size, _ZRL, dtype=np.int64),
                np.full(eob_keys.size, _EOB, dtype=np.int64),
            ]
        )
        ac_freq = np.bincount(ac_all_syms, minlength=256)
        dc_table = CanonicalHuffman(build_code_lengths(dc_freq))
        ac_table = CanonicalHuffman(build_code_lengths(ac_freq))

        # --- Emissions: (key, code value, code length, extra, extra length) ---
        keys = np.concatenate([dc_keys, ac_keys, zrl_keys, eob_keys])
        code_vals = np.concatenate(
            [
                dc_table.codes[dc_size],
                ac_table.codes[ac_syms],
                np.full(zrl_keys.size, int(ac_table.codes[_ZRL]), dtype=np.int64),
                np.full(eob_keys.size, int(ac_table.codes[_EOB]), dtype=np.int64),
            ]
        ).astype(np.int64)
        code_lens = np.concatenate(
            [
                dc_table.lengths[dc_size],
                ac_table.lengths[ac_syms],
                np.full(zrl_keys.size, int(ac_table.lengths[_ZRL]), dtype=np.int64),
                np.full(eob_keys.size, int(ac_table.lengths[_EOB]), dtype=np.int64),
            ]
        ).astype(np.int64)
        extras = np.concatenate(
            [dc_extra, ac_extra, np.zeros(zrl_keys.size + eob_keys.size, dtype=np.int64)]
        )
        extra_lens = np.concatenate(
            [dc_size, sizes, np.zeros(zrl_keys.size + eob_keys.size, dtype=np.int64)]
        )

        order = np.argsort(keys, kind="stable")
        inter_vals = np.stack([code_vals[order], extras[order]], axis=1).reshape(-1)
        inter_lens = np.stack([code_lens[order], extra_lens[order]], axis=1).reshape(-1)
        payload = pack_fields(inter_vals, inter_lens)
        total_bits = int(np.sum(inter_lens))

        out = bytearray()
        out += dc_table.serialize()
        out += ac_table.serialize()
        out += total_bits.to_bytes(4, "big")
        out += payload
        return bytes(out)

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decompress an SWebp stream back to a uint8 image."""
        if data[:4] != _MAGIC:
            raise CodecError("bad magic")
        if len(data) < 11:
            raise CodecError("truncated header")
        if data[4] != 1:
            raise CodecError(f"unsupported version {data[4]}")
        color = bool(data[5])
        w = int.from_bytes(data[6:8], "big")
        h = int.from_bytes(data[8:10], "big")
        quality = data[10]
        qy = _scaled_table(_LUMA_QUANT, quality)
        qc = _scaled_table(_CHROMA_QUANT, quality)
        offset = 11

        if color:
            ch, cw = -(-h // 2), -(-w // 2)
            y, offset = self._decode_plane(data, offset, h, w, qy)
            cb, offset = self._decode_plane(data, offset, ch, cw, qc)
            cr, offset = self._decode_plane(data, offset, ch, cw, qc)
            ycc = np.stack(
                [y, upsample_420(cb, h, w), upsample_420(cr, h, w)], axis=-1
            )
            return ycbcr_to_rgb(ycc)
        y, offset = self._decode_plane(data, offset, h, w, qy)
        return np.clip(np.round(y), 0, 255).astype(np.uint8)

    def _decode_plane(
        self, data: bytes, offset: int, h: int, w: int, qtable: np.ndarray
    ) -> tuple[np.ndarray, int]:
        try:
            dc_table, offset = CanonicalHuffman.deserialize(data, offset)
            ac_table, offset = CanonicalHuffman.deserialize(data, offset)
            total_bits = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            n_bytes = -(-total_bits // 8)
            reader = BitReader(data[offset : offset + n_bytes])
        except (IndexError, ValueError) as exc:
            raise CodecError("truncated stream") from exc

        dc_sym, dc_len = dc_table.peek_tables
        ac_sym, ac_len = ac_table.peek_tables
        rows, cols = -(-h // 8), -(-w // 8)
        n_blocks = rows * cols
        zz = np.zeros((n_blocks, 64), dtype=np.int64)
        prev_dc = 0
        try:
            for b in range(n_blocks):
                sym = int(dc_sym[reader.peek16()])
                if not 0 <= sym <= 15:
                    raise CodecError("invalid DC code")
                reader.skip(int(dc_len[reader.peek16()]))
                diff = self._read_signed(reader, sym)
                prev_dc += diff
                zz[b, 0] = prev_dc
                pos = 1
                while pos < 64:
                    peek = reader.peek16()
                    sym = int(ac_sym[peek])
                    if sym < 0:
                        raise CodecError("invalid AC code")
                    reader.skip(int(ac_len[peek]))
                    if sym == _EOB:
                        break
                    if sym == _ZRL:
                        pos += 16
                        continue
                    run, size = sym >> 4, sym & 0xF
                    pos += run
                    if pos >= 64:
                        raise CodecError("AC run overflow")
                    zz[b, pos] = self._read_signed(reader, size)
                    pos += 1
        except (EOFError, ValueError) as exc:
            raise CodecError("bit stream exhausted mid-block") from exc

        quant = np.zeros((n_blocks, 64), dtype=np.float64)
        quant[:, _ZIGZAG] = zz
        blocks = quant.reshape(-1, 8, 8) * qtable
        pixels = sfft.idctn(blocks, axes=(1, 2), norm="ortho")
        plane = _unblockify(pixels, rows, cols, h, w) + 128.0
        return plane, offset + (-(-total_bits // 8))

    @staticmethod
    def _read_signed(reader: BitReader, size: int) -> int:
        if size == 0:
            return 0
        bits = reader.read(size)
        if bits < (1 << (size - 1)):
            return bits - (1 << size) + 1
        return bits
