"""SWebp: a from-scratch block-DCT lossy image codec.

Stands in for WebP in the reproduction (see DESIGN.md): same rate-quality
mechanism (transform coding with quality-scaled quantisation and entropy
coding) and the same 0-95 quality scale the paper sweeps in Figure 4(b).

Pipeline: RGB -> YCbCr -> 4:2:0 chroma subsampling -> 8x8 DCT ->
quality-scaled quantisation -> zig-zag + run-length tokens -> per-plane
canonical Huffman tables.  Both directions are vectorised: encoding
lays out all tokens with cumulative offsets, and :meth:`SWebpCodec.decode`
is a table-driven batch decoder that transcodes the bit stream through
per-bit-position gather tables and reconstructs every block in single
numpy/scipy calls.  The original sequential token walk is retained as
:meth:`SWebpCodec.decode_ref` and the batch path is pinned bit-for-bit
against it (the ``decode_soft_ref``/``decode_blocks`` pattern from the
modem layer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import fft as sfft

from repro.imaging.color import (
    downsample_420,
    upsample_420,
    ycbcr_planes,
    ycbcr_to_rgb,
)
from repro.imaging.huffman import (
    BitReader,
    CanonicalHuffman,
    build_code_lengths,
    pack_fields,
)

__all__ = ["SWebpCodec", "SWebpHeader", "CodecError"]

_MAGIC = b"SWBP"
_HEADER_LEN = 11

# JPEG Annex K reference quantisation tables.
_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
_CHROMA_QUANT = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def _zigzag_order() -> np.ndarray:
    """Indices that map a flattened 8x8 block to zig-zag order."""
    coords = [(i, j) for i in range(8) for j in range(8)]
    coords.sort(key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 else ij[0]))
    return np.array([i * 8 + j for i, j in coords], dtype=np.int64)


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)
_BITLEN = np.zeros(1 << 15, dtype=np.int64)
for _v in range(1, 1 << 15):
    _BITLEN[_v] = _v.bit_length()

_ZRL = 0xF0  # sixteen zeros
_EOB = 0x00  # end of block


class CodecError(Exception):
    """Raised on malformed or truncated SWebp streams."""


@dataclass(frozen=True)
class SWebpHeader:
    """The fixed 11-byte SWebp stream header, parsed once per decode."""

    color: bool
    width: int
    height: int
    quality: int

    @classmethod
    def parse(cls, data: bytes) -> "SWebpHeader":
        if data[:4] != _MAGIC:
            raise CodecError("bad magic")
        if len(data) < _HEADER_LEN:
            raise CodecError("truncated header")
        if data[4] != 1:
            raise CodecError(f"unsupported version {data[4]}")
        return cls(
            color=bool(data[5]),
            width=int.from_bytes(data[6:8], "big"),
            height=int.from_bytes(data[8:10], "big"),
            quality=data[10],
        )


def _read_plane_header(
    data: bytes, offset: int
) -> tuple[CanonicalHuffman, CanonicalHuffman, bytes, int]:
    """Huffman tables + entropy payload of one plane; returns new offset."""
    try:
        dc_table, offset = CanonicalHuffman.deserialize(data, offset)
        ac_table, offset = CanonicalHuffman.deserialize(data, offset)
        total_bits = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
    except (IndexError, ValueError) as exc:
        raise CodecError("truncated stream") from exc
    n_bytes = -(-total_bits // 8)
    payload = data[offset : offset + n_bytes]
    return dc_table, ac_table, payload, offset + n_bytes


def _scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """libjpeg-style quality scaling of a reference quantisation table."""
    q = min(max(int(quality), 1), 100)
    scale = 5000.0 / q if q < 50 else 200.0 - 2.0 * q
    table = np.floor((base * scale + 50.0) / 100.0)
    return np.clip(table, 1, 255)


def _blockify(plane: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad to 8x8 multiples (edge mode) and return (blocks, rows, cols)."""
    h, w = plane.shape
    ph, pw = (-h) % 8, (-w) % 8
    if ph or pw:
        plane = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    hh, ww = plane.shape
    rows, cols = hh // 8, ww // 8
    blocks = (
        plane.reshape(rows, 8, cols, 8).transpose(0, 2, 1, 3).reshape(-1, 8, 8)
    )
    return blocks, rows, cols


def _unblockify(blocks: np.ndarray, rows: int, cols: int, h: int, w: int) -> np.ndarray:
    plane = (
        blocks.reshape(rows, cols, 8, 8).transpose(0, 2, 1, 3).reshape(rows * 8, cols * 8)
    )
    return plane[:h, :w]


class SWebpCodec:
    """Encoder/decoder at a fixed quality setting.

    >>> codec = SWebpCodec(quality=10)
    >>> data = codec.encode(image)       # (H, W, 3) or (H, W) uint8
    >>> restored = codec.decode(data)
    """

    def __init__(self, quality: int = 10) -> None:
        if not 0 <= quality <= 95:
            raise ValueError("quality must be in [0, 95] (WebP scale)")
        self.quality = quality
        self._qy = _scaled_table(_LUMA_QUANT, quality)
        self._qc = _scaled_table(_CHROMA_QUANT, quality)

    # -- encoding ------------------------------------------------------------

    def encode(self, image: np.ndarray) -> bytes:
        """Compress an (H, W, 3) colour or (H, W) grayscale uint8 image."""
        image = np.asarray(image)
        if image.dtype != np.uint8:
            raise ValueError("expected a uint8 image")
        color = image.ndim == 3
        if color and image.shape[2] != 3:
            raise ValueError(f"expected 3 channels, got {image.shape}")
        if image.ndim not in (2, 3):
            raise ValueError(f"expected 2-D or 3-D image, got shape {image.shape}")
        h, w = image.shape[:2]
        if not 1 <= h <= 65_535 or not 1 <= w <= 65_535:
            raise ValueError("image dimensions must fit in 16 bits")

        header = bytearray(_MAGIC)
        header.append(1)  # version
        header.append(1 if color else 0)
        header += w.to_bytes(2, "big") + h.to_bytes(2, "big")
        header.append(self.quality)

        if color:
            yp, cb, cr = ycbcr_planes(image)
            planes = [
                (yp, self._qy),
                (downsample_420(cb), self._qc),
                (downsample_420(cr), self._qc),
            ]
        else:
            planes = [(image.astype(np.float64), self._qy)]

        body = bytearray()
        for plane, qtable in planes:
            body += self._encode_plane(plane, qtable)
        return bytes(header) + bytes(body)

    def encoded_size(self, image: np.ndarray) -> int:
        """Size in bytes of :meth:`encode`'s output for this image."""
        return len(self.encode(image))

    def _encode_plane(self, plane: np.ndarray, qtable: np.ndarray) -> bytes:
        blocks, rows, cols = _blockify(plane - 128.0)
        n_blocks = blocks.shape[0]
        b64 = blocks.reshape(n_blocks, 64)

        # Rendered pages are mostly flat (constant-colour) blocks, and a
        # flat block's transform depends only on its value — so the DCT,
        # quantisation, and zig-zag run on one representative per
        # distinct flat value plus every non-flat block.  The per-block
        # transform is independent of its batch, so each block's
        # coefficients are bit-identical to the all-blocks path.
        flat = (b64 == b64[:, :1]).all(axis=1)
        f_ids = np.nonzero(flat)[0]
        nf_ids = np.nonzero(~flat)[0]
        uvals, f_inv = np.unique(b64[f_ids, 0], return_inverse=True)
        nu = uvals.size
        reps = np.concatenate(
            [np.broadcast_to(uvals[:, None], (nu, 64)), b64[nf_ids]]
        )
        coeffs = sfft.dctn(reps.reshape(-1, 8, 8), axes=(1, 2), norm="ortho")
        quant = np.round(coeffs / qtable).astype(np.int64)
        zz_reps = quant.reshape(-1, 64)[:, _ZIGZAG]

        dc = np.empty(n_blocks, dtype=np.int64)
        dc[f_ids] = zz_reps[:nu, 0][f_inv]
        dc[nf_ids] = zz_reps[nu:, 0]

        if zz_reps[:nu, 1:].any():
            # A flat block quantised to nonzero AC (possible only at
            # extreme quality settings): fall back to the dense layout
            # so its AC tokens are emitted like any other block's.
            zz = np.empty((n_blocks, 64), dtype=np.int64)
            zz[f_ids] = zz_reps[:nu][f_inv]
            zz[nf_ids] = zz_reps[nu:]
            ac = zz[:, 1:]
            nz_b, nz_c = np.nonzero(ac)
            vals = ac[nz_b, nz_c]
        else:
            # Flat blocks contribute no AC tokens: scan only the rest.
            ac = zz_reps[nu:, 1:]
            nzl, nz_c = np.nonzero(ac)
            vals = ac[nzl, nz_c]
            nz_b = nf_ids[nzl]

        # --- DC tokens (differential) ---
        dc_diff = np.concatenate([[dc[0]], np.diff(dc)])
        dc_size = _BITLEN[np.minimum(np.abs(dc_diff), (1 << 15) - 1)]
        dc_extra = np.where(dc_diff >= 0, dc_diff, dc_diff + (1 << dc_size) - 1)
        dc_keys = np.arange(n_blocks, dtype=np.int64) * 66 * 100

        # --- AC tokens ---
        first_in_block = np.concatenate([[True], np.diff(nz_b) != 0])
        prev_c = np.concatenate([[0], nz_c[:-1]])
        runs = np.where(first_in_block, nz_c, nz_c - prev_c - 1)
        zrl_count = runs // 16
        run_rem = runs % 16
        sizes = _BITLEN[np.minimum(np.abs(vals), (1 << 15) - 1)]
        if np.any(np.abs(vals) >= (1 << 15)):
            raise CodecError("coefficient magnitude exceeds 15-bit limit")
        ac_syms = (run_rem.astype(np.int64) << 4) | sizes
        ac_extra = np.where(vals >= 0, vals, vals + (1 << sizes) - 1)
        ac_keys = (nz_b * 66 + 1 + nz_c) * 100

        # ZRL emissions: zrl_count[i] tokens just before symbol i.
        zrl_parent = np.repeat(np.arange(nz_b.size), zrl_count)
        if zrl_parent.size:
            # j-th ZRL of its parent gets a key just below the parent's.
            cum = np.concatenate([[0], np.cumsum(zrl_count)[:-1]])
            j = np.arange(zrl_parent.size) - cum[zrl_parent]
            k = zrl_count[zrl_parent]
            zrl_keys = ac_keys[zrl_parent] - (k - j)
        else:
            zrl_keys = np.zeros(0, dtype=np.int64)

        # EOB per block whose last nonzero is before position 62 (or empty).
        last_nz = np.full(n_blocks, -1, dtype=np.int64)
        last_nz[nz_b] = nz_c  # nonzeros are in order; the last write wins
        eob_blocks = np.nonzero(last_nz < 62)[0]
        eob_keys = (eob_blocks * 66 + 65) * 100

        # --- Huffman tables ---
        dc_freq = np.bincount(dc_size, minlength=256)
        ac_all_syms = np.concatenate(
            [
                ac_syms,
                np.full(zrl_keys.size, _ZRL, dtype=np.int64),
                np.full(eob_keys.size, _EOB, dtype=np.int64),
            ]
        )
        ac_freq = np.bincount(ac_all_syms, minlength=256)
        dc_table = CanonicalHuffman(build_code_lengths(dc_freq))
        ac_table = CanonicalHuffman(build_code_lengths(ac_freq))

        # --- Emissions: (key, code value, code length, extra, extra length) ---
        keys = np.concatenate([dc_keys, ac_keys, zrl_keys, eob_keys])
        code_vals = np.concatenate(
            [
                dc_table.codes[dc_size],
                ac_table.codes[ac_syms],
                np.full(zrl_keys.size, int(ac_table.codes[_ZRL]), dtype=np.int64),
                np.full(eob_keys.size, int(ac_table.codes[_EOB]), dtype=np.int64),
            ]
        ).astype(np.int64)
        code_lens = np.concatenate(
            [
                dc_table.lengths[dc_size],
                ac_table.lengths[ac_syms],
                np.full(zrl_keys.size, int(ac_table.lengths[_ZRL]), dtype=np.int64),
                np.full(eob_keys.size, int(ac_table.lengths[_EOB]), dtype=np.int64),
            ]
        ).astype(np.int64)
        extras = np.concatenate(
            [dc_extra, ac_extra, np.zeros(zrl_keys.size + eob_keys.size, dtype=np.int64)]
        )
        extra_lens = np.concatenate(
            [dc_size, sizes, np.zeros(zrl_keys.size + eob_keys.size, dtype=np.int64)]
        )

        order = np.argsort(keys, kind="stable")
        inter_vals = np.stack([code_vals[order], extras[order]], axis=1).reshape(-1)
        inter_lens = np.stack([code_lens[order], extra_lens[order]], axis=1).reshape(-1)
        payload = pack_fields(inter_vals, inter_lens)
        total_bits = int(np.sum(inter_lens))

        out = bytearray()
        out += dc_table.serialize()
        out += ac_table.serialize()
        out += total_bits.to_bytes(4, "big")
        out += payload
        return bytes(out)

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decompress an SWebp stream back to a uint8 image.

        Table-driven batch decoder: the per-plane bit stream is transcoded
        through gather tables precomputed for every bit position (a tight
        pointer-chase walk records token positions; values, signs, and the
        DC prefix sum are then extracted in whole-array passes), duplicate
        coefficient blocks are collapsed before a single inverse-DCT call,
        and colour conversion runs per unique 16x16 macroblock.  Output is
        bit-for-bit identical to :meth:`decode_ref`, errors included.
        """
        header = SWebpHeader.parse(data)
        h, w = header.height, header.width
        qy = _scaled_table(_LUMA_QUANT, header.quality)
        qc = _scaled_table(_CHROMA_QUANT, header.quality)
        offset = _HEADER_LEN

        if not header.color:
            upix, inv, offset = self._decode_plane_blocks(data, offset, h, w, qy)
            u8 = np.clip(np.round(upix), 0, 255).astype(np.uint8)
            rows, cols = inv.shape
            plane = u8[inv.ravel()].reshape(rows, cols, 8, 8)
            plane = plane.transpose(0, 2, 1, 3).reshape(rows * 8, cols * 8)
            return np.ascontiguousarray(plane[:h, :w])

        ch, cw = -(-h // 2), -(-w // 2)
        uy, invy, offset = self._decode_plane_blocks(data, offset, h, w, qy)
        ucb, invcb, offset = self._decode_plane_blocks(data, offset, ch, cw, qc)
        ucr, invcr, offset = self._decode_plane_blocks(data, offset, ch, cw, qc)
        return _assemble_color(uy, invy, ucb, invcb, ucr, invcr, h, w)

    def _decode_plane_blocks(
        self, data: bytes, offset: int, h: int, w: int, qtable: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Decode one plane into unique pixel blocks plus a block-id grid.

        Returns ``(upix, inv, offset)`` where ``upix`` is ``(U, 8, 8)``
        float64 pixel blocks (already +128) and ``inv`` is the
        ``(rows, cols)`` index of each grid position into ``upix``.
        """
        dc_table, ac_table, payload, offset = _read_plane_header(data, offset)
        rows, cols = -(-h // 8), -(-w // 8)
        n_blocks = rows * cols
        dc_vals, wb, wpos, ac_vals = _transcode_plane(
            payload, dc_table, ac_table, n_blocks
        )
        upix, inv = _reconstruct_blocks(dc_vals, wb, wpos, ac_vals, n_blocks, qtable)
        return upix, inv.reshape(rows, cols), offset

    # -- reference decoder ---------------------------------------------------

    def decode_ref(self, data: bytes) -> np.ndarray:
        """Reference scalar decoder: one Huffman codeword at a time.

        Kept as the golden implementation the batch :meth:`decode` is
        pinned against, exactly like ``decode_soft_ref`` in the modem.
        """
        header = SWebpHeader.parse(data)
        h, w = header.height, header.width
        qy = _scaled_table(_LUMA_QUANT, header.quality)
        qc = _scaled_table(_CHROMA_QUANT, header.quality)
        offset = _HEADER_LEN

        if header.color:
            ch, cw = -(-h // 2), -(-w // 2)
            y, offset = self._decode_plane_ref(data, offset, h, w, qy)
            cb, offset = self._decode_plane_ref(data, offset, ch, cw, qc)
            cr, offset = self._decode_plane_ref(data, offset, ch, cw, qc)
            ycc = np.stack(
                [y, upsample_420(cb, h, w), upsample_420(cr, h, w)], axis=-1
            )
            return ycbcr_to_rgb(ycc)
        y, offset = self._decode_plane_ref(data, offset, h, w, qy)
        return np.clip(np.round(y), 0, 255).astype(np.uint8)

    def _decode_plane_ref(
        self, data: bytes, offset: int, h: int, w: int, qtable: np.ndarray
    ) -> tuple[np.ndarray, int]:
        dc_table, ac_table, payload, offset = _read_plane_header(data, offset)
        reader = BitReader(payload)

        dc_sym, dc_len = dc_table.peek_tables
        ac_sym, ac_len = ac_table.peek_tables
        rows, cols = -(-h // 8), -(-w // 8)
        n_blocks = rows * cols
        zz = np.zeros((n_blocks, 64), dtype=np.int64)
        prev_dc = 0
        try:
            for b in range(n_blocks):
                sym = int(dc_sym[reader.peek16()])
                if not 0 <= sym <= 15:
                    raise CodecError("invalid DC code")
                reader.skip(int(dc_len[reader.peek16()]))
                diff = self._read_signed(reader, sym)
                prev_dc += diff
                zz[b, 0] = prev_dc
                pos = 1
                while pos < 64:
                    peek = reader.peek16()
                    sym = int(ac_sym[peek])
                    if sym < 0:
                        raise CodecError("invalid AC code")
                    reader.skip(int(ac_len[peek]))
                    if sym == _EOB:
                        break
                    if sym == _ZRL:
                        pos += 16
                        if pos > 64:
                            raise CodecError("AC run overflow")
                        continue
                    run, size = sym >> 4, sym & 0xF
                    pos += run
                    if pos >= 64:
                        raise CodecError("AC run overflow")
                    zz[b, pos] = self._read_signed(reader, size)
                    pos += 1
        except (EOFError, ValueError) as exc:
            raise CodecError("bit stream exhausted mid-block") from exc

        quant = np.zeros((n_blocks, 64), dtype=np.float64)
        quant[:, _ZIGZAG] = zz
        blocks = quant.reshape(-1, 8, 8) * qtable
        pixels = sfft.idctn(blocks, axes=(1, 2), norm="ortho")
        plane = _unblockify(pixels, rows, cols, h, w) + 128.0
        return plane, offset

    @staticmethod
    def _read_signed(reader: BitReader, size: int) -> int:
        if size == 0:
            return 0
        bits = reader.read(size)
        if bits < (1 << (size - 1)):
            return bits - (1 << size) + 1
        return bits


# -- batch decode internals --------------------------------------------------
#
# The entropy stream is a strict chain: a block's first bit is unknown
# until the previous block is fully decoded, so codeword *selection* can
# never fan out across blocks.  What can be vectorised is everything
# around the chain: for every bit position of the payload we precompute
# "if a DC/AC codeword started here, what symbol is it and how many bits
# does it advance" (one gather through the 16-bit peek tables), leaving a
# minimal integer pointer-chase to pick the token positions.  Values are
# then extracted, sign-extended, and differenced in whole-array passes,
# and only *unique* coefficient blocks reach the inverse DCT.

# Sentinels in the per-bit AC dispatch table (`dpos`): entries 1..16 are
# "coefficient lands run+1 positions on", _DPOS_ZRL is a ZRL token and
# _DPOS_EOB an end-of-block; -1 marks an invalid codeword.
_DPOS_ZRL = 1016
_DPOS_EOB = 1 << 20


def _transcode_plane(
    payload: bytes,
    dc_table: CanonicalHuffman,
    ac_table: CanonicalHuffman,
    n_blocks: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Transcode one plane's bit stream into sparse coefficient arrays.

    Returns ``(dc_vals, wb, wpos, ac_vals)``: the per-block DC values
    (prefix sum already applied) and the AC writes as parallel arrays of
    block index, zig-zag position (1..63), and value.
    """
    n_bytes = len(payload)
    limit = n_bytes * 8
    b = np.zeros(n_bytes + 6, dtype=np.int64)
    b[:n_bytes] = np.frombuffer(payload, dtype=np.uint8)
    w40 = (b[:-4] << 32) | (b[1:-3] << 24) | (b[2:-2] << 16) | (b[3:-1] << 8) | b[4:]
    idx = np.arange(limit, dtype=np.int64)
    peek32 = (w40[idx >> 3] >> (8 - (idx & 7))) & 0xFFFFFFFF
    peek16 = peek32 >> 16
    del w40, idx

    dsym_t, dlen_t = dc_table.peek_tables
    dsym = dsym_t[peek16].astype(np.int64)
    d_adv = dlen_t[peek16] + dsym  # DC advance = code length + extra bits
    d_adv[(dsym < 0) | (dsym > 15)] = -1

    asym_t, alen_t = ac_table.peek_tables
    asym = asym_t[peek16].astype(np.int64)
    a_adv = alen_t[peek16] + (asym & 0xF)
    dpos = (asym >> 4) + 1
    dpos[asym == _ZRL] = _DPOS_ZRL
    dpos[asym == _EOB] = _DPOS_EOB
    dpos[asym < 0] = -1

    # Plain Python lists index ~3x faster than numpy scalars in the chase.
    d_adv_l = d_adv.tolist()
    a_adv_l = a_adv.tolist()
    a_dpos_l = dpos.tolist()
    del d_adv, a_adv, dpos

    dcp: list[int] = []  # bit position of each DC token
    wb: list[int] = []  # block index of each AC coefficient
    wpos: list[int] = []  # zig-zag position of each AC coefficient
    wtp: list[int] = []  # bit position of each AC coefficient token
    dcp_a, wb_a, wpos_a, wtp_a = dcp.append, wb.append, wpos.append, wtp.append
    pp = 0
    # Token advances are strictly positive, so `pp` is monotonic: running
    # off the end of the payload hits the lists' ends (IndexError) or the
    # final limit check below — the same streams the scalar walk rejects.
    try:
        for bi in range(n_blocks):
            a = d_adv_l[pp]
            if a < 0:
                raise CodecError("invalid DC code")
            dcp_a(pp)
            pp += a
            pos = 1
            while pos < 64:
                d = a_dpos_l[pp]
                if d <= 16:
                    if d < 0:
                        raise CodecError("invalid AC code")
                    pos += d
                    if pos > 64:
                        raise CodecError("AC run overflow")
                    wb_a(bi)
                    wpos_a(pos - 1)
                    wtp_a(pp)
                    pp += a_adv_l[pp]
                elif d == _DPOS_ZRL:
                    pos += 16
                    pp += a_adv_l[pp]
                    if pos > 64:
                        raise CodecError("AC run overflow")
                else:  # EOB
                    pp += a_adv_l[pp]
                    break
    except IndexError as exc:
        raise CodecError("bit stream exhausted mid-block") from exc
    if pp > limit:
        raise CodecError("bit stream exhausted mid-block")

    # Value extraction only at the recorded token positions.
    dcp_arr = np.asarray(dcp, dtype=np.int64)
    pk32 = peek32[dcp_arr]
    size = dsym_t[peek16[dcp_arr]].astype(np.int64)
    ln = dlen_t[peek16[dcp_arr]].astype(np.int64)
    extra = (pk32 >> (32 - ln - size)) & ((1 << size) - 1)
    half = (1 << size) >> 1
    dc_vals = np.cumsum(np.where(extra < half, extra - (1 << size) + 1, extra))

    if wtp:
        wtp_arr = np.asarray(wtp, dtype=np.int64)
        pk32 = peek32[wtp_arr]
        sym = asym_t[peek16[wtp_arr]].astype(np.int64)
        sz = sym & 0xF
        ln = alen_t[peek16[wtp_arr]].astype(np.int64)
        extra = (pk32 >> (32 - ln - sz)) & ((1 << sz) - 1)
        half = (1 << sz) >> 1
        ac_vals = np.where(extra < half, extra - (1 << sz) + 1, extra)
        wb_arr = np.asarray(wb, dtype=np.int64)
        wpos_arr = np.asarray(wpos, dtype=np.int64)
    else:
        ac_vals = np.zeros(0, dtype=np.int64)
        wb_arr = np.zeros(0, dtype=np.int64)
        wpos_arr = np.zeros(0, dtype=np.int64)
    return dc_vals, wb_arr, wpos_arr, ac_vals


def _reconstruct_blocks(
    dc_vals: np.ndarray,
    wb: np.ndarray,
    wpos: np.ndarray,
    ac_vals: np.ndarray,
    n_blocks: int,
    qtable: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Dequantise + inverse-DCT only the distinct coefficient blocks.

    Rendered pages are dominated by repeated blocks (flat background,
    tiled UI chrome), so the IDCT runs on the unique set and every grid
    position maps into it.  Returns ``(upix, inv)``: unique ``(U, 8, 8)``
    pixel blocks (already +128) and the per-block index into them.
    """
    if wb.size:
        n_writes = np.bincount(wb, minlength=n_blocks)
    else:
        n_writes = np.zeros(n_blocks, dtype=np.int64)
    flat = n_writes == 0
    f_ids = np.nonzero(flat)[0]
    nf_ids = np.nonzero(~flat)[0]

    inv = np.empty(n_blocks, dtype=np.int64)
    # DC-only blocks are identical iff their DC values are — no need to
    # materialise or sort their full 64-coefficient rows.
    uf_dc, uf_inv = np.unique(dc_vals[f_ids], return_inverse=True)
    inv[f_ids] = uf_inv
    n_flat_u = uf_dc.size

    if nf_ids.size:
        remap = np.empty(n_blocks, dtype=np.int64)
        remap[nf_ids] = np.arange(nf_ids.size)
        zz_nf = np.zeros((nf_ids.size, 64), dtype=np.int64)
        zz_nf[:, 0] = dc_vals[nf_ids]
        zz_nf[remap[wb], wpos] = ac_vals
        key = np.ascontiguousarray(zz_nf).view("V512").ravel()
        _, uidx, unf_inv = np.unique(key, return_index=True, return_inverse=True)
        inv[nf_ids] = n_flat_u + unf_inv
        zz_u = np.zeros((n_flat_u + uidx.size, 64), dtype=np.int64)
        zz_u[:n_flat_u, 0] = uf_dc
        zz_u[n_flat_u:] = zz_nf[uidx]
    else:
        zz_u = np.zeros((n_flat_u, 64), dtype=np.int64)
        zz_u[:, 0] = uf_dc

    quant = np.zeros((zz_u.shape[0], 64), dtype=np.float64)
    quant[:, _ZIGZAG] = zz_u
    blocks = quant.reshape(-1, 8, 8) * qtable
    upix = sfft.idctn(blocks, axes=(1, 2), norm="ortho")
    upix += 128.0
    return upix, inv


def _assemble_color(
    uy: np.ndarray,
    invy: np.ndarray,
    ucb: np.ndarray,
    invcb: np.ndarray,
    ucr: np.ndarray,
    invcr: np.ndarray,
    h: int,
    w: int,
) -> np.ndarray:
    """YCbCr -> RGB on unique 16x16 macroblocks, then one final gather.

    A macroblock's appearance is fully determined by its four luma block
    ids plus its chroma block ids, so colour conversion (the decoder's
    dominant full-resolution cost) collapses to the distinct id-tuples.
    The arithmetic matches :func:`repro.imaging.color.ycbcr_to_rgb` and
    nearest-neighbour 4:2:0 upsampling term for term, which keeps the
    result bit-identical to the reference path.
    """
    crows, ccols = invcb.shape
    # Pad the luma grid to the chroma grid's 2x coverage; padded slots
    # reference an arbitrary valid block and are cropped away below.
    ly = np.zeros((2 * crows, 2 * ccols), dtype=np.int64)
    ly[: invy.shape[0], : invy.shape[1]] = invy

    mbkey = np.empty((crows * ccols, 6), dtype=np.int32)
    mbkey[:, 0] = ly[0::2, 0::2].ravel()
    mbkey[:, 1] = ly[0::2, 1::2].ravel()
    mbkey[:, 2] = ly[1::2, 0::2].ravel()
    mbkey[:, 3] = ly[1::2, 1::2].ravel()
    mbkey[:, 4] = invcb.ravel()
    mbkey[:, 5] = invcr.ravel()
    kview = np.ascontiguousarray(mbkey).view("V24").ravel()
    _, uidx, minv = np.unique(kview, return_index=True, return_inverse=True)
    ukeys = mbkey[uidx]
    n_mb = ukeys.shape[0]

    y16 = np.empty((n_mb, 16, 16), dtype=np.float64)
    y16[:, :8, :8] = uy[ukeys[:, 0]]
    y16[:, :8, 8:] = uy[ukeys[:, 1]]
    y16[:, 8:, :8] = uy[ukeys[:, 2]]
    y16[:, 8:, 8:] = uy[ukeys[:, 3]]
    cb8 = ucb[ukeys[:, 4]] - 128.0
    cr8 = ucr[ukeys[:, 5]] - 128.0

    def up16(q: np.ndarray) -> np.ndarray:
        # Nearest-neighbour 2x upsample of (n_mb, 8, 8) chroma blocks.
        return np.broadcast_to(
            q[:, :, None, :, None], (n_mb, 8, 2, 8, 2)
        ).reshape(n_mb, 16, 16)

    rgb = np.empty((n_mb, 16, 16, 3), dtype=np.uint8)
    r = y16 + up16(1.402 * cr8)
    np.rint(r, out=r)
    np.clip(r, 0, 255, out=r)
    rgb[..., 0] = r
    g = y16 - up16(0.344136 * cb8)
    g -= up16(0.714136 * cr8)
    np.rint(g, out=g)
    np.clip(g, 0, 255, out=g)
    rgb[..., 1] = g
    bb = y16 + up16(1.772 * cb8)
    np.rint(bb, out=bb)
    np.clip(bb, 0, 255, out=bb)
    rgb[..., 2] = bb

    out = rgb[minv].reshape(crows, ccols, 16, 16, 3)
    out = out.transpose(0, 2, 1, 3, 4).reshape(crows * 16, ccols * 16, 3)
    return np.ascontiguousarray(out[:h, :w])
