"""Image quality metrics used by the loss/readability experiments."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["mse", "psnr_db", "ssim"]


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr_db(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf-safe: capped at 100 dB)."""
    err = mse(a, b)
    if err <= peak**2 * 1e-10:
        return 100.0
    return float(10.0 * np.log10(peak**2 / err))


def ssim(a: np.ndarray, b: np.ndarray, sigma: float = 1.5) -> float:
    """Structural similarity (Gaussian-windowed, luma only).

    Colour images are converted to luma first.  Returns the mean SSIM
    over the image, in [-1, 1].
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.ndim == 3:
        weights = np.array([0.299, 0.587, 0.114])
        a = a @ weights
        b = b @ weights

    c1 = (0.01 * 255) ** 2
    c2 = (0.03 * 255) ** 2
    mu_a = ndimage.gaussian_filter(a, sigma)
    mu_b = ndimage.gaussian_filter(b, sigma)
    var_a = ndimage.gaussian_filter(a * a, sigma) - mu_a**2
    var_b = ndimage.gaussian_filter(b * b, sigma) - mu_b**2
    cov = ndimage.gaussian_filter(a * b, sigma) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))
