"""SMS uplink substrate.

SONIC's uplink, "when available", is the SMS network (paper Section 1):
a user texts a URL to a SONIC number; the server replies with an ACK and
a delivery estimate.  This package implements the GSM 7-bit alphabet and
septet packing, message segmentation, a store-and-forward gateway with
latency/loss, and SONIC's request/response protocol.
"""

from repro.sms.gsm7 import gsm7_encode, gsm7_decode, is_gsm7_compatible
from repro.sms.message import SmsMessage, segment_text, SEGMENT_LIMIT
from repro.sms.gateway import SmsGateway, GatewayConfig
from repro.sms.protocol import (
    LinkReport,
    PageRequest,
    ProfileAdvice,
    RequestAck,
    RequestError,
    SearchRequest,
    parse_uplink,
    parse_downlink,
)

__all__ = [
    "gsm7_encode",
    "gsm7_decode",
    "is_gsm7_compatible",
    "SmsMessage",
    "segment_text",
    "SEGMENT_LIMIT",
    "SmsGateway",
    "GatewayConfig",
    "LinkReport",
    "PageRequest",
    "ProfileAdvice",
    "RequestAck",
    "RequestError",
    "SearchRequest",
    "parse_uplink",
    "parse_downlink",
]
