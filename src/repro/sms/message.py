"""SMS messages and multi-part segmentation.

A single SMS carries 160 GSM-7 characters; longer texts split into
concatenated segments of 153 characters (the user-data header costs 7
septets per segment).  SONIC keeps its protocol messages inside a single
segment whenever possible — every extra segment costs the user money.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sms.gsm7 import is_gsm7_compatible, septet_length

__all__ = ["SmsMessage", "segment_text", "SEGMENT_LIMIT", "MULTIPART_LIMIT"]

SEGMENT_LIMIT = 160  # septets in a single SMS
MULTIPART_LIMIT = 153  # septets per segment once a UDH is present


def segment_text(text: str) -> list[str]:
    """Split ``text`` into SMS segments by septet budget.

    >>> segment_text("x" * 160)  # doctest: +ELLIPSIS
    ['xxx...']
    >>> len(segment_text("x" * 161))
    2
    """
    if not is_gsm7_compatible(text):
        raise ValueError("text contains characters outside the GSM 7-bit alphabet")
    if septet_length(text) <= SEGMENT_LIMIT:
        return [text]
    segments: list[str] = []
    current = ""
    for char in text:
        if septet_length(current + char) > MULTIPART_LIMIT:
            segments.append(current)
            current = char
        else:
            current += char
    if current:
        segments.append(current)
    return segments


@dataclass(frozen=True)
class SmsMessage:
    """One logical SMS (possibly multi-segment on the wire)."""

    sender: str
    recipient: str
    text: str
    submitted_at: float = 0.0  # simulation seconds

    def __post_init__(self) -> None:
        if not self.sender or not self.recipient:
            raise ValueError("sender and recipient are required")
        if not is_gsm7_compatible(self.text):
            raise ValueError("SMS text must be GSM 7-bit compatible")

    @property
    def segments(self) -> list[str]:
        return segment_text(self.text)

    @property
    def segment_count(self) -> int:
        """Billing unit: how many segments this message costs."""
        return len(self.segments)
