"""A store-and-forward SMS gateway with latency and loss.

SMS delivery is seconds-slow and occasionally lossy; SONIC's workflow
(request -> ACK with ETA -> broadcast) is designed around exactly that.
The gateway is simulation-time driven: ``submit`` timestamps a message,
``deliver_due`` hands over everything whose (randomised) delivery time
has passed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable

from repro.sms.message import SmsMessage
from repro.util.rng import derive_rng

__all__ = ["GatewayConfig", "SmsGateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Delivery behaviour of the carrier network."""

    median_latency_s: float = 4.0
    latency_sigma: float = 0.6  # log-normal shape
    loss_probability: float = 0.01
    per_segment_penalty_s: float = 1.0  # concatenated SMS arrive later


class SmsGateway:
    """Routes messages between numbers with realistic delays."""

    def __init__(self, config: GatewayConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else GatewayConfig()
        self._rng = derive_rng(seed, "sms-gateway")
        # Min-heap on (delivery time, submit sequence): delivery order is
        # identical to the historical re-sort-per-submit list (a stable
        # sort on time = time then insertion order) at O(log n) a message
        # instead of O(n log n).
        self._in_flight: list[tuple[float, int, SmsMessage]] = []
        self._seq = 0
        self._handlers: dict[str, Callable[[SmsMessage, float], None]] = {}
        self.submitted_count = 0
        self.delivered_count = 0
        self.lost_count = 0

    def register(self, number: str, handler: Callable[[SmsMessage, float], None]) -> None:
        """Attach a delivery handler for messages addressed to ``number``."""
        self._handlers[number] = handler

    def submit(self, message: SmsMessage, now: float) -> bool:
        """Hand a message to the network; returns False if dropped."""
        self.submitted_count += 1
        cfg = self.config
        if self._rng.random() < cfg.loss_probability:
            self.lost_count += 1
            return False
        latency = float(
            self._rng.lognormal(
                mean=math.log(cfg.median_latency_s), sigma=cfg.latency_sigma
            )
        )
        latency += cfg.per_segment_penalty_s * (message.segment_count - 1)
        heapq.heappush(self._in_flight, (now + latency, self._seq, message))
        self._seq += 1
        return True

    def pending_count(self) -> int:
        return len(self._in_flight)

    def deliver_due(self, now: float) -> list[SmsMessage]:
        """Deliver every message due by ``now``; returns what was delivered.

        Messages to numbers with a registered handler are dispatched to
        it; all delivered messages are also returned for inspection.
        """
        due: list[SmsMessage] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            due.append(heapq.heappop(self._in_flight)[2])
        for message in due:
            self.delivered_count += 1
            handler = self._handlers.get(message.recipient)
            if handler is not None:
                handler(message, now)
        return due
