"""GSM 03.38 7-bit default alphabet with septet packing.

The reason SMS carries 160 characters in 140 bytes: characters map to
7-bit septets, eight of which pack into seven octets.  SONIC requests
must survive this encoding, so URLs are checked for alphabet
compatibility before transmission.
"""

from __future__ import annotations

__all__ = ["gsm7_encode", "gsm7_decode", "is_gsm7_compatible"]

# GSM 03.38 basic character set, index = septet value.
_BASIC = (
    "@£$¥èéùìòÇ\nØø\rÅå"
    "Δ_ΦΓΛΩΠΨΣΘΞ\x1bÆæßÉ"
    " !\"#¤%&'()*+,-./"
    "0123456789:;<=>?"
    "¡ABCDEFGHIJKLMNO"
    "PQRSTUVWXYZÄÖÑÜ§"
    "¿abcdefghijklmno"
    "pqrstuvwxyzäöñüà"
)
# Extension table (preceded by the 0x1B escape septet).
_EXTENSION = {
    "^": 0x14, "{": 0x28, "}": 0x29, "\\": 0x2F,
    "[": 0x3C, "~": 0x3D, "]": 0x3E, "|": 0x40, "€": 0x65,
}
_CHAR_TO_SEPTET = {c: i for i, c in enumerate(_BASIC)}
_SEPTET_TO_CHAR = dict(enumerate(_BASIC))
_EXT_TO_CHAR = {v: k for k, v in _EXTENSION.items()}
_ESCAPE = 0x1B


def is_gsm7_compatible(text: str) -> bool:
    """True when every character exists in the GSM 7-bit alphabet."""
    return all(c in _CHAR_TO_SEPTET or c in _EXTENSION for c in text)


def _septets(text: str) -> list[int]:
    out: list[int] = []
    for c in text:
        if c in _CHAR_TO_SEPTET:
            out.append(_CHAR_TO_SEPTET[c])
        elif c in _EXTENSION:
            out.extend((_ESCAPE, _EXTENSION[c]))
        else:
            raise ValueError(f"character {c!r} not in GSM 7-bit alphabet")
    return out


def septet_length(text: str) -> int:
    """Septet count of a string (extension chars count twice)."""
    return len(_septets(text))


def gsm7_encode(text: str) -> bytes:
    """Pack a string into GSM 7-bit octets (bit-accumulator packing).

    >>> gsm7_encode("hello").hex()
    'e8329bfd06'
    """
    septets = _septets(text)
    out = bytearray()
    acc = 0
    acc_bits = 0
    for septet in septets:
        acc |= septet << acc_bits
        acc_bits += 7
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def gsm7_decode(data: bytes, n_septets: int | None = None) -> str:
    """Unpack GSM 7-bit octets back to text.

    ``n_septets`` disambiguates the final byte (7 trailing zero bits can
    be either padding or an '@'); by default trailing zero septets in the
    last partial byte are treated as padding.
    """
    septets: list[int] = []
    acc = 0
    acc_bits = 0
    for byte in data:
        acc |= byte << acc_bits
        acc_bits += 8
        while acc_bits >= 7:
            septets.append(acc & 0x7F)
            acc >>= 7
            acc_bits -= 7
    if n_septets is not None:
        septets = septets[:n_septets]
    elif septets and septets[-1] == 0 and (len(data) * 8) % 7 != 0:
        septets.pop()
    text = []
    escape = False
    for s in septets:
        if escape:
            text.append(_EXT_TO_CHAR.get(s, "?"))
            escape = False
        elif s == _ESCAPE:
            escape = True
        else:
            text.append(_SEPTET_TO_CHAR[s])
    return "".join(text)
