"""SONIC's SMS request/response protocol.

Uplink (client -> server), one segment each:

* ``GET <url> LOC <lat>,<lon>`` — request a page.  The location lets the
  server pick the FM transmitter that covers the user (Section 3.1).
* ``FIND <query> LOC <lat>,<lon>`` — a search-engine query.
* ``RPT <profile> SNR <db> LOSS <lost>/<frames>`` — receiver feedback:
  decode outcome of the last burst under the named modem profile, at the
  audio SNR the client estimated.  Feeds the server's adaptive profile
  selection (the SMS uplink is SONIC's only return channel).

Downlink (server -> client):

* ``ACK <url> ETA <seconds>`` — request accepted, delivery estimate.
* ``ERR <url> <reason>`` — request rejected.
* ``USE <profile>`` — profile advice: decode the next bursts with this
  modem profile (the server switched because of link feedback).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PageRequest",
    "SearchRequest",
    "LinkReport",
    "RequestAck",
    "RequestError",
    "ProfileAdvice",
    "parse_uplink",
    "parse_downlink",
]


@dataclass(frozen=True)
class PageRequest:
    """GET: fetch (or reuse from cache) and broadcast a page."""

    url: str
    lat: float
    lon: float

    def to_text(self) -> str:
        return f"GET {self.url} LOC {self.lat:.4f},{self.lon:.4f}"


@dataclass(frozen=True)
class SearchRequest:
    """FIND: run a search query and broadcast the result page."""

    query: str
    lat: float
    lon: float

    def to_text(self) -> str:
        return f"FIND {self.query} LOC {self.lat:.4f},{self.lon:.4f}"


@dataclass(frozen=True)
class LinkReport:
    """RPT: one receiver's decode outcome under a profile at an SNR."""

    profile: str
    snr_db: float
    n_lost: int
    n_frames: int

    def __post_init__(self) -> None:
        if not 0 <= self.n_lost <= self.n_frames or self.n_frames <= 0:
            raise ValueError("need 0 <= n_lost <= n_frames, n_frames > 0")

    def to_text(self) -> str:
        return (
            f"RPT {self.profile} SNR {self.snr_db:.1f} "
            f"LOSS {self.n_lost}/{self.n_frames}"
        )


@dataclass(frozen=True)
class RequestAck:
    """ACK: the server's promise, with an airtime estimate."""

    url: str
    eta_seconds: float

    def to_text(self) -> str:
        return f"ACK {self.url} ETA {self.eta_seconds:.0f}"


@dataclass(frozen=True)
class RequestError:
    """ERR: the server declined (unsupported page, no coverage, ...)."""

    url: str
    reason: str

    def to_text(self) -> str:
        return f"ERR {self.url} {self.reason}"


@dataclass(frozen=True)
class ProfileAdvice:
    """USE: the server's pick for the client's next bursts."""

    profile: str

    def to_text(self) -> str:
        return f"USE {self.profile}"


def _parse_loc(parts: list[str]) -> tuple[float, float]:
    if len(parts) != 2 or parts[0] != "LOC":
        raise ValueError("missing LOC clause")
    lat_s, _, lon_s = parts[1].partition(",")
    return float(lat_s), float(lon_s)


def parse_uplink(text: str) -> PageRequest | SearchRequest | LinkReport:
    """Parse a client-originated message; raises ``ValueError`` if malformed."""
    tokens = text.strip().split(" ")
    if (
        len(tokens) == 6
        and tokens[0] == "RPT"
        and tokens[2] == "SNR"
        and tokens[4] == "LOSS"
    ):
        lost_s, sep, frames_s = tokens[5].partition("/")
        if not sep:
            raise ValueError(f"malformed LOSS clause: {text!r}")
        return LinkReport(
            profile=tokens[1],
            snr_db=float(tokens[3]),
            n_lost=int(lost_s),
            n_frames=int(frames_s),
        )
    if len(tokens) >= 4 and tokens[0] == "GET":
        lat, lon = _parse_loc(tokens[-2:])
        url = " ".join(tokens[1:-2])
        if not url or " " in url:
            raise ValueError(f"malformed URL in request: {text!r}")
        return PageRequest(url, lat, lon)
    if len(tokens) >= 4 and tokens[0] == "FIND":
        lat, lon = _parse_loc(tokens[-2:])
        query = " ".join(tokens[1:-2])
        if not query:
            raise ValueError("empty search query")
        return SearchRequest(query, lat, lon)
    raise ValueError(f"unrecognised uplink message: {text!r}")


def parse_downlink(text: str) -> RequestAck | RequestError | ProfileAdvice:
    """Parse a server-originated message."""
    tokens = text.strip().split(" ")
    if len(tokens) == 4 and tokens[0] == "ACK" and tokens[2] == "ETA":
        return RequestAck(tokens[1], float(tokens[3]))
    if len(tokens) == 2 and tokens[0] == "USE":
        return ProfileAdvice(tokens[1])
    if len(tokens) >= 3 and tokens[0] == "ERR":
        return RequestError(tokens[1], " ".join(tokens[2:]))
    raise ValueError(f"unrecognised downlink message: {text!r}")
