"""The SONIC server: SMS requests in, FM broadcasts out (Section 3.1).

Workflow for a request: parse the SMS, locate a transmitter covering the
user, produce the page bundle (cache first, render otherwise), queue it
on that transmitter's carousel ahead of the popularity pushes, and reply
with an ACK carrying the airtime estimate.  An hourly tick re-renders
changed popular pages and queues them as preemptive pushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.cache import BundleStore, PageCache, bundle_key
from repro.server.network import Station
from repro.server.scheduler import (
    AdaptiveProfileSelector,
    PopularityScheduler,
    SchedulerConfig,
)
from repro.server.transmitters import (
    Transmitter,
    TransmitterRegistry,
)
from repro.sim.geometry import Location
from repro.sms.gateway import SmsGateway
from repro.sms.message import SmsMessage
from repro.sms.protocol import (
    LinkReport,
    PageRequest,
    ProfileAdvice,
    RequestAck,
    RequestError,
    SearchRequest,
    parse_uplink,
)
from repro.transport.bundle import BundleTransport, PageBundle
from repro.transport.carousel import CarouselItem
from repro.web.dom import Heading, LinkList, Page, Paragraph
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

__all__ = ["ServerConfig", "SonicServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Server behaviour knobs."""

    sms_number: str = "+92300766421"
    render_width: int = 1080
    max_pixel_height: int | None = 10_000
    quality: int = 10
    cache_ttl_s: float = 4 * 3600.0
    client_cache_hours: float = 24.0
    unsupported_markers: tuple[str, ...] = ("login", "account", "bank", "signin")


@dataclass
class ServerStats:
    """Counters for the evaluation harness."""

    requests: int = 0
    cache_hits: int = 0
    renders: int = 0
    store_hits: int = 0  # encoded bundles reused from the BundleStore
    rejected: int = 0
    pushes: int = 0
    searches: int = 0
    link_reports: int = 0
    profile_switches: int = 0


class SonicServer:
    """Central SONIC service tying web, cache, SMS, and transmitters."""

    def __init__(
        self,
        generator: SiteGenerator,
        transmitters: TransmitterRegistry,
        gateway: SmsGateway,
        config: ServerConfig = ServerConfig(),
        scheduler_config: SchedulerConfig = SchedulerConfig(),
        bundle_store: BundleStore | None = None,
        profile_selector: AdaptiveProfileSelector | None = None,
    ) -> None:
        self.generator = generator
        self.transmitters = transmitters
        self.gateway = gateway
        self.config = config
        self.cache = PageCache(default_ttl_s=config.cache_ttl_s)
        self.bundle_store = bundle_store if bundle_store is not None else BundleStore()
        self.scheduler = PopularityScheduler(generator, scheduler_config)
        self.renderer = PageRenderer(
            width=config.render_width, max_height=config.max_pixel_height
        )
        self._transport = BundleTransport()
        self._page_ids: dict[str, int] = {}
        self._encoded: dict[tuple[str, int], bytes] = {}
        self._catalog_pipeline = None  # lazy; shared across push_catalog calls
        self.profile_selector = profile_selector
        self._advised_profile: str | None = None
        self._stations: dict[str, Station] = {}
        self.stats = ServerStats()
        gateway.register(config.sms_number, self._on_sms)

    # -- stations ---------------------------------------------------------------

    def station_for(self, tx: Transmitter) -> Station:
        """The regional :class:`Station` owning ``tx`` (created lazily).

        Stations share the server's profile selector; membership is
        refreshed from the registry so transmitters added after the
        first lookup still join their station.
        """
        assert tx.station is not None
        members = self.transmitters.for_station(tx.station)
        station = self._stations.get(tx.station)
        if station is None:
            station = Station(tx.station, members, selector=self.profile_selector)
            self._stations[tx.station] = station
        elif len(station.transmitters) != len(members):
            station.transmitters = members
        return station

    def stations(self) -> dict[str, Station]:
        """Every regional station in the registry, keyed by name."""
        for sid in self.transmitters.station_ids():
            self.station_for(self.transmitters.for_station(sid)[0])
        return dict(self._stations)

    # -- identifiers ------------------------------------------------------------

    def page_id(self, url: str) -> int:
        """Stable 16-bit id for a URL (frame headers carry it)."""
        if url not in self._page_ids:
            self._page_ids[url] = len(self._page_ids) % 65_536
        return self._page_ids[url]

    # -- rendering ------------------------------------------------------------

    def _bundle_key(self, url: str, epoch: int) -> str:
        return bundle_key(
            url,
            epoch,
            self.config.render_width,
            self.config.max_pixel_height,
            self.config.quality,
            self.generator.seed,
        )

    def render_bundle(self, url: str, now: float) -> tuple[PageBundle, bytes]:
        """Produce (bundle, encoded bytes) for a URL at simulation time.

        The persistent :class:`BundleStore` is consulted first: an hour,
        process, or prior run that already encoded this (url, epoch) at
        the same render settings hands back the identical bytes without
        rendering or re-encoding.
        """
        hour = int(now // 3600)
        epoch = self.generator.effective_epoch(url, hour)
        key = self._bundle_key(url, epoch)
        data = self.bundle_store.get(key)
        if data is not None:
            self.stats.store_hits += 1
            bundle = PageBundle.from_bytes(data)
        else:
            page = self.generator.page(url, hour)
            result = self.renderer.render(page)
            bundle = PageBundle(
                url,
                result.image,
                result.clickmap,
                expiry_hours=self.config.client_cache_hours,
                quality=self.config.quality,
            )
            data = bundle.to_bytes()
            self.stats.renders += 1
            self.bundle_store.put(key, data)
        # Keep only the freshest encode per URL: stale epochs are never
        # broadcast again, and long simulations must not grow unbounded.
        stale = [key for key in self._encoded if key[0] == url and key[1] != epoch]
        for key in stale:
            del self._encoded[key]
        self._encoded[(url, epoch)] = data
        return bundle, data

    def bundle_for(self, url: str, now: float) -> tuple[PageBundle, bytes]:
        """Cache-aware bundle production."""
        cached = self.cache.get(url, now)
        hour = int(now // 3600)
        epoch = self.generator.effective_epoch(url, hour)
        if cached is not None and (url, epoch) in self._encoded:
            self.stats.cache_hits += 1
            return cached.bundle, self._encoded[(url, epoch)]
        bundle, data = self.render_bundle(url, now)
        self.cache.put(bundle, now)
        return bundle, data

    # -- broadcasting ------------------------------------------------------------

    def enqueue_broadcast(
        self,
        tx: Transmitter,
        url: str,
        data: bytes,
        priority: float,
        version: int = 0,
        with_frames: bool = True,
    ) -> None:
        """Queue ``data`` on a transmitter's carousel.

        Routed through the owning regional :class:`Station`: frame
        chunking goes through the transmitter's broadcast encode cache,
        so a repeat broadcast of byte-identical content (the hourly
        carousel case, or two users requesting the same page) reuses
        the previously chunked frames instead of re-encoding them.
        """
        self.station_for(tx).enqueue(
            tx,
            url,
            data,
            priority=priority,
            page_id=self.page_id(url),
            transport=self._transport,
            version=version,
            with_frames=with_frames,
        )

    # -- SMS handling ------------------------------------------------------------

    def _reply(self, to: str, text: str, now: float) -> None:
        self.gateway.submit(
            SmsMessage(self.config.sms_number, to, text, submitted_at=now), now
        )

    def _on_sms(self, message: SmsMessage, now: float) -> None:
        try:
            request = parse_uplink(message.text)
        except ValueError:
            self.stats.rejected += 1
            self._reply(message.sender, RequestError("-", "malformed").to_text(), now)
            return
        if isinstance(request, PageRequest):
            self.handle_page_request(request, message.sender, now)
        elif isinstance(request, LinkReport):
            self.handle_link_report(request, message.sender, now)
        else:
            self.handle_search(request, message.sender, now)

    def handle_link_report(
        self, report: LinkReport, sender: str, now: float
    ) -> None:
        """RPT: fold receiver feedback in, advise the best burst profile.

        The selector refits the reported profile's loss curve from the
        accumulated samples and the reply names the fastest profile
        predicted to survive the reported SNR — so as a client's channel
        degrades, successive replies walk down the rate ladder.
        """
        self.stats.link_reports += 1
        if self.profile_selector is None:
            self._reply(
                sender, RequestError(report.profile, "no-adaptation").to_text(), now
            )
            return
        self.profile_selector.observe(report)
        choice = self.profile_selector.select(report.snr_db)
        if choice != self._advised_profile:
            self.stats.profile_switches += 1
            self._advised_profile = choice
        self._reply(sender, ProfileAdvice(choice).to_text(), now)

    def handle_page_request(
        self, request: PageRequest, sender: str, now: float
    ) -> None:
        """The paper's core request flow: validate, render, queue, ACK."""
        self.stats.requests += 1
        url = request.url
        if any(marker in url for marker in self.config.unsupported_markers):
            self.stats.rejected += 1
            self._reply(sender, RequestError(url, "unsupported-auth").to_text(), now)
            return
        where = Location(request.lat, request.lon)
        tx = self.transmitters.covering(where)
        if tx is None:
            self.stats.rejected += 1
            self._reply(sender, RequestError(url, "no-coverage").to_text(), now)
            return
        try:
            _bundle, data = self.bundle_for(url, now)
        except KeyError:
            self.stats.rejected += 1
            self._reply(sender, RequestError(url, "unknown-site").to_text(), now)
            return
        hour = int(now // 3600)
        self.enqueue_broadcast(
            tx,
            url,
            data,
            priority=self.scheduler.config.request_priority,
            version=self.generator.effective_epoch(url, hour),
        )
        eta = tx.carousel.eta_seconds(url) or 0.0
        self._reply(sender, RequestAck(url, eta).to_text(), now)

    def handle_page_requests_batch(
        self, requests: list[tuple[PageRequest, str]], now: float
    ) -> list[str]:
        """Batched request flow: N requests cost one render per unique page.

        The front end (:mod:`repro.server.frontend`) hands over whole
        dispatch batches; requests are validated and routed individually,
        but rendering and carousel queuing happen once per unique
        ``(transmitter, url)`` — so a burst of users asking for the same
        hot page costs a single :meth:`bundle_for` (itself usually a
        :class:`~repro.server.cache.BundleStore` hit).  Replies (ACK with
        airtime estimate, or ERR) go out through the gateway exactly like
        the serial path; the reply texts are also returned in order.
        """
        hour = int(now // 3600)
        self.stats.requests += len(requests)
        routed: list[tuple[PageRequest, str, Transmitter | None, str | None]] = []
        for request, sender in requests:
            url = request.url
            if any(marker in url for marker in self.config.unsupported_markers):
                routed.append((request, sender, None, "unsupported-auth"))
                continue
            tx = self.transmitters.covering(Location(request.lat, request.lon))
            if tx is None:
                routed.append((request, sender, None, "no-coverage"))
                continue
            routed.append((request, sender, tx, None))

        # One bundle per unique URL, one enqueue per unique (tx, url).
        bundles: dict[str, bytes | None] = {}
        queued: set[tuple[int, str]] = set()
        replies: list[str] = []
        for request, sender, tx, error in routed:
            url = request.url
            if error is None:
                if url not in bundles:
                    try:
                        _bundle, data = self.bundle_for(url, now)
                        bundles[url] = data
                    except KeyError:
                        bundles[url] = None
                data = bundles[url]
                if data is None:
                    error = "unknown-site"
                else:
                    assert tx is not None
                    if (id(tx), url) not in queued:
                        self.enqueue_broadcast(
                            tx,
                            url,
                            data,
                            priority=self.scheduler.config.request_priority,
                            version=self.generator.effective_epoch(url, hour),
                        )
                        queued.add((id(tx), url))
                    eta = tx.carousel.eta_seconds(url) or 0.0
                    replies.append(RequestAck(url, eta).to_text())
                    self._reply(sender, replies[-1], now)
                    continue
            self.stats.rejected += 1
            replies.append(RequestError(url, error).to_text())
            self._reply(sender, replies[-1], now)
        return replies

    def handle_search(self, request: SearchRequest, sender: str, now: float) -> None:
        """FIND: build a results page over the corpus and broadcast it."""
        self.stats.searches += 1
        where = Location(request.lat, request.lon)
        tx = self.transmitters.covering(where)
        if tx is None:
            self.stats.rejected += 1
            self._reply(sender, RequestError("search", "no-coverage").to_text(), now)
            return
        url = f"sonic.search/{'+'.join(request.query.lower().split())}"
        results = self._search_corpus(request.query, now)
        page = Page(
            url=url,
            title=f"Search: {request.query}",
            elements=[
                Heading(f"Results for '{request.query}'", level=1),
                Paragraph(f"{len(results)} matching pages in the SONIC catalog."),
                LinkList(tuple(results[:10])),
            ],
        )
        rendered = self.renderer.render(page)
        bundle = PageBundle(
            url, rendered.image, rendered.clickmap,
            expiry_hours=self.config.client_cache_hours, quality=self.config.quality,
        )
        data = bundle.to_bytes()
        self.enqueue_broadcast(
            tx, url, data, priority=self.scheduler.config.request_priority
        )
        eta = tx.carousel.eta_seconds(url) or 0.0
        self._reply(sender, RequestAck(url, eta).to_text(), now)

    def _search_corpus(self, query: str, now: float) -> list[tuple[str, str]]:
        """Keyword search over page headlines (label, href)."""
        hour = int(now // 3600)
        terms = set(query.lower().split())
        hits: list[tuple[int, str, str]] = []
        for url in self.generator.all_urls():
            page = self.generator.page(url, hour)
            for el in page.elements:
                if isinstance(el, Heading):
                    words = set(el.text.lower().split())
                    score = len(terms & words)
                    if score:
                        hits.append((score, el.text, url))
                    break  # first heading is the headline
        hits.sort(key=lambda h: -h[0])
        return [(text, url) for _, text, url in hits]

    # -- catalog announcements ------------------------------------------------

    def broadcast_catalog(self, tx: Transmitter, now: float) -> int:
        """Announce the transmitter's queue as METADATA frames.

        Lets downlink-only users see what is coming and when (the
        client app's "upcoming" view).  Returns the entry count.
        """
        from repro.transport.metadata import CatalogAnnouncement, CatalogEntryInfo

        hour = int(now // 3600)
        entries = []
        for item in list(tx.carousel._queue):
            version = (
                item.frames[0].header.col if item.frames else
                self.generator.effective_epoch(item.url, hour)
                if self._known_url(item.url)
                else 0
            )
            entries.append(
                CatalogEntryInfo(
                    url=item.url,
                    page_id=self.page_id(item.url),
                    version=version,
                    size_bytes=item.size_bytes,
                    eta_seconds=tx.carousel.eta_seconds(item.url) or 0.0,
                )
            )
        announcement = CatalogAnnouncement(tx.station_id, entries)
        frames = announcement.to_frames()
        tx.carousel.enqueue(
            CarouselItem(
                f"sonic.catalog/{tx.station_id}",
                len(frames) * 100,
                priority=self.scheduler.config.request_priority * 2,
                frames=frames,
            )
        )
        return len(entries)

    def catalog_pipeline(self, persistent: bool = False, processes: int | None = None):
        """The server's shared :class:`~repro.server.catalog.CatalogPipeline`.

        Built once (lazily) over this server's generator and bundle
        store, so every ``push_catalog`` call — and any persistent worker
        pool attached with ``persistent=True`` — is reused across hours
        instead of respawned per call.  Call :meth:`close` when done if a
        pool was started.
        """
        from repro.server.catalog import CatalogConfig, CatalogPipeline

        if self._catalog_pipeline is None:
            self._catalog_pipeline = CatalogPipeline(
                CatalogConfig(
                    seed=self.generator.seed,
                    n_sites=self.generator.n_sites,
                    width=self.config.render_width,
                    max_height=self.config.max_pixel_height,
                    quality=self.config.quality,
                    expiry_hours=self.config.client_cache_hours,
                ),
                store=self.bundle_store,
                generator=self.generator,
            )
        if persistent and not self._catalog_pipeline.persistent:
            self._catalog_pipeline.start(processes)
        return self._catalog_pipeline

    def close(self) -> None:
        """Release the catalog pipeline's worker pool, if one is running."""
        if self._catalog_pipeline is not None:
            self._catalog_pipeline.close()

    def push_catalog(
        self,
        tx: Transmitter,
        now: float,
        urls: list[str] | None = None,
        processes: int | None = None,
        persistent: bool = False,
    ):
        """Encode the catalog through the pooled pipeline and broadcast it.

        All (or the given) corpus pages are rendered/encoded via the
        shared :meth:`catalog_pipeline` backed by this server's
        :attr:`bundle_store` — so a warm store (a later hour, a rerun)
        skips re-encoding entirely — then queued on ``tx`` at their
        popularity priority, followed by a catalog announcement.
        ``persistent=True`` attaches (and keeps) the persistent worker
        pool across calls.  Returns the
        :class:`~repro.server.catalog.CatalogResult`.
        """
        hour = int(now // 3600)
        pipeline = self.catalog_pipeline(persistent=persistent, processes=processes)
        result = pipeline.encode_catalog(urls=urls, hour=hour, processes=processes)
        for page in result.pages:
            self.enqueue_broadcast(
                tx,
                page.url,
                page.data,
                priority=self.scheduler.page_priority(page.url, hour),
                version=page.epoch,
            )
            self._encoded[(page.url, page.epoch)] = page.data
        self.stats.pushes += result.n_pages
        self.broadcast_catalog(tx, now)
        return result

    def _known_url(self, url: str) -> bool:
        try:
            self.generator.website(url.partition("/")[0])
            return True
        except KeyError:
            return False

    # -- hourly push ------------------------------------------------------------

    def hourly_push(self, now: float) -> int:
        """Render changed popular pages, queue on every station's fleet."""
        hour = int(now // 3600)
        pushed = 0
        stations = self.stations().values()
        for url, priority in self.scheduler.pages_to_push(hour):
            _bundle, data = self.bundle_for(url, now)
            version = self.generator.effective_epoch(url, hour)
            for station in stations:
                for tx in station.transmitters:
                    self.enqueue_broadcast(
                        tx, url, data, priority=priority, version=version
                    )
            pushed += 1
        self.stats.pushes += pushed
        return pushed
