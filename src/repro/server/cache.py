"""Server-side page cache and the persistent encoded-bundle store.

"the SONIC server produces a simplified version of the webpage, either
from its cache, e.g., if recently requested by another user, or by
directly accessing it" (Section 3.1).  Entries carry the expiry the
server later advertises to clients.

Two layers live here:

* :class:`PageCache` — the TTL'd render cache of Section 3.1.
* :class:`BundleStore` — a digest-keyed store of *encoded* bundle bytes.
  The key is derived from everything the encode depends on (URL, content
  epoch, render geometry, quality, corpus seed), so any hour, process,
  or simulation run that needs the same page reuses the bytes instead of
  re-rendering and re-encoding — the server-side analogue of the
  transmitters' :class:`~repro.server.transmitters.BroadcastEncodeCache`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.transport.bundle import PageBundle

__all__ = ["CachedPage", "PageCache", "BundleStoreStats", "BundleStore", "bundle_key"]


def bundle_key(
    url: str,
    epoch: int,
    width: int,
    max_height: int | None,
    quality: int,
    seed: int,
) -> str:
    """Digest of every input the encoded bundle is a pure function of."""
    blob = f"{url}|{epoch}|{width}|{max_height}|{quality}|{seed}".encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class BundleStoreStats:
    """Hit/miss counters; ``disk_hits`` also count toward ``hits``."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    puts: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup).

        The share of encodes a shared store saved — e.g. across a
        multi-station network, where the first station to need a page
        encodes it and every other station's lookup lands here.
        """
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class BundleStore:
    """LRU memory store of encoded bundles with optional disk persistence.

    ``directory`` (if given) persists every entry as ``<key>.swbp`` so the
    store survives process restarts — warm broadcast-day runs skip the
    whole render+encode pipeline.  Keys come from :func:`bundle_key`.
    """

    def __init__(
        self, capacity: int = 256, directory: str | Path | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.stats = BundleStoreStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or (
            self.directory is not None and (self.directory / f"{key}.swbp").exists()
        )

    def get(self, key: str) -> bytes | None:
        data = self._entries.get(key)
        if data is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return data
        if self.directory is not None:
            path = self.directory / f"{key}.swbp"
            if path.exists():
                data = path.read_bytes()
                self._remember(key, data)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return data
        self.stats.misses += 1
        return None

    def put(self, key: str, data: bytes) -> None:
        self._remember(key, data)
        self.stats.puts += 1
        if self.directory is not None:
            (self.directory / f"{key}.swbp").write_bytes(data)

    def _remember(self, key: str, data: bytes) -> None:
        self._entries[key] = data
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def items(self) -> list[tuple[str, bytes]]:
        """Every (key, bytes) pair in key order, memory and disk alike.

        Reads bypass the LRU and the hit/miss counters so inspecting a
        store never perturbs it.
        """
        keys = set(self._entries)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*.swbp"))
        out = []
        for key in sorted(keys):
            data = self._entries.get(key)
            if data is None:
                data = (self.directory / f"{key}.swbp").read_bytes()
            out.append((key, data))
        return out

    def content_digest(self) -> str:
        """SHA-256 over every (key, bytes) pair, in key order.

        LRU recency and hit/miss counters are excluded on purpose: two
        stores hold the same content iff their digests match, regardless
        of the access pattern that filled them.  Disk-persisted entries
        not resident in memory are included so a reopened store compares
        equal to the run that wrote it.
        """
        h = hashlib.sha256()
        for key, data in self.items():
            h.update(key.encode())
            h.update(len(data).to_bytes(8, "big"))
            h.update(data)
        return h.hexdigest()

    def superset_of(self, other: "BundleStore") -> bool:
        """Every bundle in ``other`` is present here, byte-identical.

        The containment check a speculative prefetch must satisfy: it
        may *add* bundles the demand path never asked for, but anything
        the reference run produced has to match exactly.
        """
        for key, data in other.items():
            mine = self._entries.get(key)
            if mine is None and self.directory is not None:
                path = self.directory / f"{key}.swbp"
                if path.exists():
                    mine = path.read_bytes()
            if mine != data:
                return False
        return True


@dataclass
class CachedPage:
    """One cached render."""

    bundle: PageBundle
    rendered_at: float  # simulation seconds
    ttl_s: float
    hits: int = 0

    def fresh(self, now: float) -> bool:
        return now - self.rendered_at < self.ttl_s


class PageCache:
    """URL-keyed cache with TTL expiry and LRU-style capacity eviction."""

    def __init__(self, capacity: int = 500, default_ttl_s: float = 3600.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.default_ttl_s = default_ttl_s
        self._entries: dict[str, CachedPage] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, url: str, now: float) -> CachedPage | None:
        """A fresh entry, or None (stale entries are dropped on access)."""
        entry = self._entries.get(url)
        if entry is None:
            return None
        if not entry.fresh(now):
            del self._entries[url]
            return None
        entry.hits += 1
        return entry

    def put(
        self, bundle: PageBundle, now: float, ttl_s: float | None = None
    ) -> CachedPage:
        """Insert (or replace) a render; evicts the stalest when full."""
        if len(self._entries) >= self.capacity and bundle.url not in self._entries:
            victim = min(self._entries.values(), key=lambda e: e.rendered_at)
            del self._entries[victim.bundle.url]
        entry = CachedPage(bundle, now, ttl_s if ttl_s is not None else self.default_ttl_s)
        self._entries[bundle.url] = entry
        return entry

    def expire(self, now: float) -> int:
        """Drop all stale entries; returns how many were removed."""
        stale = [url for url, e in self._entries.items() if not e.fresh(now)]
        for url in stale:
            del self._entries[url]
        return len(stale)

    def urls(self) -> list[str]:
        return list(self._entries)
