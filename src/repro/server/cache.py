"""Server-side page cache.

"the SONIC server produces a simplified version of the webpage, either
from its cache, e.g., if recently requested by another user, or by
directly accessing it" (Section 3.1).  Entries carry the expiry the
server later advertises to clients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.bundle import PageBundle

__all__ = ["CachedPage", "PageCache"]


@dataclass
class CachedPage:
    """One cached render."""

    bundle: PageBundle
    rendered_at: float  # simulation seconds
    ttl_s: float
    hits: int = 0

    def fresh(self, now: float) -> bool:
        return now - self.rendered_at < self.ttl_s


class PageCache:
    """URL-keyed cache with TTL expiry and LRU-style capacity eviction."""

    def __init__(self, capacity: int = 500, default_ttl_s: float = 3600.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.default_ttl_s = default_ttl_s
        self._entries: dict[str, CachedPage] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, url: str, now: float) -> CachedPage | None:
        """A fresh entry, or None (stale entries are dropped on access)."""
        entry = self._entries.get(url)
        if entry is None:
            return None
        if not entry.fresh(now):
            del self._entries[url]
            return None
        entry.hits += 1
        return entry

    def put(
        self, bundle: PageBundle, now: float, ttl_s: float | None = None
    ) -> CachedPage:
        """Insert (or replace) a render; evicts the stalest when full."""
        if len(self._entries) >= self.capacity and bundle.url not in self._entries:
            victim = min(self._entries.values(), key=lambda e: e.rendered_at)
            del self._entries[victim.bundle.url]
        entry = CachedPage(bundle, now, ttl_s if ttl_s is not None else self.default_ttl_s)
        self._entries[bundle.url] = entry
        return entry

    def expire(self, now: float) -> int:
        """Drop all stale entries; returns how many were removed."""
        stale = [url for url, e in self._entries.items() if not e.fresh(now)]
        for url in stale:
            del self._entries[url]
        return len(stale)

    def urls(self) -> list[str]:
        return list(self._entries)
