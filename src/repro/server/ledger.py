"""Persistent request→delivery ledger for the SMS front end.

Every page request that enters :class:`~repro.server.frontend.RequestFrontend`
leaves a row here carrying the four timestamps of its life cycle —
submitted (SMS arrival), acked (batch dispatch replied), scheduled
(enqueued on the carousel), broadcast (page transmission completed) —
so p50/p99 request→broadcast latency is computable per run and survives
process restarts.

The store is sqlite in WAL mode: the front end inserts whole dispatch
batches with ``executemany`` and commits on a tick cadence, so a crash
loses at most the ticks since the last commit while every committed
batch reconciles cleanly on reopen (see ``tests/test_server_ledger.py``).
"""

from __future__ import annotations

import hashlib
import sqlite3
from pathlib import Path

import numpy as np

__all__ = ["LedgerStats", "RequestLedger"]

#: Request life-cycle states.  ``queued`` means scheduled on the carousel
#: and waiting for airtime; ``deferred`` parked by backpressure; ``shed``
#: dropped by backpressure; ``broadcast`` delivered over FM.
STATUSES = ("queued", "deferred", "shed", "broadcast")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS requests (
    req_id       INTEGER PRIMARY KEY,
    url_index    INTEGER NOT NULL,
    submitted_at REAL NOT NULL,
    acked_at     REAL,
    scheduled_at REAL,
    broadcast_at REAL,
    status       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_requests_submitted
    ON requests (submitted_at, url_index);
"""


class LedgerStats:
    """Latency summary over the ledger's completed requests."""

    def __init__(
        self, counts: dict[str, int], latencies_s: np.ndarray
    ) -> None:
        self.counts = counts
        self.latencies_s = latencies_s

    @property
    def n_requests(self) -> int:
        return sum(self.counts.values())

    @property
    def n_broadcast(self) -> int:
        return self.counts.get("broadcast", 0)

    def percentile(self, q: float) -> float:
        """Request→broadcast latency percentile (seconds); NaN if none."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, q))


class RequestLedger:
    """sqlite-backed request ledger with batched writes.

    ``path`` may be ``":memory:"`` (tests, throwaway runs) or a file
    path; file-backed ledgers run in WAL mode with ``synchronous=NORMAL``
    so batched commits stay cheap while surviving a process kill.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        # Write buffers: the front end records thousands of tiny dispatch
        # groups per simulated hour; buffering turns those into two
        # ``executemany`` calls per commit window instead of one each.
        # Rows are mutable lists so a life-cycle update landing before the
        # insert is flushed folds into the row in place — most requests
        # then cost one INSERT and no UPDATE at all.
        self._pending_rows: list[list] = []
        self._pending_by_id: dict[int, list] = {}
        self._pending_updates: list[tuple] = []

    def close(self) -> None:
        self.commit()
        self._conn.close()

    # -- batched writes ------------------------------------------------------

    def insert(
        self,
        req_ids: np.ndarray | list[int],
        url_index: int,
        submitted_at: np.ndarray | list[float],
        acked_at: float | None,
        scheduled_at: float | None,
        status: str,
    ) -> None:
        """Record one dispatch group (uniform URL and outcome)."""
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        url_index = int(url_index)
        if not isinstance(req_ids, list):
            req_ids = np.asarray(req_ids).tolist()
        if not isinstance(submitted_at, list):
            submitted_at = np.asarray(submitted_at, dtype=np.float64).tolist()
        rows = self._pending_rows
        by_id = self._pending_by_id
        for r, t in zip(req_ids, submitted_at):
            row = [r, url_index, t, acked_at, scheduled_at, None, status]
            rows.append(row)
            by_id[r] = row

    def mark_scheduled(self, req_ids: np.ndarray, t: float) -> None:
        """A deferred request made it onto the carousel after all."""
        by_id = self._pending_by_id
        for r in np.asarray(req_ids).tolist():
            row = by_id.get(r)
            if row is not None:
                row[4] = t
                row[6] = "queued"
            else:
                self._pending_updates.append((t, "queued", None, r))

    def mark_broadcast(self, req_ids: np.ndarray, t: float) -> None:
        """The page transmission serving these requests completed at ``t``."""
        by_id = self._pending_by_id
        for r in np.asarray(req_ids).tolist():
            row = by_id.get(r)
            if row is not None:
                row[5] = t
                row[6] = "broadcast"
            else:
                self._pending_updates.append((None, "broadcast", t, r))

    def flush(self) -> None:
        """Push buffered writes into sqlite (without committing).

        Inserts run before updates: a request is always inserted before
        any of its life-cycle updates, so this order is the only one the
        buffers can need.  Within the update buffer, call order is kept.
        """
        if self._pending_rows:
            self._conn.executemany(
                "INSERT INTO requests (req_id, url_index, submitted_at,"
                " acked_at, scheduled_at, broadcast_at, status)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                self._pending_rows,
            )
            self._pending_rows.clear()
            self._pending_by_id.clear()
        if self._pending_updates:
            self._conn.executemany(
                "UPDATE requests SET"
                " scheduled_at = COALESCE(?, scheduled_at),"
                " status = ?,"
                " broadcast_at = COALESCE(?, broadcast_at)"
                " WHERE req_id = ?",
                self._pending_updates,
            )
            self._pending_updates.clear()

    def commit(self) -> None:
        self.flush()
        self._conn.commit()

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        self.flush()
        (n,) = self._conn.execute("SELECT COUNT(*) FROM requests").fetchone()
        return int(n)

    def counts(self) -> dict[str, int]:
        """Requests per life-cycle status."""
        self.flush()
        return dict(
            self._conn.execute(
                "SELECT status, COUNT(*) FROM requests GROUP BY status"
            ).fetchall()
        )

    def demand_counts(
        self, since: float | None = None, until: float | None = None
    ) -> dict[int, int]:
        """Per-URL request counts — the demand signal station scheduling eats.

        Every request counts, whatever its fate: a shed request is still
        demand (arguably the loudest kind).  ``since``/``until`` bound the
        window by submission time (half-open, ``since <= t < until``), so
        an epoch scheduler can ask "what was requested this hour" as one
        cheap indexed read; with no bounds it is the whole ledger.
        """
        self.flush()
        clauses, params = [], []
        if since is not None:
            clauses.append("submitted_at >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("submitted_at < ?")
            params.append(float(until))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT url_index, COUNT(*) FROM requests"
            f"{where} GROUP BY url_index",
            params,
        ).fetchall()
        return {int(u): int(n) for u, n in rows}

    def latencies(self) -> np.ndarray:
        """Request→broadcast latency (seconds) of every served request."""
        self.flush()
        rows = self._conn.execute(
            "SELECT broadcast_at - submitted_at FROM requests"
            " WHERE status = 'broadcast'"
        ).fetchall()
        return np.array([r[0] for r in rows], dtype=np.float64)

    def stats(self) -> LedgerStats:
        return LedgerStats(self.counts(), self.latencies())

    def digest(self) -> str:
        """Content hash over every row, in ``req_id`` order.

        Two runs produced identical ledger outcomes iff their digests
        match — the serial vs async-batched determinism check without
        materialising millions of rows in memory.
        """
        self.flush()
        h = hashlib.sha256()
        cursor = self._conn.execute(
            "SELECT req_id, url_index, submitted_at, acked_at, scheduled_at,"
            " broadcast_at, status FROM requests ORDER BY req_id"
        )
        while True:
            rows = cursor.fetchmany(65_536)
            if not rows:
                break
            for row in rows:
                h.update(repr(row).encode())
        return h.hexdigest()

    def reconcile(self) -> dict[str, int]:
        """Consistency check after a (possibly dirty) reopen.

        Verifies the invariants every committed batch satisfies; raises
        ``ValueError`` if the ledger is internally inconsistent, else
        returns the status counts.
        """
        counts = self.counts()  # flushes pending writes
        unknown = set(counts) - set(STATUSES)
        if unknown:
            raise ValueError(f"unknown statuses in ledger: {sorted(unknown)}")
        (bad_broadcast,) = self._conn.execute(
            "SELECT COUNT(*) FROM requests WHERE"
            " (status = 'broadcast') != (broadcast_at IS NOT NULL)"
        ).fetchone()
        if bad_broadcast:
            raise ValueError(f"{bad_broadcast} rows with inconsistent broadcast state")
        (bad_order,) = self._conn.execute(
            "SELECT COUNT(*) FROM requests WHERE broadcast_at IS NOT NULL"
            " AND (broadcast_at < submitted_at OR scheduled_at IS NULL"
            "      OR broadcast_at < scheduled_at)"
        ).fetchone()
        if bad_order:
            raise ValueError(f"{bad_order} rows with out-of-order timestamps")
        (bad_shed,) = self._conn.execute(
            "SELECT COUNT(*) FROM requests WHERE status = 'shed'"
            " AND scheduled_at IS NOT NULL"
        ).fetchone()
        if bad_shed:
            raise ValueError(f"{bad_shed} shed rows carry a scheduled timestamp")
        return counts
