"""Sharded multi-station broadcast network with demand-driven scheduling.

SONIC's deployment story is a *national* FM data service: "the FM radio
infrastructure consists of multiple transmitters (and frequencies) at
different locations" (Section 3.1).  This module grows the single-server
model into that network:

* :class:`Station` — the per-region serving unit extracted out of
  :class:`~repro.server.server.SonicServer`: a transmitter set, the
  carousel(s) they drain, an :class:`AdaptiveProfileSelector`, and a
  view of the region's :class:`~repro.server.ledger.RequestLedger`.
* :class:`BroadcastNetwork` — N regional stations over one shared
  :class:`~repro.server.cache.BundleStore` (a page encoded for Lahore is
  never re-encoded for Karachi), scheduled by a
  :class:`~repro.server.scheduler.DemandScheduler` fed from each
  region's measured SMS demand.
* :func:`run_network` — an epoch-synchronous broadcast-day simulation.
  Stations evolve *independently within an epoch* (one hour) and the
  scheduler rebalances only at epoch boundaries, so the sharded run —
  stations stepped by a worker pool, or inline in any order — is
  bit-identical to the serial run: same per-station ledger digests,
  same schedule digests.  That determinism contract is the gate
  ``repro bench --smoke`` enforces.

Profile adaptation happens at carousel-cycle boundaries: when every
page queued at the start of a cycle has finished transmitting, the
station adopts its selector's advice for the epoch's SNR and the
carousel rate follows the chosen profile — a degrading region's station
walks down the rate ladder (see ``tests/test_server_network.py``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.radio.lossmodel import FrameLossModel
from repro.server.cache import BundleStore, bundle_key
from repro.server.ledger import RequestLedger
from repro.server.scheduler import (
    AdaptiveProfileSelector,
    DemandConfig,
    DemandScheduler,
    schedule_digest,
)
from repro.server.transmitters import Transmitter, TransmitterRegistry
from repro.sim.geometry import (
    Location,
    PopulationGeometry,
    RegionPartition,
    distance_km,
)
from repro.sim.workload import PageSizeModel, RequestTraceConfig, generate_requests
from repro.sms.protocol import LinkReport
from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.util.rng import derive_key, derive_rng
from repro.web.sites import SiteGenerator

__all__ = [
    "REQUEST_PRIORITY",
    "DEFAULT_PROFILE_LADDER",
    "DEFAULT_REGIONS",
    "RegionSpec",
    "Station",
    "NetworkConfig",
    "StationReport",
    "NetworkResult",
    "BroadcastNetwork",
    "run_network",
    "network_partition",
    "network_coverage",
]

#: Carousel priority of user-requested pages.  Demand scores are sums of
#: bounded EWMA/prior terms plus a slowly-growing aging term, so this
#: keeps the paper's invariant — requests outrank every push — by a
#: margin no realistic run can close.
REQUEST_PRIORITY = 1e12

#: (name, net payload bps, FER midpoint dB, FER scale dB) — a synthetic
#: four-rung rate ladder spanning the modem family's envelope: fast
#: rungs need a clean channel, the robust rung decodes near 0 dB.
DEFAULT_PROFILE_LADDER: tuple[tuple[str, float, float, float], ...] = (
    ("turbo", 16_000.0, 12.0, 1.5),
    ("fast", 10_000.0, 8.0, 1.5),
    ("base", 6_000.0, 4.0, 1.5),
    ("robust", 3_000.0, 0.0, 1.5),
)


@dataclass(frozen=True)
class RegionSpec:
    """One regional market a station serves."""

    name: str
    center: Location
    radius_km: float = 30.0
    #: SMS page requests per second originating in the region.
    rate_per_s: float = 0.04
    #: Representative receive SNR at the start of the run, and its
    #: per-hour drift — the knob a degrading-region test turns.
    snr_start_db: float = 16.0
    snr_drift_db_per_hour: float = 0.0

    def snr_at(self, epoch: int) -> float:
        return self.snr_start_db + self.snr_drift_db_per_hour * epoch


#: The paper's Pakistani deployment context: major metros, each with a
#: plausible relative request rate (bigger market, more SMS demand).
DEFAULT_REGIONS: tuple[RegionSpec, ...] = (
    RegionSpec("lahore", Location(31.5204, 74.3587), rate_per_s=0.06),
    RegionSpec("karachi", Location(24.8607, 67.0011), rate_per_s=0.08),
    RegionSpec("islamabad", Location(33.6844, 73.0479), rate_per_s=0.04),
    RegionSpec("peshawar", Location(34.0151, 71.5249), rate_per_s=0.03),
    RegionSpec("faisalabad", Location(31.4504, 73.1350), rate_per_s=0.035),
    RegionSpec("multan", Location(30.1575, 71.5249), rate_per_s=0.03),
    RegionSpec("hyderabad", Location(25.3960, 68.3578), rate_per_s=0.025),
    RegionSpec("quetta", Location(30.1798, 66.9750), rate_per_s=0.02),
)


class Station:
    """Per-region serving unit: transmitters, selector, ledger view.

    This is the state :class:`~repro.server.server.SonicServer` used to
    hold monolithically; the server now routes every enqueue through the
    owning station, and :class:`BroadcastNetwork` owns one ``Station``
    per region outright.
    """

    def __init__(
        self,
        station_id: str,
        transmitters: list[Transmitter],
        selector: AdaptiveProfileSelector | None = None,
        ledger: RequestLedger | None = None,
    ) -> None:
        self.station_id = station_id
        self.transmitters = list(transmitters)
        for tx in self.transmitters:
            if tx.station != station_id:
                raise ValueError(
                    f"transmitter {tx.station_id} belongs to {tx.station},"
                    f" not {station_id}"
                )
        self.selector = selector
        self.ledger = ledger
        self.advised_profile: str | None = None
        self.profile_switches = 0

    def covering(self, where: Location) -> Transmitter | None:
        """The station's nearest transmitter covering ``where``."""
        candidates = [tx for tx in self.transmitters if tx.covers(where)]
        if not candidates:
            return None
        return min(candidates, key=lambda tx: distance_km(tx.location, where))

    def enqueue(
        self,
        tx: Transmitter,
        url: str,
        data: bytes,
        priority: float,
        page_id: int,
        transport,
        version: int = 0,
        with_frames: bool = True,
    ) -> None:
        """Queue ``data`` on one of this station's carousels.

        Frame chunking goes through the transmitter's broadcast encode
        cache, so a repeat broadcast of byte-identical content reuses
        the previously chunked frames.
        """
        from repro.server.transmitters import payload_digest

        if tx not in self.transmitters:
            raise ValueError(f"{tx.station_id} is not a {self.station_id} transmitter")
        digest = payload_digest(data)
        frames = (
            tx.cache.frames(
                data,
                page_id=page_id,
                version=version,
                transport=transport,
                digest=digest,
            )
            if with_frames
            else None
        )
        tx.carousel.enqueue(
            CarouselItem(
                url, len(data), priority=priority, frames=frames, digest=digest
            )
        )

    def observe_report(self, report: LinkReport) -> str | None:
        """Fold a receiver report into this station's selector.

        Returns the advised profile (None without a selector) and counts
        advice changes as profile switches.
        """
        if self.selector is None:
            return None
        self.selector.observe(report)
        choice = self.selector.select(report.snr_db)
        if choice != self.advised_profile:
            if self.advised_profile is not None:
                self.profile_switches += 1
            self.advised_profile = choice
        return choice

    def demand_snapshot(
        self, since: float | None = None, until: float | None = None
    ) -> dict[int, int]:
        """Per-URL demand from the station's ledger (empty without one)."""
        if self.ledger is None:
            return {}
        return self.ledger.demand_counts(since=since, until=until)


@dataclass(frozen=True)
class NetworkConfig:
    """One multi-region broadcast-day simulation."""

    n_stations: int = 4
    hours: int = 24
    n_pages: int = 100
    seed: int = 42
    quality: int = 10
    #: Simulation step; must divide the 3600 s epoch evenly.
    tick_s: float = 60.0
    #: Requests-per-second override applied to every region (None keeps
    #: each region's own rate).
    request_rate_per_s: float | None = None
    #: Backpressure: arrivals are shed while a station's backlog exceeds
    #: this (a shed request still counts as demand).
    max_backlog_bytes: int = 48_000_000
    pages_per_station: int = 24
    demand_decay: float = 0.5
    regions: tuple[RegionSpec, ...] | None = None
    profiles: tuple[tuple[str, float, float, float], ...] = DEFAULT_PROFILE_LADDER
    loss_threshold: float = 0.1
    #: Frames per synthetic per-epoch receiver link report.
    link_report_frames: int = 256
    #: Adaptation deadline: a carousel cycle that has not completed
    #: within this long forces a profile-adoption boundary anyway.
    #: Under sustained overload, request-priority arrivals can preempt
    #: the cycle snapshot indefinitely — without the deadline a station
    #: would stay pinned to a dying rate rung forever.
    profile_deadline_s: float = 7200.0

    def __post_init__(self) -> None:
        if self.n_stations < 1:
            raise ValueError("network needs at least one station")
        if self.hours < 1:
            raise ValueError("hours must be >= 1")
        if self.n_pages % 4 != 0:
            raise ValueError("n_pages must be a multiple of 4")
        if self.tick_s <= 0 or 3600.0 % self.tick_s != 0.0:
            raise ValueError("tick_s must evenly divide the 3600 s epoch")
        if not self.profiles:
            raise ValueError("need at least one modem profile")
        if self.profile_deadline_s < self.tick_s:
            raise ValueError("profile_deadline_s must cover at least one tick")

    def resolved_regions(self) -> tuple[RegionSpec, ...]:
        """``n_stations`` regions: the defaults, extended if asked for more."""
        base = list(self.regions if self.regions is not None else DEFAULT_REGIONS)
        i = 0
        while len(base) < self.n_stations:
            # Satellite markets around the Punjab corridor; offsets keep
            # coverage discs disjoint.
            anchor = base[i % len(DEFAULT_REGIONS)]
            base.append(
                RegionSpec(
                    f"{anchor.name}-ext{i}",
                    Location(anchor.center.lat + 2.0 + i * 0.7, anchor.center.lon),
                    radius_km=anchor.radius_km,
                    rate_per_s=anchor.rate_per_s * 0.5,
                    snr_start_db=anchor.snr_start_db,
                )
            )
            i += 1
        if self.request_rate_per_s is not None:
            base = [
                RegionSpec(
                    r.name,
                    r.center,
                    r.radius_km,
                    self.request_rate_per_s,
                    r.snr_start_db,
                    r.snr_drift_db_per_hour,
                )
                for r in base
            ]
        return tuple(base[: self.n_stations])


def _build_selector(config: NetworkConfig) -> AdaptiveProfileSelector:
    return AdaptiveProfileSelector(
        {
            name: (rate, FrameLossModel(fer_midpoint_db=mid, fer_scale_db=scale))
            for name, rate, mid, scale in config.profiles
        },
        loss_threshold=config.loss_threshold,
    )


@dataclass
class _SimCore:
    """The picklable per-station state one epoch of simulation mutates.

    Everything a worker process needs travels inside: the carousel (no
    frame payloads, so items pickle small), the profile selector, and
    the bookkeeping.  The sqlite ledger stays in the parent — workers
    return ledger-event *ops* the parent applies in canonical station
    order, which is what makes sharded == serial bit-identical.
    """

    station_id: str
    urls: tuple[str, ...]
    carousel: BroadcastCarousel
    selector: AdaptiveProfileSelector
    profile_rates: dict[str, float]
    profile: str
    snr_db: float = 0.0
    pending: dict[int, list[int]] = field(default_factory=dict)
    cycle_pending: set[str] = field(default_factory=set)
    cycle_ticks: int = 0
    profile_switches: int = 0
    profile_history: list[str] = field(default_factory=list)
    n_requests: int = 0
    n_shed: int = 0
    backlog_samples: list[int] = field(default_factory=list)


def _step_station_epoch(
    core: _SimCore,
    epoch: int,
    times: np.ndarray,
    url_idx: np.ndarray,
    req_ids: np.ndarray,
    sizes: np.ndarray,
    versions: np.ndarray,
    tick_s: float,
    max_backlog: int,
    link_report_frames: int,
    deadline_ticks: int,
) -> list[tuple]:
    """Advance one station through one epoch; returns its ledger ops.

    Pure station-local computation — touches nothing shared — so any
    partition of stations across workers (or any execution order)
    reproduces identical cores and ops.
    """
    ops: list[tuple] = []
    carousel = core.carousel

    # One synthetic receiver report per epoch: the region's representative
    # listener measured the current profile at the epoch's SNR.  Loss
    # counts are the model's own expectation — deterministic feedback
    # that keeps the selector's refit loop exercised.
    fer = core.selector.predicted_loss(core.profile, core.snr_db)
    n_lost = int(round(min(max(fer, 0.0), 1.0) * link_report_frames))
    core.selector.observe(
        LinkReport(core.profile, core.snr_db, n_lost, link_report_frames)
    )

    t0 = epoch * 3600.0
    ticks = int(round(3600.0 / tick_s))
    cursor = 0
    n_arrivals = int(times.size)
    for k in range(ticks):
        t_end = t0 + (k + 1) * tick_s
        # Ingest this tick's SMS arrivals, in arrival order.
        queued: dict[int, tuple[list[int], list[float]]] = {}
        shed: dict[int, tuple[list[int], list[float]]] = {}
        while cursor < n_arrivals and times[cursor] < t_end:
            u = int(url_idx[cursor])
            rid = int(req_ids[cursor])
            at = float(times[cursor])
            core.n_requests += 1
            if u in core.pending:
                # Page already queued for earlier requesters: coalesce
                # (the repeat enqueue below only bumps priority).
                core.pending[u].append(rid)
                queued.setdefault(u, ([], []))[0].append(rid)
                queued[u][1].append(at)
            elif carousel.backlog_bytes() > max_backlog:
                core.n_shed += 1
                shed.setdefault(u, ([], []))[0].append(rid)
                shed[u][1].append(at)
            else:
                core.pending[u] = [rid]
                queued.setdefault(u, ([], []))[0].append(rid)
                queued[u][1].append(at)
                carousel.enqueue(
                    CarouselItem(
                        core.urls[u],
                        int(sizes[u]),
                        priority=REQUEST_PRIORITY,
                        digest=f"{u}|{int(versions[u])}",
                    )
                )
            cursor += 1
        for u, (rids, ats) in queued.items():
            ops.append(("insert", rids, u, ats, t_end, t_end, "queued"))
        for u, (rids, ats) in shed.items():
            ops.append(("insert", rids, u, ats, t_end, None, "shed"))

        completed = carousel.drain(tick_s)
        done_ids: list[int] = []
        for url in completed:
            u = core.urls.index(url) if url in core.urls else None
            if u is not None and u in core.pending:
                done_ids.extend(core.pending.pop(u))
        if done_ids:
            ops.append(("broadcast", done_ids, t_end))

        # Carousel-cycle boundary: everything queued at the cycle start
        # has now been transmitted — adopt the selector's advice before
        # starting the next cycle.  A cycle that outlives the adaptation
        # deadline (request-priority arrivals can preempt its snapshot
        # indefinitely under overload) forces a boundary anyway.
        core.cycle_pending.difference_update(completed)
        core.cycle_ticks += 1
        if not core.cycle_pending or core.cycle_ticks >= deadline_ticks:
            choice = core.selector.select(core.snr_db)
            if choice != core.profile:
                core.profile = choice
                carousel.rate_bps = core.profile_rates[choice]
                core.profile_switches += 1
            core.cycle_pending = {item.url for item in carousel._queue}
            core.cycle_ticks = 0

        core.backlog_samples.append(carousel.backlog_bytes())
    core.profile_history.append(core.profile)
    return ops


def _epoch_worker(payload: tuple) -> tuple[_SimCore, list[tuple]]:
    core, args = payload
    ops = _step_station_epoch(core, *args)
    return core, ops


@dataclass
class StationReport:
    """One station's outcome over the simulated horizon."""

    station_id: str
    region: RegionSpec
    n_requests: int
    n_broadcast: int
    n_shed: int
    goodput_bps: float
    peak_backlog_mb: float
    final_backlog_mb: float
    backlog_mb: np.ndarray
    sample_times_h: np.ndarray
    latency_p50_s: float
    latency_p99_s: float
    profile_switches: int
    final_profile: str
    profile_history: list[str]
    ledger_digest: str

    def to_json_dict(self) -> dict:
        return {
            "station_id": self.station_id,
            "region": self.region.name,
            "n_requests": self.n_requests,
            "n_broadcast": self.n_broadcast,
            "n_shed": self.n_shed,
            "goodput_bps": round(self.goodput_bps, 1),
            "peak_backlog_mb": round(self.peak_backlog_mb, 3),
            "final_backlog_mb": round(self.final_backlog_mb, 3),
            "latency_p50_s": round(self.latency_p50_s, 1),
            "latency_p99_s": round(self.latency_p99_s, 1),
            "profile_switches": self.profile_switches,
            "final_profile": self.final_profile,
            "ledger_digest": self.ledger_digest,
        }


@dataclass
class NetworkResult:
    """Everything one network run produced, per station and shared."""

    config: NetworkConfig
    stations: list[StationReport]
    schedule_digests: list[str]
    store_hits: int
    store_misses: int

    def station(self, station_id: str) -> StationReport:
        for report in self.stations:
            if report.station_id == station_id:
                return report
        raise KeyError(station_id)

    def network_digest(self) -> str:
        """One hash over every determinism-relevant artefact.

        Serial and sharded runs of the same config must agree on this:
        per-station ledger digests (request life cycles), the schedule
        digests (what the demand scheduler decided each epoch).
        """
        h = hashlib.sha256()
        for report in self.stations:
            h.update(report.station_id.encode())
            h.update(report.ledger_digest.encode())
        for digest in self.schedule_digests:
            h.update(digest.encode())
        return h.hexdigest()

    def to_json_dict(self) -> dict:
        return {
            "n_stations": self.config.n_stations,
            "hours": self.config.hours,
            "n_pages": self.config.n_pages,
            "seed": self.config.seed,
            "network_digest": self.network_digest(),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "stations": [s.to_json_dict() for s in self.stations],
        }


class BroadcastNetwork:
    """N regional stations over one shared bundle store.

    Owns the registry (one transmitter per region, grouped by station),
    the per-region ledgers, the region-local Tranco priors, and the
    :class:`DemandScheduler` that allocates pages to stations at every
    epoch boundary.
    """

    def __init__(self, config: NetworkConfig = NetworkConfig()) -> None:
        self.config = config
        self.regions = config.resolved_regions()
        self.generator = SiteGenerator(seed=config.seed, n_sites=config.n_pages // 4)
        self.urls: tuple[str, ...] = tuple(self.generator.all_urls())
        self.size_model = PageSizeModel(self.generator, quality=config.quality)
        self.store = BundleStore(capacity=4 * config.n_pages)
        self.registry = TransmitterRegistry()
        self.stations: dict[str, Station] = {}
        self.ledgers: dict[str, RequestLedger] = {}
        priors: dict[str, np.ndarray] = {}
        for i, region in enumerate(self.regions):
            tx = Transmitter(
                station_id=f"{region.name}-fm",
                location=region.center,
                frequency_mhz=88.0 + (i % 10) * 2.0,
                coverage_km=region.radius_km,
                rate_bps=config.profiles[0][1],
                station=region.name,
            )
            self.registry.add(tx)
            self.stations[region.name] = Station(
                region.name,
                [tx],
                selector=_build_selector(config),
                ledger=RequestLedger(),
            )
            self.ledgers[region.name] = self.stations[region.name].ledger
            priors[region.name] = self._region_prior(region.name)
        self.scheduler = DemandScheduler(
            [r.name for r in self.regions],
            config.n_pages,
            priors=priors,
            config=DemandConfig(
                decay=config.demand_decay,
                pages_per_station=config.pages_per_station,
                seed=config.seed,
            ),
        )

    def _region_prior(self, name: str) -> np.ndarray:
        """Region-local Tranco prior: the global rank order, locally
        permuted (every market has its own hometown favourites), with
        the global ``1/(rank+1)^0.9`` weight law on the local ranks."""
        n = self.config.n_pages
        local_rank = derive_rng(self.config.seed, "region-rank", name).permutation(n)
        prior = (1.0 / (local_rank + 1.0)) ** 0.9
        return prior / prior.sum()

    def region_trace(self, region: RegionSpec):
        """The region's deterministic SMS request trace for the horizon."""
        return generate_requests(
            RequestTraceConfig(
                hours=float(self.config.hours),
                n_pages=self.config.n_pages,
                rate_per_s=region.rate_per_s,
                seed=derive_key(self.config.seed, "region-trace", region.name),
            )
        )

    def close(self) -> None:
        for ledger in self.ledgers.values():
            ledger.close()

    # -- the epoch-synchronous run ------------------------------------------

    def _make_cores(self) -> dict[str, _SimCore]:
        cores = {}
        for region in self.regions:
            station = self.stations[region.name]
            selector = station.selector
            assert selector is not None
            rates = {name: rate for name, rate, _, _ in self.config.profiles}
            profile = selector.select(region.snr_start_db)
            tx = station.transmitters[0]
            tx.carousel.rate_bps = rates[profile]
            cores[region.name] = _SimCore(
                station_id=region.name,
                urls=self.urls,
                carousel=tx.carousel,
                selector=selector,
                profile_rates=rates,
                profile=profile,
            )
        return cores

    def _epoch_pages(self, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, versions) of every corpus page at ``epoch``."""
        versions = np.array(
            [self.generator.effective_epoch(url, epoch) for url in self.urls],
            dtype=np.int64,
        )
        sizes = np.array(
            [
                self.size_model.size_at(url, int(versions[i]))
                for i, url in enumerate(self.urls)
            ],
            dtype=np.int64,
        )
        return sizes, versions

    def _apply_ops(self, ledger: RequestLedger, ops: list[tuple]) -> None:
        for op in ops:
            if op[0] == "insert":
                _, rids, u, ats, acked, scheduled, status = op
                ledger.insert(rids, u, ats, acked, scheduled, status)
            else:
                _, rids, t = op
                ledger.mark_broadcast(np.asarray(rids), t)
        ledger.commit()

    def run(
        self, sharded: bool = False, processes: int | None = None
    ) -> NetworkResult:
        """Simulate the broadcast horizon; serial or sharded.

        ``sharded=True`` steps each epoch's stations concurrently (a
        process pool when ``processes`` allows, otherwise inline in
        deliberately *reversed* station order — proving order cannot
        matter).  Either way the result is bit-identical to the serial
        run: cores are station-local, ledger ops are applied in
        canonical station order, and the scheduler only ever runs in the
        parent at epoch boundaries.
        """
        cfg = self.config
        cores = self._make_cores()
        station_ids = [r.name for r in self.regions]
        traces = {r.name: self.region_trace(r) for r in self.regions}
        cursors = {sid: 0 for sid in station_ids}
        schedule_digests: list[str] = []

        if processes is None:
            processes = multiprocessing.cpu_count()
        processes = max(1, min(processes, len(station_ids)))
        pool = (
            multiprocessing.Pool(processes)
            if sharded and processes > 1
            else None
        )
        try:
            for epoch in range(cfg.hours):
                sizes, versions = self._epoch_pages(epoch)
                allocations = self.scheduler.rebalance(epoch)
                schedule_digests.append(schedule_digest(allocations))

                # Push the epoch's allocation through the *shared* store:
                # the first station needing a (url, version) encodes it,
                # every later one reuses the bytes.  Done in the parent,
                # in canonical order, so sharding can't change accounting.
                for sid in station_ids:
                    core = cores[sid]
                    core.snr_db = self._region(sid).snr_at(epoch)
                    for u, score in allocations[sid]:
                        url = self.urls[u]
                        version = int(versions[u])
                        key = bundle_key(
                            url, version, 0, None, cfg.quality, cfg.seed
                        )
                        if self.store.get(key) is None:
                            self.store.put(key, f"{url}|{version}".encode())
                        core.carousel.enqueue(
                            CarouselItem(
                                url,
                                int(sizes[u]),
                                priority=score,
                                digest=f"{u}|{version}",
                            )
                        )

                payloads = []
                for sid in station_ids:
                    trace = traces[sid]
                    lo = cursors[sid]
                    hi = int(
                        np.searchsorted(trace.times, (epoch + 1) * 3600.0, "left")
                    )
                    cursors[sid] = hi
                    payloads.append(
                        (
                            cores[sid],
                            (
                                epoch,
                                trace.times[lo:hi],
                                trace.url_index[lo:hi],
                                np.arange(lo, hi),
                                sizes,
                                versions,
                                cfg.tick_s,
                                cfg.max_backlog_bytes,
                                cfg.link_report_frames,
                                max(1, int(cfg.profile_deadline_s // cfg.tick_s)),
                            ),
                        )
                    )

                if pool is not None:
                    stepped = pool.map(_epoch_worker, payloads)
                elif sharded:
                    # Inline sharding: a different execution order must
                    # (and does) produce the same cores and ops.
                    stepped = [None] * len(payloads)
                    for i in reversed(range(len(payloads))):
                        stepped[i] = _epoch_worker(payloads[i])
                else:
                    stepped = [_epoch_worker(p) for p in payloads]

                for sid, (core, ops) in zip(station_ids, stepped):
                    cores[sid] = core
                    self._apply_ops(self.ledgers[sid], ops)

                # Close the demand loop: each station's measured request
                # counts for this epoch feed the next rebalance.
                for sid in station_ids:
                    counts = self.ledgers[sid].demand_counts(
                        since=epoch * 3600.0, until=(epoch + 1) * 3600.0
                    )
                    self.scheduler.observe(sid, counts)
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        return self._collect(cores, schedule_digests)

    def _region(self, sid: str) -> RegionSpec:
        return next(r for r in self.regions if r.name == sid)

    def _collect(
        self, cores: dict[str, _SimCore], schedule_digests: list[str]
    ) -> NetworkResult:
        cfg = self.config
        duration_s = cfg.hours * 3600.0
        ticks = int(round(3600.0 / cfg.tick_s)) * cfg.hours
        sample_times_h = (np.arange(1, ticks + 1) * cfg.tick_s) / 3600.0
        reports = []
        for region in self.regions:
            core = cores[region.name]
            ledger = self.ledgers[region.name]
            stats = ledger.stats()
            backlog_mb = np.asarray(core.backlog_samples, dtype=np.float64) / 1e6
            reports.append(
                StationReport(
                    station_id=region.name,
                    region=region,
                    n_requests=core.n_requests,
                    n_broadcast=stats.n_broadcast,
                    n_shed=core.n_shed,
                    goodput_bps=core.carousel.total_sent_bytes * 8.0 / duration_s,
                    peak_backlog_mb=float(backlog_mb.max(initial=0.0)),
                    final_backlog_mb=float(backlog_mb[-1]) if backlog_mb.size else 0.0,
                    backlog_mb=backlog_mb,
                    sample_times_h=sample_times_h,
                    latency_p50_s=stats.percentile(50.0),
                    latency_p99_s=stats.percentile(99.0),
                    profile_switches=core.profile_switches,
                    final_profile=core.profile,
                    profile_history=core.profile_history,
                    ledger_digest=ledger.digest(),
                )
            )
        return NetworkResult(
            config=cfg,
            stations=reports,
            schedule_digests=schedule_digests,
            store_hits=self.store.stats.hits,
            store_misses=self.store.stats.misses,
        )


def run_network(
    config: NetworkConfig = NetworkConfig(),
    sharded: bool = False,
    processes: int | None = None,
) -> NetworkResult:
    """Build a :class:`BroadcastNetwork` and simulate the horizon."""
    network = BroadcastNetwork(config)
    try:
        return network.run(sharded=sharded, processes=processes)
    finally:
        network.close()


def network_partition(config: NetworkConfig) -> RegionPartition:
    """Nearest-station partition over the network's region masts."""
    regions = config.resolved_regions()
    return RegionPartition(
        names=tuple(r.name for r in regions),
        centers=tuple(r.center for r in regions),
    )


def network_coverage(
    config: NetworkConfig,
    n_receivers: int = 20_000,
    result: NetworkResult | None = None,
):
    """Per-station Tier-2 coverage for the network's listener fleet.

    Scatters each station's share of the listeners over its own
    coverage disc (capped at the 2 km propagation-sane radius of the
    TR508-class mast), runs the statistical population tier per
    station under the loss curve of the profile the station ended the
    broadcast day on (``result``; the fastest rung when no run is
    given), and attributes every receiver to its nearest station via
    :func:`repro.sim.population.per_station_coverage` — the fleet's
    per-station coverage report.
    """
    from repro.sim.population import (
        PopulationConfig,
        StationCoverage,
        per_station_coverage,
        run_population,
    )

    regions = config.resolved_regions()
    partition = network_partition(config)
    models = {
        name: FrameLossModel(fer_midpoint_db=mid, fer_scale_db=scale)
        for name, _, mid, scale in config.profiles
    }
    share = max(1, n_receivers // len(regions))
    merged: list[StationCoverage] = []
    for region in regions:
        profile = config.profiles[0][0]
        if result is not None:
            profile = result.station(region.name).final_profile
        pop = run_population(
            models[profile],
            PopulationConfig(
                n_receivers=share,
                hours=1.0,
                master_seed=derive_key(config.seed, "coverage", region.name),
                pages=config.n_pages,
                frames_per_page=64,
                geometry=PopulationGeometry(
                    center=region.center,
                    radius_km=min(region.radius_km, 2.0),
                ),
                frame_duration_s=0.1,
            ),
        )
        for cov in per_station_coverage(pop, partition):
            if cov.n_receivers:
                merged.append(cov)
    # A station's disc can straddle a partition boundary (satellite
    # markets); merge slices attributed to the same station.
    by_station: dict[str, list[StationCoverage]] = {}
    for cov in merged:
        by_station.setdefault(cov.station, []).append(cov)
    out = []
    for name in partition.names:
        slices = by_station.get(name, [])
        n = sum(s.n_receivers for s in slices)
        if n == 0:
            out.append(StationCoverage(name, 0, float("nan"), float("nan"), float("nan")))
            continue
        out.append(
            StationCoverage(
                station=name,
                n_receivers=n,
                mean_loss_rate=sum(s.mean_loss_rate * s.n_receivers for s in slices) / n,
                mean_readability=sum(s.mean_readability * s.n_receivers for s in slices) / n,
                mean_pages_fraction=sum(
                    s.mean_pages_fraction * s.n_receivers for s in slices
                )
                / n,
            )
        )
    return out
