"""Preemptive popularity pushes.

"[the server] maintains a list of the most popular websites in a region
that are preemptively pushed to users in an attempt to improve their
experience.  For example, popular news sites can be pushed early in the
morning." (Section 3.1).  The scheduler decides, each hour, which corpus
pages to re-render and queue — popular pages first, news boosted in the
morning push window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.sites import SiteGenerator

__all__ = ["SchedulerConfig", "PopularityScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Push policy knobs."""

    max_pages_per_hour: int = 100  # airtime guard
    morning_push_hours: tuple[int, ...] = (6, 7, 8)  # local hours
    morning_news_boost: float = 3.0
    request_priority: float = 100.0  # user requests outrank any push
    refresh_top_n: int = 3  # unchanged popular pages rebroadcast hourly


class PopularityScheduler:
    """Ranks corpus pages for each hourly push."""

    def __init__(
        self, generator: SiteGenerator, config: SchedulerConfig = SchedulerConfig()
    ) -> None:
        self.generator = generator
        self.config = config

    def page_priority(self, url: str, hour: int) -> float:
        """Push priority of a page at a given hour."""
        domain = url.partition("/")[0]
        site = self.generator.website(domain)
        weight = site.weight
        is_landing = url.endswith("/")
        priority = weight * (2.0 if is_landing else 1.0)
        if (
            site.category == "news"
            and hour % 24 in self.config.morning_push_hours
        ):
            priority *= self.config.morning_news_boost
        return priority

    def pages_to_push(self, hour: int) -> list[tuple[str, float]]:
        """(url, priority) of pages to (re)broadcast this hour.

        Hour 0 seeds the whole catalog; afterwards only changed pages
        are queued, capped by the per-hour airtime guard.
        """
        urls = self.generator.all_urls()
        if hour == 0:
            due = list(urls)
        else:
            due = [u for u in urls if self.generator.changed_at(u, hour)]
            # Rebroadcast the top unchanged pages so lossy receivers can
            # fill reception gaps on a later carousel cycle.
            unchanged = sorted(
                (u for u in urls if u not in due),
                key=lambda u: -self.page_priority(u, hour),
            )
            due.extend(unchanged[: self.config.refresh_top_n])
        ranked = sorted(
            ((u, self.page_priority(u, hour)) for u in due),
            key=lambda pair: -pair[1],
        )
        return ranked[: self.config.max_pages_per_hour]
