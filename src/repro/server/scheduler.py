"""Preemptive popularity pushes and adaptive profile selection.

"[the server] maintains a list of the most popular websites in a region
that are preemptively pushed to users in an attempt to improve their
experience.  For example, popular news sites can be pushed early in the
morning." (Section 3.1).  The scheduler decides, each hour, which corpus
pages to re-render and queue — popular pages first, news boosted in the
morning push window.

:class:`AdaptiveProfileSelector` closes the loop the paper leaves open:
given each modem profile's net payload rate and fitted frame-loss curve
(seeded from the tournament, refined by receiver ``RPT`` feedback over
the SMS uplink), pick the fastest profile whose predicted loss at the
reported SNR stays under threshold — and fall back down the rate ladder
as the channel degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.lossmodel import FrameLossModel, fit_logistic_fer
from repro.sms.protocol import LinkReport
from repro.web.sites import SiteGenerator

__all__ = ["SchedulerConfig", "PopularityScheduler", "AdaptiveProfileSelector"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Push policy knobs."""

    max_pages_per_hour: int = 100  # airtime guard
    morning_push_hours: tuple[int, ...] = (6, 7, 8)  # local hours
    morning_news_boost: float = 3.0
    request_priority: float = 100.0  # user requests outrank any push
    refresh_top_n: int = 3  # unchanged popular pages rebroadcast hourly


class PopularityScheduler:
    """Ranks corpus pages for each hourly push."""

    def __init__(
        self, generator: SiteGenerator, config: SchedulerConfig = SchedulerConfig()
    ) -> None:
        self.generator = generator
        self.config = config

    def page_priority(self, url: str, hour: int) -> float:
        """Push priority of a page at a given hour."""
        domain = url.partition("/")[0]
        site = self.generator.website(domain)
        weight = site.weight
        is_landing = url.endswith("/")
        priority = weight * (2.0 if is_landing else 1.0)
        if (
            site.category == "news"
            and hour % 24 in self.config.morning_push_hours
        ):
            priority *= self.config.morning_news_boost
        return priority

    def pages_to_push(self, hour: int) -> list[tuple[str, float]]:
        """(url, priority) of pages to (re)broadcast this hour.

        Hour 0 seeds the whole catalog; afterwards only changed pages
        are queued, capped by the per-hour airtime guard.
        """
        urls = self.generator.all_urls()
        if hour == 0:
            due = list(urls)
        else:
            due = [u for u in urls if self.generator.changed_at(u, hour)]
            # Rebroadcast the top unchanged pages so lossy receivers can
            # fill reception gaps on a later carousel cycle.
            unchanged = sorted(
                (u for u in urls if u not in due),
                key=lambda u: -self.page_priority(u, hour),
            )
            due.extend(unchanged[: self.config.refresh_top_n])
        ranked = sorted(
            ((u, self.page_priority(u, hour)) for u in due),
            key=lambda pair: -pair[1],
        )
        return ranked[: self.config.max_pages_per_hour]


@dataclass
class _ProfileState:
    """One profile's rate, loss curve, and accumulated feedback."""

    net_bps: float
    model: FrameLossModel
    samples: list[tuple[float, int, int]] = field(default_factory=list)


class AdaptiveProfileSelector:
    """Fastest-profile-that-survives selection over fitted loss curves.

    Seeded with per-profile ``(net_bps, FrameLossModel)`` pairs — most
    naturally from a :class:`repro.sim.tournament.TournamentResult` via
    :meth:`from_tournament` — and updated online from receivers' ``RPT``
    link reports: once a profile has enough feedback samples its curve
    is refitted to the measured outcomes, so advice tracks the deployed
    channel rather than the bench sweep.
    """

    #: Feedback samples before a profile's curve is refitted.
    MIN_FIT_SAMPLES = 3

    def __init__(
        self,
        profiles: dict[str, tuple[float, FrameLossModel]],
        loss_threshold: float = 0.1,
    ) -> None:
        if not profiles:
            raise ValueError("selector needs at least one profile")
        self.loss_threshold = loss_threshold
        self._states = {
            name: _ProfileState(net_bps=rate, model=model)
            for name, (rate, model) in profiles.items()
        }

    @classmethod
    def from_tournament(
        cls, result, loss_threshold: float | None = None
    ) -> "AdaptiveProfileSelector":
        """Seed the ladder from a finished profile tournament."""
        models = result.loss_models()
        profiles = {
            name: (result.net_rates[name], models[name])
            for name in result.config.profiles
        }
        return cls(
            profiles,
            loss_threshold=(
                result.config.loss_threshold
                if loss_threshold is None
                else loss_threshold
            ),
        )

    @property
    def profiles(self) -> list[str]:
        """Profile names, fastest first (the rate ladder)."""
        return sorted(self._states, key=lambda n: -self._states[n].net_bps)

    def predicted_loss(self, profile: str, snr_db: float) -> float:
        return self._states[profile].model.frame_error_probability(snr_db)

    def select(self, snr_db: float) -> str:
        """The fastest profile predicted to survive ``snr_db``.

        If no profile meets the loss threshold, returns the one with the
        lowest predicted loss — some advice beats silence.  Loss ties
        (e.g. everything saturated at 1.0 on a hopeless channel) break
        toward the slowest profile, the robust end of the ladder.
        """
        for name in self.profiles:
            if self.predicted_loss(name, snr_db) <= self.loss_threshold:
                return name
        return min(
            self.profiles,
            key=lambda n: (self.predicted_loss(n, snr_db), self._states[n].net_bps),
        )

    def observe(self, report: LinkReport) -> bool:
        """Fold one receiver report in; ``True`` if the curve refitted.

        Reports for unknown profiles are ignored (a client may be ahead
        of or behind the server's registry) — the caller still gets
        advice from :meth:`select`.
        """
        state = self._states.get(report.profile)
        if state is None:
            return False
        state.samples.append((report.snr_db, report.n_frames, report.n_lost))
        if len(state.samples) < self.MIN_FIT_SAMPLES:
            return False
        distinct_snrs = {s[0] for s in state.samples}
        if len(distinct_snrs) < 2:
            return False  # a one-point curve is not a curve
        mid, scale = fit_logistic_fer(
            [s[0] for s in state.samples],
            [s[1] for s in state.samples],
            [s[2] for s in state.samples],
        )
        state.model = FrameLossModel(fer_midpoint_db=mid, fer_scale_db=scale)
        return True
