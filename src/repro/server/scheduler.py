"""Preemptive popularity pushes and adaptive profile selection.

"[the server] maintains a list of the most popular websites in a region
that are preemptively pushed to users in an attempt to improve their
experience.  For example, popular news sites can be pushed early in the
morning." (Section 3.1).  The scheduler decides, each hour, which corpus
pages to re-render and queue — popular pages first, news boosted in the
morning push window.

:class:`AdaptiveProfileSelector` closes the loop the paper leaves open:
given each modem profile's net payload rate and fitted frame-loss curve
(seeded from the tournament, refined by receiver ``RPT`` feedback over
the SMS uplink), pick the fastest profile whose predicted loss at the
reported SNR stays under threshold — and fall back down the rate ladder
as the channel degrades.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.radio.lossmodel import FrameLossModel, fit_logistic_fer
from repro.sms.protocol import LinkReport
from repro.util.rng import counter_uniforms, derive_key
from repro.web.sites import SiteGenerator

__all__ = [
    "SchedulerConfig",
    "PopularityScheduler",
    "AdaptiveProfileSelector",
    "DemandConfig",
    "DemandScheduler",
    "schedule_digest",
]


@dataclass(frozen=True)
class SchedulerConfig:
    """Push policy knobs."""

    max_pages_per_hour: int = 100  # airtime guard
    morning_push_hours: tuple[int, ...] = (6, 7, 8)  # local hours
    morning_news_boost: float = 3.0
    request_priority: float = 100.0  # user requests outrank any push
    refresh_top_n: int = 3  # unchanged popular pages rebroadcast hourly


class PopularityScheduler:
    """Ranks corpus pages for each hourly push."""

    def __init__(
        self, generator: SiteGenerator, config: SchedulerConfig = SchedulerConfig()
    ) -> None:
        self.generator = generator
        self.config = config

    def page_priority(self, url: str, hour: int) -> float:
        """Push priority of a page at a given hour."""
        domain = url.partition("/")[0]
        site = self.generator.website(domain)
        weight = site.weight
        is_landing = url.endswith("/")
        priority = weight * (2.0 if is_landing else 1.0)
        if (
            site.category == "news"
            and hour % 24 in self.config.morning_push_hours
        ):
            priority *= self.config.morning_news_boost
        return priority

    def pages_to_push(self, hour: int) -> list[tuple[str, float]]:
        """(url, priority) of pages to (re)broadcast this hour.

        Hour 0 seeds the whole catalog; afterwards only changed pages
        are queued, capped by the per-hour airtime guard.
        """
        urls = self.generator.all_urls()
        if hour == 0:
            due = list(urls)
        else:
            due = [u for u in urls if self.generator.changed_at(u, hour)]
            # Rebroadcast the top unchanged pages so lossy receivers can
            # fill reception gaps on a later carousel cycle.
            unchanged = sorted(
                (u for u in urls if u not in due),
                key=lambda u: -self.page_priority(u, hour),
            )
            due.extend(unchanged[: self.config.refresh_top_n])
        ranked = sorted(
            ((u, self.page_priority(u, hour)) for u in due),
            key=lambda pair: -pair[1],
        )
        return ranked[: self.config.max_pages_per_hour]


@dataclass
class _ProfileState:
    """One profile's rate, loss curve, and accumulated feedback."""

    net_bps: float
    model: FrameLossModel
    samples: list[tuple[float, int, int]] = field(default_factory=list)


class AdaptiveProfileSelector:
    """Fastest-profile-that-survives selection over fitted loss curves.

    Seeded with per-profile ``(net_bps, FrameLossModel)`` pairs — most
    naturally from a :class:`repro.sim.tournament.TournamentResult` via
    :meth:`from_tournament` — and updated online from receivers' ``RPT``
    link reports: once a profile has enough feedback samples its curve
    is refitted to the measured outcomes, so advice tracks the deployed
    channel rather than the bench sweep.
    """

    #: Feedback samples before a profile's curve is refitted.
    MIN_FIT_SAMPLES = 3

    def __init__(
        self,
        profiles: dict[str, tuple[float, FrameLossModel]],
        loss_threshold: float = 0.1,
    ) -> None:
        if not profiles:
            raise ValueError("selector needs at least one profile")
        self.loss_threshold = loss_threshold
        self._states = {
            name: _ProfileState(net_bps=rate, model=model)
            for name, (rate, model) in profiles.items()
        }

    @classmethod
    def from_tournament(
        cls, result, loss_threshold: float | None = None
    ) -> "AdaptiveProfileSelector":
        """Seed the ladder from a finished profile tournament."""
        models = result.loss_models()
        profiles = {
            name: (result.net_rates[name], models[name])
            for name in result.config.profiles
        }
        return cls(
            profiles,
            loss_threshold=(
                result.config.loss_threshold
                if loss_threshold is None
                else loss_threshold
            ),
        )

    @property
    def profiles(self) -> list[str]:
        """Profile names, fastest first (the rate ladder)."""
        return sorted(self._states, key=lambda n: -self._states[n].net_bps)

    def predicted_loss(self, profile: str, snr_db: float) -> float:
        return self._states[profile].model.frame_error_probability(snr_db)

    def select(self, snr_db: float) -> str:
        """The fastest profile predicted to survive ``snr_db``.

        If no profile meets the loss threshold, returns the one with the
        lowest predicted loss — some advice beats silence.  Loss ties
        (e.g. everything saturated at 1.0 on a hopeless channel) break
        toward the slowest profile, the robust end of the ladder.
        """
        for name in self.profiles:
            if self.predicted_loss(name, snr_db) <= self.loss_threshold:
                return name
        return min(
            self.profiles,
            key=lambda n: (self.predicted_loss(n, snr_db), self._states[n].net_bps),
        )

    def observe(self, report: LinkReport) -> bool:
        """Fold one receiver report in; ``True`` if the curve refitted.

        Reports for unknown profiles are ignored (a client may be ahead
        of or behind the server's registry) — the caller still gets
        advice from :meth:`select`.
        """
        state = self._states.get(report.profile)
        if state is None:
            return False
        state.samples.append((report.snr_db, report.n_frames, report.n_lost))
        if len(state.samples) < self.MIN_FIT_SAMPLES:
            return False
        distinct_snrs = {s[0] for s in state.samples}
        if len(distinct_snrs) < 2:
            return False  # a one-point curve is not a curve
        mid, scale = fit_logistic_fer(
            [s[0] for s in state.samples],
            [s[1] for s in state.samples],
            [s[2] for s in state.samples],
        )
        state.model = FrameLossModel(fer_midpoint_db=mid, fer_scale_db=scale)
        return True


@dataclass(frozen=True)
class DemandConfig:
    """Demand-driven allocation knobs for the multi-station scheduler."""

    #: Carry-over of last epoch's demand into this one (exponential decay).
    decay: float = 0.5
    #: Score weight of measured (EWMA) request demand.
    demand_weight: float = 1.0
    #: Score weight of the region-local Tranco rank prior.
    prior_weight: float = 0.25
    #: Score weight of the aging counter (starvation-freeness guarantee).
    aging_weight: float = 0.05
    #: Pages each station may carry per epoch (airtime budget).
    pages_per_station: int = 24
    #: Seed keying the deterministic tie-break stream.
    seed: int = 0
    #: EWMA demand below this is snapped to zero.  Exponential decay
    #: never reaches 0.0 in floats, so without the snap a single ancient
    #: request would keep a page "live" (and aging) forever.
    quiet_threshold: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        if self.quiet_threshold < 0:
            raise ValueError("quiet_threshold must be non-negative")
        if self.pages_per_station < 1:
            raise ValueError("pages_per_station must be positive")
        if self.aging_weight < 0 or self.demand_weight < 0 or self.prior_weight < 0:
            raise ValueError("score weights must be non-negative")


class DemandScheduler:
    """Allocates corpus pages to regional stations from measured demand.

    Each station scores every page as::

        score = demand_weight * ewma_demand
              + prior_weight  * region_prior
              + aging_weight  * age

    ``ewma_demand`` folds the station ledger's per-URL request counts in
    with exponential decay (:attr:`DemandConfig.decay`), so yesterday's
    fashion fades; ``region_prior`` is the station's local popularity
    prior (region-permuted Tranco weights); ``age`` counts consecutive
    epochs a page had live demand yet no slot — it grows without bound
    while demand and prior stay bounded, so every demanded page is
    eventually allocated (starvation-freeness, property-tested).

    Ties break by a seed-keyed counter-RNG draw — a pure function of
    ``(seed, station, epoch, url)`` — then by URL index, so allocations
    are bit-identical however stations are partitioned across workers.
    """

    def __init__(
        self,
        station_ids: list[str],
        n_pages: int,
        priors: dict[str, np.ndarray] | None = None,
        config: DemandConfig = DemandConfig(),
    ) -> None:
        if not station_ids:
            raise ValueError("scheduler needs at least one station")
        if len(set(station_ids)) != len(station_ids):
            raise ValueError("duplicate station ids")
        if n_pages < 1:
            raise ValueError("n_pages must be positive")
        self.config = config
        self.n_pages = n_pages
        self.station_ids = list(station_ids)
        # Default prior: the global Tranco weight law 1/(rank+1)^0.9.
        flat = (1.0 / np.arange(1.0, n_pages + 1.0)) ** 0.9
        flat /= flat.sum()
        self._priors: dict[str, np.ndarray] = {}
        for sid in self.station_ids:
            prior = flat if priors is None else np.asarray(priors[sid], float)
            if prior.shape != (n_pages,):
                raise ValueError(f"prior for {sid} must have length {n_pages}")
            self._priors[sid] = prior
        self._demand = {sid: np.zeros(n_pages) for sid in self.station_ids}
        self._age = {sid: np.zeros(n_pages) for sid in self.station_ids}
        self._pending = {sid: np.zeros(n_pages) for sid in self.station_ids}

    def observe(self, station_id: str, counts: dict[int, int]) -> None:
        """Fold one epoch's ledger demand counts into a station's state.

        Accumulates until the next :meth:`rebalance`; multiple observes
        between rebalances sum (e.g. a ledger read split across ticks).
        """
        pending = self._pending[station_id]
        for url_index, n in counts.items():
            if not 0 <= url_index < self.n_pages:
                raise ValueError(f"url index {url_index} out of range")
            pending[url_index] += n

    def demand(self, station_id: str) -> np.ndarray:
        """The station's current EWMA demand vector (copy)."""
        return self._demand[station_id].copy()

    def rebalance(self, epoch: int) -> dict[str, list[tuple[int, float]]]:
        """Per-station ``(url_index, score)`` allocations for ``epoch``.

        Decays each station's demand EWMA, folds in counts observed
        since the last rebalance, scores every page, and returns each
        station's top :attr:`DemandConfig.pages_per_station` pages in
        descending score order.  Pure function of the observe history —
        no wall clock, no global RNG.
        """
        cfg = self.config
        allocations: dict[str, list[tuple[int, float]]] = {}
        indices = np.arange(self.n_pages, dtype=np.uint64)
        for sid in self.station_ids:
            demand = self._demand[sid]
            demand *= cfg.decay
            demand += self._pending[sid]
            demand[demand < cfg.quiet_threshold] = 0.0
            self._pending[sid] = np.zeros(self.n_pages)
            score = (
                cfg.demand_weight * demand
                + cfg.prior_weight * self._priors[sid]
                + cfg.aging_weight * self._age[sid]
            )
            tiebreak = counter_uniforms(
                derive_key(cfg.seed, "sched-tiebreak", sid, str(epoch)), indices
            )
            order = np.lexsort((indices, tiebreak, -score))
            chosen = order[: cfg.pages_per_station]
            allocations[sid] = [(int(i), float(score[i])) for i in chosen]
            # Aging: demanded-but-unallocated pages accrue priority;
            # allocation (or demand going quiet) resets the counter.
            age = self._age[sid]
            age[demand > 0.0] += 1.0
            age[demand <= 0.0] = 0.0
            age[chosen] = 0.0
        return allocations


def schedule_digest(allocations: dict[str, list[tuple[int, float]]]) -> str:
    """Content hash of one rebalance result, station order included.

    Serial and sharded network runs must produce identical digests —
    the schedule half of the determinism contract.
    """
    h = hashlib.sha256()
    for sid, pages in allocations.items():
        h.update(sid.encode())
        for url_index, score in pages:
            h.update(f"{url_index}:{score:.9e};".encode())
    return h.hexdigest()
