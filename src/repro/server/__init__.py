"""The SONIC server (paper Section 3.1).

Responsibilities: render requested webpages into screenshot bundles,
cache them, pick the FM transmitter that covers the requesting user,
queue broadcasts, answer requests over SMS with delivery estimates, and
preemptively push the region's popular pages.
"""

from repro.server.cache import PageCache, CachedPage
from repro.server.transmitters import (
    BroadcastEncodeCache,
    CacheStats,
    Transmitter,
    TransmitterRegistry,
    payload_digest,
)
from repro.server.frontend import (
    CatalogResolver,
    FrontendConfig,
    FrontendResult,
    FrontendStats,
    RequestFrontend,
    SizeModelResolver,
)
from repro.server.ledger import LedgerStats, RequestLedger
from repro.server.network import (
    BroadcastNetwork,
    NetworkConfig,
    NetworkResult,
    RegionSpec,
    Station,
    StationReport,
    run_network,
)
from repro.server.scheduler import (
    AdaptiveProfileSelector,
    DemandConfig,
    DemandScheduler,
    PopularityScheduler,
    SchedulerConfig,
    schedule_digest,
)
from repro.server.server import SonicServer, ServerConfig

__all__ = [
    "CatalogResolver",
    "FrontendConfig",
    "FrontendResult",
    "FrontendStats",
    "RequestFrontend",
    "SizeModelResolver",
    "LedgerStats",
    "RequestLedger",
    "PageCache",
    "CachedPage",
    "BroadcastEncodeCache",
    "CacheStats",
    "payload_digest",
    "Transmitter",
    "TransmitterRegistry",
    "AdaptiveProfileSelector",
    "DemandConfig",
    "DemandScheduler",
    "PopularityScheduler",
    "SchedulerConfig",
    "schedule_digest",
    "BroadcastNetwork",
    "NetworkConfig",
    "NetworkResult",
    "RegionSpec",
    "Station",
    "StationReport",
    "run_network",
    "SonicServer",
    "ServerConfig",
]
