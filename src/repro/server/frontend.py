"""Asyncio SMS request front end: batched ingest at carousel scale.

SONIC's uplink is SMS page requests feeding the broadcast carousel
(Section 3.1).  This module turns the one-message-at-a-time simulation
into a request-serving *service*: a bounded asyncio ingest queue fed by
the vectorised request generator, a dispatcher that coalesces identical
page requests and batches dispatch into the store-backed resolvers, a
persistent sqlite ledger of every request's life cycle, and explicit
backpressure when the carousel saturates.

The dataflow::

    generate_requests -> ingest queue -> dedup/coalesce -> resolve batch
        (cohorts)        (bounded)       (per unique URL)  (BundleStore /
                                                            size model)
                              |                                  |
                              v                                  v
                        RequestLedger  <-  carousel drain  <- enqueue
                      (submit/ack/sched/     (tick clock)    (+ shed /
                       broadcast times)                       deferral)

Determinism: all outcome-changing state (carousel drain, deferred
retries) advances only at tick boundaries, and requests are processed in
arrival order within a tick, so *any* partitioning of the request stream
into dispatch batches — including the degenerate one-request-at-a-time
serial mode — produces a bit-identical ledger.  That is the async
analogue of the fleet simulator's counter-RNG chunk invariance, and the
``repro bench`` gate checks it on every run.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Protocol

import numpy as np

from repro.server.ledger import LedgerStats, RequestLedger
from repro.sim.workload import PageSizeModel, RequestTrace
from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.web.sites import SiteGenerator

__all__ = [
    "FrontendConfig",
    "FrontendStats",
    "FrontendResult",
    "PageResolver",
    "SizeModelResolver",
    "CatalogResolver",
    "RequestFrontend",
]


@dataclass(frozen=True)
class FrontendConfig:
    """Service knobs: clocking, batching, and backpressure."""

    rate_bps: float = 20_000.0  # carousel drain rate
    tick_s: float = 10.0  # batch window and drain granularity
    max_batch: int = 8192  # requests per dispatch batch
    queue_cohorts: int = 64  # bounded ingest queue (in cohorts)
    max_backlog_bytes: int = 4_000_000  # carousel saturation threshold
    defer_capacity: int = 20_000  # parked requests before shedding
    request_priority: float = 100.0  # matches SchedulerConfig
    drain_grace_hours: float = 4.0  # post-trace drain horizon
    commit_every_ticks: int = 360  # ledger commit cadence
    pipelined: bool = True  # overlap resolves with ingest (needs resolve_submit)
    resolve_depth: int = 4  # in-flight speculative resolves (cohorts)
    prefetch: bool = True  # speculative next-hour renders (needs prefetch_hour)


@dataclass
class FrontendStats:
    """Health and throughput counters, updated as the service runs."""

    submitted: int = 0
    coalesced: int = 0  # requests attached to an already-queued page
    enqueued_pages: int = 0  # new page transmissions scheduled
    replaced_pages: int = 0  # queued page superseded by a fresh epoch
    deferred: int = 0  # requests parked by backpressure
    retried: int = 0  # deferred requests that made it on air
    shed: int = 0  # requests dropped (deferral buffer full)
    broadcast_pages: int = 0
    broadcast_requests: int = 0
    batches: int = 0
    ticks: int = 0
    peak_backlog_bytes: int = 0
    peak_queue_depth: int = 0  # ingest queue, in cohorts
    peak_deferred: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.submitted / self.batches if self.batches else 0.0

    @property
    def coalesce_ratio(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0


class PageResolver(Protocol):
    """What the dispatcher needs from the page-production layer."""

    urls: list[str]
    store_hits: int
    store_misses: int

    def epoch(self, url_index: int, hour: int) -> int: ...

    def resolve_batch(
        self, url_indices: list[int], hour: int
    ) -> list[tuple[int, int, bool]]:
        """(size_bytes, epoch, from_store) per index, in order."""
        ...


class _HourWindowMemo:
    """A memo dict bounded by simulation time, not entry count.

    Entries remember the hour they were inserted; once the clock moves
    past ``window`` hours beyond an entry's hour, the entry is evicted
    (one O(n) sweep per simulated hour).  Everything memoised here is a
    pure function of its key, so eviction can only cost a re-compute,
    never change an outcome — which is what lets the resolver memos
    survive multi-day traces without unbounded growth.
    """

    def __init__(self, window_hours: float = 24.0) -> None:
        self._data: dict = {}
        self._hour_of: dict = {}
        self._window = max(1, int(window_hours))
        self._swept = -1

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        return self._data.get(key)

    def put(self, key, value, hour: int) -> None:
        self._data[key] = value
        self._hour_of[key] = hour
        if hour > self._swept:
            self._swept = hour
            cutoff = hour - self._window
            if cutoff > 0:
                stale = [k for k, h in self._hour_of.items() if h < cutoff]
                for k in stale:
                    del self._data[k]
                    del self._hour_of[k]


class SizeModelResolver:
    """Prices pages via :class:`PageSizeModel` — the million-request path.

    Emulates the :class:`~repro.server.cache.BundleStore` exactly at the
    accounting level: the first resolve of a (url, epoch) pair is a miss
    (a render+encode), every later resolve is a store hit.  ``max_page_bytes``
    caps sizes the same way ``repro stream --max-page-kb`` does, keeping
    short simulated days meaningful at FM rates.  Memos are bounded to
    the catalog expiry window (``expiry_hours``).
    """

    def __init__(
        self,
        generator: SiteGenerator,
        quality: int = 10,
        max_page_bytes: int | None = None,
        expiry_hours: float = 24.0,
    ) -> None:
        self.generator = generator
        self.urls = generator.all_urls()
        self.size_model = PageSizeModel(generator, quality=quality)
        self.max_page_bytes = max_page_bytes
        self.store_hits = 0
        self.store_misses = 0
        self._epochs = _HourWindowMemo(expiry_hours)
        self._sizes = _HourWindowMemo(expiry_hours)

    def epoch(self, url_index: int, hour: int) -> int:
        key = (url_index, hour)
        epoch = self._epochs.get(key)
        if epoch is None:
            epoch = self.generator.effective_epoch(self.urls[url_index], hour)
            self._epochs.put(key, epoch, hour)
        return epoch

    def resolve_batch(
        self, url_indices: list[int], hour: int
    ) -> list[tuple[int, int, bool]]:
        out = []
        for i in url_indices:
            epoch = self.epoch(i, hour)
            key = (i, epoch)
            size = self._sizes.get(key)
            if size is not None:
                self.store_hits += 1
                out.append((size, epoch, True))
                continue
            size = self.size_model.size_at(self.urls[i], epoch)
            if self.max_page_bytes is not None:
                size = min(size, self.max_page_bytes)
            self._sizes.put(key, size, hour)
            self.store_misses += 1
            out.append((size, epoch, False))
        return out


class CatalogResolver:
    """Real render+encode dispatch through the pooled catalog pipeline.

    Batched misses fan out over the :class:`CatalogPipeline` pool and
    land in its :class:`~repro.server.cache.BundleStore`, so N requests
    for a hot page cost exactly one render+encode — and a warm store
    (an earlier hour, a previous run) costs none.

    With a *persistent* pipeline (``pipeline.start()``) this resolver
    also exposes the pipelined-dispatch hooks the front end uses to keep
    renders off the event loop: :meth:`resolve_submit` /
    :meth:`resolve_commit` wrap :meth:`CatalogPipeline.submit_catalog`
    jobs, and :meth:`prefetch_hour` pre-renders the next hour's epoch
    rollovers while the current hour broadcasts.
    """

    def __init__(self, pipeline, processes: int | None = None) -> None:
        from repro.server.catalog import CatalogPipeline

        assert isinstance(pipeline, CatalogPipeline)
        self.pipeline = pipeline
        self.processes = processes
        self.urls = pipeline.generator.all_urls()
        self.store_hits = 0
        self.store_misses = 0
        self._epochs = _HourWindowMemo(pipeline.config.expiry_hours)
        self._requested: set[int] = set()

    def epoch(self, url_index: int, hour: int) -> int:
        key = (url_index, hour)
        epoch = self._epochs.get(key)
        if epoch is None:
            epoch = self.pipeline.generator.effective_epoch(
                self.urls[url_index], hour
            )
            self._epochs.put(key, epoch, hour)
        return epoch

    def resolve_batch(
        self, url_indices: list[int], hour: int
    ) -> list[tuple[int, int, bool]]:
        result = self.pipeline.encode_catalog(
            urls=[self.urls[i] for i in url_indices],
            hour=hour,
            processes=self.processes,
        )
        self.store_hits += result.store_hits
        self.store_misses += result.encoded
        return [(len(p.data), p.epoch, p.from_store) for p in result.pages]

    # -- pipelined dispatch hooks ---------------------------------------------

    def resolve_submit(self, url_indices: list[int], hour: int):
        """Kick off the renders for a cohort; returns a waitable job."""
        self._requested.update(url_indices)
        return self.pipeline.submit_catalog(
            [self.urls[i] for i in url_indices], hour
        )

    def resolve_commit(self, job) -> list[tuple[int, int, bool]]:
        """Harvest a :meth:`resolve_submit` job (same shape as
        :meth:`resolve_batch`); store puts happen here, on the caller's
        thread, in submission order."""
        result = job.result()
        self.store_hits += result.store_hits
        self.store_misses += result.encoded
        return [(len(p.data), p.epoch, p.from_store) for p in result.pages]

    def prefetch_hour(self, hour: int) -> int:
        """Speculatively render previously requested URLs as they appear
        at ``hour`` (misses only — i.e. the epoch rollovers).  Pure store
        warming: it can change hit/miss accounting, never an outcome.
        Only URLs the front end has actually resolved are speculated on,
        so idle-worker time isn't spent on pages nobody asks for."""
        self.pipeline.drain_prefetch(block=False)
        return self.pipeline.prefetch(
            [self.urls[i] for i in sorted(self._requested)], hour
        )

    def close(self) -> None:
        self.pipeline.close()


@dataclass(frozen=True)
class FrontendResult:
    """Outcome of one :meth:`RequestFrontend.run`."""

    stats: FrontendStats
    ledger_stats: LedgerStats
    n_requests: int
    elapsed_s: float
    store_hits: int
    store_misses: int

    @property
    def requests_per_s(self) -> float:
        return self.n_requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def store_hit_rate(self) -> float:
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    @property
    def served_fraction(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.ledger_stats.n_broadcast / self.n_requests

    @property
    def p50_latency_s(self) -> float:
        return self.ledger_stats.percentile(50.0)

    @property
    def p90_latency_s(self) -> float:
        return self.ledger_stats.percentile(90.0)

    @property
    def p99_latency_s(self) -> float:
        return self.ledger_stats.percentile(99.0)


class RequestFrontend:
    """Batched request-serving service over one transmitter's carousel."""

    def __init__(
        self,
        resolver: PageResolver,
        config: FrontendConfig = FrontendConfig(),
        ledger: RequestLedger | None = None,
    ) -> None:
        self.resolver = resolver
        self.config = config
        self.ledger = ledger if ledger is not None else RequestLedger()
        self.carousel = BroadcastCarousel(config.rate_bps)
        self.stats = FrontendStats()
        self._url_to_index = {u: i for i, u in enumerate(resolver.urls)}
        self._active: dict[int, int] = {}  # url_index -> queued epoch
        self._waiting: dict[int, list[np.ndarray]] = {}  # url_index -> req ids
        self._deferred: deque[tuple[int, int]] = deque()  # (req_id, url_index)
        self._tick = 0  # completed tick boundaries; sim now = _tick * tick_s
        self._prefetched_hour = -1  # last hour handed to prefetch_hour

    @property
    def now(self) -> float:
        return self._tick * self.config.tick_s

    # -- tick clock ------------------------------------------------------------

    def advance_to_tick(self, tick: int) -> None:
        """Drain the carousel tick by tick up to ``tick`` boundaries.

        Every boundary completes due transmissions (stamping broadcast
        times in the ledger) and then retries deferred requests, so the
        outcome stream is a pure function of the tick clock — never of
        how the ingest was batched.
        """
        cfg = self.config
        while self._tick < tick:
            finished = self.carousel.drain(cfg.tick_s)
            self._tick += 1
            self.stats.ticks += 1
            t = self._tick * cfg.tick_s
            for url in finished:
                self._complete(url, t)
            if self._deferred:
                self._retry_deferred(t)
            if cfg.prefetch:
                # While hour h broadcasts, idle workers pre-render the
                # pages whose epoch rolls over at h+1 — store warming
                # only, so serial and pipelined outcomes stay identical.
                hour = int(t // 3600)
                if hour > self._prefetched_hour:
                    self._prefetched_hour = hour
                    prefetch_hour = getattr(self.resolver, "prefetch_hour", None)
                    if prefetch_hour is not None:
                        prefetch_hour(hour + 1)
            backlog = self.carousel.backlog_bytes()
            if backlog > self.stats.peak_backlog_bytes:
                self.stats.peak_backlog_bytes = backlog
            if self._tick % cfg.commit_every_ticks == 0:
                self.ledger.commit()

    def _complete(self, url: str, t: float) -> None:
        index = self._url_to_index[url]
        self._active.pop(index, None)
        arrays = self._waiting.pop(index, None)
        self.stats.broadcast_pages += 1
        if arrays:
            ids = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
            self.ledger.mark_broadcast(ids, t)
            self.stats.broadcast_requests += int(ids.size)

    def _retry_deferred(self, t: float) -> None:
        """FIFO retry of parked requests; stops at the first still-blocked.

        All distinct parked URLs not already on air resolve in ONE
        ``resolve_batch`` up front (sizes and epochs are pure in
        (url, hour), so resolving ahead of the walk — even past the
        point where it blocks — cannot change any outcome).  The walk
        then replays the seed one-at-a-time decision sequence exactly.
        """
        cfg = self.config
        hour = int(t // 3600)
        resolver = self.resolver
        active = self._active
        deferred = self._deferred
        need: list[int] = []
        seen: set[int] = set()
        for _, index in deferred:
            if index not in seen:
                seen.add(index)
                if active.get(index) != resolver.epoch(index, hour):
                    need.append(index)
        resolved: dict[int, tuple[int, int]] = {}
        if need:
            for u, (size, epoch, _) in zip(need, resolver.resolve_batch(need, hour)):
                resolved[u] = (size, epoch)
        while deferred:
            req_id, index = deferred[0]
            epoch = resolver.epoch(index, hour)
            if active.get(index) == epoch:
                self._attach(index, np.array([req_id], dtype=np.int64))
                self.stats.coalesced -= 1  # attach() counts; retries aren't new
            else:
                size, epoch = resolved[index]
                if (
                    index not in active
                    and self.carousel.backlog_bytes() + size
                    > cfg.max_backlog_bytes
                ):
                    break
                self._enqueue_page(index, epoch, size)
                self._attach(index, np.array([req_id], dtype=np.int64))
                self.stats.coalesced -= 1
            deferred.popleft()
            self.ledger.mark_scheduled(np.array([req_id]), t)
            self.stats.retried += 1

    # -- dispatch ------------------------------------------------------------

    def _attach(self, index: int, ids: np.ndarray) -> None:
        self._waiting.setdefault(index, []).append(ids)
        self.stats.coalesced += int(ids.size)

    def _enqueue_page(self, index: int, epoch: int, size: int) -> None:
        replacing = index in self._active
        self._active[index] = epoch
        self.carousel.enqueue(
            CarouselItem(
                self.resolver.urls[index],
                size,
                priority=self.config.request_priority,
                digest=f"{index}:{epoch}",
            )
        )
        if replacing:
            self.stats.replaced_pages += 1
        else:
            self.stats.enqueued_pages += 1

    def submit_batch(
        self,
        req_ids: np.ndarray,
        url_index: np.ndarray,
        times: np.ndarray,
        resolved: dict[int, tuple[int, int]] | None = None,
    ) -> None:
        """Dispatch one cohort (all arrivals within the current tick).

        Resolution is batched: every URL in the cohort not already on air
        at the current epoch costs exactly one resolve, however many
        requests want it — that is the N-requests-one-render win.  The
        *decisions* (enqueue / attach / defer / shed) then replay in
        strict arrival order, because backpressure state (backlog, the
        deferral buffer) mutates per request; that replay is what makes
        the outcome stream identical for any batch partitioning,
        including the serial one-request cohorts.

        ``resolved`` may carry (size, epoch) pairs computed ahead of
        time by the pipelined driver; everything it resolves is pure in
        (url, hour), so a speculative superset is harmless and any URL
        it missed is topped up synchronously here.
        """
        cfg = self.config
        t = self.now
        hour = int(t // 3600)
        n = int(req_ids.size)
        stats = self.stats
        stats.submitted += n
        stats.batches += 1
        resolver = self.resolver
        active = self._active

        # One batched resolve per cohort: pure in (url, hour), so *when*
        # it runs relative to the walk below cannot change any outcome.
        if resolved is None:
            resolved = {}  # url -> (size, epoch)
        need = [
            u
            for u in np.unique(url_index).tolist()
            if u not in resolved and active.get(u) != resolver.epoch(u, hour)
        ]
        if need:
            for u, (size, epoch, _) in zip(need, resolver.resolve_batch(need, hour)):
                resolved[u] = (size, epoch)

        # Arrival-order walk.  Outcomes accumulate into per-URL buckets so
        # ledger writes and waiting-list appends stay batched.
        q_ids: dict[int, list] = {}
        q_ts: dict[int, list] = {}
        d_ids: dict[int, list] = {}
        d_ts: dict[int, list] = {}
        s_ids: dict[int, list] = {}
        s_ts: dict[int, list] = {}
        deferred = self._deferred
        backlog_limit = cfg.max_backlog_bytes
        defer_capacity = cfg.defer_capacity
        backlog_bytes = self.carousel.backlog_bytes
        for rid, u, ts in zip(
            req_ids.tolist(), url_index.tolist(), times.tolist()
        ):
            info = resolved.get(u)
            if info is None or active.get(u) == info[1]:
                # On air at the current epoch — either before this cohort
                # (never resolved) or enqueued earlier in this walk.
                q_ids.setdefault(u, []).append(rid)
                q_ts.setdefault(u, []).append(ts)
                stats.coalesced += 1
            elif u in active or backlog_bytes() + info[0] <= backlog_limit:
                # A fresh epoch of an already-queued page replaces it in
                # place (no saturation check: its airtime is already
                # committed); a new page must clear the backlog threshold.
                self._enqueue_page(u, info[1], info[0])
                q_ids.setdefault(u, []).append(rid)
                q_ts.setdefault(u, []).append(ts)
            elif len(deferred) < defer_capacity:
                deferred.append((rid, u))
                stats.deferred += 1
                if len(deferred) > stats.peak_deferred:
                    stats.peak_deferred = len(deferred)
                d_ids.setdefault(u, []).append(rid)
                d_ts.setdefault(u, []).append(ts)
            else:
                stats.shed += 1
                s_ids.setdefault(u, []).append(rid)
                s_ts.setdefault(u, []).append(ts)

        ledger = self.ledger
        for u, rids in q_ids.items():
            self._waiting.setdefault(u, []).append(
                np.asarray(rids, dtype=np.int64)
            )
            ledger.insert(rids, u, q_ts[u], t, t, "queued")
        for u, rids in d_ids.items():
            ledger.insert(rids, u, d_ts[u], t, None, "deferred")
        for u, rids in s_ids.items():
            ledger.insert(rids, u, s_ts[u], t, None, "shed")

    # -- drivers ------------------------------------------------------------

    def _cohorts(
        self, trace: RequestTrace, max_batch: int
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        """Slice the trace into per-tick cohorts of at most ``max_batch``."""
        times = trace.times
        n = times.size
        if n == 0:
            return
        ticks = (times // self.config.tick_s).astype(np.int64)
        req_ids = np.arange(n, dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(ticks)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts, ends):
            k = int(ticks[s])
            for b in range(int(s), int(e), max_batch):
                c = min(b + max_batch, int(e))
                yield k, req_ids[b:c], trace.url_index[b:c], times[b:c]

    def _dispatch_cohort(self, cohort) -> None:
        k, ids, urls, times = cohort
        # Cohort k holds arrivals in [k*T, (k+1)*T): the batch window
        # closes — and dispatch happens — at the (k+1) boundary.
        self.advance_to_tick(k + 1)
        self.submit_batch(ids, urls, times)

    async def _run_async(self, trace: RequestTrace, progress, progress_every) -> None:
        if self.config.pipelined and hasattr(self.resolver, "resolve_submit"):
            await self._run_async_pipelined(trace, progress, progress_every)
            return
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_cohorts)

        async def produce() -> None:
            for cohort in self._cohorts(trace, self.config.max_batch):
                await queue.put(cohort)
            await queue.put(None)

        async def dispatch() -> None:
            while True:
                cohort = await queue.get()
                depth = queue.qsize()
                if depth > self.stats.peak_queue_depth:
                    self.stats.peak_queue_depth = depth
                if cohort is None:
                    return
                self._dispatch_cohort(cohort)
                if progress is not None and self.stats.batches % progress_every == 0:
                    progress(self)

        await asyncio.gather(produce(), dispatch())

    async def _run_async_pipelined(
        self, trace: RequestTrace, progress, progress_every
    ) -> None:
        """Three-stage driver: ingest -> speculative resolve -> commit.

        The resolve stage dispatches each cohort's misses to the render
        pool *before* its tick boundary is reached, so pages render while
        earlier cohorts are still being ingested and committed; the
        commit stage advances the tick clock in strict cohort order and
        parks on an executor thread (``job.wait`` touches only pool
        events) whenever a render hasn't finished.  Everything resolved
        ahead of time is pure in (url, hour), and all state mutation
        stays on the event-loop thread at tick boundaries — which is why
        the ledger digest is identical to the serial driver's, and the
        smoke gate holds it there.
        """
        cfg = self.config
        resolver = self.resolver
        queue: asyncio.Queue = asyncio.Queue(maxsize=cfg.queue_cohorts)
        pending: asyncio.Queue = asyncio.Queue(maxsize=max(1, cfg.resolve_depth))

        async def produce() -> None:
            for cohort in self._cohorts(trace, cfg.max_batch):
                await queue.put(cohort)
            await queue.put(None)

        async def resolve() -> None:
            while True:
                cohort = await queue.get()
                depth = queue.qsize()
                if depth > self.stats.peak_queue_depth:
                    self.stats.peak_queue_depth = depth
                if cohort is None:
                    await pending.put(None)
                    return
                k, _, urls, _ = cohort
                # Speculative need-set against current state; the commit
                # stage tops up anything this guess misses.
                hour = int(((k + 1) * cfg.tick_s) // 3600)
                active = self._active
                need = [
                    u
                    for u in np.unique(urls).tolist()
                    if active.get(u) != resolver.epoch(u, hour)
                ]
                job = resolver.resolve_submit(need, hour) if need else None
                await pending.put((cohort, need, job))

        async def commit() -> None:
            loop = asyncio.get_running_loop()
            while True:
                item = await pending.get()
                if item is None:
                    return
                (k, ids, urls, times), need, job = item
                self.advance_to_tick(k + 1)
                resolved: dict[int, tuple[int, int]] = {}
                if job is not None:
                    if not job.ready():
                        await loop.run_in_executor(None, job.wait)
                    for u, (size, epoch, _) in zip(
                        need, resolver.resolve_commit(job)
                    ):
                        resolved[u] = (size, epoch)
                self.submit_batch(ids, urls, times, resolved=resolved)
                if progress is not None and self.stats.batches % progress_every == 0:
                    progress(self)

        await asyncio.gather(produce(), resolve(), commit())

    def _run_serial(self, trace: RequestTrace, progress, progress_every) -> None:
        for cohort in self._cohorts(trace, max_batch=1):
            self._dispatch_cohort(cohort)
            if progress is not None and self.stats.batches % progress_every == 0:
                progress(self)

    def finish(self, trace: RequestTrace) -> None:
        """Drain queued work after the last arrival, bounded by the grace
        horizon so an oversized head-of-line page cannot spin forever."""
        cfg = self.config
        horizon = math.ceil(
            (trace.duration_s + cfg.drain_grace_hours * 3600.0) / cfg.tick_s
        )
        while (
            self.carousel.queue_length() or self._deferred
        ) and self._tick < horizon:
            self.advance_to_tick(self._tick + 1)
        self.ledger.commit()

    def run(
        self,
        trace: RequestTrace,
        serial: bool = False,
        progress=None,
        progress_every: int = 500,
    ) -> FrontendResult:
        """Serve a whole trace; ``serial=True`` is the one-at-a-time
        reference whose ledger the batched run must reproduce exactly."""
        t0 = time.perf_counter()
        if serial:
            self._run_serial(trace, progress, progress_every)
        else:
            asyncio.run(self._run_async(trace, progress, progress_every))
        self.finish(trace)
        elapsed = time.perf_counter() - t0
        return FrontendResult(
            stats=self.stats,
            ledger_stats=self.ledger.stats(),
            n_requests=trace.n_requests,
            elapsed_s=elapsed,
            store_hits=self.resolver.store_hits,
            store_misses=self.resolver.store_misses,
        )

    def demand_snapshot(
        self, since: float | None = None, until: float | None = None
    ) -> dict[int, int]:
        """Per-URL demand counts from the ledger (cheap indexed read).

        This is the signal the multi-station :class:`~repro.server.scheduler.
        DemandScheduler` consumes at epoch boundaries: how many requests each
        page drew in a time window, shed and deferred ones included.
        """
        return self.ledger.demand_counts(since=since, until=until)

    def health(self) -> dict[str, float]:
        """Service-health snapshot (the aiosqlite-bot idiom, sim-time)."""
        s = self.stats
        return {
            "sim_hours": self.now / 3600.0,
            "submitted": s.submitted,
            "queue_depth_pages": self.carousel.queue_length(),
            "backlog_mb": self.carousel.backlog_bytes() / 1e6,
            "deferred": len(self._deferred),
            "mean_batch": s.mean_batch_size,
            "coalesce_ratio": s.coalesce_ratio,
            "shed": s.shed,
            "broadcast_requests": s.broadcast_requests,
        }
