"""FM transmitter fleet and geographic routing.

"We assume that the FM radio infrastructure consists of multiple
transmitters (and frequencies) at different locations ... the request
contains the geographic location of the user [which] is needed by SONIC
server to inform the proper transmitter along with its frequency"
(Sections 3.1).  Each transmitter owns a broadcast carousel; requests
are routed to the transmitter whose coverage disc contains the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.geometry import Location, distance_km
from repro.transport.carousel import BroadcastCarousel

__all__ = ["Transmitter", "TransmitterRegistry"]


@dataclass
class Transmitter:
    """One FM station participating in SONIC."""

    station_id: str
    location: Location
    frequency_mhz: float
    coverage_km: float
    rate_bps: float = 10_000.0
    carousel: BroadcastCarousel = field(init=False)

    def __post_init__(self) -> None:
        if not 76.0 <= self.frequency_mhz <= 108.0:
            raise ValueError(f"{self.frequency_mhz} MHz outside the FM band")
        if self.coverage_km <= 0:
            raise ValueError("coverage radius must be positive")
        self.carousel = BroadcastCarousel(self.rate_bps)

    def covers(self, where: Location) -> bool:
        return distance_km(self.location, where) <= self.coverage_km


class TransmitterRegistry:
    """Lookup of transmitters by id and by user location."""

    def __init__(self, transmitters: list[Transmitter] | None = None) -> None:
        self._by_id: dict[str, Transmitter] = {}
        for tx in transmitters or []:
            self.add(tx)

    def add(self, tx: Transmitter) -> None:
        if tx.station_id in self._by_id:
            raise ValueError(f"duplicate station id {tx.station_id}")
        self._by_id[tx.station_id] = tx

    def __len__(self) -> int:
        return len(self._by_id)

    def get(self, station_id: str) -> Transmitter:
        return self._by_id[station_id]

    def all(self) -> list[Transmitter]:
        return list(self._by_id.values())

    def covering(self, where: Location) -> Transmitter | None:
        """The nearest transmitter that covers ``where``, if any."""
        candidates = [tx for tx in self._by_id.values() if tx.covers(where)]
        if not candidates:
            return None
        return min(candidates, key=lambda tx: distance_km(tx.location, where))
