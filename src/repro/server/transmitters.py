"""FM transmitter fleet, geographic routing, and broadcast encode caching.

"We assume that the FM radio infrastructure consists of multiple
transmitters (and frequencies) at different locations ... the request
contains the geographic location of the user [which] is needed by SONIC
server to inform the proper transmitter along with its frequency"
(Sections 3.1).  Each transmitter owns a broadcast carousel; requests
are routed to the transmitter whose coverage disc contains the user.

The carousel rebroadcasts popular pages hour after hour, and most hours
the page has not changed — so each transmitter also owns a
:class:`BroadcastEncodeCache`, an LRU keyed on the payload digest (plus
modem profile and FEC parameters for the waveform level) that lets a
repeat broadcast of unchanged content reuse the chunked frames and the
modulated waveform instead of re-encoding them.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sim.geometry import Location, distance_km
from repro.transport.carousel import BroadcastCarousel, CarouselItem
from repro.transport.framing import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.modem.modem import Modem
    from repro.transport.bundle import BundleTransport

__all__ = [
    "payload_digest",
    "CacheStats",
    "BroadcastEncodeCache",
    "Transmitter",
    "TransmitterRegistry",
]


def payload_digest(data: bytes) -> str:
    """Stable content digest used as the broadcast cache key."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by what the cache avoided re-computing."""

    frame_hits: int = 0
    frame_misses: int = 0
    waveform_hits: int = 0
    waveform_misses: int = 0
    burst_hits: int = 0
    burst_misses: int = 0

    @property
    def hits(self) -> int:
        return self.frame_hits + self.waveform_hits + self.burst_hits

    @property
    def misses(self) -> int:
        return self.frame_misses + self.waveform_misses + self.burst_misses


class BroadcastEncodeCache:
    """LRU cache of encoded frames and modulated waveforms.

    Frame entries are keyed on ``(payload digest, page_id, version)`` —
    everything :meth:`BundleTransport.chunk` depends on.  Waveform entries
    additionally carry the modem profile name, its FEC parameters, and the
    burst size, so different stations or profiles never share samples.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _get(self, key: tuple) -> Any | None:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def _put(self, key: tuple, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def frames(
        self,
        data: bytes,
        page_id: int,
        version: int,
        transport: "BundleTransport",
        digest: str | None = None,
    ) -> list[Frame]:
        """Chunked frames for a payload, reused across repeat broadcasts."""
        digest = digest if digest is not None else payload_digest(data)
        key = ("frames", digest, page_id, version)
        cached = self._get(key)
        if cached is not None:
            self.stats.frame_hits += 1
            return cached
        self.stats.frame_misses += 1
        frames = transport.chunk(data, page_id=page_id, version=version)
        self._put(key, frames)
        return frames

    def waveform(
        self,
        frames: list[Frame],
        digest: str,
        modem: "Modem",
        frames_per_burst: int = 16,
    ) -> np.ndarray:
        """Modulated audio for a frame list, cached per content + profile."""
        profile = modem.profile
        key = ("waveform", digest, profile.name, profile.fec, frames_per_burst)
        cached = self._get(key)
        if cached is not None:
            self.stats.waveform_hits += 1
            return cached
        self.stats.waveform_misses += 1
        from repro.core.pipeline import frames_to_waveform  # avoid import cycle

        wave = frames_to_waveform(frames, modem, frames_per_burst=frames_per_burst)
        wave.setflags(write=False)  # shared across broadcasts — keep immutable
        self._put(key, wave)
        return wave

    def burst(
        self,
        payloads: list[bytes],
        modem: "Modem",
        digest: str | None = None,
    ) -> np.ndarray:
        """Modulated audio for one frame burst — the streaming TX unit.

        The carousel rebroadcasts the same pages for hours, so the
        streaming :class:`~repro.core.stream.WaveformSource` sees the
        same payload bursts over and over; caching at burst granularity
        lets repeats skip FEC + OFDM without ever materialising the
        whole broadcast waveform.
        """
        digest = digest if digest is not None else payload_digest(b"".join(payloads))
        profile = modem.profile
        key = ("burst", digest, profile.name, profile.fec, len(payloads))
        cached = self._get(key)
        if cached is not None:
            self.stats.burst_hits += 1
            return cached
        self.stats.burst_misses += 1
        wave = modem.transmit_burst(payloads)
        wave.setflags(write=False)  # shared across broadcasts — keep immutable
        self._put(key, wave)
        return wave


@dataclass
class Transmitter:
    """One FM transmitter participating in SONIC.

    ``station_id`` doubles as the call sign; ``station`` names the
    regional station the transmitter belongs to (a station may operate
    several transmitters — a main mast plus boosters).  It defaults to
    the call sign itself, so a standalone transmitter is its own
    single-member station.
    """

    station_id: str
    location: Location
    frequency_mhz: float
    coverage_km: float
    rate_bps: float = 10_000.0
    cache_capacity: int = 64
    station: str | None = None
    carousel: BroadcastCarousel = field(init=False)
    cache: BroadcastEncodeCache = field(init=False)

    def __post_init__(self) -> None:
        if not 76.0 <= self.frequency_mhz <= 108.0:
            raise ValueError(f"{self.frequency_mhz} MHz outside the FM band")
        if self.coverage_km <= 0:
            raise ValueError("coverage radius must be positive")
        if self.station is None:
            self.station = self.station_id
        self.carousel = BroadcastCarousel(self.rate_bps)
        self.cache = BroadcastEncodeCache(self.cache_capacity)

    def covers(self, where: Location) -> bool:
        return distance_km(self.location, where) <= self.coverage_km

    def broadcast_waveform(
        self,
        item: CarouselItem,
        modem: "Modem",
        frames_per_burst: int = 16,
    ) -> np.ndarray:
        """Modulated audio for one queued item (audio-true simulations).

        Repeat broadcasts of byte-identical content — the common carousel
        case — return the cached waveform without re-running FEC or OFDM;
        :attr:`cache` counters record how often that happens.
        """
        if item.frames is None:
            raise ValueError(f"item {item.url} has no frame payloads")
        if item.digest is None:
            raise ValueError(f"item {item.url} carries no payload digest")
        return self.cache.waveform(
            item.frames, item.digest, modem, frames_per_burst=frames_per_burst
        )


class TransmitterRegistry:
    """Lookup of transmitters by call sign, by station, and by location.

    Both indexes are plain insertion-ordered dicts, so every iteration
    surface (:meth:`all`, :meth:`station_ids`, :meth:`for_station`) is
    deterministic: two registries built from the same ``add`` sequence
    iterate identically, whatever process or hash seed runs them (a
    property test pins this).  Station membership is indexed at ``add``
    time, so routing *within* a station never scans the whole fleet.
    """

    def __init__(self, transmitters: list[Transmitter] | None = None) -> None:
        self._by_id: dict[str, Transmitter] = {}
        self._by_station: dict[str, list[Transmitter]] = {}
        for tx in transmitters or []:
            self.add(tx)

    def add(self, tx: Transmitter) -> None:
        if tx.station_id in self._by_id:
            raise ValueError(f"duplicate call sign {tx.station_id}")
        self._by_id[tx.station_id] = tx
        assert tx.station is not None  # __post_init__ defaults it
        self._by_station.setdefault(tx.station, []).append(tx)

    def __len__(self) -> int:
        return len(self._by_id)

    def get(self, station_id: str) -> Transmitter:
        return self._by_id[station_id]

    def all(self) -> list[Transmitter]:
        return list(self._by_id.values())

    def station_ids(self) -> list[str]:
        """Station names, in first-``add`` order."""
        return list(self._by_station)

    def for_station(self, station: str) -> list[Transmitter]:
        """The station's transmitters (indexed — no fleet scan)."""
        return list(self._by_station.get(station, []))

    def covering(self, where: Location) -> Transmitter | None:
        """The nearest transmitter that covers ``where``, if any."""
        return self._nearest_covering(self._by_id.values(), where)

    def covering_in_station(
        self, station: str, where: Location
    ) -> Transmitter | None:
        """The station's nearest covering transmitter, if any."""
        return self._nearest_covering(self._by_station.get(station, []), where)

    @staticmethod
    def _nearest_covering(transmitters, where: Location) -> Transmitter | None:
        candidates = [tx for tx in transmitters if tx.covers(where)]
        if not candidates:
            return None
        return min(candidates, key=lambda tx: distance_km(tx.location, where))
