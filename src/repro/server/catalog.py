"""Catalog-scale render/encode pipeline over a multiprocessing pool.

The paper's server re-renders its top-100 catalog every hour (Figure
4(c)); at production widths a single page costs render + DCT + entropy
coding, so the catalog is embarrassingly parallel work.  This module
fans the misses out over a ``multiprocessing`` pool while a
:class:`~repro.server.cache.BundleStore` short-circuits everything that
was already encoded — the same split as :mod:`repro.sim.receivers`:

* each worker process builds one :class:`~repro.web.sites.SiteGenerator`
  and one :class:`~repro.web.render.PageRenderer` at start-up and reuses
  them for every page it encodes;
* a page's bytes are a pure function of ``(config, url, hour)``, so the
  pooled result is byte-identical to the serial path regardless of how
  the pool schedules the work; and
* store lookups happen up front in the parent, so only genuine misses
  ever reach the pool — a warm store makes ``encode_catalog`` free.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.server.cache import BundleStore, bundle_key
from repro.transport.bundle import PageBundle
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

__all__ = ["CatalogConfig", "CatalogPage", "CatalogResult", "CatalogPipeline"]


@dataclass(frozen=True)
class CatalogConfig:
    """Everything an encoded page depends on besides (url, hour)."""

    seed: int = 42
    n_sites: int = 25
    width: int = 1080
    max_height: int | None = 10_000
    quality: int = 10
    expiry_hours: float = 24.0


@dataclass(frozen=True)
class CatalogPage:
    """One encoded catalog entry."""

    url: str
    epoch: int
    key: str
    data: bytes
    from_store: bool


@dataclass(frozen=True)
class CatalogResult:
    """Outcome of one :meth:`CatalogPipeline.encode_catalog` run."""

    pages: tuple[CatalogPage, ...]
    processes: int
    elapsed_s: float

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def store_hits(self) -> int:
        return sum(1 for p in self.pages if p.from_store)

    @property
    def encoded(self) -> int:
        return sum(1 for p in self.pages if not p.from_store)

    @property
    def total_bytes(self) -> int:
        return sum(len(p.data) for p in self.pages)

    @property
    def pages_per_s(self) -> float:
        return self.n_pages / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _render_encode(
    generator: SiteGenerator,
    renderer: PageRenderer,
    config: CatalogConfig,
    url: str,
    hour: int,
) -> bytes:
    """Render + encode one page — the pure function both paths share."""
    result = renderer.render(generator.page(url, hour))
    bundle = PageBundle(
        url,
        result.image,
        result.clickmap,
        expiry_hours=config.expiry_hours,
        quality=config.quality,
    )
    return bundle.to_bytes()


# Per-worker state, built once per pool process (plain module globals,
# mirroring repro.sim.receivers).
_worker_generator: SiteGenerator | None = None
_worker_renderer: PageRenderer | None = None
_worker_config: CatalogConfig | None = None


def _init_worker(config: CatalogConfig) -> None:
    global _worker_generator, _worker_renderer, _worker_config
    _worker_config = config
    _worker_generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
    _worker_renderer = PageRenderer(width=config.width, max_height=config.max_height)


def _encode_worker(args: tuple[str, int]) -> bytes:
    url, hour = args
    assert _worker_generator is not None and _worker_renderer is not None
    assert _worker_config is not None
    return _render_encode(_worker_generator, _worker_renderer, _worker_config, url, hour)


class CatalogPipeline:
    """Store-backed catalog encoder, serial or pooled."""

    def __init__(
        self,
        config: CatalogConfig = CatalogConfig(),
        store: BundleStore | None = None,
        generator: SiteGenerator | None = None,
    ) -> None:
        self.config = config
        self.store = store if store is not None else BundleStore()
        self.generator = generator or SiteGenerator(
            seed=config.seed, n_sites=config.n_sites
        )
        self._renderer: PageRenderer | None = None  # lazy; serial path only

    def page_key(self, url: str, hour: int) -> tuple[str, int]:
        """(store key, content epoch) of a page at an hour."""
        epoch = self.generator.effective_epoch(url, hour)
        cfg = self.config
        key = bundle_key(
            url, epoch, cfg.width, cfg.max_height, cfg.quality, cfg.seed
        )
        return key, epoch

    def _encode_serial(self, url: str, hour: int) -> bytes:
        if self._renderer is None:
            self._renderer = PageRenderer(
                width=self.config.width, max_height=self.config.max_height
            )
        return _render_encode(self.generator, self._renderer, self.config, url, hour)

    def encode_page(self, url: str, hour: int = 0) -> CatalogPage:
        """One page through the store-backed pipeline (always serial)."""
        key, epoch = self.page_key(url, hour)
        data = self.store.get(key)
        if data is not None:
            return CatalogPage(url, epoch, key, data, True)
        data = self._encode_serial(url, hour)
        self.store.put(key, data)
        return CatalogPage(url, epoch, key, data, False)

    def encode_catalog(
        self,
        urls: list[str] | None = None,
        hour: int = 0,
        processes: int | None = None,
    ) -> CatalogResult:
        """Encode all (or the given) catalog URLs as they appear at ``hour``.

        ``processes=None`` picks ``min(misses, cpu_count)``;
        ``processes<=1`` runs serially in this process.  Either way the
        resulting bundle bytes are identical, and every miss lands in the
        store for the next hour/run to reuse.
        """
        urls = list(urls) if urls is not None else self.generator.all_urls()
        t0 = time.perf_counter()
        keyed = [self.page_key(url, hour) for url in urls]
        pages: list[CatalogPage | None] = []
        misses: list[int] = []
        for i, (url, (key, epoch)) in enumerate(zip(urls, keyed)):
            data = self.store.get(key)
            if data is None:
                pages.append(None)
                misses.append(i)
            else:
                pages.append(CatalogPage(url, epoch, key, data, True))

        if processes is None:
            processes = min(len(misses), os.cpu_count() or 1)
        processes = max(1, int(processes))

        if misses:
            if processes == 1 or len(misses) == 1:
                encoded = [self._encode_serial(urls[i], hour) for i in misses]
            else:
                with multiprocessing.Pool(
                    processes, initializer=_init_worker, initargs=(self.config,)
                ) as pool:
                    encoded = pool.map(
                        _encode_worker,
                        [(urls[i], hour) for i in misses],
                        chunksize=max(1, len(misses) // (4 * processes)),
                    )
            for i, data in zip(misses, encoded):
                key, epoch = keyed[i]
                self.store.put(key, data)
                pages[i] = CatalogPage(urls[i], epoch, key, data, False)

        done = [p for p in pages if p is not None]
        assert len(done) == len(urls)
        return CatalogResult(tuple(done), processes, time.perf_counter() - t0)
