"""Catalog-scale render/encode pipeline over a multiprocessing pool.

The paper's server re-renders its top-100 catalog every hour (Figure
4(c)); at production widths a single page costs render + DCT + entropy
coding, so the catalog is embarrassingly parallel work.  This module
fans the misses out over a ``multiprocessing`` pool while a
:class:`~repro.server.cache.BundleStore` short-circuits everything that
was already encoded — the same split as :mod:`repro.sim.receivers`:

* each worker process builds one :class:`~repro.web.sites.SiteGenerator`
  and one :class:`~repro.web.render.PageRenderer` at start-up and reuses
  them for every page it encodes;
* a page's bytes are a pure function of ``(config, url, hour)``, so the
  pooled result is byte-identical to the serial path regardless of how
  the pool schedules the work; and
* store lookups happen up front in the parent, so only genuine misses
  ever reach the pool — a warm store makes ``encode_catalog`` free.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

from repro.server.cache import BundleStore, bundle_key
from repro.transport.bundle import PageBundle
from repro.web.render import PageRenderer
from repro.web.sites import SiteGenerator

__all__ = [
    "CatalogConfig",
    "CatalogPage",
    "CatalogResult",
    "CatalogJob",
    "CatalogPipeline",
]


@dataclass(frozen=True)
class CatalogConfig:
    """Everything an encoded page depends on besides (url, hour).

    ``reference`` routes workers through the seed render path
    (:meth:`~repro.web.render.PageRenderer.render_ref`) — byte-identical
    output, seed-era cost.  It is the honest baseline for the
    ``serve_catalog`` bench and deliberately not part of the bundle key.
    """

    seed: int = 42
    n_sites: int = 25
    width: int = 1080
    max_height: int | None = 10_000
    quality: int = 10
    expiry_hours: float = 24.0
    reference: bool = False


@dataclass(frozen=True)
class CatalogPage:
    """One encoded catalog entry."""

    url: str
    epoch: int
    key: str
    data: bytes
    from_store: bool


@dataclass(frozen=True)
class CatalogResult:
    """Outcome of one :meth:`CatalogPipeline.encode_catalog` run."""

    pages: tuple[CatalogPage, ...]
    processes: int
    elapsed_s: float

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def store_hits(self) -> int:
        return sum(1 for p in self.pages if p.from_store)

    @property
    def encoded(self) -> int:
        return sum(1 for p in self.pages if not p.from_store)

    @property
    def total_bytes(self) -> int:
        return sum(len(p.data) for p in self.pages)

    @property
    def pages_per_s(self) -> float:
        return self.n_pages / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _render_encode(
    generator: SiteGenerator,
    renderer: PageRenderer,
    config: CatalogConfig,
    url: str,
    hour: int,
) -> bytes:
    """Render + encode one page — the pure function both paths share."""
    page = generator.page(url, hour)
    result = renderer.render_ref(page) if config.reference else renderer.render(page)
    bundle = PageBundle(
        url,
        result.image,
        result.clickmap,
        expiry_hours=config.expiry_hours,
        quality=config.quality,
    )
    return bundle.to_bytes()


# Per-worker state, built once per pool process (plain module globals,
# mirroring repro.sim.receivers).
_worker_generator: SiteGenerator | None = None
_worker_renderer: PageRenderer | None = None
_worker_config: CatalogConfig | None = None


def _init_worker(config: CatalogConfig) -> None:
    global _worker_generator, _worker_renderer, _worker_config
    _worker_config = config
    _worker_generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
    _worker_renderer = PageRenderer(width=config.width, max_height=config.max_height)


def _encode_worker(args: tuple[str, int]) -> bytes:
    url, hour = args
    assert _worker_generator is not None and _worker_renderer is not None
    assert _worker_config is not None
    return _render_encode(_worker_generator, _worker_renderer, _worker_config, url, hour)


def _encode_worker_indexed(args: tuple[int, str, int]) -> tuple[int, bytes]:
    """Tagged variant for ``imap_unordered``: results carry their slot."""
    i, url, hour = args
    return i, _encode_worker((url, hour))


class _InlineResult:
    """Lazy in-process stand-in for ``multiprocessing``'s AsyncResult.

    The render runs on whichever thread first calls :meth:`wait` or
    :meth:`get` — for the pipelined front end that is the executor
    thread parking on ``CatalogJob.wait``, so ingest still overlaps
    rendering.  A lock makes the first-caller-renders race safe when a
    handle is shared between overlapping jobs.
    """

    def __init__(self, encode, args: tuple[str, int]) -> None:
        self._encode = encode
        self._args = args
        self._lock = threading.Lock()
        self._value: bytes | None = None
        self._done = False

    def _run(self) -> None:
        with self._lock:
            if not self._done:
                self._value = self._encode(self._args)
                self._done = True

    def wait(self, timeout: float | None = None) -> None:
        self._run()

    def ready(self) -> bool:
        return self._done

    def get(self, timeout: float | None = None) -> bytes:
        self._run()
        assert self._value is not None
        return self._value


class _InlinePool:
    """In-process persistent worker, for hosts where one CPU is all there is.

    Subprocess workers cannot add parallelism on a single core — they
    only add fork, pickle, and queue latency — so :meth:`CatalogPipeline.start`
    resolving to one worker keeps the warm generator/renderer state in
    this process instead.  Work is deferred into :class:`_InlineResult`
    handles, which also makes unharvested speculative prefetches free.
    Implements exactly the slice of the ``Pool`` API the pipeline uses.
    """

    def __init__(self, config: CatalogConfig) -> None:
        self._generator = SiteGenerator(seed=config.seed, n_sites=config.n_sites)
        self._renderer = PageRenderer(
            width=config.width, max_height=config.max_height
        )
        self._config = config

    def _encode(self, args: tuple[str, int]) -> bytes:
        url, hour = args
        return _render_encode(
            self._generator, self._renderer, self._config, url, hour
        )

    # ``func`` is always one of this module's worker shims, whose state
    # lives in these bound generator/renderer instead of pool globals.
    def apply_async(self, func, args) -> _InlineResult:
        return _InlineResult(self._encode, args[0])

    def imap_unordered(self, func, iterable, chunksize: int = 1):
        for i, url, hour in iterable:
            yield i, self._encode((url, hour))

    def terminate(self) -> None:
        pass

    def join(self) -> None:
        pass


class CatalogJob:
    """Handle for an in-flight :meth:`CatalogPipeline.submit_catalog`.

    Separates the pure *resolve* (render+encode, safe to run any time)
    from the state-mutating *commit* (store puts, in submission order),
    so a caller can overlap rendering with other work and commit at a
    deterministic point — the front end commits at tick boundaries.
    """

    def __init__(self, pipeline: "CatalogPipeline", hour: int, entries: list) -> None:
        self._pipeline = pipeline
        self.hour = hour
        # (url, key, epoch, bytes | AsyncResult | None, from_store)
        self._entries = entries
        self._result: CatalogResult | None = None
        self._t0 = time.perf_counter()

    def ready(self) -> bool:
        """True once every miss has finished rendering."""
        if self._result is not None:
            return True
        return all(
            payload is None or isinstance(payload, bytes) or payload.ready()
            for _, _, _, payload, _ in self._entries
        )

    def wait(self) -> None:
        """Block until every miss has rendered.  Thread-safe: only waits
        on pool events, touching no pipeline state — callers may park
        this on an executor thread while the main thread keeps working."""
        for _, _, _, payload, _ in self._entries:
            if payload is not None and not isinstance(payload, bytes):
                payload.wait()

    def result(self) -> CatalogResult:
        """Commit: collect every page (blocking if needed) and put misses
        into the store in submission order, exactly like the serial path."""
        if self._result is not None:
            return self._result
        pipeline = self._pipeline
        pages = []
        for url, key, epoch, payload, from_store in self._entries:
            if from_store:
                pages.append(CatalogPage(url, epoch, key, payload, True))
                continue
            if payload is None:  # no pool attached: render at commit time
                data = pipeline.store.get(key)  # an earlier job may have landed it
                if data is None:
                    data = pipeline._encode_serial(url, self.hour)
            elif isinstance(payload, bytes):
                data = payload
            else:
                data = payload.get()
                pipeline._pending.pop(key, None)
            pipeline.store.put(key, data)
            pages.append(CatalogPage(url, epoch, key, data, False))
        processes = pipeline._pool_processes if pipeline.persistent else 1
        self._result = CatalogResult(
            tuple(pages), processes, time.perf_counter() - self._t0
        )
        return self._result


class CatalogPipeline:
    """Store-backed catalog encoder: serial, per-call pool, or persistent.

    :meth:`start` attaches a persistent worker pool — each worker builds
    its :class:`SiteGenerator`/:class:`PageRenderer` once and keeps its
    raster caches warm across every subsequent call, eliminating the
    per-batch fork+init cost of the ``processes=N`` path.  Completion is
    out-of-order (``imap_unordered``) but commits happen in slot order,
    so results stay byte-identical to serial.  With a pool attached the
    pipeline also supports asynchronous :meth:`submit_catalog` jobs and
    speculative :meth:`prefetch`.
    """

    def __init__(
        self,
        config: CatalogConfig = CatalogConfig(),
        store: BundleStore | None = None,
        generator: SiteGenerator | None = None,
    ) -> None:
        self.config = config
        self.store = store if store is not None else BundleStore()
        self.generator = generator or SiteGenerator(
            seed=config.seed, n_sites=config.n_sites
        )
        self._renderer: PageRenderer | None = None  # lazy; serial path only
        self._pool: multiprocessing.pool.Pool | _InlinePool | None = None
        self._pool_processes = 0
        self._pending: dict[str, multiprocessing.pool.AsyncResult | _InlineResult] = {}
        self._prefetch_keys: set[str] = set()
        self.prefetch_submitted = 0
        self.prefetch_used = 0

    # -- persistent pool lifecycle --------------------------------------------

    def start(self, processes: int | None = None) -> "CatalogPipeline":
        """Attach the persistent worker pool (idempotent).

        ``processes=None`` sizes the pool to the host; a resolved count
        of one skips subprocesses entirely and serves jobs from an
        in-process :class:`_InlinePool` with the same warm-worker
        semantics.
        """
        if self._pool is None:
            n = max(1, int(processes if processes is not None else os.cpu_count() or 1))
            if n == 1:
                self._pool = _InlinePool(self.config)
            else:
                self._pool = multiprocessing.Pool(
                    n, initializer=_init_worker, initargs=(self.config,)
                )
            self._pool_processes = n
        return self

    @property
    def persistent(self) -> bool:
        return self._pool is not None

    def close(self) -> None:
        """Tear down the pool, abandoning any un-harvested prefetches."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_processes = 0
            self._pending.clear()
            self._prefetch_keys.clear()

    def __enter__(self) -> "CatalogPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def page_key(self, url: str, hour: int) -> tuple[str, int]:
        """(store key, content epoch) of a page at an hour."""
        epoch = self.generator.effective_epoch(url, hour)
        cfg = self.config
        key = bundle_key(
            url, epoch, cfg.width, cfg.max_height, cfg.quality, cfg.seed
        )
        return key, epoch

    def _encode_serial(self, url: str, hour: int) -> bytes:
        if self._renderer is None:
            self._renderer = PageRenderer(
                width=self.config.width, max_height=self.config.max_height
            )
        return _render_encode(self.generator, self._renderer, self.config, url, hour)

    def encode_page(self, url: str, hour: int = 0) -> CatalogPage:
        """One page through the store-backed pipeline (always serial)."""
        key, epoch = self.page_key(url, hour)
        data = self.store.get(key)
        if data is not None:
            return CatalogPage(url, epoch, key, data, True)
        data = self._encode_serial(url, hour)
        self.store.put(key, data)
        return CatalogPage(url, epoch, key, data, False)

    def encode_catalog(
        self,
        urls: list[str] | None = None,
        hour: int = 0,
        processes: int | None = None,
    ) -> CatalogResult:
        """Encode all (or the given) catalog URLs as they appear at ``hour``.

        ``processes=None`` picks ``min(misses, cpu_count)``;
        ``processes<=1`` runs serially in this process.  Either way the
        resulting bundle bytes are identical, and every miss lands in the
        store for the next hour/run to reuse.
        """
        urls = list(urls) if urls is not None else self.generator.all_urls()
        t0 = time.perf_counter()
        keyed = [self.page_key(url, hour) for url in urls]
        pages: list[CatalogPage | None] = []
        misses: list[int] = []
        for i, (url, (key, epoch)) in enumerate(zip(urls, keyed)):
            data = self.store.get(key)
            if data is None:
                pages.append(None)
                misses.append(i)
            else:
                pages.append(CatalogPage(url, epoch, key, data, True))

        if self._pool is not None:
            processes = self._pool_processes
        else:
            if processes is None:
                processes = min(len(misses), os.cpu_count() or 1)
            processes = max(1, int(processes))

        if misses:
            if self._pool is not None:
                encoded = self._encode_misses_pool(urls, keyed, misses, hour)
            elif processes == 1 or len(misses) == 1:
                encoded = [self._encode_serial(urls[i], hour) for i in misses]
            else:
                with multiprocessing.Pool(
                    processes, initializer=_init_worker, initargs=(self.config,)
                ) as pool:
                    encoded = pool.map(
                        _encode_worker,
                        [(urls[i], hour) for i in misses],
                        chunksize=max(1, len(misses) // (4 * processes)),
                    )
            # Commit in slot order regardless of completion order: the
            # store sees the same put sequence as the serial path.
            for i, data in zip(misses, encoded):
                key, epoch = keyed[i]
                self.store.put(key, data)
                pages[i] = CatalogPage(urls[i], epoch, key, data, False)

        done = [p for p in pages if p is not None]
        assert len(done) == len(urls)
        return CatalogResult(tuple(done), processes, time.perf_counter() - t0)

    def _encode_misses_pool(
        self,
        urls: list[str],
        keyed: list[tuple[str, int]],
        misses: list[int],
        hour: int,
    ) -> list[bytes]:
        """Misses through the persistent pool, back in slot order.

        In-flight prefetches/submissions for the same key are harvested
        instead of re-rendered; the rest stream through
        ``imap_unordered`` and are reordered parent-side.
        """
        assert self._pool is not None
        out: dict[int, bytes] = {}
        todo: list[int] = []
        for i in misses:
            key = keyed[i][0]
            pending = self._pending.pop(key, None)
            if pending is not None:
                if key in self._prefetch_keys:
                    self._prefetch_keys.discard(key)
                    self.prefetch_used += 1
                out[i] = pending.get()
            else:
                todo.append(i)
        if todo:
            for i, data in self._pool.imap_unordered(
                _encode_worker_indexed,
                [(i, urls[i], hour) for i in todo],
                chunksize=1,
            ):
                out[i] = data
        return [out[i] for i in misses]

    # -- asynchronous jobs + speculative prefetch -----------------------------

    def submit_catalog(self, urls: list[str], hour: int = 0) -> CatalogJob:
        """Begin encoding; returns a :class:`CatalogJob` to commit later.

        Store lookups and miss dispatch happen now (misses go to the
        persistent pool if one is attached); store writes wait for
        :meth:`CatalogJob.result`.  Without a pool the job renders its
        misses at commit time — same outcome, no overlap.
        """
        urls = list(urls)
        entries = []
        for url in urls:
            key, epoch = self.page_key(url, hour)
            data = self.store.get(key)
            if data is not None:
                entries.append((url, key, epoch, data, True))
                continue
            payload = None
            if self._pool is not None:
                payload = self._pending.get(key)
                if payload is None:
                    payload = self._pool.apply_async(_encode_worker, ((url, hour),))
                    self._pending[key] = payload
                elif key in self._prefetch_keys:
                    self._prefetch_keys.discard(key)
                    self.prefetch_used += 1
            entries.append((url, key, epoch, payload, False))
        return CatalogJob(self, hour, entries)

    def prefetch(self, urls: list[str], hour: int) -> int:
        """Queue speculative renders of ``urls`` as they appear at ``hour``.

        Only store misses not already in flight are queued, and results
        only ever warm the store (bytes are pure in (config, url, hour)),
        so prefetching can never change an outcome — just its cost.
        No-op without a persistent pool.  Returns how many were queued.
        """
        if self._pool is None:
            return 0
        queued = 0
        for url in urls:
            key, _ = self.page_key(url, hour)
            if key in self._pending or key in self.store:
                continue
            self._pending[key] = self._pool.apply_async(
                _encode_worker, ((url, hour),)
            )
            self._prefetch_keys.add(key)
            self.prefetch_submitted += 1
            queued += 1
        return queued

    def drain_prefetch(self, block: bool = False) -> int:
        """Move finished speculative renders into the store; returns count."""
        done = 0
        for key, handle in list(self._pending.items()):
            if block or handle.ready():
                data = handle.get()
                if key not in self.store:
                    self.store.put(key, data)
                del self._pending[key]
                self._prefetch_keys.discard(key)
                done += 1
        return done
