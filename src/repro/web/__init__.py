"""Webpage substrate: synthetic sites, rendering, and click maps.

The paper renders the 100 most popular Pakistani webpages in Chrome
hourly for three days.  Offline, this package provides the equivalent:
a deterministic generator of ranked .pk websites with realistic layout
archetypes and hourly content churn, a from-scratch renderer producing
1080-pixel-wide RGB screenshots, and the DRIVESHAFT-style click maps
(Section 3.2) that make those screenshots interactive.
"""

from repro.web.dom import (
    AdBanner,
    Divider,
    Footer,
    Header,
    Heading,
    ImageBlock,
    LinkList,
    Page,
    Paragraph,
    SearchBox,
    Thumbnail,
)
from repro.web.clickmap import ClickMap, ClickRegion
from repro.web.render import PageRenderer, RenderResult
from repro.web.sites import SiteGenerator, Website
from repro.web.tranco import TrancoList, TrancoEntry

__all__ = [
    "Page",
    "Header",
    "Heading",
    "Paragraph",
    "ImageBlock",
    "LinkList",
    "Thumbnail",
    "SearchBox",
    "AdBanner",
    "Divider",
    "Footer",
    "ClickMap",
    "ClickRegion",
    "PageRenderer",
    "RenderResult",
    "SiteGenerator",
    "Website",
    "TrancoList",
    "TrancoEntry",
]
