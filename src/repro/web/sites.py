"""Deterministic generator of the paper's 100-page Pakistani web corpus.

The evaluation corpus is 25 popular .pk sites (from the Tranco slice),
each contributing its landing page plus three internal pages — 100 pages
total — re-rendered hourly for three days (Section 4).  Content is a
pure function of ``(seed, domain, path, content_epoch)``: a page's epoch
advances on its category's refresh cadence (news hourly, government
rarely), which is what drives the broadcast-backlog dynamics of
Figure 4(c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.web.dom import (
    AdBanner,
    Divider,
    Footer,
    Header,
    Heading,
    ImageBlock,
    LinkGrid,
    LinkList,
    Page,
    Paragraph,
    SearchBox,
    Thumbnail,
)
from repro.web.tranco import TrancoList

__all__ = ["Website", "SiteGenerator", "CATEGORY_REFRESH_HOURS"]

#: Hours between content refreshes, per category.
CATEGORY_REFRESH_HOURS = {
    "news": 1,
    "sports": 2,
    "portal": 3,
    "ecommerce": 6,
    "education": 12,
    "government": 24,
}

_VOCAB = (
    "Pakistan Lahore Karachi Islamabad Punjab Sindh minister assembly court "
    "cricket match series wicket captain stadium rupee market price export "
    "budget economy education exam result university student campus degree "
    "government policy election party leader meeting announcement statement "
    "weather monsoon rain temperature city traffic road project development "
    "health hospital doctor vaccine mobile internet service network power "
    "electricity gas supply water agriculture wheat cotton farmer village "
    "business trade industry factory worker salary bank loan digital online "
    "shopping order delivery discount sale brand fashion food recipe family "
    "festival eid ramadan holiday travel tourism mountain valley river the "
    "for with over under after before against between during new latest big "
    "national local official special final first second third million crore"
).split()

_HEADLINE_TEMPLATES = [
    "{A} {B} announces {C} {D} plan",
    "{A} {B} rises as {C} {D} continues",
    "Breaking: {A} {B} in {C} after {D}",
    "{A} {B} wins {C} {D} title",
    "Report: {A} {B} to expand {C} {D}",
    "{A} {B} warns of {C} {D} shortage",
]

_CATEGORY_COLORS = {
    "news": (160, 30, 30),
    "sports": (20, 110, 50),
    "portal": (28, 60, 120),
    "ecommerce": (220, 90, 20),
    "education": (60, 40, 110),
    "government": (0, 70, 60),
}


@dataclass(frozen=True)
class Website:
    """One site of the corpus: a landing page plus internal paths."""

    domain: str
    category: str
    rank: int  # 1-based rank within the corpus
    weight: float  # popularity weight for scheduling
    internal_paths: tuple[str, ...]

    @property
    def landing_url(self) -> str:
        return f"{self.domain}/"

    def urls(self) -> list[str]:
        return [self.landing_url] + [f"{self.domain}{p}" for p in self.internal_paths]


def _categorise(domain: str) -> str:
    if ".gov." in domain or "gov" in domain.split(".")[0]:
        return "government"
    if ".edu." in domain or any(k in domain for k in ("edu", "campus", "portal", "uet", "nust", "aiou", "vu")):
        return "education"
    if any(k in domain for k in ("mart", "shop", "bazaar", "daraz", "zameen", "wheels", "foodpanda", "rozee", "bykea", "oladoc", "telemart")):
        return "ecommerce"
    if any(k in domain for k in ("cricket", "psl", "score")):
        return "sports"
    if any(k in domain for k in ("news", "dawn", "jang", "dunya", "tribune", "samaa", "ary", "geo", "express", "bol", "such", "headline")):
        return "news"
    return "portal"


class SiteGenerator:
    """Builds the ranked corpus and generates page content per hour."""

    def __init__(
        self,
        seed: int = 0,
        n_sites: int = 25,
        internal_per_site: int = 3,
        tranco: TrancoList | None = None,
    ) -> None:
        self.seed = seed
        self.n_sites = n_sites
        self.internal_per_site = internal_per_site
        tranco = tranco or TrancoList(seed=seed, min_pk=n_sites)
        entries = tranco.top(n_sites, suffix=".pk")
        if len(entries) < n_sites:
            raise ValueError(
                f"Tranco slice has only {len(entries)} .pk domains, need {n_sites}"
            )
        self._sites: list[Website] = []
        for i, entry in enumerate(entries):
            category = _categorise(entry.domain)
            paths = tuple(
                f"/{category}/story-{j}" for j in range(1, internal_per_site + 1)
            )
            self._sites.append(
                Website(entry.domain, category, i + 1, entry.weight, paths)
            )
        self._by_domain = {site.domain: site for site in self._sites}
        # (url, refresh tick) -> epoch, filled incrementally so asking
        # about hour h costs one churn draw per *new* tick, not h draws.
        self._epoch_memo: dict[tuple[str, int], int] = {}

    def websites(self) -> list[Website]:
        """The ranked 25-site corpus."""
        return list(self._sites)

    def website(self, domain: str) -> Website:
        try:
            return self._by_domain[domain]
        except KeyError:
            raise KeyError(f"unknown domain {domain!r}") from None

    def all_urls(self) -> list[str]:
        """All 100 corpus URLs (25 landing + 75 internal)."""
        urls: list[str] = []
        for site in self._sites:
            urls.extend(site.urls())
        return urls

    # -- content ------------------------------------------------------------

    def content_epoch(self, category: str, hour: int) -> int:
        """Upper bound on refreshes this category has seen by ``hour``."""
        return hour // CATEGORY_REFRESH_HOURS[category]

    @staticmethod
    def diurnal_activity(hour_of_day: int) -> float:
        """Probability that a due refresh actually changes content.

        Newsrooms and shops update far more during the day; this gate is
        what gives the broadcast backlog its daily sawtooth (Fig. 4(c)).
        """
        h = hour_of_day % 24
        if 0 <= h < 6:
            return 0.2
        if 6 <= h < 9 or 18 <= h < 23:
            return 0.7
        if 9 <= h < 18:
            return 1.0
        return 0.4  # 23:00

    def effective_epoch(self, url: str, hour: int) -> int:
        """Content version of ``url`` at ``hour``.

        Counts the category's refresh ticks up to ``hour`` that passed
        the diurnal gate — so a page's appearance changes exactly when a
        refresh really happened.
        """
        domain, _, _ = url.partition("/")
        site = self.website(domain)
        cadence = CATEGORY_REFRESH_HOURS[site.category]
        last = (hour // cadence) * cadence if hour >= 0 else 0
        if last <= 0:
            return 0
        memo = self._epoch_memo
        cached = memo.get((url, last))
        if cached is not None:
            return cached
        # Resume from the nearest memoized tick; each churn draw is
        # independent per (url, h), so partial evaluation is exact.
        epoch = 0
        start = cadence
        for h in range(last - cadence, 0, -cadence):
            prev = memo.get((url, h))
            if prev is not None:
                epoch = prev
                start = h + cadence
                break
        if len(memo) > 200_000:  # soft bound; refilled on demand
            memo.clear()
        for h in range(start, last + 1, cadence):
            gate = derive_rng(self.seed, "churn", url, h)
            if gate.random() < self.diurnal_activity(h):
                epoch += 1
            memo[(url, h)] = epoch
        return epoch

    def changed_at(self, url: str, hour: int) -> bool:
        """Did ``url``'s content change at exactly ``hour``?"""
        if hour <= 0:
            return False
        return self.effective_epoch(url, hour) != self.effective_epoch(url, hour - 1)

    def page(self, url: str, hour: int = 0) -> Page:
        """Generate the page at ``url`` as it appears at ``hour``."""
        domain, _, path = url.partition("/")
        path = "/" + path
        site = self.website(domain)
        epoch = self.effective_epoch(url, hour)
        rng = derive_rng(self.seed, "page", domain, path, epoch)
        if path == "/":
            return self._landing_page(site, url, rng)
        return self._article_page(site, url, path, rng)

    def corpus(self, hour: int = 0) -> list[tuple[str, Page]]:
        """All 100 pages at a given hour."""
        return [(url, self.page(url, hour)) for url in self.all_urls()]

    # -- page builders ------------------------------------------------------------

    def _words(self, rng: np.random.Generator, n: int) -> str:
        return " ".join(rng.choice(_VOCAB, size=n))

    def _headline(self, rng: np.random.Generator) -> str:
        template = _HEADLINE_TEMPLATES[int(rng.integers(len(_HEADLINE_TEMPLATES)))]
        picks = {k: str(rng.choice(_VOCAB)).capitalize() for k in "ABCD"}
        return template.format(**picks)

    def _header(self, site: Website, rng: np.random.Generator) -> Header:
        nav = tuple(
            (str(rng.choice(_VOCAB)).capitalize(), f"{site.domain}{p}")
            for p in site.internal_paths
        )
        return Header(
            title=site.domain.split(".")[0].upper(),
            nav_items=nav,
            color=_CATEGORY_COLORS[site.category],
        )

    def _story_block(
        self,
        site: Website,
        rng: np.random.Generator,
        index: int,
        photo_prob: float = 0.20,
    ) -> list:
        path = site.internal_paths[index % len(site.internal_paths)]
        blocks: list = [
            Heading(self._headline(rng), level=2, href=f"{site.domain}{path}"),
            Paragraph(self._words(rng, int(rng.integers(12, 26)))),
        ]
        if rng.random() < photo_prob:
            blocks.insert(
                1,
                ImageBlock(
                    width=int(rng.integers(360, 720)),
                    height=int(rng.integers(150, 260)),
                    seed=int(rng.integers(1 << 31)),
                    caption=self._words(rng, 6),
                ),
            )
        if rng.random() < 0.10:
            blocks.append(
                Thumbnail(
                    width=640, height=300, seed=int(rng.integers(1 << 31))
                )
            )
        blocks.append(Divider())
        return blocks

    def _landing_page(self, site: Website, url: str, rng: np.random.Generator) -> Page:
        # Landing feeds are long — most exceed the 10k PH crop, which is
        # what makes Figure 4(b)'s PH:None tail heavier than PH:10k.
        n_stories = {
            "news": int(rng.integers(48, 80)),
            "sports": int(rng.integers(42, 70)),
            "portal": int(rng.integers(38, 64)),
            "ecommerce": int(rng.integers(34, 58)),
            "education": int(rng.integers(16, 34)),
            "government": int(rng.integers(10, 24)),
        }[site.category]
        if rng.random() < 0.15:
            # A few mega-portals with very long feeds: the CDF tail the
            # paper observes at roughly twice the 90th percentile.
            n_stories = int(n_stories * 1.7)

        # Per-page editorial style: photo-heavy portals compress very
        # differently from text walls, which is what spreads the size
        # CDF's tail (Figure 4(b)).
        photo_prob = float(rng.uniform(0.05, 0.50))
        directory_style = site.category == "portal" and rng.random() < 0.5
        elements: list = [self._header(site, rng), SearchBox()]
        if directory_style:
            # Link-directory portals: dense walls of links dominate the
            # page — the heavy tail of Figure 4(b)'s size CDF.
            n_stories = max(4, n_stories // 4)
            for _ in range(int(rng.integers(10, 16))):
                items = tuple(
                    (
                        str(rng.choice(_VOCAB)).capitalize()
                        + " "
                        + str(rng.choice(_VOCAB)),
                        f"{site.domain}{site.internal_paths[0]}",
                    )
                    for _ in range(int(rng.integers(90, 160)))
                )
                elements.append(LinkGrid(items))
        elements.append(
            AdBanner(self._words(rng, 4).upper(), href=f"{site.domain}/ads/promo")
        )
        for i in range(n_stories):
            elements.extend(self._story_block(site, rng, i, photo_prob))
            if i and i % 9 == 0:
                elements.append(
                    AdBanner(self._words(rng, 3).upper(), href=f"{site.domain}/ads/{i}")
                )
        elements.append(
            LinkList(
                tuple(
                    (self._headline(rng), f"{site.domain}{p}")
                    for p in site.internal_paths
                )
            )
        )
        elements.append(
            Footer(
                tuple(
                    (label, f"{site.domain}/{label.lower()}")
                    for label in ("About", "Contact", "Privacy", "Terms")
                )
            )
        )
        return Page(url=url, title=site.domain, elements=elements)

    def _article_page(
        self, site: Website, url: str, path: str, rng: np.random.Generator
    ) -> Page:
        n_paragraphs = int(rng.integers(34, 64))
        elements: list = [
            self._header(site, rng),
            Heading(self._headline(rng), level=1),
            Paragraph(self._words(rng, 12)),
        ]
        if rng.random() < 0.7:
            elements.append(
                ImageBlock(
                    width=int(rng.integers(480, 860)),
                    height=int(rng.integers(200, 340)),
                    seed=int(rng.integers(1 << 31)),
                    caption=self._words(rng, 8),
                )
            )
        for _ in range(n_paragraphs):
            elements.append(Paragraph(self._words(rng, int(rng.integers(18, 42)))))
        # Related stories + comment-like tail make articles long too.
        elements.append(Divider())
        elements.append(Heading("Related stories", level=3))
        elements.append(
            LinkList(
                tuple(
                    (self._headline(rng), f"{site.domain}{p}")
                    for p in site.internal_paths
                    if p != path
                )
            )
        )
        # Reader comments: short paragraphs that stretch articles well
        # past the fold, like real .pk news articles.
        for _ in range(int(rng.integers(30, 70))):
            elements.append(Paragraph(self._words(rng, int(rng.integers(8, 20)))))
        elements.append(Footer(tuple((l, f"{site.domain}/{l.lower()}") for l in ("About", "Contact"))))
        return Page(url=url, title=site.domain, elements=elements)
