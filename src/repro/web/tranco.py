"""A Tranco-like research ranking of websites.

The paper selects "the 25 most popular Pakistani websites from the
Tranco list filtered using the .pk domain name" (Section 4).  This
module provides the offline equivalent: a deterministic ranked list of
synthetic domains with Zipf-distributed popularity weights, filterable by
suffix, so experiments can select top-k slices exactly the way the paper
queried Tranco.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng

__all__ = ["TrancoEntry", "TrancoList"]


@dataclass(frozen=True)
class TrancoEntry:
    """One ranked domain."""

    rank: int  # 1-based global rank
    domain: str
    weight: float  # Zipf popularity weight (higher = more popular)


_GLOBAL_STEMS = [
    "google", "youtube", "facebook", "wikipedia", "instagram", "reddit",
    "amazon", "yahoo", "twitter", "whatsapp", "netflix", "bing", "office",
    "linkedin", "zoom", "tiktok", "ebay", "pinterest", "weather", "imdb",
]
_PK_STEMS = [
    "dawnleader", "jangtimes", "dunyaupdate", "tribunedesk", "samaalive",
    "arydigitalnews", "geoheadline", "expressdaily", "bolchannel", "suchtv",
    "darazmart", "bazaaronline", "mandishop", "telemart", "shophive",
    "nadraportal", "fbrtax", "punjabgov", "sindhgov", "pakrailway",
    "hecinfo", "aioucampus", "vuportal", "nustedu", "uetlahore",
    "cricketpk", "pslscores", "urdupoint", "hamariweb", "rozeejobs",
    "pakwheels", "zameenhomes", "oladoc", "bykea", "foodpanda-pk",
]
_PK_TLDS = [".com.pk", ".pk", ".gov.pk", ".edu.pk"]


class TrancoList:
    """Deterministic ranked domain list with suffix filtering."""

    def __init__(self, seed: int = 0, size: int = 500, min_pk: int = 0) -> None:
        if size < len(_PK_STEMS):
            raise ValueError(f"size must be at least {len(_PK_STEMS)}")
        rng = derive_rng(seed, "tranco")
        domains: list[str] = []
        pk_stems = list(_PK_STEMS)
        # Larger corpora (the paper's N=200 projection) need more .pk
        # sites than the curated list; synthesise extra plausible stems.
        kinds = ["news", "times", "mart", "portal", "tv", "daily", "store"]
        cities = ["lahore", "karachi", "multan", "quetta", "peshawar",
                  "faisalabad", "hyderabad", "sialkot", "rawalpindi", "gujrat"]
        i = 0
        while len(pk_stems) < max(min_pk, len(_PK_STEMS)):
            pk_stems.append(f"{cities[i % len(cities)]}{kinds[i % len(kinds)]}{i // len(cities)}")
            i += 1
        for stem in pk_stems:
            if "gov" in stem:
                tld = ".gov.pk"
            elif any(k in stem for k in ("edu", "campus", "portal", "lahore")):
                tld = ".edu.pk" if rng.random() < 0.5 else ".pk"
            else:
                tld = str(rng.choice([".pk", ".com.pk"]))
            domains.append(stem + tld)
        for stem in _GLOBAL_STEMS:
            domains.append(stem + ".com")
        # Pad with synthetic long-tail domains (never .pk — the curated
        # Pakistani stems must be exactly what a .pk suffix filter finds).
        syllables = ["al", "bo", "chi", "da", "el", "fa", "gu", "ha", "in", "ja"]
        tails = [".com", ".net", ".org", ".io"]
        while len(domains) < size:
            name = "".join(rng.choice(syllables, size=3)) + str(len(domains))
            domains.append(name + str(rng.choice(tails)))

        order = rng.permutation(len(domains))
        # Bias: make a healthy share of .pk domains land in the upper ranks,
        # as Tranco's Pakistan slice does.
        ranked = [domains[i] for i in order]
        self.entries = [
            TrancoEntry(rank=i + 1, domain=d, weight=1.0 / (i + 1) ** 0.9)
            for i, d in enumerate(ranked)
        ]

    def filter(self, suffix: str) -> list[TrancoEntry]:
        """Entries whose domain ends with ``suffix``, rank order kept."""
        return [e for e in self.entries if e.domain.endswith(suffix)]

    def top(self, n: int, suffix: str | None = None) -> list[TrancoEntry]:
        """The paper's query: top-n most popular, optionally by suffix."""
        pool = self.filter(suffix) if suffix else list(self.entries)
        return pool[:n]

    def __len__(self) -> int:
        return len(self.entries)
